"""Bring your own binary: write Alpha assembly, watch the DBT work.

Shows the full user workflow for running custom code through the
co-designed VM: write assembly (here, a string-processing kernel built on
Alpha's byte-manipulation instructions), pick a VM configuration, run, and
inspect what the translator produced — including how the strand structure
changes with the number of logical accumulators.

    python examples/custom_workload.py
"""

from repro import CoDesignedVM, IFormat, VMConfig, assemble
from repro.ildp_isa.disasm import disassemble_iinstr

#: Upper-cases a byte string in place using extbl/mskbl/insbl — the idiom
#: Alpha compilers generate for byte stores on pre-BWX machines.
SOURCE = """
_start: li   r15, 120
pass:   la   r16, text
        li   r17, 5           ; quadwords in the buffer
word:   ldq  r3, 0(r16)
        clr  r4               ; byte offset within the quadword
byte:   extbl r3, r4, r5
        cmpult r5, 97, r6     ; below 'a'?
        bne  r6, keep
        cmpult r5, 123, r6    ; above 'z'?
        beq  r6, keep
        subq r5, 32, r5       ; to upper case
        mskbl r3, r4, r3
        insbl r5, r4, r7
        bis  r3, r7, r3
keep:   addq r4, 1, r4
        cmpult r4, 8, r6
        bne  r6, byte
        stq  r3, 0(r16)
        lda  r16, 8(r16)
        subq r17, 1, r17
        bne  r17, word
        subq r15, 1, r15
        bne  r15, pass
        ; print the first byte as proof
        la   r16, text
        ldbu r16, 0(r16)
        call_pal putc
        call_pal halt
        .data
        .align 8
text:   .ascii "the quick brown fox jumps over a lazy dog"
"""


def run_with(n_accumulators):
    vm = CoDesignedVM(assemble(SOURCE, source_name="upcase"),
                      VMConfig(fmt=IFormat.BASIC,
                               n_accumulators=n_accumulators))
    vm.run(max_v_instructions=500_000)
    return vm


def main():
    vm = run_with(4)
    print("console:", vm.console_text())
    print("buffer after:",
          vm.program.memory.read_bytes(vm.program.symbols["text"],
                                       41).decode("latin-1"))
    print()
    print("accumulator pressure (basic format, hot byte loop):")
    print(f"{'accs':>5s} {'fragments':>10s} {'spill terminations':>19s} "
          f"{'copy %':>7s}")
    for count in (1, 2, 4, 8):
        run = run_with(count)
        print(f"{count:5d} {run.stats.fragments_created:10d} "
              f"{run.stats.premature_terminations:19d} "
              f"{run.stats.copy_percentage():7.1f}")
    print()
    fragment = max(vm.tcache.fragments, key=lambda f: f.execution_count)
    print(f"hottest fragment (V:{fragment.entry_vpc:#x}, "
          f"executed {fragment.execution_count}x):")
    for instr in fragment.body:
        print("   ", disassemble_iinstr(instr, fragment.fmt))


if __name__ == "__main__":
    main()
