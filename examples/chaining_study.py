"""Fragment chaining study (paper Section 3.2 / Fig. 4).

Runs an indirect-jump-heavy workload (the perlbmk stand-in) under the three
chaining implementations and shows how software jump-target prediction and
the dual-address return address stack change dispatch traffic, dynamic
expansion and misprediction rates.

    python examples/chaining_study.py
"""

from repro.harness.experiments.fig4 import count_mispredictions
from repro.harness.runner import run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig

WORKLOAD = "perlbmk"
BUDGET = 60_000


def main():
    trace, _interp = run_original(WORKLOAD, budget=BUDGET)
    print(f"workload: {WORKLOAD}")
    print(f"original binary: {count_mispredictions(trace):.2f} "
          "mispredictions / 1000 V-instructions\n")

    header = (f"{'policy':16s} {'misp/1k':>8s} {'expansion':>10s} "
              f"{'dispatch runs':>14s} {'RAS hit rate':>13s}")
    print(header)
    print("-" * len(header))
    for policy in ChainingPolicy:
        result = run_vm(WORKLOAD,
                        VMConfig(fmt=IFormat.ALPHA, policy=policy),
                        budget=BUDGET)
        stats = result.stats
        mispredictions = count_mispredictions(result.trace)
        ras = f"{stats.ras_hit_rate():.2f}" if policy.dual_address_ras \
            else "-"
        print(f"{policy.value:16s} {mispredictions:8.2f} "
              f"{stats.dynamic_expansion():10.3f} "
              f"{stats.dispatch_runs:14d} {ras:>13s}")

    print("\npaper shape: no_pred funnels every indirect transfer through"
          "\nthe shared dispatch code (one unpredictable jump serves all"
          "\ntargets); software prediction removes most dispatch runs; the"
          "\ndual-address RAS recovers return-address prediction that"
          "\ntrace-based DBT otherwise destroys.")


if __name__ == "__main__":
    main()
