"""Precise trap recovery demo (paper Section 2.2).

A hot loop eventually dereferences a bad pointer from inside translated
code.  The VM must present exactly the architected state a plain Alpha
machine would have at the faulting instruction — the script proves it by
diffing against a reference interpreter, under both I-ISA formats.

    python examples/precise_traps.py
"""

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.interp import Interpreter
from repro.isa.semantics import Trap
from repro.vm import CoDesignedVM, VMConfig, VMTrap

SOURCE = """
_start: li r1, 90
        la r2, buf
        li r8, 0x700000
        clr r3
loop:   addq r3, r1, r4
        cmpeq r1, 21, r7
        cmovne r7, r8, r2     ; poison the pointer on one iteration
        ldq  r6, 0(r2)        ; ... so this load eventually faults
        addq r4, r6, r3
        clr  r4
        subq r1, 1, r1
        bne  r1, loop
        call_pal halt
        .data
buf:    .quad 17
"""


def main():
    # reference: what a real Alpha machine's trap handler would see
    reference = Interpreter(assemble(SOURCE))
    try:
        reference.run()
    except Trap as trap:
        print(f"reference trap: {trap.kind.value} at "
              f"V:{reference.state.pc:#x}, bad address "
              f"{trap.address:#x}")

    for fmt in (IFormat.BASIC, IFormat.MODIFIED):
        vm = CoDesignedVM(assemble(SOURCE), VMConfig(fmt=fmt))
        try:
            vm.run(max_v_instructions=1_000_000)
        except VMTrap as trap:
            match = trap.state.regs == reference.state.regs and \
                trap.state.pc == reference.state.pc
            print(f"\n{fmt.value} format: trap delivered at "
                  f"V:{trap.state.pc:#x}")
            print(f"  fragments translated: "
                  f"{vm.stats.fragments_created}")
            print(f"  reconstructed state matches reference: {match}")
            if fmt is IFormat.BASIC:
                acc_recoveries = sum(
                    1
                    for frag in vm.tcache.fragments
                    for _i, _vpc, recovery in frag.pei_table
                    if recovery
                    for loc in recovery.values()
                    if loc[0] == "acc"
                )
                print(f"  recovery-map entries naming accumulators: "
                      f"{acc_recoveries} (values materialised from "
                      f"accumulators at the trap)")


if __name__ == "__main__":
    main()
