"""IPC study (paper Figs. 8 and 9, condensed).

For one workload, compares the original binary on the idealised
out-of-order superscalar against the translated accumulator code on the
ILDP distributed machine, then sweeps the ILDP machine parameters.

    python examples/ipc_study.py [workload]
"""

import sys

from repro.harness.runner import run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import MachineConfig, ildp_config
from repro.uarch.ildp import ILDPModel
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.config import VMConfig

BUDGET = 60_000


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    print(f"workload: {workload}\n")

    trace, _interp = run_original(workload, budget=BUDGET)
    original = SuperscalarModel(MachineConfig("superscalar-ooo")).run(trace)
    print(f"original Alpha on 4-wide OoO superscalar : "
          f"IPC {original.ipc:.3f}")

    runs = {}
    for fmt in (IFormat.BASIC, IFormat.MODIFIED):
        runs[fmt] = run_vm(workload, VMConfig(fmt=fmt), budget=BUDGET)
        result = ILDPModel(ildp_config(8, 0)).run(runs[fmt].trace)
        print(f"{fmt.value:8s} I-ISA on ILDP (8 PE, 0-cycle comm) : "
              f"V-IPC {result.ipc:.3f}  native I-IPC "
              f"{result.native_ipc:.3f}  "
              f"(x{runs[fmt].stats.dynamic_expansion():.2f} instructions)")

    print("\nILDP parameter sweep (modified I-ISA):")
    trace = runs[IFormat.MODIFIED].trace
    for label, pes, comm, small in (
        ("8 PEs, 0-cycle comm, 32KB D$", 8, 0, False),
        ("8 PEs, 0-cycle comm,  8KB D$", 8, 0, True),
        ("8 PEs, 2-cycle comm, 32KB D$", 8, 2, False),
        ("6 PEs, 0-cycle comm, 32KB D$", 6, 0, False),
        ("4 PEs, 0-cycle comm, 32KB D$", 4, 0, False),
    ):
        machine = ildp_config(pes, comm, dcache_small=small)
        result = ILDPModel(machine).run(trace)
        print(f"  {label} : IPC {result.ipc:.3f}")


if __name__ == "__main__":
    main()
