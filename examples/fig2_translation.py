"""Reproduce Fig. 2 of the paper: the 164.gzip inner loop translated to
both accumulator I-ISA formats.

Prints the original Alpha code next to the basic-format translation
(explicit copy-to-GPR instructions) and the modified-format translation
(embedded destination registers), exactly as the paper's figure shows.

    python examples/fig2_translation.py
"""

from repro.asm import assemble
from repro.ildp_isa.disasm import disassemble_iinstr
from repro.ildp_isa.opcodes import IFormat
from repro.isa.disasm import disassemble
from repro.vm import CoDesignedVM, VMConfig

GZIP_LOOP = """
_start: la   r16, buf
        la   r0, table
        li   r17, 200
        clr  r1
loop:   ldbu r3, 0(r16)
        subl r17, 1, r17
        lda  r16, 1(r16)
        xor  r1, r3, r3
        srl  r1, 8, r1
        and  r3, 0xff, r3
        s8addq r3, r0, r3
        ldq  r3, 0(r3)
        xor  r3, r1, r1
        bne  r17, loop
        call_pal halt
        .data
buf:    .space 256, 7
        .align 8
table:  .space 2048, 3
"""


def translate(fmt):
    vm = CoDesignedVM(assemble(GZIP_LOOP), VMConfig(fmt=fmt))
    vm.run(max_v_instructions=100_000)
    return vm.tcache.fragments[0]


def main():
    basic = translate(IFormat.BASIC)
    modified = translate(IFormat.MODIFIED)

    print("(a) Alpha source loop")
    for entry in basic.superblock.entries:
        print(f"    {entry.vpc:#08x}  "
              f"{disassemble(entry.instr, pc=entry.vpc)}")

    print()
    print("(c) basic I-ISA translation "
          f"({len(basic.body)} instructions, "
          f"{basic.copy_instruction_count()} copies, "
          f"{basic.byte_size} bytes)")
    for instr in basic.body:
        print(f"    {disassemble_iinstr(instr, IFormat.BASIC)}")

    print()
    print("(d) modified I-ISA translation "
          f"({len(modified.body)} instructions, "
          f"{modified.copy_instruction_count()} copies, "
          f"{modified.byte_size} bytes)")
    for instr in modified.body:
        print(f"    {disassemble_iinstr(instr, IFormat.MODIFIED)}")


if __name__ == "__main__":
    main()
