"""Quickstart: run a program through the co-designed VM.

Assembles a small Alpha program, runs it under the full
interpret -> profile -> translate -> execute pipeline with the paper's
baseline configuration (modified I-ISA, software prediction + dual-address
RAS), and prints what the DBT did.

    python examples/quickstart.py
"""

from repro.asm import assemble
from repro.ildp_isa.disasm import disassemble_iinstr
from repro.vm import CoDesignedVM, VMConfig

SOURCE = """
        ; sum the bytes of a buffer, 150 times over
_start: li   r15, 150
        clr  r0
pass:   la   r16, buf
        li   r17, 64
loop:   ldbu r3, 0(r16)
        addq r0, r3, r0
        lda  r16, 1(r16)
        subq r17, 1, r17
        bne  r17, loop
        subq r15, 1, r15
        bne  r15, pass
        and  r0, 0x7f, r16
        call_pal putc
        call_pal halt
        .data
buf:    .space 64, 3
"""


def main():
    program = assemble(SOURCE, source_name="quickstart")
    vm = CoDesignedVM(program, VMConfig())
    stats = vm.run(max_v_instructions=500_000)

    print("console output:", repr(vm.console_text()))
    print()
    print("V-ISA instructions interpreted :",
          stats.interpreted_instructions)
    print("V-ISA instructions translated  :",
          stats.source_instructions_executed)
    print("I-ISA instructions executed    :",
          stats.iinstructions_executed)
    print("dynamic expansion              :",
          round(stats.dynamic_expansion(), 3))
    print("fragments in translation cache :", stats.fragments_created)
    print()
    print("hot loop, translated to the modified accumulator I-ISA:")
    fragment = vm.tcache.fragments[0]
    for instr in fragment.body:
        print("   ", disassemble_iinstr(instr, fragment.fmt))


if __name__ == "__main__":
    main()
