"""Direct unit tests of the fragment executor: hand-built fragments,
one IOp at a time, no translator in the loop."""

import pytest

from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.interp.state import ArchState
from repro.memory.image import Memory
from repro.tcache.cache import TranslationCache
from repro.tcache.fragment import Fragment
from repro.vm.config import VMConfig
from repro.vm.executor import ExitReason, FragmentExecutor
from repro.vm.stats import VMStats


def build_fragment(body, fmt=IFormat.BASIC, entry_vpc=0x1000):
    return Fragment(entry_vpc=entry_vpc, fmt=fmt, body=body, exits=[],
                    pei_table=[], source_instr_count=1, n_accumulators=4)


@pytest.fixture
def machine():
    memory = Memory()
    memory.map_segment("data", 0x2000, 0x1000)
    tcache = TranslationCache()
    state = ArchState(0x1000)
    stats = VMStats()
    executor = FragmentExecutor(VMConfig(fmt=IFormat.BASIC), tcache,
                                memory, [], stats)
    return executor, tcache, state, memory


def run_fragment(machine, body, fmt=IFormat.BASIC, entry_vpc=0x1000):
    executor, tcache, state, _memory = machine
    fragment = build_fragment(body + [IInstruction(IOp.HALT)], fmt,
                              entry_vpc)
    tcache.add(fragment)
    result = executor.run(fragment, state)
    return executor, state, result


class TestAluOps:
    def test_strand_start_from_gpr(self, machine):
        machine[2].regs[5] = 40
        executor, _state, _result = run_fragment(machine, [
            IInstruction(IOp.ALU, op="addq", acc=2, src_a="gpr", gpr=5,
                         src_b="imm", imm=2, islit=True),
        ])
        assert executor.accs[2] == 42

    def test_acc_chaining(self, machine):
        executor, _state, _result = run_fragment(machine, [
            IInstruction(IOp.ALU, op="addq", acc=0, src_a="zero",
                         src_b="imm", imm=7, islit=True),
            IInstruction(IOp.ALU, op="sll", acc=0, src_a="acc",
                         src_b="imm", imm=2, islit=True),
        ])
        assert executor.accs[0] == 28

    def test_basic_format_does_not_touch_gprs(self, machine):
        executor, state, _result = run_fragment(machine, [
            IInstruction(IOp.ALU, op="addq", acc=0, src_a="zero",
                         src_b="imm", imm=9, islit=True, dest_gpr=4),
        ])
        assert state.regs[4] == 0      # metadata only in basic format

    def test_modified_format_writes_dest(self, machine):
        executor, state, _result = run_fragment(machine, [
            IInstruction(IOp.ALU, op="addq", acc=0, src_a="zero",
                         src_b="imm", imm=9, islit=True, dest_gpr=4,
                         operational=True),
        ], fmt=IFormat.MODIFIED)
        assert state.regs[4] == 9

    def test_alpha_cmov_semantics(self, machine):
        machine[2].regs[1] = 1        # condition register (non-zero)
        machine[2].regs[4] = 111      # old destination value
        executor, state, _result = run_fragment(machine, [
            IInstruction(IOp.ALU, op="cmovne", src_a="gpr", gpr=1,
                         src_b="imm", imm=55, islit=True, dest_gpr=4),
        ], fmt=IFormat.ALPHA)
        assert state.regs[4] == 55


class TestCopies:
    def test_copy_round_trip(self, machine):
        machine[2].regs[7] = 0xDEAD
        executor, state, _result = run_fragment(machine, [
            IInstruction(IOp.COPY_FROM_GPR, acc=1, gpr=7),
            IInstruction(IOp.ALU, op="addq", acc=1, src_a="acc",
                         src_b="imm", imm=1, islit=True),
            IInstruction(IOp.COPY_TO_GPR, acc=1, gpr=8),
        ])
        assert state.regs[8] == 0xDEAE


class TestMemoryOps:
    def test_store_then_load(self, machine):
        machine[2].regs[2] = 0x2000
        executor, _state, _result = run_fragment(machine, [
            IInstruction(IOp.ALU, op="addq", acc=0, src_a="zero",
                         src_b="imm", imm=77, islit=True),
            IInstruction(IOp.STORE, acc=0, addr_src="gpr", gpr=2,
                         data_src="acc", mem_size=8),
            IInstruction(IOp.LOAD, acc=1, addr_src="gpr", gpr=2,
                         mem_size=8),
        ])
        assert executor.accs[1] == 77

    def test_signed_load(self, machine):
        _executor, _tcache, state, memory = machine
        memory.store(0x2000, 0x80000000, 4)
        state.regs[2] = 0x2000
        executor, _state, _result = run_fragment(machine, [
            IInstruction(IOp.LOAD, acc=0, addr_src="gpr", gpr=2,
                         mem_size=4, mem_signed=True),
        ])
        assert executor.accs[0] == 0xFFFFFFFF80000000

    def test_trap_reports_position(self, machine):
        executor, state, result = run_fragment(machine, [
            IInstruction(IOp.LOAD, acc=0, addr_src="zero", mem_size=8,
                         vpc=0x1010),
        ])
        assert result.reason is ExitReason.TRAP
        assert result.vpc == 0x1010
        assert result.body_index == 0


class TestControl:
    def test_call_translator_exit(self, machine):
        executor, state, result = run_fragment(machine, [
            IInstruction(IOp.CALL_TRANSLATOR, vtarget=0x5555),
        ])
        assert result.reason is ExitReason.UNTRANSLATED
        assert state.pc == 0x5555

    def test_branch_within_cache(self, machine):
        executor, tcache, state, _memory = machine
        target = build_fragment([IInstruction(IOp.HALT)],
                                entry_vpc=0x3000)
        tcache.add(target)
        body = [IInstruction(IOp.ALU, op="addq", acc=0, src_a="zero",
                             src_b="imm", imm=1, islit=True),
                IInstruction(IOp.BRANCH, op="bne", cond_src="acc", acc=0,
                             target=target.entry_address()),
                IInstruction(IOp.GENTRAP)]
        source = build_fragment(body, entry_vpc=0x1000)
        tcache.add(source)
        result = executor.run(source, state)
        assert result.reason is ExitReason.HALT
        assert target.execution_count == 1

    def test_save_vra_and_dispatch(self, machine):
        executor, tcache, state, _memory = machine
        target = build_fragment([IInstruction(IOp.HALT)],
                                entry_vpc=0x4000)
        tcache.add(target)
        body = [IInstruction(IOp.SAVE_VRA, gpr=26, vtarget=0x4000),
                IInstruction(IOp.TO_DISPATCH, gpr=26)]
        source = build_fragment(body, entry_vpc=0x1000)
        tcache.add(source)
        result = executor.run(source, state)
        assert result.reason is ExitReason.HALT
        assert state.regs[26] == 0x4000
        assert executor.stats.dispatch_runs == 1

    def test_dispatch_miss_exits(self, machine):
        executor, state, result = run_fragment(machine, [
            IInstruction(IOp.SAVE_VRA, gpr=26, vtarget=0x7777770),
            IInstruction(IOp.TO_DISPATCH, gpr=26),
        ])
        assert result.reason is ExitReason.UNTRANSLATED
        assert result.vpc == 0x7777770

    def test_ras_hit_and_miss(self, machine):
        executor, tcache, state, _memory = machine
        returnee = build_fragment([IInstruction(IOp.HALT)],
                                  entry_vpc=0x6000)
        tcache.add(returnee)
        state.regs[26] = 0x6000
        body = [IInstruction(IOp.PUSH_RAS, vtarget=0x6000,
                             target=returnee.entry_address()),
                IInstruction(IOp.RET_RAS, gpr=26),
                IInstruction(IOp.GENTRAP)]
        source = build_fragment(body, entry_vpc=0x1000)
        tcache.add(source)
        result = executor.run(source, state)
        assert result.reason is ExitReason.HALT   # RAS hit skipped GENTRAP
        assert executor.stats.ras_hits == 1

        # now a miss: wrong architected return address falls through
        executor2 = FragmentExecutor(VMConfig(fmt=IFormat.BASIC), tcache,
                                     machine[3], [], VMStats())
        state2 = ArchState(0x1000)
        state2.regs[26] = 0x9999998
        result2 = executor2.run(source, state2)
        assert result2.reason is ExitReason.TRAP   # fell into the GENTRAP
        assert executor2.stats.ras_misses == 1
