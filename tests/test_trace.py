"""Span tracing: the tracer, its Chrome export, and the instrumented
VM/translator/harness layers."""

import json

import pytest

from repro.harness.parallel import PointRunner
from repro.harness.runner import run_vm
from repro.harness.runpoints import RunPoint, execute_point
from repro.obs.trace import (
    NULL_TRACER,
    MultiSpan,
    NullTracer,
    Tracer,
    make_tracer,
    span_contains,
    validate_chrome_trace,
)
from repro.vm.config import VMConfig


def completes_named(doc, name):
    return [event for event in validate_chrome_trace(doc)
            if event["name"] == name]


class TestTracer:
    def test_begin_end_records_complete_event(self):
        tracer = Tracer(epoch=0.0)
        tracer.begin("work", cat="test", detail=1)
        tracer.end(extra=2)
        (event,) = completes_named(tracer.to_chrome(), "work")
        assert event["ph"] == "X"
        assert event["cat"] == "test"
        assert event["dur"] >= 0
        assert event["args"] == {"detail": 1, "extra": 2}

    def test_span_nesting_is_positional(self):
        tracer = Tracer(epoch=0.0)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        doc = tracer.to_chrome()
        (outer,) = completes_named(doc, "outer")
        (inner,) = completes_named(doc, "inner")
        assert span_contains(outer, inner)
        assert not span_contains(inner, outer)

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_unwind_closes_all_open_spans(self):
        tracer = Tracer()
        tracer.begin("a")
        tracer.begin("b")
        tracer.unwind()
        doc = tracer.to_chrome()
        assert len(completes_named(doc, "a")) == 1
        assert len(completes_named(doc, "b")) == 1

    def test_open_spans_flushed_as_unfinished(self):
        tracer = Tracer()
        tracer.begin("open")
        (event,) = completes_named(tracer.to_chrome(), "open")
        assert event["args"]["unfinished"] is True

    def test_metadata_events_name_tracks(self):
        tracer = Tracer(process_name="proc", thread_name="thread")
        events = tracer.to_chrome()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "proc") in names
        assert ("thread_name", "thread") in names

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("marker", cat="test", n=3)
        events = tracer.to_chrome()["traceEvents"]
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["name"] == "marker"
        assert instant["args"] == {"n": 3}

    def test_add_complete_places_span_on_other_track(self):
        tracer = Tracer(epoch=0.0)
        tracer.add_complete("remote", 1.0, 2.5, tid=7)
        (event,) = completes_named(tracer.to_chrome(), "remote")
        assert event["tid"] == 7
        assert event["ts"] == pytest.approx(1.0e6)
        assert event["dur"] == pytest.approx(1.5e6)

    def test_overflow_counts_dropped(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.to_chrome()["otherData"]["dropped"] == 3

    def test_flame_lines_rank_by_total(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        lines = tracer.flame_lines()
        assert "root" in lines[1]
        assert any("leaf" in line for line in lines[2:])

    def test_export_is_json_serialisable(self):
        tracer = Tracer()
        with tracer.span("x", arg="v"):
            tracer.instant("i")
        json.dumps(tracer.to_chrome())

    def test_write_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(path)
        doc = json.loads(path.read_text())
        assert len(completes_named(doc, "x")) == 1

    def test_multispan_enters_all(self):
        order = []

        class CM:
            def __init__(self, tag):
                self.tag = tag

            def __enter__(self):
                order.append(("enter", self.tag))

            def __exit__(self, *exc):
                order.append(("exit", self.tag))
                return False

        with MultiSpan(CM("a"), CM("b")):
            pass
        assert order == [("enter", "a"), ("enter", "b"),
                         ("exit", "b"), ("exit", "a")]

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0}]})


class TestNullTracer:
    def test_all_operations_are_noops(self, tmp_path):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.begin("a")
        tracer.end()
        with tracer.span("b"):
            tracer.instant("c")
        tracer.add_complete("d", 0.0, 1.0)
        tracer.unwind()
        tracer.write(tmp_path / "never.json")
        assert not (tmp_path / "never.json").exists()
        assert tracer.to_chrome()["traceEvents"] == []
        assert tracer.flame_lines() == []

    def test_make_tracer_selects_by_config(self):
        assert make_tracer(VMConfig(trace=True)).enabled
        assert make_tracer(VMConfig()) is NULL_TRACER

    def test_trace_flag_excluded_from_cache_key(self):
        on = VMConfig(trace=True).key_fields()
        off = VMConfig().key_fields()
        assert on == off
        assert "trace" not in on


class TestVMTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        result = run_vm("gzip", VMConfig(trace=True), budget=30_000,
                        collect_trace=False)
        return result, result.vm.tracer.to_chrome()

    def test_run_loop_phases_present(self, traced):
        _result, doc = traced
        for name in ("vm.run", "vm.interpret", "vm.capture",
                     "vm.translated", "translate", "translate.codegen"):
            assert completes_named(doc, name), f"no {name} spans"

    def test_nesting_run_capture_translate_codegen(self, traced):
        _result, doc = traced
        (run,) = completes_named(doc, "vm.run")
        capture = completes_named(doc, "vm.capture")[0]
        translate = completes_named(doc, "translate")[0]
        codegen = completes_named(doc, "translate.codegen")[0]
        assert span_contains(run, capture)
        assert span_contains(capture, translate)
        assert span_contains(translate, codegen)

    def test_interpret_spans_coalesced(self, traced):
        result, doc = traced
        spans = completes_named(doc, "vm.interpret")
        stepped = sum(span["args"]["instructions"] for span in spans)
        # run-loop interpreter stints coalesce into few spans; the
        # counted instructions stay at or below the stats total (the
        # remainder is interpreted *inside* vm.capture spans, where the
        # superblock recorder steps the interpreter itself)
        assert 0 < len(spans) < stepped
        assert stepped <= result.stats.interpreted_instructions

    def test_tcache_instants_emitted(self, traced):
        _result, doc = traced
        instants = [e for e in doc["traceEvents"]
                    if e["ph"] == "i" and e["name"] == "tcache.fragment"]
        assert len(instants) == _result.stats.fragments_created

    def test_no_op_parity_with_tracing_off(self):
        on = run_vm("gzip", VMConfig(trace=True), budget=30_000,
                    collect_trace=False)
        off = run_vm("gzip", VMConfig(), budget=30_000,
                     collect_trace=False)
        assert vars(on.stats) == vars(off.stats)
        assert on.vm.state.regs == off.vm.state.regs
        assert on.vm.state.pc == off.vm.state.pc
        assert on.vm.console_text() == off.vm.console_text()

    def test_trap_unwinds_open_spans(self):
        # syscall workloads deliver traps mid-stint; the export must
        # still balance (validate raises on negative/missing durations)
        result = run_vm("perlbmk", VMConfig(trace=True), budget=30_000,
                        collect_trace=False)
        doc = result.vm.tracer.to_chrome()
        validate_chrome_trace(doc)
        assert completes_named(doc, "vm.run")


class TestHarnessTracing:
    def test_serial_points_become_spans(self):
        tracer = Tracer()
        runner = PointRunner(tracer=tracer)
        runner.run([RunPoint.vm("gzip", budget=20_000)])
        doc = tracer.to_chrome()
        spans = completes_named(doc, "gzip (modified/sw_pred.ras)")
        assert len(spans) == 1
        assert spans[0]["args"]["kind"] == "vm"

    def test_cache_hits_become_instants(self, tmp_path):
        from repro.harness.resultcache import ResultCache

        tracer = Tracer()
        cache = ResultCache(str(tmp_path))
        point = RunPoint.vm("gzip", budget=20_000)
        PointRunner(cache=cache).run([point])
        PointRunner(cache=cache, tracer=tracer).run([point])
        instants = [e for e in tracer.to_chrome()["traceEvents"]
                    if e["ph"] == "i"]
        assert any(e["name"].startswith("cache-hit gzip")
                   for e in instants)

    def test_pool_spans_land_on_worker_tracks(self):
        # the container is single-core so the pool never engages; drive
        # the track placement directly with synthetic chunk results
        tracer = Tracer(epoch=0.0)
        runner = PointRunner(workers=2, tracer=tracer)
        points = [RunPoint.vm("gzip", budget=1), RunPoint.vm("mcf", budget=1)]
        chunks = [[points[0]], [points[1]]]
        chunk_results = [[({}, 1.0, 2.0)], [({}, 1.5, 2.5)]]
        runner._note_pool_spans(chunks, chunk_results)
        doc = tracer.to_chrome()
        by_tid = {event["tid"]: event["name"]
                  for event in validate_chrome_trace(doc)}
        assert by_tid[1].startswith("gzip")
        assert by_tid[2].startswith("mcf")
        meta = {e["args"]["name"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"worker-1", "worker-2"} <= meta

    def test_execute_chunk_reports_timestamps(self):
        from repro.harness.parallel import _execute_chunk

        (triple,) = _execute_chunk([RunPoint.vm("gzip", budget=5_000)])
        summary, started, ended = triple
        assert summary["workload"] == "gzip"
        assert ended >= started

    def test_point_labels(self):
        assert RunPoint.original("gzip").label() == "gzip (original)"
        assert "gzip (" in RunPoint.vm("gzip").label()
