"""Code generation tests, including an exact reproduction of Fig. 2.

The paper's Fig. 2 shows the 164.gzip inner loop translated into the basic
and modified accumulator ISAs; these tests check our translator emits the
same instruction sequence (modulo accumulator numbering).
"""

import re

import pytest

from repro.asm import assemble
from repro.ildp_isa.disasm import disassemble_iinstr
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.vm import CoDesignedVM, VMConfig
from tests.conftest import FIG2_KERNEL


def translate_fig2(fmt):
    vm = CoDesignedVM(assemble(FIG2_KERNEL), VMConfig(fmt=fmt))
    vm.run(max_v_instructions=100_000)
    fragment = vm.tcache.fragments[0]
    return fragment, [disassemble_iinstr(i, fmt) for i in fragment.body]


def canonical(lines):
    """Strip accumulator numbering so comparisons are structural."""
    return [re.sub(r"A\d+", "A", line) for line in lines]


class TestFig2Basic:
    def test_exact_sequence(self):
        _fragment, lines = translate_fig2(IFormat.BASIC)
        expected = [
            "VPC_base <- ",          # set-VPC-base with the entry address
            "A <- mem[R16]",         # ldbu
            "A <- R17 - 1",          # subl
            "R17 <- A",              # copy (live-out)
            "A <- R16 + 1",          # lda
            "R16 <- A",              # copy (live-out)
            "A <- R1 xor A",         # xor r1,r3,r3 joins the load strand
            "A <- R1 >> 8",          # srl starts its own strand
            "A <- A and 255",        # and
            "A <- 8*A + R0",         # s8addq
            "A <- mem[A]",           # ldq
            "R3 <- A",               # copy (live-out)
            "A <- R3 xor A",         # final xor joins the srl strand
            "R1 <- A",               # copy (live-out)
        ]
        got = canonical(lines)
        for index, prefix in enumerate(expected):
            assert got[index].startswith(prefix.replace("A", "A")), \
                f"line {index}: {got[index]!r} !~ {prefix!r}"
        # block-ending branch pair (Fig. 2c): P <- L1 if ..., P <- L2
        assert "if (A != 0)" in got[14]
        assert got[15].startswith(("P <- ", "call_translator"))

    def test_copy_count_matches_paper(self):
        fragment, _lines = translate_fig2(IFormat.BASIC)
        assert fragment.copy_instruction_count() == 4

    def test_pei_table_has_loads(self):
        fragment, _lines = translate_fig2(IFormat.BASIC)
        assert len(fragment.pei_table) == 2  # ldbu and ldq
        for _index, vpc, recovery in fragment.pei_table:
            assert vpc is not None
            assert recovery is not None


class TestFig2Modified:
    def test_exact_sequence(self):
        _fragment, lines = translate_fig2(IFormat.MODIFIED)
        expected = [
            "VPC_base <- ",
            "R3(A) <- mem[R16]",
            "R17(A) <- R17 - 1",
            "R16(A) <- R16 + 1",
            "R3(A) <- R1 xor A",
            "R1(A) <- R1 >> 8",
            "R3(A) <- A and 255",
            "R3(A) <- 8*A + R0",
            "R3(A) <- mem[A]",
            "R1(A) <- R3 xor A",
        ]
        got = canonical(lines)
        for index, prefix in enumerate(expected):
            assert got[index].startswith(prefix), \
                f"line {index}: {got[index]!r} !~ {prefix!r}"

    def test_no_copies(self):
        fragment, _lines = translate_fig2(IFormat.MODIFIED)
        assert fragment.copy_instruction_count() == 0

    def test_fewer_instructions_than_basic(self):
        basic, _ = translate_fig2(IFormat.BASIC)
        modified, _ = translate_fig2(IFormat.MODIFIED)
        assert len(modified.body) < len(basic.body)
        assert modified.source_instr_count == basic.source_instr_count

    def test_operational_flags(self):
        fragment, _lines = translate_fig2(IFormat.MODIFIED)
        operational = [i for i in fragment.body
                       if i.dest_gpr is not None and i.operational]
        non_operational = [i for i in fragment.body
                           if i.dest_gpr is not None and not i.operational]
        # the loop-carried values (r1, r3, r16, r17) are live-out: all the
        # final writes must be operational; intermediate r1/r3 values not
        assert operational
        assert non_operational

    def test_recovery_maps_trivial(self):
        fragment, _lines = translate_fig2(IFormat.MODIFIED)
        for _index, _vpc, recovery in fragment.pei_table:
            assert recovery is None


class TestAlphaTarget:
    def test_no_accumulators(self):
        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.ALPHA))
        vm.run(max_v_instructions=100_000)
        fragment = vm.tcache.fragments[0]
        computation = [i for i in fragment.body
                       if i.iop in (IOp.ALU, IOp.LOAD, IOp.STORE)]
        assert all(i.acc is None for i in computation)

    def test_memory_not_decomposed(self):
        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.ALPHA))
        vm.run(max_v_instructions=100_000)
        fragment = vm.tcache.fragments[0]
        # the ldq had no displacement in the kernel; every source Alpha
        # instruction maps to exactly one ALPHA-format instruction
        body_vpcs = [i.vpc for i in fragment.body if i.vpc is not None]
        assert len(body_vpcs) == len(set(body_vpcs)) + 1  # branch glue pair


class TestStrandStartMarkers:
    def test_marks_present_and_consistent(self):
        fragment, _lines = translate_fig2(IFormat.MODIFIED)
        starts = [i for i in fragment.body if i.strand_start]
        # Fig. 2 has four strands: ldbu-chain, subl, lda, srl-chain
        assert len(starts) == 4
        for instr in starts:
            assert instr.acc is not None
