"""Warm-start differential: restored translations change nothing.

The acceptance contract for the persistence subsystem: for every
workload, a warm run (every translation answered from the fragment
store) produces ``VMStats`` *bit-identical* to the cold run's.  The
restore path installs fragments through the normal ``tcache.add``
pipeline and replays the recorded cost charges, so any drift — one
extra chain patch, one missed premature-termination count, one
different code byte — shows up here as a failed field-by-field
comparison.

Budget is deliberately modest: every workload's hot region translates
fully well below it, and the suite runs 3x12 VM boots.
"""

import pytest

from repro.harness.runner import run_vm
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

BUDGET = 20_000


def _run(workload, persist_path=None, persist_mode="both"):
    config = VMConfig() if persist_path is None else VMConfig(
        persist_path=str(persist_path), persist_mode=persist_mode)
    return run_vm(workload, config, budget=BUDGET, collect_trace=False,
                  telemetry=True)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_warm_stats_identical_to_cold(workload, tmp_path):
    cold = _run(workload)

    seeded = _run(workload, tmp_path, "save")
    assert vars(seeded.stats) == vars(cold.stats), \
        "capturing translations for the store perturbed the run"
    persisted = seeded.vm.telemetry.host_summary()["persist"]
    assert persisted["records_saved"] == cold.stats.fragments_created

    warm = _run(workload, tmp_path, "load")
    assert vars(warm.stats) == vars(cold.stats), \
        "a store-restored run diverged from the cold baseline"
    stats = warm.vm.telemetry.host_summary()["persist"]
    assert stats["warm_hits"] == cold.stats.fragments_created
    assert stats["warm_misses"] == 0
    assert stats["chain_mismatches"] == 0
    assert stats["corrupt_records"] == 0


@pytest.mark.parametrize("workload", ["gzip", "vortex"])
def test_warm_telemetry_matches_cold(workload, tmp_path):
    # beyond VMStats: the deterministic telemetry summary (counters,
    # events, hot fragments) must be warm/cold identical too, since
    # cached run summaries are built from it
    cold = _run(workload)
    _run(workload, tmp_path, "save")
    warm = _run(workload, tmp_path, "load")
    assert warm.vm.telemetry.summary() == cold.vm.telemetry.summary()


def _instr_fields(instr):
    return {name: getattr(instr, name) for name in type(instr).__slots__}


def test_warm_run_reexecutes_same_code(tmp_path):
    # the restored fragments are not just statistically equivalent —
    # the translated code cache ends up instruction-identical
    cold = _run("gzip")
    _run("gzip", tmp_path, "save")
    warm = _run("gzip", tmp_path, "load")
    cold_frags = {f.entry_vpc: [_instr_fields(i) for i in f.body]
                  for f in cold.tcache.fragments}
    warm_frags = {f.entry_vpc: [_instr_fields(i) for i in f.body]
                  for f in warm.tcache.fragments}
    assert warm_frags == cold_frags
