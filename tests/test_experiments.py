"""Experiment driver tests: each figure/table runs and its paper-shape
claims hold on a representative subset of workloads."""

import pytest

from repro.harness.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    overhead,
    table2,
)

BUDGET = 60_000
FAST = ("gzip", "mcf")
INDIRECT = ("eon", "perlbmk")


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(workloads=FAST + INDIRECT, budget=BUDGET)

    def test_renders(self, result):
        text = result.render()
        assert "no_pred" in text and "Avg." in text

    def test_no_pred_worst_on_average(self, result):
        avg = result.row_for("Avg.")
        original, no_pred, sw_no_ras, sw_ras = avg[1:5]
        assert no_pred > sw_no_ras
        assert no_pred > original

    def test_ras_best_of_translated(self, result):
        avg = result.row_for("Avg.")
        assert avg[4] <= avg[3]  # sw_pred.ras <= sw_pred.no_ras


class TestFig5:
    def test_indirect_workloads_expand_more(self):
        result = fig5.run(workloads=("gzip", "perlbmk"), budget=BUDGET)
        assert result.row_for("perlbmk")[1] > result.row_for("gzip")[1]
        assert result.row_for("gzip")[1] >= 1.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(workloads=("gcc", "parser"), budget=BUDGET)

    def test_ras_helps_original(self, result):
        for name in ("gcc", "parser"):
            row = result.row_for(name)
            assert row[2] >= row[1] * 0.95  # orig.ras >= orig.no_ras-ish

    def test_straightened_ras_competitive(self, result):
        avg_ratio = sum(result.row_for(n)[4] / result.row_for(n)[2]
                        for n in ("gcc", "parser")) / 2
        assert avg_ratio > 0.8   # paper: "about the same level"


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(workloads=FAST, budget=BUDGET)

    def test_percentages_sum_to_hundred(self, result):
        for name in FAST:
            row = result.row_for(name)
            assert sum(row[1:9]) == pytest.approx(100.0, abs=0.1)

    def test_basic_global_exceeds_modified(self, result):
        for name in FAST:
            row = result.row_for(name)
            modified_global, basic_global = row[9], row[10]
            assert basic_global >= modified_global

    def test_locals_exist(self, result):
        for name in FAST:
            row = result.row_for(name)
            assert row[2] > 0  # some local values


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(workloads=FAST, budget=BUDGET)

    def test_modified_beats_basic(self, result):
        for name in FAST:
            row = result.row_for(name)
            assert row[4] > row[3]

    def test_native_ipc_highest_for_modified(self, result):
        for name in FAST:
            row = result.row_for(name)
            assert row[5] > row[4]

    def test_modified_within_reach_of_straightened(self, result):
        avg = result.row_for("Avg.")
        assert avg[4] > 0.6 * avg[2]  # paper: ~15% loss


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(workloads=FAST, budget=BUDGET)

    def test_four_pes_lag(self, result):
        avg = result.row_for("Avg.")
        base, four_pe = avg[2], avg[6]
        assert four_pe <= base

    def test_comm_latency_costs(self, result):
        avg = result.row_for("Avg.")
        assert avg[4] < avg[2]

    def test_small_dcache_minor(self, result):
        avg = result.row_for("Avg.")
        assert avg[3] > 0.85 * avg[2]  # paper: barely matters


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(workloads=FAST, budget=BUDGET)

    def test_modified_dominates_basic(self, result):
        for name in FAST:
            row = result.row_for(name)
            dyn_b, dyn_m, copy_b, copy_m, bytes_b, bytes_m = row[1:7]
            assert dyn_m < dyn_b
            assert copy_m < copy_b
            assert bytes_m < bytes_b * 1.05

    def test_expansions_above_one(self, result):
        for name in FAST:
            row = result.row_for(name)
            assert row[1] > 1.0 and row[2] > 1.0


class TestOverhead:
    def test_scale_and_breakdown(self):
        result = overhead.run(workloads=FAST, budget=BUDGET)
        avg = result.row_for("Avg.")
        assert 400 < avg[1] < 3000           # paper: ~1,125
        assert 0.10 < avg[2] < 0.35          # paper: ~20% tcache copying


class TestCharacterization:
    def test_mix_shapes(self):
        from repro.harness.experiments import characterization

        result = characterization.run(workloads=("gzip", "perlbmk",
                                                 "parser"), budget=30_000)
        gzip_row = result.row_for("gzip")
        perl_row = result.row_for("perlbmk")
        parser_row = result.row_for("parser")
        # indirect% column: perlbmk is the indirect-heavy one
        assert perl_row[6] > gzip_row[6]
        # call+ret%: parser is the recursion-heavy one
        assert parser_row[5] > gzip_row[5]
        # every workload captured some superblocks
        for row in (gzip_row, perl_row, parser_row):
            assert row[7] > 0
