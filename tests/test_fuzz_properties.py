"""Property-based codec tests fed by the fuzz generator.

Hypothesis drives the generator's own instruction emitter (seeded
through :class:`~repro.utils.rng.Xorshift64`, so shrinking works on the
seed) through both binary codecs:

* every V-ISA instruction the generator can emit — including boundary
  immediates — must round-trip ``decode(encode(x)) == x``;
* register-form operate words with any SBZ bit (15:13) set must be
  *rejected* by the decoder, never silently accepted;
* every I-ISA instruction produced by actually translating a generated
  program must round-trip through the I-ISA codec field-for-field.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

import pytest

from repro.fuzz.gen import generate, random_instruction
from repro.fuzz.oracle import oracle_config
from repro.ildp_isa.encoding import (
    decode_iinstr,
    encode_iinstr,
    iinstr_fields,
)
from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format
from repro.utils.rng import Xorshift64
from repro.vm.system import CoDesignedVM

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])
_SLOW_SETTINGS = settings(max_examples=6, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


class TestVisaRoundtrip:
    @_SETTINGS
    @given(st.integers(min_value=1, max_value=2**63))
    def test_generated_instructions_roundtrip(self, seed):
        rng = Xorshift64(seed)
        for _ in range(40):
            instr = random_instruction(rng)
            word = encode(instr)
            assert 0 <= word < (1 << 32)
            again = decode(word)
            assert again == instr, (instr, again)
            assert encode(again) == word

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=2**63),
           st.sampled_from((13, 14, 15)))
    def test_sbz_bits_rejected(self, seed, bit):
        """Register-form operate words keep bits 15:13 zero; a word with
        any of them set must not decode."""
        rng = Xorshift64(seed)
        instr = None
        while instr is None or instr.fmt is not Format.OPERATE \
                or instr.islit:
            instr = random_instruction(rng)
        word = encode(instr) | (1 << bit)
        with pytest.raises(EncodingError):
            decode(word)

    def test_boundary_literals_roundtrip(self):
        for imm in (0, 1, 127, 128, 255):
            instr = Instruction("addq", ra=1, rc=2, imm=imm, islit=True)
            assert decode(encode(instr)) == instr

    def test_boundary_displacements_roundtrip(self):
        for imm in (-32768, -1, 0, 32767):
            instr = Instruction("ldq", ra=1, rb=2, imm=imm)
            assert decode(encode(instr)) == instr
        for imm in (-(1 << 20), (1 << 20) - 1):
            instr = Instruction("bne", ra=1, imm=imm)
            assert decode(encode(instr)) == instr


class TestIisaRoundtrip:
    @_SLOW_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31))
    def test_translated_fragments_roundtrip(self, seed):
        """Translate a generated program and round-trip every I-ISA
        instruction the translator actually produced."""
        vm = CoDesignedVM(generate(seed, 0, max_insns=20).to_program(),
                          oracle_config())
        try:
            vm.run(max_v_instructions=100_000)
        except Exception:
            pass    # oracle tests own correctness; codec coverage here
        checked = 0
        for fragment in vm.tcache.fragments:
            for instr in fragment.body:
                word = encode_iinstr(instr)
                again = decode_iinstr(word)
                assert iinstr_fields(again) == iinstr_fields(instr)
                assert encode_iinstr(again) == word
                checked += 1
        assert checked > 0, "no fragment translated; nothing checked"
