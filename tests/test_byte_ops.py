"""Tests for the Alpha byte-manipulation families (EXT/INS/MSK).

These are the primitives Alpha string and unaligned-access code is built
from: extract bytes at a byte offset, insert a value at a byte offset, and
mask bytes out at a byte offset.
"""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.interp import Interpreter
from repro.isa.semantics import ALU_OPS
from repro.utils.bitops import MASK64

u64 = st.integers(min_value=0, max_value=MASK64)
offsets = st.integers(min_value=0, max_value=7)

VALUE = 0x8877665544332211


class TestExtract:
    def test_extbl(self):
        assert ALU_OPS["extbl"](VALUE, 0) == 0x11
        assert ALU_OPS["extbl"](VALUE, 3) == 0x44
        assert ALU_OPS["extbl"](VALUE, 7) == 0x88

    def test_extwl(self):
        assert ALU_OPS["extwl"](VALUE, 0) == 0x2211
        assert ALU_OPS["extwl"](VALUE, 2) == 0x4433

    def test_extll(self):
        assert ALU_OPS["extll"](VALUE, 0) == 0x44332211
        assert ALU_OPS["extll"](VALUE, 4) == 0x88776655

    def test_extql(self):
        assert ALU_OPS["extql"](VALUE, 0) == VALUE
        assert ALU_OPS["extql"](VALUE, 4) == 0x88776655

    def test_offset_uses_low_three_bits(self):
        assert ALU_OPS["extbl"](VALUE, 8) == 0x11  # 8 & 7 == 0

    @given(u64, offsets)
    def test_extbl_matches_shift(self, a, offset):
        assert ALU_OPS["extbl"](a, offset) == (a >> (8 * offset)) & 0xFF


class TestInsert:
    def test_insbl(self):
        assert ALU_OPS["insbl"](0xAB, 0) == 0xAB
        assert ALU_OPS["insbl"](0xAB, 3) == 0xAB000000

    def test_inswl_truncates_at_top(self):
        assert ALU_OPS["inswl"](0xBEEF, 7) == 0xEF00000000000000

    def test_insql(self):
        assert ALU_OPS["insql"](VALUE, 0) == VALUE

    @given(u64, offsets)
    def test_insert_fits_in_64_bits(self, a, offset):
        for op in ("insbl", "inswl", "insll", "insql"):
            assert 0 <= ALU_OPS[op](a, offset) <= MASK64


class TestMask:
    def test_mskbl(self):
        assert ALU_OPS["mskbl"](VALUE, 0) == 0x8877665544332200
        assert ALU_OPS["mskbl"](VALUE, 7) == 0x0077665544332211

    def test_mskql_clears_everything_at_zero(self):
        assert ALU_OPS["mskql"](VALUE, 0) == 0

    @given(u64, offsets)
    def test_mask_insert_compose(self, a, offset):
        """msk then ins at the same offset replaces the byte exactly."""
        cleared = ALU_OPS["mskbl"](a, offset)
        inserted = ALU_OPS["insbl"](0xCC, offset)
        combined = cleared | inserted
        assert ALU_OPS["extbl"](combined, offset) == 0xCC
        # all other bytes intact
        for other in range(8):
            if other != offset:
                assert ALU_OPS["extbl"](combined, other) == \
                    ALU_OPS["extbl"](a, other)


class TestEndToEnd:
    def test_byte_swap_program(self):
        """Swap two bytes of a quadword using ext/ins/msk, through the
        whole assemble-interpret pipeline."""
        interp = Interpreter(assemble("""
_start: la   r1, var
        ldq  r2, 0(r1)
        extbl r2, 0, r3       ; low byte
        extbl r2, 1, r4       ; second byte
        mskbl r2, 0, r2
        mskbl r2, 1, r2
        insbl r3, 1, r5
        bis  r2, r5, r2
        insbl r4, 0, r5
        bis  r2, r5, r2
        stq  r2, 0(r1)
        call_pal halt
        .data
        .align 8
var:    .quad 0x1122334455667788
"""))
        interp.run()
        address = interp.program.symbols["var"]
        assert interp.program.memory.load(address, 8) == \
            0x1122334455668877

    def test_translated_byte_ops_cosimulate(self):
        from repro.ildp_isa.opcodes import IFormat
        from tests.conftest import assert_cosim_equivalent

        source = """
_start: li r1, 90
        la r2, var
loop:   ldq r3, 0(r2)
        and r1, 7, r4
        extbl r3, r4, r5
        addq r5, 1, r5
        mskbl r3, r4, r3
        insbl r5, r4, r6
        bis r3, r6, r3
        stq r3, 0(r2)
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
        .data
        .align 8
var:    .quad 0x0102030405060708
"""
        for fmt in (IFormat.BASIC, IFormat.MODIFIED):
            from repro.vm import VMConfig

            assert_cosim_equivalent(source, VMConfig(fmt=fmt))
