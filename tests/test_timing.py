"""Timing model tests on hand-built synthetic traces."""

import pytest

from repro.uarch.config import MachineConfig, SUPERSCALAR, ildp_config
from repro.uarch.ildp import ILDPModel
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.events import TraceRecord


def _wrap(addr):
    # keep synthetic code footprints loop-sized so cold I-cache misses do
    # not dominate (real traces revisit hot fragments)
    return 0x1000 + (addr - 0x1000) % 2048


def alu(addr, srcs=(), dst=None, acc=None, acc_read=False,
        strand_start=False):
    return TraceRecord(_wrap(addr), 4, "int", srcs=srcs, dst=dst, acc=acc,
                       acc_read=acc_read, acc_write=acc is not None,
                       strand_start=strand_start, v_weight=1)


def load(addr, mem_addr, srcs=(), dst=None, acc=None):
    return TraceRecord(_wrap(addr), 4, "load", srcs=srcs, dst=dst, acc=acc,
                       acc_write=acc is not None, mem_addr=mem_addr,
                       v_weight=1)


def independent_trace(n):
    return [alu(0x1000 + 4 * i, dst=None) for i in range(n)]


def dependent_trace(n):
    return [alu(0x1000 + 4 * i, srcs=(1,), dst=1) for i in range(n)]


class TestSuperscalar:
    def test_independent_instructions_reach_width(self):
        result = SuperscalarModel(SUPERSCALAR).run(independent_trace(40000))
        assert result.ipc > 3.0   # 4-wide machine, no dependences

    def test_dependence_chain_serialises(self):
        result = SuperscalarModel(SUPERSCALAR).run(dependent_trace(4000))
        assert result.ipc < 1.1   # one instruction per cycle at best

    def test_ilp_between_extremes(self):
        # two interleaved chains: ~2 IPC
        trace = []
        for i in range(20000):
            trace.append(alu(0x1000 + 8 * i, srcs=(1,), dst=1))
            trace.append(alu(0x1004 + 8 * i, srcs=(2,), dst=2))
        result = SuperscalarModel(SUPERSCALAR).run(trace)
        assert 1.5 < result.ipc < 2.5

    def test_load_latency_on_consumers(self):
        # a serial pointer-chase (load feeding the next load's address) is
        # slower than an equally serial ALU chain: 2-cycle hits vs 1-cycle
        chase = [load(0x1000 + 4 * i, 0x100000, srcs=(1,), dst=1)
                 for i in range(10000)]
        load_result = SuperscalarModel(SUPERSCALAR).run(chase)
        alu_result = SuperscalarModel(SUPERSCALAR).run(
            dependent_trace(10000))
        assert load_result.ipc < 0.75 * alu_result.ipc

    def test_mispredict_penalty(self):
        from repro.utils.rng import Xorshift64

        rng = Xorshift64(seed=11)
        random_dir = []
        for _ in range(4000):
            taken = bool(rng.next_u64() & 1)
            random_dir.append(TraceRecord(
                0x1000, 4, "branch", btype="cond", taken=taken,
                target=0x2000 if taken else None, v_weight=1))
        bad = SuperscalarModel(MachineConfig("t")).run(random_dir)
        always = [TraceRecord(0x1000, 4, "branch", btype="cond",
                              taken=True, target=0x2000, v_weight=1)
                  for _ in range(4000)]
        good = SuperscalarModel(MachineConfig("t")).run(always)
        assert bad.ipc < 0.7 * good.ipc

    def test_result_fields(self):
        result = SuperscalarModel(SUPERSCALAR).run(independent_trace(100))
        assert result.instructions == 100
        assert result.v_instructions == 100
        assert result.cycles > 0
        assert result.native_ipc == pytest.approx(result.ipc)


class TestILDP:
    def test_single_strand_serialises(self):
        trace = [alu(0x1000 + 4 * i, acc=0, acc_read=i > 0,
                     strand_start=i == 0) for i in range(2000)]
        result = ILDPModel(ildp_config(8, 0)).run(trace)
        assert result.ipc < 1.1

    def test_parallel_strands_scale(self):
        trace = []
        for i in range(10000):
            for acc in range(4):
                trace.append(alu(0x1000 + 16 * i + 4 * acc, acc=acc,
                                 acc_read=i > 0, strand_start=i == 0))
        result = ILDPModel(ildp_config(8, 0)).run(trace)
        assert result.ipc > 2.5

    def test_communication_latency_costs(self):
        # strand 1 consumes a GPR produced by strand 0 every step
        def build():
            trace = []
            for i in range(1000):
                trace.append(alu(0x1000 + 8 * i, acc=0, dst=1,
                                 acc_read=False, strand_start=True))
                trace.append(alu(0x1004 + 8 * i, srcs=(1,), acc=1,
                                 acc_read=False, strand_start=True))
            return trace

        fast = ILDPModel(ildp_config(8, 0)).run(build())
        slow = ILDPModel(ildp_config(8, 2)).run(build())
        assert slow.cycles >= fast.cycles

    def test_fewer_pes_hurt_on_real_trace(self):
        """Fig. 9's 4-vs-8 PE gap: FIFO conflicts and head-of-line
        blocking in real traces (synthetic all-serial traces cannot show
        it, because their critical path is a single strand)."""
        from repro.harness.runner import run_vm
        from repro.vm.config import VMConfig
        from repro.ildp_isa.opcodes import IFormat

        result = run_vm("vpr", VMConfig(fmt=IFormat.MODIFIED),
                        budget=40_000)
        wide = ILDPModel(ildp_config(8, 0)).run(result.trace)
        narrow = ILDPModel(ildp_config(4, 0)).run(result.trace)
        assert narrow.cycles > 1.1 * wide.cycles

    def test_strand_start_renames_to_producer_pe(self):
        model = ILDPModel(ildp_config(8, 2))
        # producer in some PE writes r5; a strand start reading r5 must
        # steer to the same PE (no communication penalty)
        model.step(alu(0x1000, acc=0, dst=5, strand_start=True))
        producer_pe = model._reg_ready[5][1]
        model.step(alu(0x1004, srcs=(5,), acc=1, strand_start=True))
        assert model._acc_pe[1] == producer_pe

    def test_requires_pe_config(self):
        with pytest.raises(ValueError):
            ILDPModel(SUPERSCALAR)

    def test_gpr_only_instructions_steered(self):
        trace = [TraceRecord(0x1000 + 4 * i, 4, "int", srcs=(), dst=None,
                             v_weight=1) for i in range(100)]
        result = ILDPModel(ildp_config(4, 0)).run(trace)
        assert result.cycles > 0


class TestMemoryDependence:
    def test_store_to_load_same_block_serialises(self):
        def build(same_block):
            trace = []
            for i in range(3000):
                store_addr = 0x100000
                load_addr = 0x100000 if same_block else 0x100800
                trace.append(TraceRecord(_wrap(0x1000 + 8 * i), 4, "store",
                                         mem_addr=store_addr, v_weight=1))
                trace.append(TraceRecord(_wrap(0x1004 + 8 * i), 4, "load",
                                         mem_addr=load_addr, dst=None,
                                         v_weight=1))
            return trace

        conflicting = SuperscalarModel(SUPERSCALAR).run(build(True))
        disjoint = SuperscalarModel(SUPERSCALAR).run(build(False))
        assert conflicting.cycles > disjoint.cycles

    def test_ildp_honours_memory_dependence(self):
        def build(same_block):
            trace = []
            for i in range(3000):
                load_addr = 0x100000 if same_block else 0x100800
                trace.append(TraceRecord(_wrap(0x1000 + 8 * i), 4, "store",
                                         acc=0, acc_write=False,
                                         strand_start=i == 0,
                                         mem_addr=0x100000, v_weight=1))
                trace.append(TraceRecord(_wrap(0x1004 + 8 * i), 4, "load",
                                         acc=1, acc_write=True,
                                         strand_start=i == 0,
                                         mem_addr=load_addr, v_weight=1))
            return trace

        conflicting = ILDPModel(ildp_config(8, 0)).run(build(True))
        disjoint = ILDPModel(ildp_config(8, 0)).run(build(False))
        assert conflicting.cycles >= disjoint.cycles
