"""Edge-case tests for the fragment executor and VM mode switching."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm import CoDesignedVM, VMConfig
from tests.conftest import assert_cosim_equivalent

DEEP_RECURSION = """
_start: br main
down:   lda  r30, -16(r30)
        stq  r26, 0(r30)
        beq  r16, base
        subq r16, 1, r16
        bsr  r26, down
        addq r0, 1, r0
        ldq  r26, 0(r30)
        lda  r30, 16(r30)
        ret
base:   clr  r0
        ldq  r26, 0(r30)
        lda  r30, 16(r30)
        ret
main:   li   r15, 120
loop:   li   r16, 25
        bsr  r26, down
        subq r15, 1, r15
        bne  r15, loop
        and  r0, 0x7f, r16
        call_pal putc
        call_pal halt
"""


class TestRASDepth:
    def test_recursion_deeper_than_ras_still_correct(self):
        """25-deep recursion overflows a 16-entry dual RAS: predictions
        miss but architecture must be exact."""
        vm = assert_cosim_equivalent(
            DEEP_RECURSION, VMConfig(fmt=IFormat.MODIFIED,
                                     policy=ChainingPolicy.SW_PRED_RAS))
        assert vm.stats.ras_misses > 0   # overflow really happened
        assert vm.stats.ras_hits > 0     # shallow returns still hit

    def test_tiny_ras_depth(self):
        assert_cosim_equivalent(
            DEEP_RECURSION, VMConfig(fmt=IFormat.MODIFIED,
                                     policy=ChainingPolicy.SW_PRED_RAS,
                                     ras_depth=2))

    def test_ras_depth_one(self):
        assert_cosim_equivalent(
            DEEP_RECURSION, VMConfig(fmt=IFormat.BASIC,
                                     policy=ChainingPolicy.SW_PRED_RAS,
                                     ras_depth=1))


class TestPutcInTranslatedCode:
    def test_putc_inside_hot_loop(self):
        source = """
_start: li r1, 70
loop:   and r1, 0x7f, r16
        call_pal putc
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
"""
        vm = assert_cosim_equivalent(source,
                                     VMConfig(fmt=IFormat.MODIFIED))
        assert len(vm.interpreter.console) == 70
        # the loop was hot: most putcs ran from translated code
        assert vm.stats.iop_counts.get(
            __import__("repro.ildp_isa.opcodes",
                       fromlist=["IOp"]).IOp.PUTC, 0) > 0


class TestModeSwitching:
    def test_alternating_hot_and_cold_paths(self):
        # a hot loop calling a rarely-executed cold helper: execution
        # keeps bouncing between translated code and the interpreter
        source = """
_start: li r1, 200
        clr r2
loop:   and r1, 63, r3
        bne r3, common
        addq r2, 100, r2     ; cold path, executed every 64th iteration
        sll r2, 1, r2
        srl r2, 1, r2
        xor r2, r3, r2
common: addq r2, 1, r2
        subq r1, 1, r1
        bne r1, loop
        and r2, 0x7f, r16
        call_pal putc
        call_pal halt
"""
        for fmt in (IFormat.BASIC, IFormat.MODIFIED):
            vm = assert_cosim_equivalent(source, VMConfig(fmt=fmt))
            assert vm.stats.fragments_created >= 1
            assert vm.stats.interpreted_instructions > 0

    def test_fragment_to_fragment_chains_stay_internal(self):
        source = """
_start: li r9, 300
outer:  li r1, 20
inner:  subq r1, 1, r1
        addq r2, r1, r2
        bne r1, inner
        subq r9, 1, r9
        bne r9, outer
        call_pal halt
"""
        vm = assert_cosim_equivalent(source,
                                     VMConfig(fmt=IFormat.MODIFIED))
        # once both loops are translated and patched, the VM should barely
        # re-enter interpretation: the chained fragments run back-to-back
        stats = vm.stats
        assert stats.fragments_created >= 2
        assert stats.source_instructions_executed > \
            stats.interpreted_instructions


class TestInterpretationOverheadModel:
    def test_near_paper_thousand(self):
        """Paper Section 4.1: threshold 50 x ~20 instructions ~= 1,000
        interpreter instructions per hot source instruction."""
        from repro.harness.runner import run_vm

        result = run_vm("gzip", budget=80_000, collect_trace=False)
        overhead = result.stats.interpretation_overhead()
        assert 500 < overhead < 2500
