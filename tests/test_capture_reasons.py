"""Superblock capture: every fragment-ending condition of Section 3.1."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.translator.superblock import EndReason
from repro.vm import CoDesignedVM, VMConfig


def reasons_for(source, **config):
    vm = CoDesignedVM(assemble(source),
                      VMConfig(fmt=IFormat.MODIFIED, **config))
    vm.run(max_v_instructions=500_000)
    return vm, [f.superblock.end_reason for f in vm.tcache.fragments]


class TestEndingConditions:
    def test_backward_taken_branch(self):
        _vm, reasons = reasons_for("""
_start: li r1, 200
loop:   subq r1, 1, r1
        bne r1, loop
        call_pal halt
""")
        assert EndReason.BACKWARD_TAKEN_BRANCH in reasons

    def test_indirect_jump(self):
        _vm, reasons = reasons_for("""
_start: li r1, 100
        la r2, fp
loop:   ldq r27, 0(r2)
        jsr r26, (r27)
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
f:      ret
        .data
fp:     .quad f
""")
        assert EndReason.INDIRECT_JUMP in reasons

    def test_max_size(self):
        body = "\n".join(f"        addq r2, {i % 7}, r2"
                         for i in range(30))
        _vm, reasons = reasons_for(f"""
_start: li r1, 120
loop:
{body}
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
""", max_superblock=10)
        assert EndReason.MAX_SIZE in reasons

    def test_cycle_detection(self):
        # a loop whose back edge is an unconditional BR (straightened
        # away): the captured path re-reaches its own start.  The loop
        # head is made a trace-start candidate by entering it through an
        # indirect jump once.
        _vm, reasons = reasons_for("""
_start: la  r27, lp
        ldq r27, 0(r27)
        li  r1, 200
        clr r3
        jmp r31, (r27)
loop:   addq r3, r1, r3
        xor  r3, r1, r3
        subq r1, 1, r1
        beq  r1, done
        br   loop
done:   call_pal halt
        .data
lp:     .quad loop
""")
        assert EndReason.CYCLE in reasons

    def test_existing_fragment_stops_capture(self):
        vm, reasons = reasons_for("""
_start: li r9, 120
outer:  li r1, 80
inner:  subq r1, 1, r1
        addq r2, r1, r2
        bne r1, inner
        subq r9, 1, r9
        bne r9, outer
        call_pal halt
""")
        assert EndReason.EXISTING_FRAGMENT in reasons or \
            EndReason.BACKWARD_TAKEN_BRANCH in reasons
        # the chained inner/outer structure must have >= 2 fragments
        assert vm.stats.fragments_created >= 2

    def test_trap_instruction_halt(self):
        _vm, reasons = reasons_for("""
_start: li r1, 60
loop:   subq r1, 1, r1
        bne r1, loop
        call_pal halt
""", threshold=5)
        # with a low threshold the fall-through path containing the halt
        # gets translated as a TRAP_INSTRUCTION-terminated block
        assert EndReason.BACKWARD_TAKEN_BRANCH in reasons

    def test_stop_at_existing_disabled(self):
        source = """
_start: li r9, 120
outer:  li r1, 80
inner:  subq r1, 1, r1
        addq r2, r1, r2
        bne r1, inner
        subq r9, 1, r9
        bne r9, outer
        call_pal halt
"""
        _vm, reasons = reasons_for(source,
                                   stop_at_existing_fragment=False)
        assert EndReason.EXISTING_FRAGMENT not in reasons
