"""Tests for the assembly source lexer/parser."""

import pytest

from repro.asm.source import (
    AsmSyntaxError,
    Directive,
    Label,
    Statement,
    parse_source,
    parse_string_literal,
)


class TestParseSource:
    def test_label_then_statement_same_line(self):
        items = parse_source("loop: addq r1, r2, r3")
        assert isinstance(items[0], Label) and items[0].name == "loop"
        assert isinstance(items[1], Statement)
        assert items[1].mnemonic == "addq"
        assert items[1].operands == ["r1", "r2", "r3"]

    def test_multiple_labels_one_line(self):
        items = parse_source("a: b: nop")
        assert [item.name for item in items[:2]] == ["a", "b"]

    def test_directive(self):
        items = parse_source(".quad 1, 2, 3")
        assert isinstance(items[0], Directive)
        assert items[0].name == ".quad"
        assert items[0].args == ["1", "2", "3"]

    def test_comments_stripped(self):
        items = parse_source("nop ; comment, with, commas\n# full line")
        assert len(items) == 1
        assert items[0].operands == []

    def test_semicolon_inside_string_kept(self):
        items = parse_source('.ascii "a;b"')
        assert items[0].args == ['"a;b"']

    def test_comma_inside_string_kept(self):
        items = parse_source('.ascii "a,b"')
        assert items[0].args == ['"a,b"']

    def test_line_numbers(self):
        items = parse_source("\n\nnop\n")
        assert items[0].lineno == 3

    def test_empty_source(self):
        assert parse_source("") == []

    def test_mnemonic_lowercased(self):
        items = parse_source("ADDQ r1, r2, r3")
        assert items[0].mnemonic == "addq"

    def test_memory_operand_not_split(self):
        items = parse_source("ldq r1, 8(r2)")
        assert items[0].operands == ["r1", "8(r2)"]


class TestStringLiterals:
    def test_escapes(self):
        assert parse_string_literal('"a\\nb"', 1) == "a\nb"
        assert parse_string_literal('"tab\\there"', 1) == "tab\there"
        assert parse_string_literal('"nul\\0"', 1) == "nul\0"
        assert parse_string_literal('"q\\"q"', 1) == 'q"q'
        assert parse_string_literal('"back\\\\slash"', 1) == "back\\slash"

    def test_not_a_string_raises(self):
        with pytest.raises(AsmSyntaxError):
            parse_string_literal("unquoted", 7)

    def test_error_carries_lineno(self):
        with pytest.raises(AsmSyntaxError, match="line 7"):
            parse_string_literal("unquoted", 7)
