"""The ``repro serve`` server, driven in-process over a real socket.

A :class:`FragmentServer` runs ``asyncio`` in a background thread
against a throwaway unix socket; the blocking client from
:mod:`repro.serve.client` drives it exactly as the CLI does.  Covers the
protocol surface (ping/run/stats/shutdown, malformed requests), the
submission-time dedup that the long batch window makes deterministic,
warm-start across server generations sharing one store directory, and
chaos survival under a seeded persist fault schedule.
"""

import asyncio
import io
import os
import threading
import time

import pytest

from repro.harness.parallel import PointRunner
from repro.persist.store import (
    ENV_PERSIST_DIR,
    ENV_PERSIST_FAULTS,
    ENV_PERSIST_MODE,
)
from repro.serve.client import ServeError, request, run_many
from repro.serve.server import FragmentServer

BUDGET = 5_000
#: Wide enough that concurrent duplicates always land in one batch.
BATCH_WINDOW = 0.2


class ServerUnderTest:
    """One in-thread server generation bound to a throwaway socket."""

    def __init__(self, socket_path, batch_window=BATCH_WINDOW,
                 **server_kwargs):
        self.socket_path = str(socket_path)
        self.runner = PointRunner(workers=1, cache=None)
        self.server = FragmentServer(self.runner, self.socket_path,
                                     batch_window=batch_window,
                                     out=io.StringIO(), **server_kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve()), daemon=True)

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if os.path.exists(self.socket_path):
                try:
                    if request(self.socket_path, {"op": "ping"},
                               timeout=5).get("ok"):
                        return self
                except ServeError:
                    pass
            time.sleep(0.01)
        raise RuntimeError("server did not come up")

    def __exit__(self, *exc):
        try:
            request(self.socket_path, {"op": "shutdown"}, timeout=5)
        except ServeError:
            pass
        self.thread.join(timeout=10)


def _run_payload(workload, **extra):
    payload = {"op": "run", "workload": workload, "budget": BUDGET}
    payload.update(extra)
    return payload


@pytest.fixture
def sock(tmp_path):
    return str(tmp_path / "serve.sock")


class TestProtocol:
    def test_ping(self, sock):
        with ServerUnderTest(sock):
            assert request(sock, {"op": "ping"}) == {"ok": True,
                                                     "op": "ping"}

    def test_run_returns_summary(self, sock):
        with ServerUnderTest(sock):
            response = request(sock, _run_payload("gzip"))
        assert response["ok"]
        summary = response["summary"]
        assert summary["workload"] == "gzip"
        assert summary["committed"] > 0
        assert summary["stats"]["fragments"] > 0
        assert "telemetry" in summary

    def test_run_with_config_overrides(self, sock):
        with ServerUnderTest(sock):
            default = request(sock, _run_payload("gzip"), timeout=120)
            cold_only = request(sock, _run_payload(
                "gzip", config={"threshold": 10**9}), timeout=120)
        assert default["ok"] and cold_only["ok"]
        # an unreachable hot threshold keeps everything interpreted, so
        # the override demonstrably reached the VM
        assert default["summary"]["stats"]["fragments"] > 0
        assert cold_only["summary"]["stats"]["fragments"] == 0

    def test_bad_requests_are_answered_not_fatal(self, sock):
        with ServerUnderTest(sock) as under_test:
            bad = [
                request(sock, {"op": "run", "workload": "nope"}),
                request(sock, {"op": "run", "workload": "gzip",
                               "budget": -4}),
                request(sock, {"op": "run", "workload": "gzip",
                               "config": {"bogus_knob": 1}}),
                request(sock, {"op": "frobnicate"}),
                request(sock, [1, 2, 3]),
            ]
            stats = request(sock, {"op": "stats"})
            assert all(not response["ok"] for response in bad)
            assert all("error" in response for response in bad)
            assert stats["requests"]["bad_requests"] == len(bad)
            # the server is still healthy after every rejection
            assert request(sock, {"op": "ping"})["ok"]
            assert under_test.runner.report.executed == 0

    def test_malformed_json_line(self, sock):
        import json
        import socket as socketlib

        with ServerUnderTest(sock):
            with socketlib.socket(socketlib.AF_UNIX,
                                  socketlib.SOCK_STREAM) as raw:
                raw.settimeout(5)
                raw.connect(sock)
                raw.sendall(b"this is not json\n")
                buffer = b""
                while not buffer.endswith(b"\n"):
                    buffer += raw.recv(1 << 16)
        response = json.loads(buffer)
        assert response == {"ok": False, "error": "malformed JSON request"}

    def test_stats_shape(self, sock):
        with ServerUnderTest(sock):
            request(sock, _run_payload("gzip"))
            stats = request(sock, {"op": "stats"})
        assert stats["ok"]
        assert stats["report"]["executed"] == 1
        assert stats["requests"]["runs_completed"] == 1
        assert stats["inflight"] == 0
        assert isinstance(stats["telemetry"], dict)

    def test_shutdown_stops_the_loop(self, sock):
        under_test = ServerUnderTest(sock).__enter__()
        response = request(sock, {"op": "shutdown"})
        assert response == {"ok": True, "op": "shutdown"}
        under_test.thread.join(timeout=10)
        assert not under_test.thread.is_alive()


class TestDedupAndBatching:
    def test_identical_inflight_requests_join(self, sock):
        with ServerUnderTest(sock) as under_test:
            payloads = [_run_payload("gzip")] * 4 + [_run_payload("mcf")]
            responses = run_many(sock, payloads, timeout=120)
            stats = request(sock, {"op": "stats"})
        assert all(response["ok"] for response in responses)
        # all four gzip responses carry the same summary
        summaries = [response["summary"] for response in responses[:4]]
        assert all(summary == summaries[0] for summary in summaries)
        assert stats["requests"]["dedup_joined"] == 3
        assert under_test.runner.report.executed == 2

    def test_distinct_configs_do_not_join(self, sock):
        with ServerUnderTest(sock) as under_test:
            payloads = [_run_payload("gzip"),
                        _run_payload("gzip",
                                     config={"n_accumulators": 2})]
            responses = run_many(sock, payloads, timeout=120)
            stats = request(sock, {"op": "stats"})
        assert all(response["ok"] for response in responses)
        assert stats["requests"].get("dedup_joined", 0) == 0
        assert under_test.runner.report.executed == 2

    def test_sequential_identical_requests_rerun(self, sock):
        # dedup is in-flight only — a second request after the first
        # completed is a fresh run (memoisation is the ResultCache's job)
        with ServerUnderTest(sock) as under_test:
            first = request(sock, _run_payload("gzip"), timeout=120)
            second = request(sock, _run_payload("gzip"), timeout=120)
            stats = request(sock, {"op": "stats"})
        assert first["summary"]["stats"] == second["summary"]["stats"]
        assert stats["requests"].get("dedup_joined", 0) == 0
        assert under_test.runner.report.executed == 2


class TestWarmStartAcrossGenerations:
    def test_restarted_server_answers_from_the_store(self, sock,
                                                     tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv(ENV_PERSIST_DIR, str(tmp_path / "store"))
        monkeypatch.setenv(ENV_PERSIST_MODE, "both")
        workloads = ["gzip", "mcf"]
        with ServerUnderTest(sock):
            responses = run_many(
                sock, [_run_payload(name) for name in workloads],
                timeout=120)
            cold = request(sock, {"op": "stats"})
        assert all(response["ok"] for response in responses)
        assert cold["persist"]["records_saved"] > 0
        assert cold["persist"].get("warm_hits", 0) == 0

        with ServerUnderTest(sock):
            responses = run_many(
                sock, [_run_payload(name) for name in workloads],
                timeout=120)
            warm = request(sock, {"op": "stats"})
        assert all(response["ok"] for response in responses)
        assert warm["persist"]["warm_hits"] > 0
        assert warm["persist"].get("warm_misses", 0) == 0
        assert warm["persist"].get("records_saved", 0) == 0

    def test_warm_and_cold_summaries_identical(self, sock, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv(ENV_PERSIST_DIR, str(tmp_path / "store"))
        monkeypatch.setenv(ENV_PERSIST_MODE, "both")
        with ServerUnderTest(sock):
            cold = request(sock, _run_payload("crafty"), timeout=120)
        with ServerUnderTest(sock):
            warm = request(sock, _run_payload("crafty"), timeout=120)
        # the host-side blocks differ (elapsed, persist counters); the
        # deterministic payload must not
        for block in ("stats", "telemetry", "evals"):
            assert cold["summary"].get(block) == warm["summary"].get(block)


class TestChaosSurvival:
    def test_seeded_persist_faults_never_fail_requests(self, sock,
                                                       tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv(ENV_PERSIST_DIR, str(tmp_path / "store"))
        monkeypatch.setenv(ENV_PERSIST_MODE, "both")
        monkeypatch.setenv(ENV_PERSIST_FAULTS,
                           "persist_load@every=2;persist_corrupt@every=3")
        workloads = ["gzip", "mcf", "crafty", "gzip", "mcf", "crafty"]
        with ServerUnderTest(sock):
            seed_responses = run_many(
                sock, [_run_payload(name) for name in workloads[:3]],
                timeout=120)
            chaos_responses = run_many(
                sock, [_run_payload(name) for name in workloads],
                timeout=120)
            stats = request(sock, {"op": "stats"})
        assert all(response["ok"] for response in seed_responses)
        assert all(response["ok"] for response in chaos_responses)
        assert stats["requests"].get("run_failures", 0) == 0
        assert stats["persist"]["faults_injected"] > 0
        # faulted loads degrade to cold translation, never to an error
        assert stats["persist"]["load_failures"] + \
            stats["persist"]["corrupt_records"] > 0
