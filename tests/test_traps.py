"""Precise-trap tests (Section 2.2): the VM must reconstruct exactly the
architected state a pure interpreter reaches at the same trap."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.interp import Interpreter
from repro.isa.semantics import Trap, TrapKind
from repro.vm import CoDesignedVM, VMConfig, VMTrap
from tests.conftest import ALL_FORMATS

#: A hot loop that eventually dereferences an unmapped address.  The
#: faulting load sits mid-fragment with a *local* value (r4) live across
#: it: under the basic format that value exists only in an accumulator at
#: the trap, exercising the PEI recovery map's hard case.  The pointer is
#: poisoned with a conditional move so no side exit forces a copy.
FAULTING_LOAD = """
_start: li r1, 90
        la r2, buf
        li r8, 0x700000
        clr r3
loop:   addq r3, r1, r4
        cmpeq r1, 21, r7
        cmovne r7, r8, r2
        ldq  r6, 0(r2)
        addq r4, r6, r3
        clr  r4
        subq r1, 1, r1
        bne  r1, loop
        call_pal halt
        .data
buf:    .quad 17
"""

GENTRAP_KERNEL = """
_start: li r1, 80
        clr r2
loop:   addq r2, r1, r2
        subq r1, 1, r1
        cmpeq r1, 10, r3
        bne  r3, boom
        bne  r1, loop
        call_pal halt
boom:   call_pal gentrap
        br   loop
"""

UNALIGNED_STORE = """
_start: li r1, 70
        la r2, buf
        clr r4
loop:   addq r4, r1, r4
        subq r1, 1, r1
        cmpeq r1, 15, r3
        beq  r3, okay
        lda  r2, 1(r2)
okay:   stq  r4, 0(r2)
        bne  r1, loop
        call_pal halt
        .data
        .align 8
buf:    .quad 0
"""


def reference_trap(source):
    """Interpret until the trap; returns (trap, precise state)."""
    interp = Interpreter(assemble(source))
    with pytest.raises(Trap) as excinfo:
        interp.run(max_instructions=1_000_000)
    return excinfo.value, interp.state


def vm_trap(source, fmt):
    vm = CoDesignedVM(assemble(source), VMConfig(fmt=fmt))
    with pytest.raises(VMTrap) as excinfo:
        vm.run(max_v_instructions=1_000_000)
    return excinfo.value, vm


class TestPreciseTraps:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_faulting_load_state_matches(self, fmt):
        ref_trap, ref_state = reference_trap(FAULTING_LOAD)
        trap, vm = vm_trap(FAULTING_LOAD, fmt)
        assert trap.trap.kind is TrapKind.ACCESS_VIOLATION
        assert trap.state.pc == ref_state.pc
        assert trap.state.regs == ref_state.regs, \
            trap.state.diff(ref_state)
        # the trap must have been raised from translated code, otherwise
        # this test exercises nothing
        assert vm.tcache.fragments

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_gentrap_state_matches(self, fmt):
        _ref_trap, ref_state = reference_trap(GENTRAP_KERNEL)
        trap, _vm = vm_trap(GENTRAP_KERNEL, fmt)
        assert trap.trap.kind is TrapKind.GENTRAP
        assert trap.state.pc == ref_state.pc
        assert trap.state.regs == ref_state.regs, \
            trap.state.diff(ref_state)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_unaligned_store_state_matches(self, fmt):
        _ref_trap, ref_state = reference_trap(UNALIGNED_STORE)
        trap, _vm = vm_trap(UNALIGNED_STORE, fmt)
        assert trap.trap.kind is TrapKind.UNALIGNED
        assert trap.state.pc == ref_state.pc
        assert trap.state.regs == ref_state.regs, \
            trap.state.diff(ref_state)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_memory_consistent_at_trap(self, fmt):
        source = UNALIGNED_STORE
        interp = Interpreter(assemble(source))
        with pytest.raises(Trap):
            interp.run(max_instructions=1_000_000)
        vm = CoDesignedVM(assemble(source), VMConfig(fmt=fmt))
        with pytest.raises(VMTrap):
            vm.run(max_v_instructions=1_000_000)
        base = vm.program.symbols["buf"]
        assert vm.program.memory.read_bytes(base, 16) == \
            interp.program.memory.read_bytes(base, 16)

    def test_trap_counted_in_stats(self):
        _trap, vm = vm_trap(FAULTING_LOAD, IFormat.BASIC)
        assert vm.stats.traps_delivered == 1

    def test_basic_recovery_uses_accumulators(self):
        """At least one PEI recovery map in the faulting fragment must name
        an accumulator — otherwise the basic format's hard case (values not
        yet copied) is not being exercised."""
        vm = CoDesignedVM(assemble(FAULTING_LOAD),
                          VMConfig(fmt=IFormat.BASIC))
        with pytest.raises(VMTrap):
            vm.run(max_v_instructions=1_000_000)
        acc_entries = [
            location
            for fragment in vm.tcache.fragments
            for _i, _vpc, recovery in fragment.pei_table
            if recovery
            for location in recovery.values()
            if location[0] == "acc"
        ]
        assert acc_entries


class TestPEIRecoveryError:
    def _fragment(self):
        from tests.conftest import FIG2_KERNEL

        vm = CoDesignedVM(assemble(FIG2_KERNEL), VMConfig())
        vm.run(max_v_instructions=500_000)
        return vm.tcache.fragments[0]

    def test_pei_index_mirrors_table(self):
        fragment = self._fragment()
        assert fragment.pei_index == \
            {row[0]: row for row in fragment.pei_table}

    def test_missing_entry_is_structured(self):
        from repro.vm.traps import PEIRecoveryError, reconstruct_state

        fragment = self._fragment()
        bogus = max(fragment.pei_index) + 1
        assert bogus not in fragment.pei_index
        with pytest.raises(PEIRecoveryError) as excinfo:
            reconstruct_state(fragment, bogus, [0] * 32, [0] * 4)
        err = excinfo.value
        assert err.fid == fragment.fid
        assert err.entry_vpc == fragment.entry_vpc
        assert err.body_index == bogus
        assert err.table_size == len(fragment.pei_table)
        assert f"f{fragment.fid}" in str(err)
