"""Differential chaos suite: fault-injected VMs must still be correct.

Every workload runs under several seeded fault schedules — translator
aborts, injected cache-capacity misses, silent fragment corruption — and
must converge bit-identically to the fault-free pure interpreter: same
final architected state, same console output, same committed-instruction
accounting.  Faults may change *how* the run gets there (more
interpretation, flushes, retranslations), never *where* it ends up.

The suite also pins the no-op parity contract: with ``faults=None`` the
VM holds the shared ``NULL_INJECTOR`` and its stats are bit-identical to
a run that never heard of fault injection.
"""

import functools

import pytest

from repro.faults.inject import NULL_INJECTOR
from repro.harness.runner import run_original, run_vm
from repro.vm.config import VMConfig
from repro.vm.system import BudgetExceeded
from repro.workloads import WORKLOAD_NAMES

#: Enough for every workload to halt naturally (see
#: tests/test_cosim_differential.py).
HALT_BUDGET = 200_000

#: The seeded fault schedules every workload must survive: repeated
#: translator aborts (backoff + blacklist), silent fragment corruption
#: (checksum detection + invalidation), and a mixed probabilistic plan
#: with an injected capacity miss (flush + retranslate).
SCHEDULES = {
    "translate": ("translate@every=2,times=6", 7),
    "corrupt": ("corrupt@every=2,times=4", 11),
    "mixed": ("translate@p=0.5,times=3;tcache_full@count=2,times=1;"
              "corrupt@p=0.25,times=2", 13),
}


@functools.lru_cache(maxsize=None)
def _reference(name):
    """Fault-free interpreter reference, computed once per workload."""
    trace, interp = run_original(name, budget=HALT_BUDGET)
    expected_committed = sum(record.v_weight for record in trace
                             if record.btype != "uncond")
    return interp, expected_committed


def _assert_converges(name, config):
    interp, expected_committed = _reference(name)
    result = run_vm(name, config, budget=HALT_BUDGET, collect_trace=False)
    vm = result.vm

    assert vm.halted, f"{name}: VM did not reach halt under faults"
    assert vm.state.pc == interp.state.pc
    assert vm.state.regs == interp.state.regs, \
        vm.state.diff(interp.state)
    assert vm.console_text() == interp.console_text()
    assert result.stats.committed_v_instructions() == expected_committed
    return result


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_faulted_vm_matches_interpreter(name, schedule):
    spec, seed = SCHEDULES[schedule]
    config = VMConfig(faults=spec, fault_seed=seed)
    result = _assert_converges(name, config)
    # the plan must actually have struck: a chaos suite that injects
    # nothing proves nothing
    assert result.vm.injector.total_injected() > 0


@pytest.mark.parametrize("name", ("gzip", "vortex", "gcc"))
@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_jit_chaos_matches_specialized(name, schedule):
    """Under identical seeded fault schedules the tier-2 jit engine must
    be ``VMStats``-bit-identical to the specialized engine: injections
    strike the same sites in the same order, corruption detection and
    chaining patches discard generated code without observable skew."""
    spec, seed = SCHEDULES[schedule]
    results = {}
    for engine in ("specialized", "jit"):
        config = VMConfig(faults=spec, fault_seed=seed,
                          exec_engine=engine, jit_threshold=2)
        results[engine] = run_vm(name, config, budget=HALT_BUDGET,
                                 collect_trace=False)
    jit, specialized = results["jit"], results["specialized"]
    assert jit.vm.halted and specialized.vm.halted
    assert jit.vm.injector.total_injected() > 0
    assert jit.vm.state.pc == specialized.vm.state.pc
    assert jit.vm.state.regs == specialized.vm.state.regs, \
        jit.vm.state.diff(specialized.vm.state)
    assert jit.vm.console_text() == specialized.vm.console_text()
    assert vars(jit.stats) == vars(specialized.stats)


@pytest.mark.parametrize("name", ("gzip", "crafty", "vortex"))
def test_capacity_bound_converges(name):
    """A genuinely bounded cache flushes and retranslates its way to the
    same answer (no injection involved — the real capacity path).

    100 bytes holds one or two fragments of any suite workload, so
    installs genuinely collide; vortex even carries one fragment larger
    than the whole cache, exercising the never-installable path."""
    config = VMConfig(tcache_capacity_bytes=100, flush_storm_window=0)
    result = _assert_converges(name, config)
    assert result.stats.tcache_capacity_flushes >= 1


def test_translate_faults_backoff_then_blacklist():
    """An always-failing entry PC is retried with backoff, then
    blacklisted to interpretation — and the run still converges."""
    config = VMConfig(faults="translate", translation_retry_limit=2)
    result = _assert_converges("gzip", config)
    stats = result.stats
    assert stats.translation_failures >= 2
    assert stats.translation_pcs_blacklisted >= 1
    assert result.vm.profiler.blacklisted_count() >= 1
    assert stats.fragments_created == 0    # nothing ever translated


def test_corrupt_fragments_detected_and_recovered():
    config = VMConfig(faults="corrupt@every=2,times=3", fault_seed=1)
    result = _assert_converges("gzip", config)
    assert result.stats.corrupt_fragments_detected >= 1
    # resilience() mirrors the counters render_lines/telemetry consume
    assert result.stats.resilience()["corrupt_fragments_detected"] == \
        result.stats.corrupt_fragments_detected


def test_flush_storm_suppressed():
    """With a huge storm window, back-to-back capacity flushes are
    vetoed and the colliding PCs degrade to interpretation instead."""
    config = VMConfig(tcache_capacity_bytes=100,
                      flush_storm_window=HALT_BUDGET)
    result = _assert_converges("crafty", config)
    assert result.stats.tcache_capacity_flushes == 1
    assert result.stats.flush_storms_suppressed >= 1


def test_budget_exceeded_carries_partial_stats():
    config = VMConfig(max_host_steps=100)
    with pytest.raises(BudgetExceeded) as excinfo:
        run_vm("gzip", config, budget=HALT_BUDGET, collect_trace=False)
    assert excinfo.value.host_steps == 100
    assert excinfo.value.stats.total_v_instructions() > 0


def test_watchdog_off_by_default():
    assert VMConfig().max_host_steps is None


class TestNoOpParity:
    def test_faultless_vm_holds_null_injector(self):
        result = run_vm("gzip", VMConfig(), budget=HALT_BUDGET,
                        collect_trace=False)
        assert result.vm.injector is NULL_INJECTOR

    def test_verification_alone_changes_no_stats(self):
        """Checksumming fragments on a fault-free run is pure overhead:
        every ``VMStats`` counter stays bit-identical to the baseline."""
        baseline = run_vm("gzip", VMConfig(), budget=HALT_BUDGET,
                          collect_trace=False)
        verified = run_vm("gzip", VMConfig(verify_fragments=True),
                          budget=HALT_BUDGET, collect_trace=False)
        assert vars(verified.stats) == vars(baseline.stats)
        assert verified.vm.state.regs == baseline.vm.state.regs

    def test_faultless_resilience_counters_all_zero(self):
        result = run_vm("gzip", VMConfig(), budget=HALT_BUDGET,
                        collect_trace=False)
        assert not any(result.stats.resilience().values())
