"""The fuzz generator's structural guarantees.

Generated programs must be deterministic in their seed, terminate on
their own (by halt or a deliberately-emitted trap shape), keep every
memory access inside the sandboxed buffer, and — across a batch of
seeds — exercise every shape the generator knows.
"""

from collections import Counter

import pytest

from repro.fuzz.gen import (
    BUF_SIZE,
    DATA_BASE,
    GENERATOR_VERSION,
    FuzzProgram,
    generate,
    program_from_words,
    random_instruction,
)
from repro.fuzz.oracle import run_reference
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.utils.rng import Xorshift64


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate(42, 7)
        b = generate(42, 7)
        assert a.words == b.words
        assert a.data == b.data
        assert a.shapes == b.shapes
        assert a.to_bytes() == b.to_bytes()

    def test_different_index_different_program(self):
        assert generate(42, 0).words != generate(42, 1).words

    def test_different_seed_different_program(self):
        assert generate(1, 0).words != generate(2, 0).words

    def test_version_recorded(self):
        assert generate(1, 0).version == GENERATOR_VERSION

    def test_random_instruction_deterministic(self):
        a = [random_instruction(Xorshift64(9)) for _ in range(1)]
        b = [random_instruction(Xorshift64(9)) for _ in range(1)]
        assert a == b


class TestTermination:
    @pytest.mark.parametrize("index", range(8))
    def test_programs_terminate(self, index):
        outcome = run_reference(generate(11, index))
        assert outcome.status in ("halted", "trap")

    def test_words_decode(self):
        for word in generate(3, 0).words:
            decode(word)    # raises on a malformed emission

    def test_shape_coverage_across_batch(self):
        shapes = Counter()
        for index in range(40):
            shapes.update(generate(1, index).shapes)
        for name in ("alu", "byteop", "cmov", "mem", "branch", "loop",
                     "call", "putc", "palnop"):
            assert shapes[name] > 0, f"shape {name!r} never emitted"
        # trap-adjacent shapes are deliberately rare but must appear
        assert any(name.startswith("trap_") or name == "guarded_trap"
                   for name in shapes), "no trap shape in 40 programs"


class TestProgramImage:
    def test_layout(self):
        program = generate(5, 0).to_program()
        assert program.entry == 0x1_0000
        assert program.symbols["buf"] == DATA_BASE
        data = program.memory.read_bytes(DATA_BASE, BUF_SIZE)
        assert data == generate(5, 0).data

    def test_fresh_image_per_call(self):
        fprog = generate(5, 0)
        a = fprog.to_program()
        a.memory.store(DATA_BASE, 0xFF, 1)
        b = fprog.to_program()
        assert b.memory.load(DATA_BASE, 1) == fprog.data[0]

    def test_zero_fill_halts(self):
        """Running off the end of the text lands on zero words, which
        decode as ``call_pal halt`` — shrunk programs always stop."""
        words = [0x47FF041F]    # bis r31, r31, r31 (NOP)
        outcome = run_reference(
            FuzzProgram(0, 0, GENERATOR_VERSION, 4, words, b""))
        assert outcome.status == "halted"

    def test_with_words_replaces_text_only(self):
        fprog = generate(5, 0)
        clone = fprog.with_words(fprog.words[:10])
        assert len(clone.words) == 10
        assert clone.data == fprog.data
        assert clone.seed == fprog.seed

    def test_workload_wrapper_runs(self):
        workload = generate(5, 0).to_workload()
        program = workload.program()
        assert program.entry == 0x1_0000
        from repro.workloads.base import WorkloadError
        with pytest.raises(WorkloadError):
            workload.source()


class TestProgramFromWords:
    def test_respects_layout_arguments(self):
        word = 0x47FF041F
        program = program_from_words([word], data=b"\x01\x02",
                                     text_base=0x2_0000,
                                     data_base=0x9_0000)
        assert program.entry == 0x2_0000
        assert program.memory.load(0x2_0000, 4) == word
        assert program.memory.read_bytes(0x9_0000, 2) == b"\x01\x02"

    def test_buffer_always_mapped(self):
        program = program_from_words([0x47FF041F], data=b"")
        assert program.memory.read_bytes(DATA_BASE, BUF_SIZE) == \
            bytes(BUF_SIZE)


class TestRandomInstruction:
    def test_all_formats_reachable(self):
        rng = Xorshift64(1)
        kinds = set()
        for _ in range(300):
            instr = random_instruction(rng)
            assert isinstance(instr, Instruction)
            kinds.add(instr.kind.value)
        assert {"alu", "cond_branch", "pal", "jump"} <= kinds
        assert kinds & {"load", "store", "lda"}
