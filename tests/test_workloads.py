"""Workload suite tests: assembly, determinism, registry."""

import pytest

from repro.interp import Interpreter
from repro.workloads import (
    WORKLOAD_NAMES,
    WorkloadError,
    all_workloads,
    get_workload,
)


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(WORKLOAD_NAMES) == 12

    def test_spec_names(self):
        assert set(WORKLOAD_NAMES) == {
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
            "parser", "perlbmk", "twolf", "vortex", "vpr",
        }

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("spice")

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("gzip").source(scale=0)

    def test_descriptions_present(self):
        for workload in all_workloads():
            assert workload.description


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEachWorkload:
    def test_assembles(self, name):
        program = get_workload(name).program()
        assert program.entry

    def test_runs_to_halt_and_prints(self, name):
        interp = Interpreter(get_workload(name).program())
        executed = interp.run(max_instructions=2_000_000)
        assert executed < 2_000_000, "workload did not halt in budget"
        assert len(interp.console) == 1  # each prints one checksum byte

    def test_deterministic(self, name):
        first = Interpreter(get_workload(name).program())
        first.run(max_instructions=2_000_000)
        second = Interpreter(get_workload(name).program())
        second.run(max_instructions=2_000_000)
        assert first.console == second.console
        assert first.state.regs == second.state.regs

    def test_scale_increases_length(self, name):
        short = Interpreter(get_workload(name).program(scale=1))
        short_n = short.run(max_instructions=5_000_000)
        long = Interpreter(get_workload(name).program(scale=2))
        long_n = long.run(max_instructions=5_000_000)
        assert long_n > short_n


class TestSuiteCharacter:
    """Each stand-in must exhibit the control-flow character that made its
    SPEC namesake interesting to the paper."""

    def _mix(self, name):
        from repro.isa.opcodes import Kind

        interp = Interpreter(get_workload(name).program())
        counts = {"jump": 0, "call": 0, "ret": 0, "cond": 0, "total": 0}
        from repro.interp import Halted

        try:
            while counts["total"] < 300_000:
                event = interp.step()
                counts["total"] += 1
                kind = event.instr.kind
                if kind is Kind.JUMP:
                    if event.instr.mnemonic == "ret":
                        counts["ret"] += 1
                    else:
                        counts["jump"] += 1
                elif kind is Kind.UNCOND_BRANCH and event.instr.ra != 31:
                    counts["call"] += 1
                elif kind is Kind.COND_BRANCH:
                    counts["cond"] += 1
        except Halted:
            pass
        return counts

    def test_perlbmk_indirect_heavy(self):
        mix = self._mix("perlbmk")
        assert mix["jump"] / mix["total"] > 0.02

    def test_parser_call_heavy(self):
        mix = self._mix("parser")
        assert (mix["call"] + mix["ret"]) / mix["total"] > 0.04

    def test_gzip_loop_heavy(self):
        mix = self._mix("gzip")
        assert mix["jump"] == 0          # no indirect jumps at all
        assert mix["cond"] / mix["total"] > 0.08

    def test_mcf_load_heavy(self):
        from repro.isa.opcodes import Kind
        from repro.interp import Halted

        interp = Interpreter(get_workload("mcf").program())
        loads = total = 0
        try:
            while total < 300_000:
                event = interp.step()
                total += 1
                if event.instr.kind is Kind.LOAD:
                    loads += 1
        except Halted:
            pass
        assert loads / total > 0.10
