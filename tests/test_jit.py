"""Tier-2 JIT engine: promotion, parity, guarded deopt, invalidation.

The heavyweight engine-differential guarantees live in
``test_cosim_differential.py`` (all workloads, all three engines) and in
the fuzz corpus replay; these are the unit-level checks for the tier-2
machinery itself: promotion policy, generated-source introspection,
trap deoptimisation with precise state, compile-failure degradation,
and the invalidation paths (chaining patches, corruption recovery) that
must discard generated code.
"""

import pytest

import repro.vm.executor as executor_mod
from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.isa.semantics import TrapKind
from repro.vm import CoDesignedVM, VMConfig, VMTrap
from tests.conftest import ALL_FORMATS, CALL_KERNEL, FIG2_KERNEL
from tests.test_traps import FAULTING_LOAD, GENTRAP_KERNEL


def _config(engine="jit", fmt=IFormat.MODIFIED, threshold=2, **overrides):
    return VMConfig(fmt=fmt, exec_engine=engine, jit_threshold=threshold,
                    collect_trace=overrides.pop("collect_trace", False),
                    **overrides)


def _run(source, config, budget=1_000_000):
    vm = CoDesignedVM(assemble(source), config)
    vm.run(max_v_instructions=budget)
    return vm


def _run_trap(source, config, budget=1_000_000):
    vm = CoDesignedVM(assemble(source), config)
    with pytest.raises(VMTrap) as excinfo:
        vm.run(max_v_instructions=budget)
    return excinfo.value, vm


def _promoted(vm):
    return [f for f in vm.tcache.fragments if f._jit_code is not None]


class TestPromotion:
    def test_hot_fragments_promote(self):
        vm = _run(FIG2_KERNEL, _config(threshold=2))
        assert vm.halted
        promoted = _promoted(vm)
        assert promoted, "no fragment reached tier 2"
        for fragment in promoted:
            assert fragment._jit_key is not None
            assert fragment._jit_code._jit_lines > 0

    def test_cold_fragments_stay_tier1(self):
        vm = _run(FIG2_KERNEL, _config(threshold=10**9))
        assert vm.halted
        assert not _promoted(vm)

    @pytest.mark.parametrize("engine", ("naive", "specialized"))
    def test_other_engines_never_promote(self, engine):
        vm = _run(FIG2_KERNEL, _config(engine=engine, threshold=1))
        assert vm.halted
        assert not _promoted(vm)

    def test_generated_source_is_introspectable(self):
        vm = _run(FIG2_KERNEL, _config(threshold=2))
        source = _promoted(vm)[0]._jit_code._jit_source
        assert source.startswith("def _jit_f")
        # batched statistics: one compile-time-constant flush, not
        # per-instruction increments
        assert "_stats.iinstructions_executed +=" in source
        # every fragment ends in an explicit outcome
        assert "return" in source

    def test_compile_failure_degrades_to_tier1(self, monkeypatch):
        def broken(_ex, fragment):
            raise RuntimeError(f"no codegen for f{fragment.fid}")

        monkeypatch.setattr(executor_mod, "_compile_fragment_jit", broken)
        vm = _run(FIG2_KERNEL, _config(threshold=2))
        reference = _run(FIG2_KERNEL, _config(engine="specialized"))
        assert vm.halted
        assert not _promoted(vm)
        assert any(f._jit_failed for f in vm.tcache.fragments), \
            "compile failure did not pin any fragment"
        assert vm.state.regs == reference.state.regs
        assert vars(vm.stats) == vars(reference.stats)


class TestParity:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @pytest.mark.parametrize("source", (FIG2_KERNEL, CALL_KERNEL),
                             ids=("fig2", "call"))
    def test_kernels_match_naive(self, source, fmt):
        jit = _run(source, _config(fmt=fmt, threshold=1))
        naive = _run(source, _config(engine="naive", fmt=fmt))
        assert jit.halted and naive.halted
        assert _promoted(jit), "tier-2 code never ran"
        assert jit.state.pc == naive.state.pc
        assert jit.state.regs == naive.state.regs, \
            jit.state.diff(naive.state)
        assert jit.console_text() == naive.console_text()
        assert vars(jit.stats) == vars(naive.stats)

    def test_budget_behaviour_is_identical(self):
        jit = _run(FIG2_KERNEL, _config(threshold=1), budget=800)
        naive = _run(FIG2_KERNEL, _config(engine="naive"), budget=800)
        assert not jit.halted and not naive.halted
        assert jit.state.pc == naive.state.pc
        assert jit.state.regs == naive.state.regs
        assert vars(jit.stats) == vars(naive.stats)

    def test_traced_visits_bypass_tier2(self):
        """Trace-collecting runs must take the tier-1 trace-on closures:
        the committed trace stays byte-identical to the naive engine and
        no generated code is ever consulted."""
        jit = _run(CALL_KERNEL, _config(threshold=1, collect_trace=True))
        naive = _run(CALL_KERNEL, _config(engine="naive",
                                          collect_trace=True))
        assert not _promoted(jit)
        assert len(jit.trace) == len(naive.trace)
        for ours, reference in zip(jit.trace, naive.trace):
            assert {s: getattr(ours, s) for s in ours.__slots__} == \
                {s: getattr(reference, s) for s in reference.__slots__}


class TestTrapDeopt:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_faulting_load_matches_naive(self, fmt):
        jit_trap, jit_vm = _run_trap(FAULTING_LOAD,
                                     _config(fmt=fmt, threshold=1))
        ref_trap, ref_vm = _run_trap(FAULTING_LOAD,
                                     _config(engine="naive", fmt=fmt))
        assert _promoted(jit_vm), "trap never reached tier-2 code"
        assert jit_trap.trap.kind is TrapKind.ACCESS_VIOLATION
        assert jit_trap.trap.kind is ref_trap.trap.kind
        assert jit_trap.trap.vpc == ref_trap.trap.vpc
        assert jit_trap.state.pc == ref_trap.state.pc
        assert jit_trap.state.regs == ref_trap.state.regs, \
            jit_trap.state.diff(ref_trap.state)
        assert vars(jit_vm.stats) == vars(ref_vm.stats)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_gentrap_matches_naive(self, fmt):
        jit_trap, jit_vm = _run_trap(GENTRAP_KERNEL,
                                     _config(fmt=fmt, threshold=1))
        ref_trap, ref_vm = _run_trap(GENTRAP_KERNEL,
                                     _config(engine="naive", fmt=fmt))
        assert jit_trap.trap.kind is TrapKind.GENTRAP
        assert jit_trap.trap.vpc == ref_trap.trap.vpc
        assert jit_trap.state.pc == ref_trap.state.pc
        assert jit_trap.state.regs == ref_trap.state.regs
        assert vars(jit_vm.stats) == vars(ref_vm.stats)

    def test_deopts_are_counted(self):
        _trap, vm = _run_trap(FAULTING_LOAD,
                              _config(threshold=1, telemetry=True))
        counters = vm.telemetry.summary()["counters"]
        assert counters["jit.promotions"] >= 1
        assert counters["jit.deopts"] >= 1


#: Two alternating hot loops under one outer loop.  The ``warm`` loop
#: promotes to tier 2 while its fall-through exit still points at the
#: untranslated ``cold`` region; when ``cold`` finally translates, the
#: chaining patch rewrites the *promoted* fragment — and the outer loop
#: then drives it hot again.
LATE_CHAIN_KERNEL = """
        .text
_start: clr  r14
        clr  r13
        li   r12, 3
outer:  li   r15, 40
warm:   addq r14, 1, r14
        subq r15, 1, r15
        bne  r15, warm
        li   r15, 40
cold:   addq r13, 2, r13
        subq r15, 1, r15
        bne  r15, cold
        subq r12, 1, r12
        bne  r12, outer
        and  r14, 0x7f, r16
        call_pal putc
        call_pal halt
"""


class TestInvalidation:
    """Chaining patches and corruption recovery must discard tier-2 code
    exactly like the tier-1 closures (the satellite regression)."""

    def test_chaining_patch_discards_then_recompiles(self):
        """A fragment promoted before its exit is patched must be
        recompiled against the patched body: the event stream shows
        promote -> chain -> promote again for the same fragment."""
        config = VMConfig(threshold=2, exec_engine="jit", jit_threshold=1,
                          telemetry=True)
        vm = _run(LATE_CHAIN_KERNEL, config)
        assert vm.halted
        assert vm.tcache.patches_applied > 0
        promoted = set()
        patched_after_promotion = set()
        repromoted = set()
        for event in vm.telemetry.events:
            if event.kind == "jit_promoted":
                fid = event.data["fid"]
                if fid in patched_after_promotion:
                    repromoted.add(fid)
                promoted.add(fid)
            elif event.kind == "fragment_chained":
                fid = event.data["fid"]
                if fid in promoted:
                    patched_after_promotion.add(fid)
        assert patched_after_promotion, \
            "no promoted fragment was ever patched"
        assert repromoted, \
            "patched fragments were never recompiled to tier 2"
        # and the generated code still computes the right answer
        reference = _run(LATE_CHAIN_KERNEL, _config(engine="naive"))
        assert vm.state.regs == reference.state.regs
        assert vm.console_text() == reference.console_text()

    def test_patch_drops_generated_code_immediately(self):
        vm = _run(CALL_KERNEL, _config(threshold=1))
        fragment = _promoted(vm)[0]
        old_code = fragment._jit_code
        vm.tcache._invalidate(fragment)
        assert fragment._jit_code is None
        assert fragment._jit_failed is False
        assert fragment._compiled == [None, None]
        # the next hot visit recompiles against the (patched) body
        new_code = vm.executor._jit_for(fragment)
        assert new_code is not None
        assert new_code is not old_code
        assert fragment._jit_code is new_code

    def test_corrupt_path_drops_generated_code(self):
        vm = _run(FIG2_KERNEL, _config(threshold=2))
        fragment = _promoted(vm)[0]
        vm.tcache._corrupt(fragment)
        assert fragment._jit_code is None

    def test_compile_failure_pin_cleared_by_invalidate(self):
        vm = _run(FIG2_KERNEL, _config(threshold=2))
        fragment = _promoted(vm)[0]
        fragment._jit_failed = True
        fragment.invalidate_compiled()
        assert fragment._jit_failed is False
        assert fragment._jit_code is None


class TestTelemetry:
    def test_jit_metrics_recorded(self):
        vm = _run(FIG2_KERNEL, _config(threshold=2, telemetry=True))
        summary = vm.telemetry.summary()
        promotions = summary["counters"]["jit.promotions"]
        assert promotions >= 1
        assert summary["counters"]["jit.compile_failures"] == 0
        histogram = summary["histograms"]["jit.code_lines"]
        assert histogram["total"] == promotions
        assert summary["events"]["by_kind"]["jit_promoted"] == promotions
        host = vm.telemetry.host_summary()
        assert host["timers"]["jit.compile"]["count"] == promotions

    def test_telemetry_is_noop_on_stats(self):
        plain = _run(FIG2_KERNEL, _config(threshold=2))
        observed = _run(FIG2_KERNEL, _config(threshold=2, telemetry=True))
        assert vars(plain.stats) == vars(observed.stats)
