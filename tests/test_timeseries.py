"""Time-series ring, Prometheus exposition, histogram quantiles.

The serve-metrics building blocks in isolation: bounded snapshot rings
with delta/rate views (:mod:`repro.obs.timeseries`), the text
exposition round-trip (:mod:`repro.obs.expo`), and the fixed-bucket
quantile estimator (:mod:`repro.obs.registry`) — including the
exactness-at-bucket-boundary cases the ISSUE calls out.
"""

import pytest

from repro.obs.expo import (
    parse_exposition,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.registry import (
    MetricsRegistry,
    histogram_quantile,
    histogram_quantiles,
)
from repro.obs.timeseries import (
    Snapshot,
    TimeSeriesRing,
    flatten_registry,
    snapshot_delta,
)


class TestTimeSeriesRing:
    def test_record_and_latest(self):
        ring = TimeSeriesRing(capacity=4)
        ring.record({"a": 1}, ts=10.0)
        snapshot = ring.record({"a": 3}, ts=11.0)
        assert ring.latest() is snapshot
        assert snapshot.seq == 1
        assert len(ring) == 2
        assert ring.recorded == 2

    def test_capacity_bounds_and_eviction(self):
        ring = TimeSeriesRing(capacity=3)
        for index in range(7):
            ring.record({"n": index}, ts=float(index))
        assert len(ring) == 3
        assert ring.evicted == 4
        assert [snapshot.values["n"] for snapshot in ring] == [4, 5, 6]

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity must be >= 2"):
            TimeSeriesRing(capacity=1)

    def test_delta_and_rates(self):
        ring = TimeSeriesRing(capacity=8)
        ring.record({"req": 10, "err": 1}, ts=100.0)
        ring.record({"req": 30, "err": 1, "new": 5}, ts=102.0)
        deltas, elapsed = ring.delta()
        assert deltas == {"req": 20, "err": 0, "new": 5}
        assert elapsed == pytest.approx(2.0)
        rates, _ = ring.rates()
        assert rates["req"] == pytest.approx(10.0)

    def test_delta_needs_two_snapshots(self):
        ring = TimeSeriesRing(capacity=4)
        assert ring.delta() == ({}, 0.0)
        ring.record({"a": 1}, ts=1.0)
        assert ring.delta() == ({}, 0.0)

    def test_delta_spans_clamped(self):
        ring = TimeSeriesRing(capacity=4)
        for index in range(3):
            ring.record({"a": index * 10}, ts=float(index))
        deltas, elapsed = ring.delta(spans=99)
        assert deltas == {"a": 20}
        assert elapsed == pytest.approx(2.0)

    def test_series_view(self):
        ring = TimeSeriesRing(capacity=4)
        ring.record({"a": 1}, ts=1.0)
        ring.record({"b": 2}, ts=2.0)
        ring.record({"a": 3}, ts=3.0)
        assert ring.series("a") == [(1.0, 1), (3.0, 3)]
        assert ring.series("a", limit=1) == [(3.0, 3)]

    def test_snapshot_delta_missing_keys_count_from_zero(self):
        older = Snapshot(1.0, 0, {"x": 5})
        newer = Snapshot(2.0, 1, {"x": 7, "y": 3})
        assert snapshot_delta(older, newer) == {"x": 2, "y": 3}

    def test_flatten_registry(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(4)
        registry.gauge("depth").set(7)
        registry.timer("vm").add(1.5, 3)
        registry.histogram("lat", (1, 2)).observe(1)
        flat = flatten_registry(registry.to_dict(), prefix="t.")
        assert flat == {"t.runs": 4, "t.depth": 7, "t.vm.seconds": 1.5,
                        "t.vm.count": 3, "t.lat.total": 1}


class TestQuantiles:
    def test_exact_at_bucket_boundaries(self):
        # counts [2, 2] over bounds (1, 2): the 2-count prefix ends
        # exactly at the first bound, the full mass at the second
        bounds, counts = (1.0, 2.0), [2, 2, 0]
        assert histogram_quantile(bounds, counts, 0.5) == \
            pytest.approx(1.0)
        assert histogram_quantile(bounds, counts, 1.0) == \
            pytest.approx(2.0)

    def test_interpolates_within_bucket(self):
        bounds, counts = (10.0,), [4, 0]
        # rank 1 of 4 inside (0, 10] -> quarter of the way up
        assert histogram_quantile(bounds, counts, 0.25) == \
            pytest.approx(2.5)

    def test_overflow_clamps_to_last_bound(self):
        bounds, counts = (1.0, 4.0), [0, 0, 3]
        assert histogram_quantile(bounds, counts, 0.5) == \
            pytest.approx(4.0)

    def test_empty_histogram_is_none(self):
        assert histogram_quantile((1.0,), [0, 0], 0.9) is None

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError, match="quantile must be in"):
            histogram_quantile((1.0,), [1, 0], 1.5)

    def test_quantiles_map(self):
        result = histogram_quantiles((1.0, 2.0), [2, 2, 0])
        assert set(result) == {0.5, 0.9, 0.99}
        assert result[0.5] == pytest.approx(1.0)

    def test_histogram_method_matches_function(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", (1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == pytest.approx(
            histogram_quantile(histogram.bounds, histogram.counts, 0.5))
        assert histogram.quantiles()[0.99] == histogram.quantile(0.99)


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.runs").inc(3)
        registry.gauge("serve.inflight").set(2)
        registry.timer("vm.run").add(1.25, 5)
        histogram = registry.histogram("lat", (0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_render_shapes(self):
        text = render_prometheus(self._registry())
        assert "# TYPE repro_serve_runs_total counter" in text
        assert "repro_serve_runs_total 3" in text
        assert "repro_serve_inflight 2" in text
        assert "repro_vm_run_seconds_total 1.25" in text
        assert "repro_vm_run_spans_total 5" in text
        # histogram buckets are cumulative and end at +Inf
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text
        assert text.endswith("\n")

    def test_render_is_stable(self):
        registry = self._registry()
        assert render_prometheus(registry) == \
            render_prometheus(registry)

    def test_round_trip_through_parser(self):
        samples = parse_exposition(render_prometheus(self._registry()))
        assert samples["repro_serve_runs_total"] == 3
        assert samples['repro_lat_bucket{le="+Inf"}'] == 3

    def test_parse_rejects_garbage_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_exposition("repro_ok_total 1\nnot a sample !!\n")

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_exposition("repro_x_total 1\nrepro_x_total 2\n")

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("serve.op.run") == "serve_op_run"
        assert sanitize_metric_name("a-b c") == "a_b_c"
