"""Tests for copy placement and PEI recovery maps (Section 2.2)."""

import pytest

from repro.translator.copyrules import build_copy_plan
from repro.translator.decompose import Node, NodeKind
from repro.translator.strand import form_strands
from repro.translator.usage import analyze_usage


def _index(nodes):
    for i, node in enumerate(nodes):
        node.index = i
    return nodes


def alu(dest, a=None, b=None, op="addq"):
    return Node(NodeKind.ALU, 0x1000, op=op, dest=dest, src_a=a, src_b=b)


def load(dest, addr):
    return Node(NodeKind.LOAD, 0x1000, dest=dest, addr=addr)


def branch(src):
    return Node(NodeKind.BRANCH, 0x1000, op="bne", cond_src=src,
                taken=False, taken_target=0x2000, fallthrough=0x1004)


def plan_for(nodes, n_accumulators=4):
    usage = analyze_usage(nodes)
    strands = form_strands(nodes, usage, n_accumulators)
    return usage, strands, build_copy_plan(nodes, usage, strands)


class TestCopyPlacement:
    def test_liveout_copied_after_producer(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
        ])
        usage, _strands, plan = plan_for(nodes)
        assert usage.producer_of[0].vid in plan.copied_values
        assert plan.copy_to_after[0] == [(0, 1)]

    def test_local_not_copied(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            alu(("reg", 2), ("reg", 1), ("imm", 1)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
        ])
        usage, _strands, plan = plan_for(nodes)
        assert usage.producer_of[0].vid not in plan.copied_values

    def test_comm_copied(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            alu(("reg", 2), ("reg", 1), ("imm", 1)),
            alu(("reg", 3), ("reg", 1), ("imm", 2)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
            alu(("reg", 3), ("imm", 0), ("imm", 0)),
        ])
        usage, _strands, plan = plan_for(nodes)
        assert usage.producer_of[0].vid in plan.copied_values

    def test_temp_never_copied(self):
        nodes = _index([
            alu(("temp", -1), ("reg", 2), ("imm", 8)),
            load(("reg", 1), ("temp", -1)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
        ])
        usage, _strands, plan = plan_for(nodes)
        temp_vid = usage.producer_of[0].vid
        assert temp_vid not in plan.copied_values

    def test_pei_liveness_forces_copy(self):
        # r1's local value leaves its accumulator at the consumer (node 1),
        # then a PEI at node 2 executes while r1 is still architected-live;
        # basic format must therefore copy it.
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),   # v0 -> r1
            alu(("reg", 2), ("reg", 1), ("imm", 1)),   # consumes v0 (join)
            load(("reg", 3), ("reg", 8)),               # PEI; r1 still live
            alu(("reg", 1), ("imm", 0), ("imm", 0)),   # redef of r1
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
            alu(("reg", 3), ("imm", 0), ("imm", 0)),
        ])
        usage, _strands, plan = plan_for(nodes)
        assert usage.producer_of[0].vid in plan.copied_values

    def test_pei_redefining_register_included(self):
        # the PEI itself redefines r1: the old value is architected at the
        # trap, so if its accumulator is gone it must have been copied
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),   # v0 -> r1
            alu(("reg", 2), ("reg", 1), ("imm", 1)),   # consumes v0
            load(("reg", 1), ("reg", 8)),               # PEI redefines r1
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
        ])
        usage, _strands, plan = plan_for(nodes)
        assert usage.producer_of[0].vid in plan.copied_values


class TestRecoveryMaps:
    def test_map_built_per_pei(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            load(("reg", 2), ("reg", 8)),
            load(("reg", 3), ("reg", 9)),
        ])
        _usage, _strands, plan = plan_for(nodes)
        assert set(plan.pei_recovery) == {1, 2}

    def test_copied_value_recovered_from_gpr(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),   # liveout -> copied
            load(("reg", 2), ("reg", 8)),
        ])
        _usage, _strands, plan = plan_for(nodes)
        assert plan.pei_recovery[1][1] == ("gpr",)

    def test_uncopied_value_recovered_from_acc(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),   # v0
            load(("reg", 2), ("reg", 8)),               # PEI: v0 in acc
            alu(("reg", 3), ("reg", 1), ("imm", 1)),   # use after the PEI
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
            alu(("reg", 3), ("imm", 0), ("imm", 0)),
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
        ])
        usage, strands, plan = plan_for(nodes)
        if usage.producer_of[0].vid not in plan.copied_values:
            location = plan.pei_recovery[1][1]
            assert location[0] == "acc"
            assert location[1] == strands.value_acc[0]

    def test_registers_without_defs_absent(self):
        nodes = _index([
            load(("reg", 2), ("reg", 8)),
        ])
        _usage, _strands, plan = plan_for(nodes)
        assert plan.pei_recovery[0] == {}

    def test_operational_values_modified_format(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),   # liveout
            alu(("reg", 2), ("reg", 8), ("imm", 1)),   # local (redefined)
            alu(("reg", 3), ("reg", 2), ("imm", 1)),
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
            alu(("reg", 3), ("imm", 0), ("imm", 0)),
        ])
        usage, _strands, plan = plan_for(nodes)
        assert usage.producer_of[0].vid in plan.operational_values
        assert usage.producer_of[1].vid not in plan.operational_values
