"""Hostile-guest survival tests: MMU protections, SMC, syscalls.

Four angles on the robustness tentpole:

* precise trap-payload parity — unaligned / unmapped / protection
  faults raised *from translated code* must carry the same
  ``(kind, vpc, address, access)`` and the same precise register file
  under all three execution engines as under the pure interpreter;
* SMC precision — a self-patching kernel invalidates exactly the
  overlapping fragment (no whole-cache flush), and a hot-path
  self-store forces the translated stint to deopt through the internal
  RETRANSLATE mechanism without observable divergence;
* the PAL syscall layer — getc/brk/protect/yield unit behaviour plus
  end-to-end engine agreement;
* the checked-in hostile corpus — every shrunk reproducer replays
  clean through the oracle stack and is warm/cold deterministic under
  every engine.
"""

import os

import pytest

from repro.asm import assemble
from repro.fuzz.corpus import load_corpus, program_from_entry
from repro.fuzz.oracle import check_program, run_vm_outcome
from repro.interp import Interpreter
from repro.interp.pal import EOF_VALUE, HEAP_BASE, PalContext, heap_pages
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import PAL_FUNCTIONS
from repro.isa.semantics import Trap, TrapKind
from repro.memory.image import (
    PAGE_SIZE,
    PROT_ALL,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
    Memory,
)
from repro.obs.events import EventKind
from repro.persist.store import FragmentStore
from repro.vm import CoDesignedVM, VMConfig
from repro.vm.traps import VMTrap

ENGINES = ("naive", "specialized", "jit")

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus", "hostile")
ENTRIES = load_corpus(CORPUS_DIR)
ENTRY_IDS = [f"{entry['seed']}-{entry['index']}" for entry in ENTRIES]


def _config(engine, **overrides):
    """A hot-trigger-happy config so short loops reach translated code."""
    settings = dict(threshold=4, jit_threshold=1, exec_engine=engine)
    settings.update(overrides)
    return VMConfig(**settings)


def _interp_to_trap(program, max_instructions=100_000):
    """Pure interpretation until halt or trap; returns (interp, trap)."""
    interp = Interpreter(program)
    try:
        interp.run(max_instructions=max_instructions)
    except Trap as trap:
        return interp, trap
    return interp, None


def _vm_to_trap(source, engine, input_script=b"", **overrides):
    """Run under one engine until halt or VMTrap.

    Returns ``(vm, trap, state)`` — ``trap``/``state`` are the precise
    trap record and architected state off the ``VMTrap`` (None on halt).
    """
    program = assemble(source)
    program.input_script = bytes(input_script)
    vm = CoDesignedVM(program, _config(engine, **overrides))
    try:
        vm.run(max_v_instructions=100_000)
    except VMTrap as exc:
        return vm, exc.trap, exc.state
    return vm, None, None


# ---------------------------------------------------------------------------
# map_segment validation (satellite: overlap / zero-size rejection)
# ---------------------------------------------------------------------------

class TestMapSegmentValidation:
    def test_overlap_rejected_naming_collider(self):
        memory = Memory()
        memory.map_segment("text", 0x1_0000, 0x2000)
        with pytest.raises(ValueError) as excinfo:
            memory.map_segment("data", 0x1_1000, 0x1000)
        message = str(excinfo.value)
        assert "'data'" in message and "'text'" in message
        assert "0x10000" in message
        # the failed mapping must leave no trace
        assert [segment.name for segment in memory.segments] == ["text"]

    def test_partial_overlap_from_below_rejected(self):
        memory = Memory()
        memory.map_segment("heap", 0x4000, 0x1000)
        with pytest.raises(ValueError, match="overlaps segment 'heap'"):
            memory.map_segment("stack", 0x3000, 0x1001)

    def test_zero_and_negative_size_rejected(self):
        memory = Memory()
        with pytest.raises(ValueError, match="size must be positive"):
            memory.map_segment("empty", 0x1000, 0)
        with pytest.raises(ValueError, match="size must be positive"):
            memory.map_segment("anti", 0x1000, -4)

    def test_adjacent_segments_still_allowed(self):
        memory = Memory()
        memory.map_segment("lo", 0x1000, 0x1000)
        memory.map_segment("hi", 0x2000, 0x1000)
        assert len(memory.segments) == 2


# ---------------------------------------------------------------------------
# MMU page protection semantics
# ---------------------------------------------------------------------------

class TestMMUProtection:
    @pytest.fixture
    def memory(self):
        memory = Memory()
        memory.map_segment("data", 0x8_0000, PAGE_SIZE)
        return memory

    def test_default_prot_is_all(self, memory):
        assert memory.page_prot(0x8_0000) == PROT_ALL
        assert memory.page_prot(0x9_0000) is None

    def test_write_to_readonly_page_is_precise(self, memory):
        memory.protect(0x8_0000, PAGE_SIZE, PROT_READ)
        with pytest.raises(Trap) as excinfo:
            memory.store(0x8_0008, 1, 8, vpc=0x1_0040)
        trap = excinfo.value
        assert trap.kind is TrapKind.PROTECTION_VIOLATION
        assert (trap.vpc, trap.address, trap.access) == \
            (0x1_0040, 0x8_0008, "write")

    def test_read_from_writeonly_page_is_precise(self, memory):
        memory.protect(0x8_0000, PAGE_SIZE, PROT_WRITE)
        with pytest.raises(Trap) as excinfo:
            memory.load(0x8_0010, 8, vpc=0x1_0044)
        trap = excinfo.value
        assert trap.kind is TrapKind.PROTECTION_VIOLATION
        assert (trap.vpc, trap.address, trap.access) == \
            (0x1_0044, 0x8_0010, "read")

    def test_fetch_from_noexec_page_is_precise(self, memory):
        memory.protect(0x8_0000, PAGE_SIZE, PROT_READ | PROT_WRITE)
        with pytest.raises(Trap) as excinfo:
            memory.fetch(0x8_0000, vpc=0x8_0000)
        trap = excinfo.value
        assert trap.kind is TrapKind.PROTECTION_VIOLATION
        assert trap.access == "exec"

    def test_unmapped_stays_access_violation(self, memory):
        with pytest.raises(Trap) as excinfo:
            memory.store(0x9_0000, 1, 8, vpc=0)
        assert excinfo.value.kind is TrapKind.ACCESS_VIOLATION

    def test_reprotect_restores_access(self, memory):
        memory.protect(0x8_0000, PAGE_SIZE, PROT_READ)
        memory.protect(0x8_0000, PAGE_SIZE, PROT_ALL)
        memory.store(0x8_0000, 0x55, 8, vpc=0)
        assert memory.load(0x8_0000, 8) == 0x55

    def test_dirty_pages_track_guest_stores_only(self, memory):
        assert memory.dirty_pages() == []
        memory.write_bytes(0x8_0000, b"host")        # loader path: clean
        assert memory.dirty_pages() == []
        memory.store(0x8_0100, 7, 8, vpc=0)
        assert memory.dirty_pages() == [0x8_0000]

    def test_protect_rejects_unmapped_and_bad_bits(self, memory):
        with pytest.raises(ValueError, match="unmapped page"):
            memory.protect(0x8_0000, 2 * PAGE_SIZE, PROT_READ)
        with pytest.raises(ValueError, match="invalid protection bits"):
            memory.protect(0x8_0000, PAGE_SIZE, 0x9)
        with pytest.raises(ValueError, match="size must be positive"):
            memory.protect(0x8_0000, 0, PROT_READ)
        # failed calls must not have changed anything
        assert memory.page_prot(0x8_0000) == PROT_ALL


# ---------------------------------------------------------------------------
# Trap-payload parity across engines (satellite: page-boundary faults)
# ---------------------------------------------------------------------------

#: A hot counted loop whose 11th iteration runs ``fault:`` once; the
#: block redirects the loop's own (by then translated) memory accesses,
#: so the trap fires from inside a fragment under every engine.
_PARITY_KERNEL = """
        .text
_start: la   r1, buf
        mov  r1, r5
        li   r2, 12
loop:   ldq  r3, 0(r1)
        addq r3, 1, r3
        stq  r3, 0(r5)
        cmpeq r2, 2, r4
        bne  r4, fault
back:   subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
fault:  {block}
        br   back
        .data
buf:    .space 64, 1
"""

_PROTECT_DATA = """la   r16, buf
        li   r17, 8
        li   r18, {prot}
        call_pal protect"""

_FAULT_BLOCKS = {
    # stq at buf+4089: crosses the page boundary, misaligned
    "unaligned-store": "lda  r5, 4089(r5)",
    # stq at buf+4096: the first unmapped byte past the data page
    "unmapped-store": "lda  r5, 4096(r5)",
    # ldq at buf+4096
    "unmapped-load": "lda  r1, 4096(r1)",
    # revoke W on the data page: the loop stq faults
    "prot-write": _PROTECT_DATA.format(prot=PROT_READ),
    # revoke R on the data page: the loop ldq faults
    "prot-read": _PROTECT_DATA.format(prot=PROT_WRITE),
    # revoke X on the text page: the very next fetch faults
    "prot-exec": """la   r16, _start
        li   r17, 8
        li   r18, {prot}
        call_pal protect""".format(prot=PROT_READ | PROT_WRITE),
}

_EXPECTED_KIND = {
    "unaligned-store": TrapKind.UNALIGNED,
    "unmapped-store": TrapKind.ACCESS_VIOLATION,
    "unmapped-load": TrapKind.ACCESS_VIOLATION,
    "prot-write": TrapKind.PROTECTION_VIOLATION,
    "prot-read": TrapKind.PROTECTION_VIOLATION,
    "prot-exec": TrapKind.PROTECTION_VIOLATION,
}


def _payload(trap):
    return (trap.kind, trap.vpc, trap.address, trap.access)


class TestTrapPayloadParity:
    @pytest.mark.parametrize("fault", sorted(_FAULT_BLOCKS))
    def test_engines_match_interpreter_payload(self, fault):
        source = _PARITY_KERNEL.format(block=_FAULT_BLOCKS[fault])
        interp, reference = _interp_to_trap(assemble(source))
        assert reference is not None, f"{fault}: reference did not trap"
        assert reference.kind is _EXPECTED_KIND[fault]
        for engine in ENGINES:
            _vm, trap, state = _vm_to_trap(source, engine)
            assert trap is not None, f"{fault}/{engine}: VM did not trap"
            assert _payload(trap) == _payload(reference), \
                f"{fault}/{engine}"
            # the trap state must be precise: same architected registers
            assert state.regs == interp.state.regs, \
                f"{fault}/{engine}: " + state.diff(interp.state)
            assert state.pc == interp.state.pc

    @pytest.mark.parametrize("fault", sorted(_FAULT_BLOCKS))
    def test_faults_fire_from_translated_code(self, fault):
        """The loop must actually be hot before the fault iteration."""
        source = _PARITY_KERNEL.format(block=_FAULT_BLOCKS[fault])
        vm, trap, _state = _vm_to_trap(source, "jit")
        assert trap is not None
        assert vm.stats.fragments_created > 0
        assert vm.stats.source_instructions_executed > 0

    def test_protection_fault_addresses_are_page_precise(self):
        source = _PARITY_KERNEL.format(
            block=_FAULT_BLOCKS["unmapped-store"])
        _interp, trap = _interp_to_trap(assemble(source))
        # exactly the first byte past the mapped data page
        assert trap.address == 0x8_0000 + PAGE_SIZE


# ---------------------------------------------------------------------------
# SMC precision
# ---------------------------------------------------------------------------

#: Patches ``slot:`` exactly once (iteration r2==3) with a donor word
#: held in data, then keeps looping over the rewritten code.
_SMC_ONESHOT = """
        .text
_start: la   r5, donor
        ldl  r6, 0(r5)
        li   r2, 20
        clr  r3
loop:   cmpeq r2, 3, r4
        beq  r4, slot
        la   r7, slot
        stl  r6, 0(r7)
slot:   addq r3, 1, r3
        subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
        .data
donor:  .space 4, 0
"""

#: Rewrites its own hot loop every iteration (with the identical word,
#: so semantics never change) — each translated stint must detect the
#: store into its own fragment and deopt.
_SMC_HOTSTORE = """
        .text
_start: li   r2, 16
        clr  r3
loop:   la   r7, slot
        ldl  r6, 0(r7)
        stl  r6, 0(r7)
slot:   addq r3, 1, r3
        subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
"""


def _smc_oneshot_program():
    program = assemble(_SMC_ONESHOT)
    donor = encode(Instruction("addq", ra=3, rc=3, imm=2, islit=True))
    program.memory.write_bytes(program.symbols["donor"],
                               donor.to_bytes(4, "little"))
    return program


class TestSMCPrecision:
    def test_oneshot_patch_matches_interpreter(self):
        reference = Interpreter(_smc_oneshot_program())
        reference.run(max_instructions=100_000)
        # 17 iterations before the patch lands mid-iteration at r2==3:
        # the patched +2 covers iterations r2 in {3, 2, 1}
        assert reference.console == [17 + 3 * 2]
        for engine in ENGINES:
            vm = CoDesignedVM(_smc_oneshot_program(), _config(engine))
            vm.run(max_v_instructions=100_000)
            assert vm.halted, engine
            assert vm.interpreter.console == reference.console, engine

    def test_oneshot_invalidation_is_precise(self):
        for engine in ENGINES:
            vm = CoDesignedVM(_smc_oneshot_program(),
                              _config(engine, telemetry=True))
            vm.run(max_v_instructions=100_000)
            stats = vm.stats
            assert stats.smc_detected == 1, engine
            assert stats.smc_invalidations >= 1, engine
            # precise invalidation, never a whole-cache flush
            assert stats.tcache_flushes == 0, engine
            events = vm.telemetry.events.records(EventKind.SMC_DETECTED)
            assert len(events) == 1, engine

    def test_oneshot_stats_identical_across_engines(self):
        baseline = None
        for engine in ENGINES:
            vm = CoDesignedVM(_smc_oneshot_program(), _config(engine))
            vm.run(max_v_instructions=100_000)
            if baseline is None:
                baseline = vars(vm.stats)
            else:
                assert vars(vm.stats) == baseline, engine

    def test_hot_self_store_deopts_translated_stints(self):
        reference = Interpreter(assemble(_SMC_HOTSTORE))
        reference.run(max_instructions=100_000)
        assert reference.console == [16]
        baseline = None
        for engine in ENGINES:
            vm = CoDesignedVM(assemble(_SMC_HOTSTORE), _config(engine))
            vm.run(max_v_instructions=100_000)
            assert vm.halted, engine
            assert vm.interpreter.console == reference.console, engine
            # the store lands inside the executing fragment: the stint
            # must abandon via RETRANSLATE, never trap the guest
            assert vm.stats.retranslate_deopts >= 1, engine
            assert vm.stats.smc_detected >= 1, engine
            assert vm.stats.tcache_flushes == 0, engine
            if baseline is None:
                baseline = vars(vm.stats)
            else:
                assert vars(vm.stats) == baseline, engine


# ---------------------------------------------------------------------------
# PAL syscall layer
# ---------------------------------------------------------------------------

class TestPalUnit:
    def _context(self, input_script=b""):
        program = assemble("_start: call_pal halt\n")
        program.input_script = input_script
        return PalContext(program), program

    def test_getc_cursor_then_eof(self):
        pal, _program = self._context(b"hi")
        regs = [0] * 32
        getc = PAL_FUNCTIONS["getc"]
        pal.call(regs, getc, 0)
        assert regs[0] == ord("h")
        pal.call(regs, getc, 0)
        assert regs[0] == ord("i")
        pal.call(regs, getc, 0)
        assert regs[0] == EOF_VALUE
        assert pal.calls["getc"] == 3

    def test_brk_query_grow_shrink(self):
        pal, _program = self._context()
        regs = [0] * 32
        brk = PAL_FUNCTIONS["brk"]
        regs[16] = 0
        pal.call(regs, brk, 0)
        assert regs[0] == HEAP_BASE
        regs[16] = HEAP_BASE + 10
        pal.call(regs, brk, 0)
        assert regs[0] == HEAP_BASE + 10
        assert heap_pages(pal) == 1
        assert pal.memory.load(HEAP_BASE, 8) == 0   # fresh page, zeroed
        regs[16] = HEAP_BASE + 4
        pal.call(regs, brk, 0)
        assert regs[0] == HEAP_BASE + 4             # shrink moves break
        assert heap_pages(pal) == 1                 # pages stay mapped

    def test_brk_refuses_out_of_range(self):
        pal, _program = self._context()
        regs = [0] * 32
        brk = PAL_FUNCTIONS["brk"]
        for request in (HEAP_BASE - 1, HEAP_BASE + 0x10_0000 + 1, 1):
            regs[16] = request
            pal.call(regs, brk, 0)
            assert regs[0] == HEAP_BASE, hex(request)
        assert heap_pages(pal) == 0

    def test_brk_refuses_collision(self):
        pal, program = self._context()
        program.memory.map_segment("squatter", HEAP_BASE, PAGE_SIZE)
        regs = [0] * 32
        regs[16] = HEAP_BASE + 10
        pal.call(regs, PAL_FUNCTIONS["brk"], 0)
        assert regs[0] == HEAP_BASE                 # refused, break kept
        assert heap_pages(pal) == 0

    def test_protect_success_and_failure(self):
        pal, program = self._context()
        program.memory.map_segment("scratch", 0x9_0000, PAGE_SIZE)
        regs = [0] * 32
        protect = PAL_FUNCTIONS["protect"]
        regs[16], regs[17], regs[18] = 0x9_0000, PAGE_SIZE, PROT_READ
        pal.call(regs, protect, 0)
        assert regs[0] == 0
        assert program.memory.page_prot(0x9_0000) == PROT_READ
        regs[16] = 0x30_0000                        # unmapped range
        pal.call(regs, protect, 0)
        assert regs[0] == EOF_VALUE
        assert pal.calls["protect"] == 2

    def test_yield_is_architecturally_inert(self):
        pal, _program = self._context()
        regs = list(range(32))
        pal.call(regs, PAL_FUNCTIONS["yield"], 0)
        assert regs == list(range(32))
        assert pal.calls["yield"] == 1


_GETC_KERNEL = """
        .text
_start: li   r2, 4
        clr  r3
loop:   call_pal getc
        addq r3, r0, r3
        subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
"""

_BRK_KERNEL = """
        .text
_start: li   r16, 0x400040
        call_pal brk
        mov  r0, r5
        li   r7, 0x400000
        li   r3, 77
        stq  r3, 8(r7)
        ldq  r4, 8(r7)
        and  r4, 0x7f, r16
        call_pal putc
        call_pal halt
"""

_YIELD_KERNEL = """
        .text
_start: li   r2, 40
        clr  r3
loop:   addq r3, 2, r3
        call_pal yield
        subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
"""


class TestPalEndToEnd:
    def test_getc_reads_scripted_input_under_every_engine(self):
        program = assemble(_GETC_KERNEL)
        program.input_script = b"AB"
        reference = Interpreter(program)
        reference.run(max_instructions=100_000)
        for engine in ENGINES:
            vm, trap, _state = _vm_to_trap(_GETC_KERNEL, engine,
                                           input_script=b"AB")
            assert trap is None and vm.halted, engine
            assert vm.interpreter.console == reference.console, engine
            assert vm.state.regs == reference.state.regs, engine
            assert vm.interpreter.pal.calls["getc"] == 4, engine

    def test_brk_maps_writable_heap_under_every_engine(self):
        for engine in ENGINES:
            vm, trap, _state = _vm_to_trap(_BRK_KERNEL, engine)
            assert trap is None and vm.halted, engine
            assert vm.interpreter.console == [77], engine
            assert vm.state.regs[5] == 0x40_0040, engine
            assert vm.interpreter.pal.memory.page_prot(HEAP_BASE) == \
                PROT_ALL, engine

    def test_yield_in_hot_loop_stays_translated_and_inert(self):
        baseline = None
        for engine in ENGINES:
            vm, trap, _state = _vm_to_trap(_YIELD_KERNEL, engine)
            assert trap is None and vm.halted, engine
            assert vm.interpreter.console == [80], engine
            assert vm.interpreter.pal.calls["yield"] == 40, engine
            assert vm.stats.fragments_created > 0, engine
            if baseline is None:
                baseline = vars(vm.stats)
            else:
                assert vars(vm.stats) == baseline, engine


# ---------------------------------------------------------------------------
# Persist quarantine collisions (satellite)
# ---------------------------------------------------------------------------

class TestQuarantineCollision:
    def test_repeated_quarantines_keep_all_evidence(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        key = "ab" + "0" * 14
        path = store._path(key)

        def corrupt():
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("definitely not a jsonl header\n")

        corrupt()
        assert store.load(key, "sha", {}) == {}
        corrupt()
        assert store.load(key, "sha", {}) == {}
        corrupt()
        assert store.load(key, "sha", {}) == {}
        assert store.stats.quarantined == 3
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantined")
        assert os.path.exists(path + ".quarantined.1")
        assert os.path.exists(path + ".quarantined.2")


# ---------------------------------------------------------------------------
# The checked-in hostile corpus
# ---------------------------------------------------------------------------

class TestHostileCorpusShape:
    def test_corpus_is_populated(self):
        assert len(ENTRIES) >= 15

    def test_every_entry_is_hostile_with_scripted_input(self):
        for entry in ENTRIES:
            assert entry.get("hostile") is True, entry["index"]
            assert entry.get("input"), entry["index"]
            assert entry.get("shrunk_text"), entry["index"]

    def test_corpus_covers_every_hostile_shape(self):
        shapes = set()
        for entry in ENTRIES:
            shapes.update(entry["shapes"])
        assert {"smc", "protect", "getc", "brk", "yield"} <= shapes


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_hostile_corpus_entry_replays_clean(entry):
    fprog = program_from_entry(entry, shrunk=True)
    report = check_program(fprog, stages=("cosim", "engine"),
                           engines=("naive", "jit"))
    assert not report["failures"], report["failures"]
    assert not report["inconclusive"], report["inconclusive"]


def _outcome_key(outcome):
    return (outcome.status, outcome.pc, tuple(outcome.regs),
            outcome.console, outcome.mem, outcome.committed,
            outcome.trap_kind, outcome.trap_vpc, outcome.insns)


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_hostile_corpus_entry_is_warm_cold_deterministic(entry, tmp_path):
    """Every engine × warm/cold run yields identical ``vars(VMStats)``."""
    fprog = program_from_entry(entry, shrunk=True)
    for engine in ENGINES:
        store = str(tmp_path / engine)
        cold_cfg = VMConfig(threshold=8, jit_threshold=2,
                            exec_engine=engine, persist_path=store,
                            persist_mode="save")
        warm_cfg = VMConfig(threshold=8, jit_threshold=2,
                            exec_engine=engine, persist_path=store,
                            persist_mode="load")
        cold_outcome, cold_vm = run_vm_outcome(fprog, cold_cfg)
        warm_outcome, warm_vm = run_vm_outcome(fprog, warm_cfg)
        assert _outcome_key(warm_outcome) == _outcome_key(cold_outcome), \
            engine
        assert vars(warm_vm.stats) == vars(cold_vm.stats), engine


def test_hostile_corpus_exercises_the_hostile_surface():
    """Replaying the corpus must actually hit SMC, protect and the PAL
    calls — a corpus that stops exercising the surface is a regression
    even if every entry still agrees."""
    smc_hits = protect_hits = 0
    traps = set()
    calls = {"getc": 0, "brk": 0, "protect": 0, "yield": 0}
    for entry in ENTRIES:
        fprog = program_from_entry(entry, shrunk=True)
        outcome, vm = run_vm_outcome(
            fprog, VMConfig(threshold=8, jit_threshold=2,
                            exec_engine="specialized"))
        smc_hits += vm.stats.smc_detected
        protect_hits += vm.stats.protect_invalidations
        traps.add(outcome.trap_kind)
        for name, count in vm.interpreter.pal.calls.items():
            calls[name] += count
    assert smc_hits > 0
    assert protect_hits > 0
    assert "protection_violation" in traps
    assert all(count > 0 for count in calls.values()), calls
