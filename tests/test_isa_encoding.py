"""Encode/decode round-trip tests for the Alpha subset."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPS,
    JUMP_OPS,
    MEMORY_OPS,
    OPERATE_OPS,
    RB_ONLY_OPS,
)

regs = st.integers(min_value=0, max_value=31)


class TestRoundTrip:
    @pytest.mark.parametrize("mnemonic", sorted(MEMORY_OPS))
    def test_memory(self, mnemonic):
        instr = Instruction(mnemonic, ra=3, rb=16, imm=-48)
        assert decode(encode(instr)) == instr

    @pytest.mark.parametrize("mnemonic", sorted(OPERATE_OPS))
    def test_operate_register(self, mnemonic):
        instr = Instruction(mnemonic, ra=1, rb=2, rc=3)
        assert decode(encode(instr)) == instr

    @pytest.mark.parametrize("mnemonic", sorted(OPERATE_OPS))
    def test_operate_literal(self, mnemonic):
        instr = Instruction(mnemonic, ra=1, rc=3, imm=200, islit=True)
        assert decode(encode(instr)) == instr

    @pytest.mark.parametrize("mnemonic", sorted(BRANCH_OPS))
    def test_branch(self, mnemonic):
        instr = Instruction(mnemonic, ra=17, imm=-1000)
        assert decode(encode(instr)) == instr

    @pytest.mark.parametrize("mnemonic", sorted(JUMP_OPS))
    def test_jump(self, mnemonic):
        instr = Instruction(mnemonic, ra=26, rb=27)
        assert decode(encode(instr)) == instr

    def test_pal(self):
        instr = Instruction("call_pal", imm=0xAA)
        assert decode(encode(instr)) == instr


class TestRanges:
    def test_memory_displacement_range(self):
        encode(Instruction("ldq", ra=1, rb=2, imm=32767))
        encode(Instruction("ldq", ra=1, rb=2, imm=-32768))
        with pytest.raises(EncodingError):
            encode(Instruction("ldq", ra=1, rb=2, imm=32768))

    def test_operate_literal_range(self):
        encode(Instruction("addq", ra=1, rc=2, imm=255, islit=True))
        with pytest.raises(EncodingError):
            encode(Instruction("addq", ra=1, rc=2, imm=256, islit=True))
        with pytest.raises(EncodingError):
            encode(Instruction("addq", ra=1, rc=2, imm=-1, islit=True))

    def test_branch_displacement_range(self):
        encode(Instruction("br", ra=31, imm=(1 << 20) - 1))
        with pytest.raises(EncodingError):
            encode(Instruction("br", ra=31, imm=1 << 20))

    def test_decode_rejects_bad_word(self):
        with pytest.raises(EncodingError):
            decode(-1)
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0x04 << 26)  # opcode 0x04 is unassigned in our subset
        with pytest.raises(EncodingError):
            decode(0x1F << 26)  # opcode 0x1F is unassigned in our subset

    def test_decode_rejects_unknown_function(self):
        # opcode 0x10 with function 0x7F is not a defined operate op
        with pytest.raises(EncodingError):
            decode((0x10 << 26) | (0x7F << 5))


class TestPropertyRoundTrip:
    @given(st.sampled_from(sorted(OPERATE_OPS)), regs, regs, regs)
    def test_operate_any_registers(self, mnemonic, ra, rb, rc):
        instr = Instruction(mnemonic, ra=ra, rb=rb, rc=rc)
        assert decode(encode(instr)) == instr

    @given(st.sampled_from(sorted(MEMORY_OPS)), regs, regs,
           st.integers(min_value=-32768, max_value=32767))
    def test_memory_any_displacement(self, mnemonic, ra, rb, disp):
        instr = Instruction(mnemonic, ra=ra, rb=rb, imm=disp)
        assert decode(encode(instr)) == instr

    @given(st.sampled_from(sorted(BRANCH_OPS)), regs,
           st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1))
    def test_branch_any_displacement(self, mnemonic, ra, disp):
        instr = Instruction(mnemonic, ra=ra, imm=disp)
        assert decode(encode(instr)) == instr


class TestDecodeFuzz:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_decode_is_total_or_rejects(self, word):
        """Any 32-bit word either decodes to an instruction that
        re-encodes to an equivalent instruction, or raises EncodingError —
        never crashes, never loops."""
        try:
            instr = decode(word)
        except EncodingError:
            return
        again = decode(encode(instr))
        assert again == instr


class TestRegisterRoles:
    def test_operate_sources_and_dest(self):
        instr = Instruction("addq", ra=1, rb=2, rc=3)
        assert instr.sources() == (1, 2)
        assert instr.dest() == 3

    def test_r31_filtered(self):
        instr = Instruction("addq", ra=31, rb=2, rc=31)
        assert instr.sources() == (2,)
        assert instr.dest() is None

    def test_cmov_reads_old_dest(self):
        instr = Instruction("cmoveq", ra=1, rb=2, rc=3)
        assert instr.sources() == (1, 2, 3)

    def test_rb_only_ops(self):
        instr = Instruction("sextb", rb=5, rc=6)
        assert instr.sources() == (5,)
        assert instr.dest() == 6

    def test_store_sources(self):
        instr = Instruction("stq", ra=4, rb=5, imm=8)
        assert instr.sources() == (4, 5)
        assert instr.dest() is None

    def test_jump_link(self):
        instr = Instruction("jsr", ra=26, rb=27)
        assert instr.sources() == (27,)
        assert instr.dest() == 26

    def test_load_is_pei(self):
        assert Instruction("ldq", ra=1, rb=2).is_pei()
        assert not Instruction("lda", ra=1, rb=2).is_pei()
        assert not Instruction("addq", ra=1, rb=2, rc=3).is_pei()
