"""Version skew against both persistent caches reads as a clean miss.

Two subsystems memoise results on disk: the ResultCache (run-point
summaries, keyed by ``SCHEMA_VERSION``-stamped identity) and the
fragment store (translation records, versioned by ``schema`` and
``generator`` header fields).  An old-on-disk/new-in-process mismatch in
either direction must degrade to a counted miss — never an exception,
and never a silently *served* stale entry.  The same applies to the
blunter failure modes every long-lived cache eventually meets:
truncated files and flipped bits.
"""

import json
import os

import pytest

import repro.harness.runpoints as runpoints
import repro.persist.store as persist_store
from repro.harness.resultcache import ResultCache, point_key
from repro.harness.runpoints import RunPoint
from repro.persist.store import FragmentStore

KEY = "ab" * 32
RECORDS = [{"digest": "d1", "payload": 1}, {"digest": "d2", "payload": 2}]


@pytest.fixture
def point():
    return RunPoint.vm("gzip", budget=1000)


@pytest.fixture
def cache(tmp_path, point):
    cache = ResultCache(str(tmp_path))
    cache.put(point, {"committed": 42})
    return cache


def _entry_path(cache, point):
    return cache._path(point_key(point))


class TestResultCacheSkew:
    def test_schema_bump_is_clean_miss(self, cache, point, monkeypatch):
        assert cache.get(point) == {"committed": 42}
        monkeypatch.setattr(runpoints, "SCHEMA_VERSION",
                            runpoints.SCHEMA_VERSION + 1)
        fresh = ResultCache(cache.root)
        assert fresh.get(point) is None
        assert fresh.misses == 1
        assert fresh.corrupt == 0

    def test_schema_rollback_is_clean_miss(self, cache, point,
                                           monkeypatch):
        monkeypatch.setattr(runpoints, "SCHEMA_VERSION",
                            runpoints.SCHEMA_VERSION - 1)
        fresh = ResultCache(cache.root)
        assert fresh.get(point) is None
        assert fresh.misses == 1

    def test_truncated_entry_counts_corrupt(self, cache, point):
        path = _entry_path(cache, point)
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[: len(content) // 2])
        fresh = ResultCache(cache.root)
        assert fresh.get(point) is None
        assert fresh.corrupt == 1
        assert fresh.misses == 0

    def test_edited_identity_counts_corrupt(self, cache, point):
        # valid JSON whose stored identity no longer matches the point —
        # the hand-edited/hash-collision guard
        path = _entry_path(cache, point)
        with open(path) as handle:
            entry = json.load(handle)
        entry["point"]["budget"] += 1
        with open(path, "w") as handle:
            json.dump(entry, handle)
        fresh = ResultCache(cache.root)
        assert fresh.get(point) is None
        assert fresh.corrupt == 1

    def test_empty_entry_file_counts_corrupt(self, cache, point):
        with open(_entry_path(cache, point), "w"):
            pass
        fresh = ResultCache(cache.root)
        assert fresh.get(point) is None
        assert fresh.corrupt == 1


class TestFragmentStoreSkew:
    @pytest.fixture
    def root(self, tmp_path):
        FragmentStore(str(tmp_path)).save(KEY, RECORDS, "code", {"n": 4})
        return str(tmp_path)

    def test_schema_bump_reads_stale(self, root, monkeypatch):
        monkeypatch.setattr(persist_store, "STORE_SCHEMA_VERSION",
                            persist_store.STORE_SCHEMA_VERSION + 1)
        store = FragmentStore(root)
        assert store.load(KEY, "code", {"n": 4}) == {}
        assert store.stats.stale_stores == 1
        assert store.stats.stores_loaded == 0

    def test_generator_bump_reads_stale(self, root, monkeypatch):
        monkeypatch.setattr(persist_store, "PERSIST_GENERATOR_VERSION",
                            persist_store.PERSIST_GENERATOR_VERSION + 1)
        store = FragmentStore(root)
        assert store.load(KEY, "code", {"n": 4}) == {}
        assert store.stats.stale_stores == 1

    def test_stale_store_still_on_disk_for_rollback(self, root,
                                                    monkeypatch):
        # skew must not destroy the file: rolling the code back must
        # find the store intact (contrast with quarantine, which moves
        # files that can never parse)
        monkeypatch.setattr(persist_store, "STORE_SCHEMA_VERSION",
                            persist_store.STORE_SCHEMA_VERSION + 1)
        store = FragmentStore(root)
        store.load(KEY, "code", {"n": 4})
        monkeypatch.undo()
        fresh = FragmentStore(root)
        assert sorted(fresh.load(KEY, "code", {"n": 4})) == ["d1", "d2"]

    def test_save_under_new_version_rewrites_header(self, root,
                                                    monkeypatch):
        # an upgraded process saving over a stale store drops the old
        # records (its quiet merge-read sees a stale header) and leaves
        # a store only the new version reads
        monkeypatch.setattr(persist_store, "STORE_SCHEMA_VERSION",
                            persist_store.STORE_SCHEMA_VERSION + 1)
        writer = FragmentStore(root)
        writer.save(KEY, [{"digest": "d9", "payload": 9}], "code",
                    {"n": 4})
        assert writer.stats.records_saved == 1
        reader = FragmentStore(root)
        assert sorted(reader.load(KEY, "code", {"n": 4})) == ["d9"]
        monkeypatch.undo()
        old = FragmentStore(root)
        assert old.load(KEY, "code", {"n": 4}) == {}
        assert old.stats.stale_stores == 1

    def test_header_format_rename_quarantines(self, root):
        path = FragmentStore(root)._path(KEY)
        with open(path) as handle:
            lines = handle.read().splitlines()
        header = json.loads(lines[0])
        header["format"] = "repro-fragment-store-v0"
        lines[0] = json.dumps(header)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        store = FragmentStore(root)
        assert store.load(KEY, "code", {"n": 4}) == {}
        assert store.stats.quarantined == 1
        assert os.path.exists(path + ".quarantined")

    def test_truncated_final_record_skew(self, root):
        path = FragmentStore(root)._path(KEY)
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[:-7])
        store = FragmentStore(root)
        loaded = store.load(KEY, "code", {"n": 4})
        assert list(loaded) == ["d1"]
        assert store.stats.corrupt_records == 1

    def test_bit_flip_fails_crc(self, root):
        path = FragmentStore(root)._path(KEY)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        # flip one bit inside the payload digits of the last record line
        target = blob.rindex(b'"payload":') + len(b'"payload":')
        blob[target] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        store = FragmentStore(root)
        loaded = store.load(KEY, "code", {"n": 4})
        assert store.stats.corrupt_records >= 1
        assert store.stats.records_loaded == len(loaded)
