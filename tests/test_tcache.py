"""Translation cache tests: layout, lookup, patching, flush."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.tcache.cache import TCacheFull, TranslationCache
from repro.tcache.dispatch import DISPATCH_LENGTH, build_dispatch_code
from repro.vm import CoDesignedVM, VMConfig
from tests.conftest import FIG2_KERNEL

TWO_LOOP = """
_start: li r9, 80
outer:  li r1, 60
inner:  subq r1, 1, r1
        addq r2, r1, r2
        bne r1, inner
        subq r9, 1, r9
        bne r9, outer
        call_pal halt
"""


def run_vm(source, fmt=IFormat.MODIFIED, **kwargs):
    vm = CoDesignedVM(assemble(source), VMConfig(fmt=fmt, **kwargs))
    vm.run(max_v_instructions=500_000)
    return vm


class TestLayout:
    def test_dispatch_at_base(self):
        cache = TranslationCache(base=0x100_0000)
        assert cache.dispatch_address == 0x100_0000
        assert len(cache.dispatch_body) == DISPATCH_LENGTH

    def test_dispatch_ends_with_indirect_jump(self):
        body = build_dispatch_code()
        assert body[-1].iop is IOp.JMP_DISPATCH

    def test_fragments_laid_out_contiguously(self):
        vm = run_vm(TWO_LOOP)
        fragments = vm.tcache.fragments
        assert len(fragments) >= 2
        for earlier, later in zip(fragments, fragments[1:]):
            assert later.base_address == \
                earlier.base_address + earlier.byte_size

    def test_addresses_and_sizes_assigned(self):
        vm = run_vm(FIG2_KERNEL)
        fragment = vm.tcache.fragments[0]
        address = fragment.base_address
        for instr in fragment.body:
            assert instr.address == address
            assert instr.size in (2, 4, 8)
            address += instr.size

    def test_lookup_by_vpc_and_address(self):
        vm = run_vm(FIG2_KERNEL)
        fragment = vm.tcache.fragments[0]
        assert vm.tcache.lookup(fragment.entry_vpc) is fragment
        assert vm.tcache.fragment_at(fragment.entry_address()) is fragment
        assert vm.tcache.lookup(0xDEAD) is None

    def test_duplicate_entry_rejected(self):
        vm = run_vm(FIG2_KERNEL)
        fragment = vm.tcache.fragments[0]
        with pytest.raises(ValueError):
            vm.tcache.add(fragment)

    def test_v_weights_one_per_source_instruction(self):
        vm = run_vm(FIG2_KERNEL)
        fragment = vm.tcache.fragments[0]
        assert sum(i.v_weight for i in fragment.body) == \
            fragment.source_instr_count


class TestPatching:
    def test_self_loop_patched_at_install(self):
        vm = run_vm(FIG2_KERNEL)
        fragment = vm.tcache.fragments[0]
        # the backward branch targets the fragment's own entry: must have
        # been patched into a direct branch at install time
        branches = [i for i in fragment.body if i.iop is IOp.BRANCH]
        assert any(i.target == fragment.entry_address() for i in branches)

    def test_cross_fragment_patching(self):
        vm = run_vm(TWO_LOOP)
        cache = vm.tcache
        assert cache.patches_applied >= 1
        # after the run, the hot inner/outer path must be fully chained:
        # no unpatched exits between translated fragments
        for fragment in cache.fragments:
            for exit_record in fragment.exits:
                if exit_record.vtarget is not None and \
                        cache.lookup(exit_record.vtarget) is not None:
                    assert exit_record.patched

    def test_patched_instruction_keeps_slot(self):
        vm = run_vm(TWO_LOOP)
        for fragment in vm.tcache.fragments:
            address = fragment.base_address
            for instr in fragment.body:
                assert instr.address == address
                address += instr.size

    def test_flush_empties_cache(self):
        vm = run_vm(TWO_LOOP)
        cache = vm.tcache
        cache.flush()
        assert cache.fragment_count() == 0
        assert cache.total_code_bytes() == 0
        assert cache.lookup(vm.program.entry) is None


class TestStaticSizes:
    def test_total_bytes_matches_fragments(self):
        vm = run_vm(TWO_LOOP)
        cache = vm.tcache
        assert cache.total_code_bytes() == \
            sum(f.byte_size for f in cache.fragments)

    def test_modified_smaller_than_basic_on_workload(self):
        # Table 2's bytes columns: across real-ish code the modified format
        # is denser (shared dest/source specifiers beat copy instructions);
        # tiny kernels can go either way, so measure a whole workload.
        from repro.workloads import get_workload

        source = get_workload("mcf").source()
        basic = run_vm(source, fmt=IFormat.BASIC)
        modified = run_vm(source, fmt=IFormat.MODIFIED)
        assert modified.stats.static_expansion(modified.tcache) < \
            basic.stats.static_expansion(basic.tcache)

    def test_alpha_fragments_word_sized(self):
        vm = run_vm(FIG2_KERNEL, fmt=IFormat.ALPHA)
        for fragment in vm.tcache.fragments:
            for instr in fragment.body:
                assert instr.size in (4, 8)


class TestCapacity:
    def _donor(self):
        """A real translated fragment to (re-)install in a fresh cache."""
        return run_vm(FIG2_KERNEL).tcache.fragments[0]

    @staticmethod
    def _needed(fragment):
        # the install-time size estimate; may differ from byte_size when
        # in-place patches changed instruction kinds after first install
        from repro.ildp_isa.sizes import instruction_size
        return sum(instruction_size(instr, fragment.fmt)
                   for instr in fragment.body)

    def test_full_cache_raises_before_mutation(self):
        donor = self._donor()
        needed = self._needed(donor)
        cache = TranslationCache(capacity_bytes=needed - 1)
        with pytest.raises(TCacheFull) as excinfo:
            cache.add(donor)
        err = excinfo.value
        assert err.entry_vpc == donor.entry_vpc
        assert err.needed == needed
        assert err.used == 0
        assert err.capacity == needed - 1
        # nothing was mutated: the add can be retried after a flush
        assert cache.fragment_count() == 0
        assert cache.lookup(donor.entry_vpc) is None
        assert cache.total_code_bytes() == 0

    def test_exact_fit_installs(self):
        donor = self._donor()
        cache = TranslationCache(capacity_bytes=self._needed(donor))
        cache.add(donor)
        assert cache.fragment_count() == 1

    def test_injected_capacity_miss_is_transient(self):
        from repro.faults.inject import FaultInjector
        from repro.faults.plan import FaultPlan

        donor = self._donor()
        injector = FaultInjector(FaultPlan.parse("tcache_full@count=1"))
        cache = TranslationCache(injector=injector)
        with pytest.raises(TCacheFull):
            cache.add(donor)
        cache.add(donor)        # the spec only strikes the 1st occurrence
        assert cache.fragment_count() == 1


class TestFlushState:
    def test_flush_clears_pending_patch_state(self):
        cache = run_vm(TWO_LOOP).tcache
        assert cache._pending_exits       # exits to untranslated code
        assert cache._incoming            # chained fragments
        cache.flush()
        assert cache._pending_exits == {}
        assert cache._pending_ras == {}
        assert cache._incoming == {}


class TestInvalidation:
    def test_standalone_fragment_removed(self):
        cache = run_vm(FIG2_KERNEL).tcache
        fragment = cache.fragments[0]
        # the only incoming direct branch is the fragment's own self-loop
        assert cache.invalidate_fragment(fragment) == "removed"
        assert cache.lookup(fragment.entry_vpc) is None
        assert cache.fragment_at(fragment.base_address) is None
        assert fragment not in cache.fragments
        # no pending registration may reference the freed fragment
        for waiters in cache._pending_exits.values():
            assert all(frag is not fragment for frag, _exit in waiters)

    def test_externally_chained_fragment_flushes(self):
        cache = run_vm(TWO_LOOP).tcache
        target = next(
            cache.fragments[i] for i in range(len(cache.fragments))
            if cache._incoming.get(cache.fragments[i].fid, set()) -
            {cache.fragments[i].fid})
        assert cache.invalidate_fragment(target) == "flushed"
        assert cache.fragment_count() == 0


class TestChecksums:
    def test_stamped_only_when_verifying(self):
        verified = run_vm(FIG2_KERNEL, verify_fragments=True)
        for fragment in verified.tcache.fragments:
            assert fragment.checksum is not None
            assert fragment.compute_checksum() == fragment.checksum
        plain = run_vm(FIG2_KERNEL)
        assert all(f.checksum is None for f in plain.tcache.fragments)

    def test_corruption_changes_checksum(self):
        vm = run_vm(FIG2_KERNEL, verify_fragments=True)
        fragment = vm.tcache.fragments[0]
        victim = fragment.body[0]
        victim.imm = (victim.imm if victim.imm is not None else 0) ^ 0x2A
        assert fragment.compute_checksum() != fragment.checksum

    def test_relocation_is_checksum_neutral(self):
        vm = run_vm(FIG2_KERNEL, verify_fragments=True)
        fragment = vm.tcache.fragments[0]
        for instr in fragment.body:
            instr.address += 0x1000
        assert fragment.compute_checksum() == fragment.checksum
