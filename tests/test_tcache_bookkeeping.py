"""Removal bookkeeping: ``_forget_fragment`` keeps every map consistent.

``invalidate_fragment`` and ``flush`` share one removal helper
(``TranslationCache._forget_fragment``); this regression suite pins the
invariants that helper exists to protect — after *any* removal, no
cache map (live list, entry indexes, incoming-edge rows, pending patch
waiters) may still reference a forgotten fragment, and emptied waiter
keys must be deleted rather than left as ghosts.
"""

from repro.asm import assemble
from repro.vm import CoDesignedVM, VMConfig
from tests.conftest import FIG2_KERNEL

#: Two nested loops plus a cold tail: translates several fragments with
#: cross-fragment chains *and* leaves exits pending toward code that
#: never gets hot — both kinds of bookkeeping to clean up.
NESTED = """
_start: li r9, 80
outer:  li r1, 60
inner:  subq r1, 1, r1
        addq r2, r1, r2
        bne r1, inner
        subq r9, 1, r9
        bne r9, outer
        call_pal halt
"""


def _cache(source=NESTED):
    vm = CoDesignedVM(assemble(source), VMConfig())
    vm.run(max_v_instructions=500_000)
    return vm.tcache


def _assert_consistent(cache):
    """Every cache map references only live fragments, coherently."""
    live = set(cache.fragments)
    live_fids = {fragment.fid for fragment in live}
    assert set(cache._by_entry_vpc.values()) == live
    assert set(cache._entry_addresses.values()) == live
    for fragment in live:
        assert cache._by_entry_vpc[fragment.entry_vpc] is fragment
        assert cache._entry_addresses[fragment.base_address] is fragment
    assert set(cache._incoming) <= live_fids
    for sources in cache._incoming.values():
        assert sources <= live_fids
    for waiters_by_vpc in (cache._pending_exits, cache._pending_ras):
        for vpc, waiters in waiters_by_vpc.items():
            assert waiters, f"ghost waiter key for V:{vpc:#x}"
            assert all(entry[0] in live for entry in waiters)


def test_populated_cache_has_state_to_clean():
    cache = _cache()
    assert len(cache.fragments) >= 2
    assert cache._incoming          # chained fragments
    assert cache._pending_exits     # exits toward never-hot code
    _assert_consistent(cache)


def test_single_removal_leaves_consistent_maps():
    # the nested loops chain every fragment into another, so use the
    # single-superblock kernel, whose only incoming edge is its own
    # self-loop
    cache = _cache(FIG2_KERNEL)
    removable = [fragment for fragment in cache.fragments
                 if not (cache._incoming.get(fragment.fid, set()) -
                         {fragment.fid})]
    assert removable, "workload produced no safely removable fragment"
    fragment = removable[0]
    assert cache.invalidate_fragment(fragment) == "removed"
    _assert_consistent(cache)
    assert fragment not in cache.fragments
    assert fragment.fid not in cache._incoming
    for sources in cache._incoming.values():
        assert fragment.fid not in sources


def test_removal_deletes_emptied_waiter_keys():
    cache = _cache(FIG2_KERNEL)
    # find a fragment that is the sole waiter on some pending V-PC
    sole = None
    for vpc, waiters in cache._pending_exits.items():
        owners = {entry[0] for entry in waiters}
        if len(owners) == 1:
            fragment = owners.pop()
            if not (cache._incoming.get(fragment.fid, set()) -
                    {fragment.fid}):
                sole = (vpc, fragment)
                break
    assert sole is not None, "no sole-waiter fragment in this workload"
    vpc, fragment = sole
    assert cache.invalidate_fragment(fragment) == "removed"
    assert vpc not in cache._pending_exits
    _assert_consistent(cache)


def test_flush_equivalent_to_forgetting_every_fragment():
    cache = _cache()
    cache.flush()
    assert cache.fragments == []
    assert cache._by_entry_vpc == {}
    assert cache._entry_addresses == {}
    assert cache._incoming == {}
    assert cache._pending_exits == {}
    assert cache._pending_ras == {}
    assert cache.patches_applied == 0
    assert cache.total_code_bytes() == 0
    _assert_consistent(cache)


def test_sequential_removals_then_reuse():
    cache = _cache()
    # peel fragments one at a time (flushing when unsafe) until empty;
    # the maps must be consistent after every step
    guard = 0
    while cache.fragments and guard < 100:
        guard += 1
        fragment = cache.fragments[-1]
        cache.invalidate_fragment(fragment)
        _assert_consistent(cache)
    assert cache.fragments == []
    # layout restarts cleanly after a flush-driven teardown
    next_free_floor = cache.dispatch_address + sum(
        instr.size for instr in cache.dispatch_body)
    assert cache._next_free >= next_free_floor


def test_fids_stay_unique_across_removal_and_reinstall():
    cache = _cache()
    seen = {fragment.fid for fragment in cache.fragments}
    cache.flush()
    # re-run translation into the same cache via a fresh VM is not
    # possible (the cache belongs to its VM), so re-install a donor body
    donor_cache = _cache()
    donor = donor_cache.fragments[0]
    donor_cache.invalidate_fragment(donor)
    installed = cache.add(donor)
    assert installed.fid not in seen
