"""The benchmark-regression sentinel (repro.obs.regress)."""

import copy
import io
import json

from repro.cli import main
from repro.obs.regress import (
    classify,
    compare_benchmarks,
    flatten_metrics,
    machine_metadata,
)

BASELINE = {
    "benchmark": "exec_engine",
    "workloads": ["gzip", "mcf"],
    "budget": 60_000,
    "reps": 3,
    "rows": [
        {"workload": "gzip", "naive_seconds": 0.16,
         "specialized_seconds": 0.06, "speedup": 2.8},
        {"workload": "mcf", "naive_seconds": 0.10,
         "specialized_seconds": 0.04, "speedup": 2.3},
    ],
    "specialized_total_seconds": 0.10,
    "aggregate_speedup": 2.51,
    "telemetry_on_ratio": 1.14,
    "run_points_executed": 16,
    "machine": {"python": "3.11.7", "cpu_count": 1},
}


def doctored(**changes):
    doc = copy.deepcopy(BASELINE)
    doc.update(changes)
    return doc


class TestClassify:
    def test_suffix_rules(self):
        assert classify("specialized_total_seconds") == "time"
        assert classify("rows.gzip.naive_seconds") == "time"
        assert classify("elapsed") == "time"
        assert classify("aggregate_speedup") == "higher"
        assert classify("rows.gzip.speedup") == "higher"
        assert classify("telemetry_on_ratio") == "lower"
        assert classify("run_points_executed") == "exact"
        assert classify("events.fragment_created") == "exact"


class TestFlatten:
    def test_rows_key_by_workload(self):
        metrics = flatten_metrics(BASELINE)
        assert metrics["rows.gzip.speedup"] == 2.8
        assert metrics["rows.mcf.naive_seconds"] == 0.10

    def test_context_and_machine_excluded(self):
        metrics = flatten_metrics(BASELINE)
        assert not any(name.startswith("machine") for name in metrics)
        assert "budget" not in metrics
        assert "reps" not in metrics

    def test_nested_dicts_dotted(self):
        metrics = flatten_metrics({"telemetry": {"counters": {"a": 2}}})
        assert metrics == {"telemetry.counters.a": 2}

    def test_non_numeric_ignored(self):
        metrics = flatten_metrics({"name": "x", "flag": True, "n": 1})
        assert metrics == {"n": 1}

    def test_context_blocks_excluded(self):
        # BENCH_warmstart.json's "store" block describes what was
        # persisted (context), like "machine" describes the host — its
        # numbers must not become gated metrics
        metrics = flatten_metrics({
            "store": {"records": 58, "bytes": 100_000},
            "machine": {"cpu_count": 8},
            "aggregate_speedup": 6.8,
        })
        assert metrics == {"aggregate_speedup": 6.8}


WARMSTART = {
    "benchmark": "warm_start",
    "workloads": ["gzip", "mcf"],
    "budget": 60_000,
    "reps": 3,
    "rows": [
        {"workload": "gzip", "cold_translate_seconds": 0.0008,
         "warm_translate_seconds": 0.0001, "speedup": 6.4,
         "warm_hits": 4, "fragments": 4},
        {"workload": "mcf", "cold_translate_seconds": 0.0009,
         "warm_translate_seconds": 0.0001, "speedup": 9.0,
         "warm_hits": 3, "fragments": 3},
    ],
    "cold_total_seconds": 0.0017,
    "warm_total_seconds": 0.0002,
    "aggregate_speedup": 6.8,
    "store": {"records": 7, "bytes": 12_000},
    "machine": {"python": "3.11.7", "cpu_count": 1},
}


class TestWarmstartRecordShape:
    """The warm-start record flows through the generic gate unchanged."""

    def doctored(self, **changes):
        doc = copy.deepcopy(WARMSTART)
        doc.update(changes)
        return doc

    def test_flattening(self):
        metrics = flatten_metrics(WARMSTART)
        assert metrics["rows.gzip.speedup"] == 6.4
        assert metrics["rows.mcf.warm_hits"] == 3
        assert metrics["aggregate_speedup"] == 6.8
        assert not any(name.startswith("store") for name in metrics)

    def test_self_compare_passes(self):
        assert compare_benchmarks(WARMSTART,
                                  copy.deepcopy(WARMSTART)).ok

    def test_speedup_drop_regresses(self):
        comparison = compare_benchmarks(
            WARMSTART, self.doctored(aggregate_speedup=4.0))
        assert [d.name for d in comparison.regressions] == \
            ["aggregate_speedup"]

    def test_warm_hit_drift_regresses_exactly(self):
        doc = self.doctored()
        doc["rows"][0]["warm_hits"] = 3
        comparison = compare_benchmarks(WARMSTART, doc)
        assert [d.name for d in comparison.regressions] == \
            ["rows.gzip.warm_hits"]

    def test_store_growth_is_not_gated(self):
        doc = self.doctored(store={"records": 99, "bytes": 10**9})
        assert compare_benchmarks(WARMSTART, doc).ok


class TestCompare:
    def test_self_compare_passes(self):
        comparison = compare_benchmarks(BASELINE, copy.deepcopy(BASELINE))
        assert comparison.ok
        assert comparison.skipped is None
        assert not comparison.regressions

    def test_ten_percent_slowdown_regresses(self):
        current = doctored(specialized_total_seconds=0.115)
        comparison = compare_benchmarks(BASELINE, current)
        assert not comparison.ok
        names = [d.name for d in comparison.regressions]
        assert names == ["specialized_total_seconds"]

    def test_small_jitter_tolerated(self):
        current = doctored(specialized_total_seconds=0.104)
        assert compare_benchmarks(BASELINE, current).ok

    def test_speedup_drop_regresses(self):
        current = doctored(aggregate_speedup=2.0)
        comparison = compare_benchmarks(BASELINE, current)
        assert [d.name for d in comparison.regressions] == \
            ["aggregate_speedup"]

    def test_speedup_gain_is_improvement(self):
        current = doctored(aggregate_speedup=3.0)
        comparison = compare_benchmarks(BASELINE, current)
        assert comparison.ok
        (delta,) = [d for d in comparison.deltas
                    if d.name == "aggregate_speedup"]
        assert delta.verdict == "improved"

    def test_count_drift_regresses_exactly(self):
        current = doctored(run_points_executed=17)
        comparison = compare_benchmarks(BASELINE, current)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.kind == "exact"

    def test_machine_mismatch_warns_not_fails(self):
        current = doctored(machine={"python": "3.12.1", "cpu_count": 8},
                           specialized_total_seconds=9.99)
        comparison = compare_benchmarks(BASELINE, current)
        assert comparison.ok
        assert "different machines" in comparison.skipped

    def test_missing_machine_metadata_skips(self):
        current = doctored()
        del current["machine"]
        comparison = compare_benchmarks(BASELINE, current)
        assert comparison.ok
        assert "machine metadata" in comparison.skipped

    def test_context_mismatch_skips(self):
        current = doctored(budget=10_000, specialized_total_seconds=9.99)
        comparison = compare_benchmarks(BASELINE, current)
        assert comparison.ok
        assert "budget" in comparison.skipped

    def test_missing_metric_warns(self):
        current = doctored()
        del current["telemetry_on_ratio"]
        comparison = compare_benchmarks(BASELINE, current)
        assert comparison.ok
        assert any("telemetry_on_ratio" in w for w in comparison.warnings)

    def test_render_lines_name_result(self):
        lines = compare_benchmarks(BASELINE, BASELINE).render_lines()
        assert lines[-1].startswith("result: OK")
        lines = compare_benchmarks(
            BASELINE, doctored(specialized_total_seconds=0.2)).render_lines()
        assert lines[-1].startswith("result: REGRESSED")

    def test_machine_metadata_shape(self):
        block = machine_metadata()
        assert set(block) == {"python", "implementation", "cpu_count",
                              "platform", "machine"}


class TestBenchCompareCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_records_exit_zero(self, tmp_path):
        path = self.write(tmp_path, "base.json", BASELINE)
        code, text = self.run_cli("bench-compare", path, path)
        assert code == 0
        assert "result: OK" in text

    def test_doctored_slowdown_exits_nonzero(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        slow = self.write(tmp_path, "slow.json",
                          doctored(specialized_total_seconds=0.115))
        code, text = self.run_cli("bench-compare", base, slow)
        assert code == 1
        assert "regressed" in text

    def test_committed_baseline_self_compares_clean(self):
        import pathlib

        record = str(pathlib.Path(__file__).resolve().parent.parent
                     / "BENCH_exec.json")
        code, text = self.run_cli("bench-compare", record, record)
        assert code == 0
        assert "result: OK" in text

    def test_unreadable_file_exits_two(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        code, text = self.run_cli("bench-compare", base,
                                  str(tmp_path / "missing.json"))
        assert code == 2

    def test_cross_machine_warns_and_exits_zero(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        other = self.write(
            tmp_path, "other.json",
            doctored(machine={"python": "3.12.1", "cpu_count": 64},
                     specialized_total_seconds=42.0))
        code, text = self.run_cli("bench-compare", base, other)
        assert code == 0
        assert "gate skipped" in text

    def test_tolerance_flag_widens_gate(self, tmp_path):
        base = self.write(tmp_path, "base.json", BASELINE)
        slow = self.write(tmp_path, "slow.json",
                          doctored(specialized_total_seconds=0.115))
        code, _text = self.run_cli("bench-compare", base, slow,
                                   "--tolerance", "0.25")
        assert code == 0
