"""I-ISA size model tests (Sections 2.1 and 2.3)."""

import pytest

from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.ildp_isa.sizes import instruction_size


def alu(**kwargs):
    return IInstruction(IOp.ALU, op="addq", acc=0, src_a="acc",
                        **kwargs)


class TestBasicFormat:
    def test_short_alu_is_16_bit(self):
        assert instruction_size(alu(src_b="gpr", gpr=5),
                                IFormat.BASIC) == 2

    def test_short_literal_is_16_bit(self):
        assert instruction_size(alu(src_b="imm", imm=31, islit=True),
                                IFormat.BASIC) == 2

    def test_wide_literal_is_32_bit(self):
        assert instruction_size(alu(src_b="imm", imm=32, islit=True),
                                IFormat.BASIC) == 4

    def test_copies_are_16_bit(self):
        copy_to = IInstruction(IOp.COPY_TO_GPR, acc=0, gpr=5)
        copy_from = IInstruction(IOp.COPY_FROM_GPR, acc=0, gpr=5)
        assert instruction_size(copy_to, IFormat.BASIC) == 2
        assert instruction_size(copy_from, IFormat.BASIC) == 2

    def test_plain_load_is_16_bit(self):
        load = IInstruction(IOp.LOAD, acc=0, addr_src="acc")
        assert instruction_size(load, IFormat.BASIC) == 2

    def test_fused_displacement_load_is_32_bit(self):
        load = IInstruction(IOp.LOAD, acc=0, addr_src="gpr", gpr=2, imm=16)
        assert instruction_size(load, IFormat.BASIC) == 4

    def test_branches_are_32_bit(self):
        branch = IInstruction(IOp.BRANCH, op="bne", cond_src="acc", acc=0)
        assert instruction_size(branch, IFormat.BASIC) == 4

    def test_embedded_address_ops_are_64_bit(self):
        for iop in (IOp.SET_VPC_BASE, IOp.SAVE_VRA, IOp.LOAD_EMB,
                    IOp.CALL_TRANSLATOR, IOp.PUSH_RAS):
            instr = IInstruction(iop, acc=0, gpr=26, vtarget=0x1000)
            assert instruction_size(instr, IFormat.BASIC) == 8


class TestModifiedFormat:
    def test_dest_gpr_forces_32_bit(self):
        instr = alu(src_b="gpr", gpr=5, dest_gpr=3)
        assert instruction_size(instr, IFormat.MODIFIED) == 4

    def test_shared_specifier_stays_16_bit(self):
        # Fig. 2d's accumulate form: R17(A1) <- R17 - 1
        instr = IInstruction(IOp.ALU, op="subq", acc=1, src_a="gpr",
                             gpr=17, src_b="imm", imm=1, islit=True,
                             dest_gpr=17)
        assert instruction_size(instr, IFormat.MODIFIED) == 2

    def test_temp_dest_stays_16_bit(self):
        instr = alu(src_b="gpr", gpr=5)  # no dest_gpr: a temp
        assert instruction_size(instr, IFormat.MODIFIED) == 2


class TestAlphaFormat:
    def test_everything_is_32_bit(self):
        instr = alu(src_b="gpr", gpr=5, dest_gpr=3)
        assert instruction_size(instr, IFormat.ALPHA) == 4

    def test_embedded_addresses_are_pairs(self):
        instr = IInstruction(IOp.LOAD_EMB, acc=0, vtarget=0x1000)
        assert instruction_size(instr, IFormat.ALPHA) == 8
