"""Tests for the report generator and the translation-cache dump tool."""

import io

import pytest

from repro.harness.report import REPORT_SECTIONS, generate_report
from repro.harness.runner import run_vm
from repro.tcache.dump import (
    cache_totals_line,
    fragment_map,
    print_fragment_map,
)
from repro.vm.config import VMConfig


class TestReport:
    def test_single_section(self):
        text = generate_report(workloads=("gzip",), budget=15_000,
                               sections=["fig5"])
        assert "# Reproduction report" in text
        assert "straightened instruction count" in text
        assert "| gzip |" in text

    def test_progress_callback(self):
        seen = []
        generate_report(workloads=("gzip",), budget=15_000,
                        sections=["fig5"],
                        progress=lambda name, dt: seen.append(name))
        assert seen == ["fig5"]

    def test_all_sections_registered(self):
        from repro.harness import experiments

        for name, _title in REPORT_SECTIONS:
            assert hasattr(experiments, name)

    def test_notes_italicised(self):
        text = generate_report(workloads=("gzip",), budget=15_000,
                               sections=["overhead"])
        assert "*paper:" in text


class TestFragmentMap:
    @pytest.fixture(scope="class")
    def tcache(self):
        return run_vm("gap", budget=40_000, collect_trace=False).tcache

    def test_header_totals(self, tcache):
        lines = fragment_map(tcache)
        assert str(len(tcache.fragments)) in lines[1]
        assert str(tcache.total_code_bytes()) in lines[1]

    def test_header_reports_patches_and_invalidations(self, tcache):
        line = cache_totals_line(tcache)
        assert f"{tcache.patches_applied} patches applied" in line
        assert f"{tcache.invalidations} invalidations" in line
        assert f"{tcache.flush_count} flushes" in line
        # the fragment-map header embeds the same totals line
        assert fragment_map(tcache)[1] == line

    def test_invalidations_survive_flush(self, tcache):
        import copy

        snapshot = copy.deepcopy(tcache)
        before = snapshot.invalidations
        snapshot.flush()
        assert snapshot.patches_applied == 0
        assert snapshot.invalidations == before

    def test_one_line_per_fragment(self, tcache):
        lines = fragment_map(tcache)
        assert len(lines) == 4 + len(tcache.fragments)

    def test_print_to_stream(self, tcache):
        out = io.StringIO()
        print_fragment_map(tcache, out=out)
        assert "translation cache" in out.getvalue()

    def test_map_cli(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(["map", "gzip", "--budget", "20000"], out=out)
        assert code == 0
        assert "fragments" in out.getvalue()


class TestStatsReport:
    def test_render_lines_cover_summary(self):
        stats = run_vm("gzip", budget=20_000, collect_trace=False).stats
        lines = stats.render_lines()
        summary = stats.summary()
        assert len(lines) == len(summary)
        for line, (name, value) in zip(lines, summary.items()):
            assert line.startswith(name)
            assert line.endswith(f"= {value}")

    def test_render_lines_aligned(self):
        stats = run_vm("gzip", budget=20_000, collect_trace=False).stats
        columns = {line.index("=") for line in stats.render_lines()}
        assert len(columns) == 1
