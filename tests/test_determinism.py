"""Determinism: identical inputs must produce identical results everywhere.

The whole evaluation depends on run-to-run reproducibility — no wall-clock,
no global random state, no dict-order sensitivity.
"""

import pytest

from repro.harness.runner import run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import ildp_config, SUPERSCALAR
from repro.uarch.ildp import ILDPModel
from repro.uarch.ildp_cycle import CycleILDPModel
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.config import VMConfig


def _run(fmt=IFormat.MODIFIED):
    return run_vm("gzip", VMConfig(fmt=fmt), budget=15_000)


class TestDeterminism:
    def test_vm_runs_identical(self):
        a = _run()
        b = _run()
        assert a.stats.summary() == b.stats.summary()
        assert len(a.trace) == len(b.trace)
        for left, right in zip(a.trace, b.trace):
            assert left.address == right.address
            assert left.op_class == right.op_class
            assert left.taken == right.taken

    def test_fragment_layout_identical(self):
        a = _run(IFormat.BASIC)
        b = _run(IFormat.BASIC)
        assert [f.base_address for f in a.tcache.fragments] == \
            [f.base_address for f in b.tcache.fragments]
        assert [f.byte_size for f in a.tcache.fragments] == \
            [f.byte_size for f in b.tcache.fragments]

    def test_timing_models_deterministic(self):
        trace = _run().trace
        assert ILDPModel(ildp_config(8, 0)).run(trace).cycles == \
            ILDPModel(ildp_config(8, 0)).run(trace).cycles
        assert CycleILDPModel(ildp_config(8, 0)).run(trace).cycles == \
            CycleILDPModel(ildp_config(8, 0)).run(trace).cycles
        assert SuperscalarModel(SUPERSCALAR).run(trace).cycles == \
            SuperscalarModel(SUPERSCALAR).run(trace).cycles

    def test_cost_model_deterministic(self):
        a = _run()
        b = _run()
        assert a.vm.cost_model.total == b.vm.cost_model.total
        assert dict(a.vm.cost_model.by_phase) == \
            dict(b.vm.cost_model.by_phase)
