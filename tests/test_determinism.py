"""Determinism: identical inputs must produce identical results everywhere.

The whole evaluation depends on run-to-run reproducibility — no wall-clock,
no global random state, no dict-order sensitivity.
"""

import pytest

from repro.harness.runner import run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import ildp_config, SUPERSCALAR
from repro.uarch.ildp import ILDPModel
from repro.uarch.ildp_cycle import CycleILDPModel
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.config import VMConfig


def _run(fmt=IFormat.MODIFIED):
    return run_vm("gzip", VMConfig(fmt=fmt), budget=15_000)


class TestDeterminism:
    def test_vm_runs_identical(self):
        a = _run()
        b = _run()
        assert a.stats.summary() == b.stats.summary()
        assert len(a.trace) == len(b.trace)
        for left, right in zip(a.trace, b.trace):
            assert left.address == right.address
            assert left.op_class == right.op_class
            assert left.taken == right.taken

    def test_fragment_layout_identical(self):
        a = _run(IFormat.BASIC)
        b = _run(IFormat.BASIC)
        assert [f.base_address for f in a.tcache.fragments] == \
            [f.base_address for f in b.tcache.fragments]
        assert [f.byte_size for f in a.tcache.fragments] == \
            [f.byte_size for f in b.tcache.fragments]

    def test_timing_models_deterministic(self):
        trace = _run().trace
        assert ILDPModel(ildp_config(8, 0)).run(trace).cycles == \
            ILDPModel(ildp_config(8, 0)).run(trace).cycles
        assert CycleILDPModel(ildp_config(8, 0)).run(trace).cycles == \
            CycleILDPModel(ildp_config(8, 0)).run(trace).cycles
        assert SuperscalarModel(SUPERSCALAR).run(trace).cycles == \
            SuperscalarModel(SUPERSCALAR).run(trace).cycles

    def test_cost_model_deterministic(self):
        a = _run()
        b = _run()
        assert a.vm.cost_model.total == b.vm.cost_model.total
        assert dict(a.vm.cost_model.by_phase) == \
            dict(b.vm.cost_model.by_phase)


def _corpus_digest(directory):
    import hashlib
    import os

    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            digest.update(name.encode())
            digest.update(handle.read())
    return digest.hexdigest()


class TestFuzzSeedStability:
    """Identical seed + generator version → byte-identical fuzz corpus,
    across calls, across processes, and regardless of worker count."""

    def test_generate_identical_across_calls(self):
        from repro.fuzz.gen import generate

        a = generate(5, 3)
        b = generate(5, 3)
        assert a.words == b.words
        assert a.data == b.data
        assert a.to_bytes() == b.to_bytes()

    def test_corpus_identical_across_processes(self, tmp_path):
        import os
        import subprocess
        import sys

        from repro.fuzz.campaign import run_campaign

        local = tmp_path / "local"
        result = run_campaign(3, 11, corpus_dir=str(local))
        assert result.ok

        remote = tmp_path / "remote"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "src")
        script = ("from repro.fuzz.campaign import run_campaign; "
                  f"run_campaign(3, 11, corpus_dir={str(remote)!r})")
        subprocess.run([sys.executable, "-c", script], check=True,
                       env=env, timeout=300)
        assert _corpus_digest(local) == _corpus_digest(remote)

    def test_corpus_identical_across_worker_counts(self, tmp_path):
        from repro.fuzz.campaign import run_campaign

        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        run_campaign(4, 13, corpus_dir=str(serial), workers=1)
        run_campaign(4, 13, corpus_dir=str(parallel), workers=4)
        assert _corpus_digest(serial) == _corpus_digest(parallel)
