"""Assembler tests: directives, pseudos, symbols, and error reporting."""

import pytest

from repro.asm import AsmError, assemble
from repro.isa.encoding import decode


def _decode_at(program, address):
    return decode(program.memory.load(address, 4))


class TestBasics:
    def test_entry_defaults_to_text_base(self):
        program = assemble("  addq r1, r2, r3\n  call_pal halt")
        assert program.entry == program.text_base

    def test_start_symbol_sets_entry(self):
        program = assemble("""
            nop
_start:     call_pal halt
        """)
        assert program.entry == program.text_base + 4

    def test_instruction_encoding_in_memory(self):
        program = assemble("  addq r1, r2, r3")
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "addq"
        assert (instr.ra, instr.rb, instr.rc) == (1, 2, 3)

    def test_operate_literal(self):
        program = assemble("  subq r1, 42, r3")
        instr = _decode_at(program, program.text_base)
        assert instr.islit and instr.imm == 42

    def test_memory_operand(self):
        program = assemble("  ldq r3, -16(r30)")
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "ldq"
        assert (instr.ra, instr.rb, instr.imm) == (3, 30, -16)

    def test_branch_displacement(self):
        program = assemble("""
loop:       nop
            bne r1, loop
        """)
        branch = _decode_at(program, program.text_base + 4)
        # target = pc + 4 + 4*disp = base  ->  disp = -2
        assert branch.imm == -2

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; full-line comment
            addq r1, r2, r3   # trailing comment

            call_pal halt
        """)
        assert _decode_at(program, program.text_base).mnemonic == "addq"


class TestDirectives:
    def test_quad_long_word_byte(self):
        program = assemble("""
            .data
q:          .quad 0x1122334455667788
l:          .long 0xAABBCCDD
w:          .word 0x1234
b:          .byte 0x56
        """)
        base = program.symbols["q"]
        assert program.memory.load(base, 8) == 0x1122334455667788
        assert program.memory.load(program.symbols["l"], 4) == 0xAABBCCDD
        assert program.memory.load(program.symbols["w"], 2) == 0x1234
        assert program.memory.load(program.symbols["b"], 1) == 0x56

    def test_space_with_fill(self):
        program = assemble("""
            .data
buf:        .space 8, 0xAB
        """)
        assert program.memory.read_bytes(program.symbols["buf"], 8) == \
            b"\xab" * 8

    def test_align(self):
        program = assemble("""
            .data
            .byte 1
            .align 8
q:          .quad 5
        """)
        assert program.symbols["q"] % 8 == 0

    def test_ascii_and_asciz(self):
        program = assemble("""
            .data
s:          .asciz "hi\\n"
        """)
        assert program.memory.read_bytes(program.symbols["s"], 4) == \
            b"hi\n\x00"

    def test_quad_of_symbol(self):
        program = assemble("""
            .text
target:     nop
            .data
p:          .quad target
        """)
        assert program.memory.load(program.symbols["p"], 8) == \
            program.symbols["target"]


class TestPseudos:
    def test_mov_expands_to_bis(self):
        program = assemble("  mov r4, r5")
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "bis"
        assert (instr.ra, instr.rb, instr.rc) == (4, 4, 5)

    def test_li_small(self):
        program = assemble("  li r4, 200")
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "bis" and instr.imm == 200

    def test_li_16bit(self):
        program = assemble("  li r4, -2000")
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "lda" and instr.imm == -2000

    def test_li_32bit_pair(self):
        program = assemble("  li r4, 0x12345678")
        first = _decode_at(program, program.text_base)
        second = _decode_at(program, program.text_base + 4)
        assert first.mnemonic == "ldah"
        assert second.mnemonic == "lda"

    def test_la_resolves_symbol(self):
        program = assemble("""
            la r4, var
            .data
var:        .quad 0
        """)
        # ldah+lda must compute the symbol's address
        first = _decode_at(program, program.text_base)
        second = _decode_at(program, program.text_base + 4)
        value = ((first.imm * 65536) + second.imm)
        assert value == program.symbols["var"]

    def test_bare_ret(self):
        program = assemble("  ret")
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "ret"
        assert (instr.ra, instr.rb) == (31, 26)

    def test_bsr_default_link(self):
        program = assemble("""
            bsr fn
fn:         ret
        """)
        instr = _decode_at(program, program.text_base)
        assert instr.mnemonic == "bsr" and instr.ra == 26

    def test_nop_clr_not_negq(self):
        program = assemble("""
            nop
            clr r7
            not r1, r2
            negq r3, r4
        """)
        base = program.text_base
        assert _decode_at(program, base).rc == 31
        assert _decode_at(program, base + 4).rc == 7
        assert _decode_at(program, base + 8).mnemonic == "ornot"
        assert _decode_at(program, base + 12).mnemonic == "subq"


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("  frobnicate r1, r2")

    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("  br nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="duplicate label"):
            assemble("x:  nop\nx:  nop")

    def test_instruction_in_data_section(self):
        with pytest.raises(AsmError, match="outside .text"):
            assemble("  .data\n  addq r1, r2, r3")

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble("  addq r99, r2, r3")

    def test_li_out_of_range(self):
        with pytest.raises(AsmError):
            assemble("  li r1, 0x1_0000_0000_0000")

    def test_misaligned_branch_target(self):
        with pytest.raises(AsmError):
            assemble("""
                br spot
                .data
                .byte 1
spot:           .byte 1
            """)


class TestLayout:
    def test_stack_symbol_present(self):
        program = assemble("  nop")
        assert "__stack_top" in program.symbols

    def test_text_range(self):
        program = assemble("  nop\n  nop\n  nop")
        base, end = program.text_range()
        assert end - base == 12
