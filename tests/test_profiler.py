"""MRET hotness profiler tests."""

import pytest

from repro.interp.profiler import CandidateKind, HotnessProfiler


class TestProfiler:
    def test_non_candidates_ignored(self):
        profiler = HotnessProfiler(threshold=3)
        assert not profiler.record_execution(0x1000)
        assert not profiler.is_candidate(0x1000)

    def test_candidate_becomes_hot_at_threshold(self):
        profiler = HotnessProfiler(threshold=3)
        profiler.note_candidate(0x1000, CandidateKind.INDIRECT_TARGET)
        assert not profiler.record_execution(0x1000)
        assert not profiler.record_execution(0x1000)
        assert profiler.record_execution(0x1000)   # exactly at threshold
        assert profiler.is_hot(0x1000)

    def test_hot_fires_once(self):
        profiler = HotnessProfiler(threshold=2)
        profiler.note_candidate(0x1000, CandidateKind.BACKWARD_BRANCH_TARGET)
        profiler.record_execution(0x1000)
        assert profiler.record_execution(0x1000)
        assert not profiler.record_execution(0x1000)  # only fires at ==

    def test_note_candidate_idempotent(self):
        profiler = HotnessProfiler(threshold=5)
        profiler.note_candidate(0x1000, CandidateKind.INDIRECT_TARGET)
        profiler.record_execution(0x1000)
        profiler.note_candidate(0x1000, CandidateKind.FRAGMENT_EXIT)
        assert profiler.candidate_kind(0x1000) is \
            CandidateKind.INDIRECT_TARGET
        assert profiler.candidate_count() == 1

    def test_reset(self):
        profiler = HotnessProfiler(threshold=2)
        profiler.note_candidate(0x1000, CandidateKind.FRAGMENT_EXIT)
        profiler.record_execution(0x1000)
        profiler.record_execution(0x1000)
        profiler.reset(0x1000)
        assert not profiler.is_hot(0x1000)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HotnessProfiler(threshold=0)
