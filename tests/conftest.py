"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.interp import Interpreter
from repro.translator.chaining import ChainingPolicy
from repro.vm import CoDesignedVM, VMConfig

#: The paper's Fig. 2 kernel (the 164.gzip inner loop), wrapped in enough
#: scaffolding to run: a CRC pass over a byte buffer through a table.
FIG2_KERNEL = """
        .text
_start: la   r16, buf
        la   r0, table
        li   r17, 200
        clr  r1
loop:   ldbu r3, 0(r16)
        subl r17, 1, r17
        lda  r16, 1(r16)
        xor  r1, r3, r3
        srl  r1, 8, r1
        and  r3, 0xff, r3
        s8addq r3, r0, r3
        ldq  r3, 0(r3)
        xor  r3, r1, r1
        bne  r17, loop
        and  r1, 0x7f, r16
        call_pal putc
        call_pal halt
        .data
buf:    .space 256, 7
        .align 8
table:  .space 2048, 3
"""

#: A call/return-heavy program exercising BSR/RET and the RAS.
CALL_KERNEL = """
        .text
_start: br   main
double: addq r16, r16, r0
        ret
incr:   addq r16, 1, r0
        ret
main:   li   r15, 120
        clr  r14
loop:   mov  r14, r16
        bsr  r26, double
        mov  r0, r16
        bsr  r26, incr
        mov  r0, r14
        subq r15, 1, r15
        bne  r15, loop
        and  r14, 0x7f, r16
        call_pal putc
        call_pal halt
"""

ALL_FORMATS = (IFormat.BASIC, IFormat.MODIFIED, IFormat.ALPHA)
ALL_POLICIES = (ChainingPolicy.NO_PRED, ChainingPolicy.SW_PRED_NO_RAS,
                ChainingPolicy.SW_PRED_RAS)


def run_reference(source, max_instructions=1_000_000):
    """Interpret a program to completion; returns the interpreter."""
    interp = Interpreter(assemble(source))
    interp.run(max_instructions=max_instructions)
    return interp


def run_cosim(source, config, max_v_instructions=1_000_000):
    """Run a program under the co-designed VM; returns the VM."""
    vm = CoDesignedVM(assemble(source), config)
    vm.run(max_v_instructions=max_v_instructions)
    return vm


def assert_cosim_equivalent(source, config, max_instructions=1_000_000):
    """The VM must produce the reference's console and register state."""
    reference = run_reference(source, max_instructions)
    vm = run_cosim(source, config, max_instructions)
    assert vm.halted, "VM did not halt"
    assert vm.interpreter.console == reference.console
    assert vm.state.regs == reference.state.regs, \
        vm.state.diff(reference.state)
    return vm


@pytest.fixture
def fig2_program():
    return assemble(FIG2_KERNEL)


@pytest.fixture
def fig2_source():
    return FIG2_KERNEL


@pytest.fixture
def call_source():
    return CALL_KERNEL
