"""Translation cost model tests (Section 4.2)."""

import pytest

from repro.translator.cost import PHASE_WEIGHTS, TranslationCostModel


class TestCostModel:
    def test_charges_accumulate(self):
        cost = TranslationCostModel()
        cost.charge("codegen", 10)
        assert cost.total == 10 * PHASE_WEIGHTS["codegen"]

    def test_per_translated_instruction(self):
        cost = TranslationCostModel()
        cost.charge("codegen", 10)
        cost.note_fragment(source_instruction_count=20)
        expected = (10 * PHASE_WEIGHTS["codegen"]
                    + PHASE_WEIGHTS["fragment_overhead"]) / 20
        assert cost.per_translated_instruction() == pytest.approx(expected)

    def test_zero_translations_safe(self):
        cost = TranslationCostModel()
        assert cost.per_translated_instruction() == 0.0
        assert cost.phase_fraction("codegen") == 0.0

    def test_phase_fraction(self):
        cost = TranslationCostModel(weights={"a": 10, "b": 30})
        cost.charge("a", 1)
        cost.charge("b", 1)
        assert cost.phase_fraction("a") == pytest.approx(0.25)

    def test_unknown_phase_rejected(self):
        cost = TranslationCostModel()
        with pytest.raises(KeyError):
            cost.charge("nonsense")

    def test_fragment_counting(self):
        cost = TranslationCostModel()
        cost.note_fragment(5)
        cost.note_fragment(7)
        assert cost.fragments == 2
        assert cost.translated_source_instructions == 12


class TestCalibration:
    """The calibration targets from the paper (checked loosely here; the
    benchmark harness reports the per-suite numbers)."""

    def test_suite_lands_near_paper_scale(self):
        from repro.harness.runner import run_vm

        result = run_vm("gzip", budget=80_000, collect_trace=False)
        per_inst = result.vm.cost_model.per_translated_instruction()
        assert 400 < per_inst < 3000  # paper: ~1,125

    def test_tcache_copy_share_near_twenty_percent(self):
        from repro.harness.runner import run_vm

        result = run_vm("gzip", budget=80_000, collect_trace=False)
        share = result.vm.cost_model.phase_fraction("tcache_copy")
        assert 0.10 < share < 0.35   # paper: ~20%
