"""Interpreter tests: control flow, memory, PAL services, traps."""

import pytest

from repro.asm import assemble
from repro.interp import Halted, Interpreter
from repro.isa.semantics import Trap, TrapKind
from repro.utils.bitops import MASK64


def run(source, max_instructions=100_000):
    interp = Interpreter(assemble(source))
    interp.run(max_instructions=max_instructions)
    return interp


class TestArithmeticPrograms:
    def test_simple_sum(self):
        interp = run("""
            li r1, 10
            li r2, 32
            addq r1, r2, r3
            call_pal halt
        """)
        assert interp.state.regs[3] == 42

    def test_loop_sum(self):
        interp = run("""
            li r1, 100
            clr r2
loop:       addq r2, r1, r2
            subq r1, 1, r1
            bne r1, loop
            call_pal halt
        """)
        assert interp.state.regs[2] == 5050

    def test_r31_always_zero(self):
        interp = run("""
            li r1, 5
            addq r1, r1, r31
            mov r31, r2
            call_pal halt
        """)
        assert interp.state.regs[2] == 0
        assert interp.state.regs[31] == 0

    def test_negative_wraps(self):
        interp = run("""
            clr r1
            subq r1, 1, r1
            call_pal halt
        """)
        assert interp.state.regs[1] == MASK64


class TestMemoryPrograms:
    def test_store_load(self):
        interp = run("""
            la r1, var
            li r2, 123
            stq r2, 0(r1)
            ldq r3, 0(r1)
            call_pal halt
            .data
var:        .quad 0
        """)
        assert interp.state.regs[3] == 123

    def test_ldl_sign_extends(self):
        interp = run("""
            la r1, var
            ldl r2, 0(r1)
            call_pal halt
            .data
var:        .long 0x80000000
        """)
        assert interp.state.regs[2] == 0xFFFFFFFF80000000

    def test_ldbu_zero_extends(self):
        interp = run("""
            la r1, var
            ldbu r2, 0(r1)
            call_pal halt
            .data
var:        .byte 0xFF
        """)
        assert interp.state.regs[2] == 0xFF

    def test_ldah_scales(self):
        interp = run("""
            ldah r1, 2(r31)
            call_pal halt
        """)
        assert interp.state.regs[1] == 0x20000


class TestControlFlow:
    def test_bsr_links_and_ret_returns(self):
        interp = run("""
            br main
fn:         li r0, 7
            ret
main:       bsr r26, fn
            addq r0, 1, r0
            call_pal halt
        """)
        assert interp.state.regs[0] == 8

    def test_jsr_indirect(self):
        interp = run("""
            la r27, fnp
            ldq r27, 0(r27)
            jsr r26, (r27)
            call_pal halt
fn:         li r0, 99
            ret
            .data
fnp:        .quad fn
        """)
        assert interp.state.regs[0] == 99

    def test_conditional_not_taken(self):
        interp = run("""
            clr r1
            bne r1, skip
            li r2, 1
skip:       call_pal halt
        """)
        assert interp.state.regs[2] == 1

    def test_cmov(self):
        interp = run("""
            li r1, 1
            li r2, 10
            li r3, 20
            cmovne r1, r2, r3
            cmoveq r1, 99, r2
            call_pal halt
        """)
        assert interp.state.regs[3] == 10   # condition true: moved
        assert interp.state.regs[2] == 10   # condition false: unchanged


class TestPalAndTraps:
    def test_putc_console(self):
        interp = run("""
            li r16, 65
            call_pal putc
            li r16, 66
            call_pal putc
            call_pal halt
        """)
        assert interp.console_text() == "AB"

    def test_gentrap_raises(self):
        interp = Interpreter(assemble("""
            nop
            call_pal gentrap
        """))
        with pytest.raises(Trap) as excinfo:
            interp.run()
        assert excinfo.value.kind is TrapKind.GENTRAP

    def test_access_violation_has_vpc(self):
        interp = Interpreter(assemble("""
            li r1, 0x400000
            ldq r2, 0(r1)
        """))
        with pytest.raises(Trap) as excinfo:
            interp.run()
        assert excinfo.value.kind is TrapKind.ACCESS_VIOLATION
        assert excinfo.value.vpc == interp.state.pc

    def test_halt_stops_step(self):
        interp = Interpreter(assemble("  call_pal halt"))
        with pytest.raises(Halted):
            interp.step()

    def test_events_report_branches(self):
        interp = Interpreter(assemble("""
            clr r1
            beq r1, target
            nop
target:     call_pal halt
        """))
        interp.step()
        event = interp.step()
        assert event.taken
        assert event.next_pc == event.pc + 8

    def test_decode_cache_keyed_by_word(self):
        # two textually identical instructions at different PCs share one
        # content-keyed cache entry
        interp = Interpreter(assemble("""
            addq r1, 1, r1
            addq r1, 1, r1
            call_pal halt
        """))
        first = interp.fetch(interp.state.pc)
        second = interp.fetch(interp.state.pc + 4)
        assert first is second

    def test_decode_cache_shared_between_interpreters(self):
        source = """
            li r1, 3
loop:       subq r1, 1, r1
            bne r1, loop
            call_pal halt
        """
        a = Interpreter(assemble(source))
        b = Interpreter(assemble(source))
        assert a.fetch(a.state.pc) is b.fetch(b.state.pc)

    def test_decode_cache_sees_code_rewrite(self):
        # a stale entry must not survive a code rewrite: the word is the
        # key, so a rewritten instruction decodes as its new self
        from repro.isa.encoding import encode
        from repro.isa.instruction import Instruction

        interp = Interpreter(assemble("""
            addq r1, 1, r1
            call_pal halt
        """))
        pc = interp.state.pc
        before = interp.fetch(pc)
        assert before.mnemonic == "addq"
        word = encode(Instruction("subq", ra=2, rb=3, rc=4))
        interp.memory.store(pc, word, 4)
        after = interp.fetch(pc)
        assert after.mnemonic == "subq"
        assert (after.ra, after.rb, after.rc) == (2, 3, 4)
