"""Smoke tests: every example script must run and print what it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "dynamic expansion" in proc.stdout
        assert "modified accumulator I-ISA" in proc.stdout

    def test_fig2_translation(self):
        proc = run_example("fig2_translation.py")
        assert proc.returncode == 0, proc.stderr
        assert "(c) basic I-ISA translation" in proc.stdout
        assert "(d) modified I-ISA translation" in proc.stdout
        assert "4 copies" in proc.stdout         # the paper's Fig. 2c
        assert "0 copies" in proc.stdout         # ... and Fig. 2d

    def test_precise_traps(self):
        proc = run_example("precise_traps.py")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("matches reference: True") == 2

    def test_chaining_study(self):
        proc = run_example("chaining_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "no_pred" in proc.stdout
        assert "sw_pred.ras" in proc.stdout

    def test_ipc_study(self):
        proc = run_example("ipc_study.py", "mcf")
        assert proc.returncode == 0, proc.stderr
        assert "ILDP parameter sweep" in proc.stdout

    def test_custom_workload(self):
        proc = run_example("custom_workload.py")
        assert proc.returncode == 0, proc.stderr
        assert "THE QUICK BROWN FOX" in proc.stdout
