"""Equivalence and caching properties of the parallel run layer.

The contract: serial execution, process-pool execution, and cache-answered
execution are indistinguishable — the experiment tables they produce are
byte-identical — and the cache key covers everything that can change a
result (config, budget, scale, evals), so any such change is a miss.
"""

import json
import pathlib

import pytest

from repro.harness.experiments import fig5, fig8
from repro.harness.parallel import PointRunner
from repro.harness.resultcache import ResultCache, point_key
from repro.harness.runpoints import RunPoint, execute_point, ildp_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig

WORKLOADS = ("gzip", "mcf")
BUDGET = 20_000


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path))


def _point(workload="gzip", budget=BUDGET, **config_kwargs):
    return RunPoint.vm(workload, VMConfig(**config_kwargs), budget=budget)


class TestExecutionEquivalence:
    def test_serial_parallel_cached_tables_identical(self, cache):
        serial = fig5.run(workloads=WORKLOADS, budget=BUDGET,
                          runner=PointRunner()).render()
        parallel = fig5.run(workloads=WORKLOADS, budget=BUDGET,
                            runner=PointRunner(workers=2)).render()

        warm = PointRunner(cache=cache)
        first = fig5.run(workloads=WORKLOADS, budget=BUDGET,
                         runner=warm).render()
        second = fig5.run(workloads=WORKLOADS, budget=BUDGET,
                          runner=warm).render()

        assert parallel == serial
        assert first == serial
        assert second == serial

    def test_pool_and_serial_summaries_bit_identical(self):
        points = [_point("gzip"), _point("mcf")]
        serial = [execute_point(p) for p in points]
        runner = PointRunner(workers=2)
        pooled = runner.run(points)
        # elapsed and telemetry_host are wall-clock / process-local
        # measurements, everything else is determined
        for a, b in zip(serial, pooled):
            a, b = dict(a), dict(b)
            a.pop("elapsed"), b.pop("elapsed")
            a.pop("telemetry_host"), b.pop("telemetry_host")
            assert json.loads(json.dumps(a)) == json.loads(json.dumps(b))

    def test_warm_cache_answers_every_point(self, cache):
        runner = PointRunner(cache=cache)
        fig8.run(workloads=WORKLOADS, budget=BUDGET, runner=runner)
        executed_cold = runner.last_report["executed"]
        assert executed_cold > 0

        rerun = PointRunner(cache=ResultCache(cache.root))
        fig8.run(workloads=WORKLOADS, budget=BUDGET, runner=rerun)
        # acceptance criterion: cache-hit count == run-point count
        assert rerun.last_report["executed"] == 0
        assert rerun.last_report["cache_hits"] == \
            rerun.last_report["unique"] == executed_cold


class TestDeduplication:
    def test_duplicates_computed_once(self):
        runner = PointRunner()
        out = runner.run([_point(), _point(), _point("mcf")])
        assert runner.last_report["requested"] == 3
        assert runner.last_report["unique"] == 2
        assert runner.last_report["executed"] == 2
        assert out[0] == out[1]
        assert out[2]["workload"] == "mcf"

    def test_dedupe_distinguishes_evals(self):
        spec = ildp_ipc(pes=4, comm=0)
        plain = _point()
        with_eval = RunPoint.vm("gzip", VMConfig(), budget=BUDGET,
                                evals=(spec,))
        runner = PointRunner()
        runner.run([plain, with_eval])
        assert runner.last_report["unique"] == 2


class TestCacheKey:
    def test_identical_points_same_key(self):
        assert point_key(_point()) == point_key(_point())

    def test_config_change_misses(self, cache):
        runner = PointRunner(cache=cache)
        runner.run([_point()])
        runner.run([_point(fmt=IFormat.BASIC)])
        assert runner.report.cache_hits == 0
        assert runner.report.executed == 2

    def test_budget_change_misses(self, cache):
        runner = PointRunner(cache=cache)
        runner.run([_point()])
        runner.run([_point(budget=BUDGET + 1)])
        assert runner.report.cache_hits == 0
        assert runner.report.executed == 2

    def test_eval_change_misses(self, cache):
        runner = PointRunner(cache=cache)
        runner.run([RunPoint.vm("gzip", VMConfig(), budget=BUDGET,
                                evals=(ildp_ipc(pes=4, comm=0),))])
        runner.run([RunPoint.vm("gzip", VMConfig(), budget=BUDGET,
                                evals=(ildp_ipc(pes=8, comm=0),))])
        assert runner.report.cache_hits == 0

    def test_same_point_hits(self, cache):
        runner = PointRunner(cache=cache)
        runner.run([_point()])
        runner.run([_point()])
        assert runner.report.cache_hits == 1
        assert runner.report.executed == 1

    def test_collect_trace_not_in_key(self):
        with_trace = VMConfig(collect_trace=True)
        without = VMConfig(collect_trace=False)
        assert "collect_trace" not in with_trace.key_fields()
        assert point_key(RunPoint.vm("gzip", with_trace)) == \
            point_key(RunPoint.vm("gzip", without))

    def test_telemetry_not_in_key(self):
        on = VMConfig(telemetry=True)
        off = VMConfig(telemetry=False)
        assert "telemetry" not in on.key_fields()
        assert point_key(RunPoint.vm("gzip", on)) == \
            point_key(RunPoint.vm("gzip", off))

    def test_stale_schema_entry_misses(self, cache, monkeypatch):
        """An entry cached under an older SCHEMA_VERSION must miss
        cleanly once the schema is bumped — never be returned."""
        from repro.harness import runpoints

        monkeypatch.setattr(runpoints, "SCHEMA_VERSION",
                            runpoints.SCHEMA_VERSION - 1)
        old = PointRunner(cache=cache)
        old.run([_point()])
        assert old.report.executed == 1
        monkeypatch.undo()

        fresh = PointRunner(cache=ResultCache(cache.root))
        fresh.run([_point()])
        assert fresh.report.cache_hits == 0
        assert fresh.report.executed == 1


class TestCacheRobustness:
    def test_corrupt_entry_reexecuted(self, cache):
        runner = PointRunner(cache=cache)
        point = _point()
        runner.run([point])
        path = pathlib.Path(cache._path(point_key(point)))
        path.write_text("{not json")

        rerun = PointRunner(cache=ResultCache(cache.root))
        rerun.run([point])
        assert rerun.report.cache_hits == 0
        assert rerun.report.executed == 1
        # ... and the entry was rewritten cleanly
        again = PointRunner(cache=ResultCache(cache.root))
        again.run([point])
        assert again.report.cache_hits == 1

    def test_key_collision_detected(self, cache):
        """An entry whose recorded point differs from the request is not
        returned, even if it landed under the same file name."""
        a, b = _point(), _point("mcf")
        runner = PointRunner(cache=cache)
        runner.run([a])
        path = pathlib.Path(cache._path(point_key(a)))
        entry = json.loads(path.read_text())
        entry["point"] = b.key_dict()
        path.write_text(json.dumps(entry))

        rerun = PointRunner(cache=ResultCache(cache.root))
        rerun.run([a])
        assert rerun.report.cache_hits == 0

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        """A bad --cache-dir must not kill the sweep — the run simply
        isn't memoized."""
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("in the way")
        runner = PointRunner(cache=ResultCache(str(blocked)))
        out = runner.run([_point()])
        assert out[0]["workload"] == "gzip"
        assert runner.cache.stores == 0
        assert runner.cache.store_failures == 1

    def test_clear(self, cache):
        runner = PointRunner(cache=cache)
        runner.run([_point()])
        assert cache.stores == 1
        cache.clear()
        rerun = PointRunner(cache=ResultCache(cache.root))
        rerun.run([_point()])
        assert rerun.report.cache_hits == 0


class TestTelemetryMerge:
    def test_runner_aggregates_summaries(self):
        runner = PointRunner()
        runner.run([_point("gzip"), _point("mcf")])
        merged = runner.telemetry
        # both runs' event totals folded into events.* counters
        assert merged.counters["events.fragment_created"].value > 0
        assert merged.counters["fragments.profiled"].value > 0
        assert merged.counters["exec.fragment_entries"].value > 0
        # host blocks merged too: the VM phase timers carry spans
        assert merged.timers["phase.vm.interpret"].count > 0

    def test_pool_and_serial_merge_same_deterministic_counters(self):
        points = [_point("gzip"), _point("mcf")]
        serial, pooled = PointRunner(), PointRunner(workers=2)
        serial.run(points)
        pooled.run(points)
        serial_counters = {
            name: counter.value
            for name, counter in serial.telemetry.counters.items()
            if name != "interp.decode_misses"}
        pooled_counters = {
            name: counter.value
            for name, counter in pooled.telemetry.counters.items()
            if name != "interp.decode_misses"}
        # everything except the process-local decode-miss count agrees
        assert serial_counters == pooled_counters


class TestRunReport:
    def test_render_mentions_counts(self):
        runner = PointRunner()
        runner.run([_point(), _point()])
        line = runner.report.render()
        assert "2 requested" in line
        assert "1 unique" in line
        assert "1 executed" in line

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            PointRunner(workers=0)


@pytest.fixture
def four_cores(monkeypatch):
    """Un-clamp the pool on single-core CI: pretend we have 4 cores."""
    from repro.harness import parallel

    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 4)


class TestWorkerFaults:
    def test_crashed_chunk_retried(self, four_cores):
        runner = PointRunner(workers=2,
                             faults="worker_crash@worker=0,times=1")
        out = runner.run([_point("gzip"), _point("mcf")])
        assert [s["workload"] for s in out] == ["gzip", "mcf"]
        assert runner.report.worker_retries == 1
        assert runner.report.worker_requeued == 0
        assert runner.report.pool_failures == 0

    def test_timed_out_chunk_retried(self, four_cores):
        runner = PointRunner(workers=2,
                             faults="worker_timeout@worker=1,times=1")
        out = runner.run([_point("gzip"), _point("mcf")])
        assert [s["workload"] for s in out] == ["gzip", "mcf"]
        assert runner.report.worker_retries == 1

    def test_exhausted_retries_requeue_serially(self, four_cores):
        # worker 0 crashes on every dispatch: one retry, then its chunk
        # is requeued and completed on the serial path — never lost
        runner = PointRunner(workers=2, faults="worker_crash@worker=0",
                             max_worker_retries=1)
        out = runner.run([_point("gzip"), _point("mcf")])
        assert [s["workload"] for s in out] == ["gzip", "mcf"]
        assert runner.report.worker_retries == 1
        assert runner.report.worker_requeued == 1
        assert runner.report.executed == 2

    def test_faulted_pool_matches_serial(self, four_cores):
        points = [_point("gzip"), _point("mcf")]
        serial = [execute_point(p) for p in points]
        runner = PointRunner(workers=2, faults="worker_crash@worker=0",
                             max_worker_retries=0)
        pooled = runner.run(points)
        for a, b in zip(serial, pooled):
            a, b = dict(a), dict(b)
            a.pop("elapsed"), b.pop("elapsed")
            a.pop("telemetry_host"), b.pop("telemetry_host")
            assert json.loads(json.dumps(a)) == json.loads(json.dumps(b))

    def test_execute_chunk_fault_modes(self):
        from repro.harness.parallel import (
            WorkerCrash,
            WorkerTimeout,
            _execute_chunk,
        )

        with pytest.raises(WorkerCrash):
            _execute_chunk([], fail="crash")
        with pytest.raises(WorkerTimeout):
            _execute_chunk([], fail="timeout")

    def test_retry_knob_validated(self):
        with pytest.raises(ValueError):
            PointRunner(max_worker_retries=-1)

    def test_report_renders_worker_counts(self, four_cores):
        runner = PointRunner(workers=2,
                             faults="worker_crash@worker=0,times=1")
        runner.run([_point("gzip"), _point("mcf")])
        line = runner.report.render()
        assert "worker retries 1" in line
        assert "requeued 0" in line


class TestCacheCorruptionCounter:
    def test_unparsable_entry_counts_corrupt(self, cache):
        point = _point()
        PointRunner(cache=cache).run([point])
        path = pathlib.Path(cache._path(point_key(point)))
        path.write_text("{not json")

        fresh = ResultCache(cache.root)
        assert fresh.get(point) is None
        assert fresh.corrupt == 1
        assert fresh.misses == 0
        assert "corrupt=1" in repr(fresh)

    def test_identity_mismatch_counts_corrupt(self, cache):
        a, b = _point(), _point("mcf")
        PointRunner(cache=cache).run([a])
        path = pathlib.Path(cache._path(point_key(a)))
        entry = json.loads(path.read_text())
        entry["point"] = b.key_dict()
        path.write_text(json.dumps(entry))

        fresh = ResultCache(cache.root)
        assert fresh.get(a) is None
        assert fresh.corrupt == 1

    def test_runner_report_carries_corrupt_delta(self, cache):
        point = _point()
        PointRunner(cache=cache).run([point])
        path = pathlib.Path(cache._path(point_key(point)))
        path.write_text("truncated...")

        rerun = PointRunner(cache=ResultCache(cache.root))
        rerun.run([point])
        assert rerun.report.cache_corrupt == 1
        assert "1 corrupt cache entries" in rerun.report.render()

    def test_clear_tolerates_unlink_race(self, cache, monkeypatch):
        PointRunner(cache=cache).run([_point()])

        def racing_unlink(path):
            raise FileNotFoundError(path)

        from repro.harness import resultcache

        monkeypatch.setattr(resultcache.os, "unlink", racing_unlink)
        assert cache.clear() == 0       # lost every race, raised nothing
