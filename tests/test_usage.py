"""Tests for the usage ("globalness") classifier of Section 3.3."""

from repro.translator.decompose import Node, NodeKind
from repro.translator.usage import ValueClass, analyze_usage


def _index(nodes):
    for i, node in enumerate(nodes):
        node.index = i
    return nodes


def alu(dest, a=None, b=None, op="addq"):
    return Node(NodeKind.ALU, 0x1000, op=op, dest=dest, src_a=a, src_b=b)


def branch(src):
    return Node(NodeKind.BRANCH, 0x1000, op="bne", cond_src=src,
                taken=False, taken_target=0x2000, fallthrough=0x1004)


def load(dest, addr):
    return Node(NodeKind.LOAD, 0x1000, dest=dest, addr=addr)


class TestClassification:
    def test_local(self):
        # r1 defined, used once, overwritten, no exits in between
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 2), ("reg", 1), ("imm", 0)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.LOCAL

    def test_no_user(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.NO_USER

    def test_comm_global(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 2), ("reg", 1), ("imm", 0)),
            alu(("reg", 3), ("reg", 1), ("imm", 0)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.COMM_GLOBAL

    def test_liveout_global(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 2), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.LIVEOUT_GLOBAL

    def test_liveout_with_single_use_stays_liveout(self):
        # the subl/bne pattern of Fig. 2: used once, never redefined
        nodes = _index([
            alu(("reg", 17), ("reg", 17), ("imm", 1), op="subl"),
            branch(("reg", 17)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.LIVEOUT_GLOBAL
        assert len(usage.producer_of[0].uses) == 1

    def test_local_to_global_at_side_exit(self):
        # value used once but a conditional branch sits inside its lifetime
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            branch(("reg", 5)),
            alu(("reg", 2), ("reg", 1), ("imm", 0)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.LOCAL_TO_GLOBAL

    def test_nouser_to_global_at_side_exit(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            branch(("reg", 5)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.NOUSER_TO_GLOBAL

    def test_temp(self):
        nodes = _index([
            alu(("temp", -1), ("reg", 2), ("imm", 8)),
            load(("reg", 1), ("temp", -1)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].vclass is ValueClass.TEMP


class TestDefUse:
    def test_livein_detection(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("reg", 8)),
        ])
        usage = analyze_usage(nodes)
        assert usage.livein_regs == {7, 8}
        assert usage.node_inputs[0]["src_a"] == ("livein", 7)

    def test_in_block_edge(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 2), ("reg", 1), ("imm", 0)),
        ])
        usage = analyze_usage(nodes)
        resolution = usage.node_inputs[1]["src_a"]
        assert resolution == ("value", 0)
        assert usage.input_value(1, "src_a").producer == 0

    def test_redef_recorded(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].redef == 1

    def test_uses_counted_before_redef_only(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),   # v0
            alu(("reg", 1), ("imm", 3), ("imm", 4)),   # v1 (redef)
            alu(("reg", 2), ("reg", 1), ("imm", 0)),   # uses v1, not v0
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].uses == []
        assert usage.producer_of[1].uses == [2]

    def test_class_counts_histogram(self):
        nodes = _index([
            alu(("reg", 1), ("imm", 1), ("imm", 2)),
            alu(("reg", 2), ("reg", 1), ("imm", 0)),
            alu(("reg", 1), ("imm", 3), ("imm", 4)),
        ])
        usage = analyze_usage(nodes)
        counts = usage.class_counts()
        assert counts[ValueClass.LOCAL] == 1
        assert sum(counts.values()) == len(usage.values)

    def test_link_values_marked(self):
        nodes = _index([
            Node(NodeKind.BSR, 0x1000, dest=("reg", 26), link=0x1004,
                 taken_target=0x2000),
        ])
        usage = analyze_usage(nodes)
        assert usage.producer_of[0].via_link
