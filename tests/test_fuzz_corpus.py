"""Tier-1 replay of the checked-in regression corpus.

``tests/corpus/`` holds shrunk, behaviour-pinned fuzz programs (built
by ``scripts/build_corpus.py``) covering branch, memory-op and
trap-shape patterns.  Every entry must still agree across the cosim and
engine oracles — a divergence here means a translator/VM regression
against a program that once worked.
"""

import os

import pytest

from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    load_corpus,
    load_entry,
    program_from_entry,
)
from repro.fuzz.oracle import check_program

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def _entry_id(entry):
    return f"{entry['seed']:x}-{entry['index']}"


class TestCorpusContents:
    def test_corpus_is_populated(self):
        assert len(ENTRIES) >= 15

    def test_format_pinned(self):
        for entry in ENTRIES:
            assert entry["format"] == CORPUS_FORMAT

    def test_shape_coverage(self):
        shapes = set()
        for entry in ENTRIES:
            shapes.update(name for name, count in entry["shapes"].items()
                          if count)
        assert "branch" in shapes
        assert "mem" in shapes
        assert "loop" in shapes
        assert any(name == "guarded_trap" or name.startswith("trap_")
                   for name in shapes), "no trap shape in the corpus"

    def test_entries_are_shrunk(self):
        """Corpus records carry the behaviour-preserving shrunk text the
        replay runs (full text kept alongside for provenance)."""
        assert any("shrunk_text" in entry for entry in ENTRIES)


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
def test_corpus_entry_replays_clean(entry):
    """Every corpus program must agree across the naive interpreter and
    both VM engines (the jit axis runs at the oracle's low promotion
    threshold, so tier-2 generated code executes during replay)."""
    fprog = program_from_entry(entry, shrunk=True)
    report = check_program(fprog, stages=("cosim", "engine"),
                           engines=("naive", "jit"))
    assert report["failures"] == [], \
        f"corpus regression: {report['failures']}"
    assert report["inconclusive"] == []


def test_load_entry_rejects_tampered_text(tmp_path):
    import json

    source = os.path.join(CORPUS_DIR,
                          sorted(os.listdir(CORPUS_DIR))[0])
    if source.endswith("MANIFEST.json"):
        pytest.skip("no corpus entries")
    with open(source) as handle:
        entry = json.load(handle)
    entry["text"] = "1f04ff47" + entry["text"][8:]
    path = tmp_path / "tampered.json"
    path.write_text(json.dumps(entry))
    with pytest.raises(ValueError, match="hash mismatch"):
        load_entry(str(path))
