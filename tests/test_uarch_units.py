"""Unit tests for the smaller microarchitecture building blocks."""

import pytest

from repro.uarch.cache import MemoryHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.frontend import FrontEnd
from repro.uarch.predictors import BranchUnit
from repro.uarch.retire import RetireUnit
from repro.vm.events import TraceRecord


def make_frontend(**overrides):
    config = MachineConfig("test", **overrides)
    hierarchy = MemoryHierarchy(config)
    return FrontEnd(config, hierarchy, BranchUnit(config)), config


def record(addr, btype=None, taken=False, target=None):
    return TraceRecord(addr, 4, "int" if btype is None else "branch",
                       btype=btype, taken=taken, target=target, v_weight=1)


class TestRetireUnit:
    def test_in_order(self):
        unit = RetireUnit(rob_size=4, bandwidth=2)
        first = unit.retire(10)
        second = unit.retire(5)    # completed earlier but retires later
        assert second >= first

    def test_bandwidth_limit(self):
        unit = RetireUnit(rob_size=128, bandwidth=2)
        cycles = [unit.retire(0) for _ in range(6)]
        # at most two retirements share any cycle
        for cycle in set(cycles):
            assert cycles.count(cycle) <= 2

    def test_rob_occupancy_stalls_dispatch(self):
        unit = RetireUnit(rob_size=2, bandwidth=1)
        unit.retire(100)
        unit.retire(100)
        # ROB full of instructions retiring at ~100: dispatch at 5 waits
        assert unit.admit(5) >= 100

    def test_admit_passes_when_space(self):
        unit = RetireUnit(rob_size=8, bandwidth=4)
        assert unit.admit(5) == 5


class TestFrontEnd:
    def test_width_limits_group(self):
        frontend, _config = make_frontend()
        cycles = [frontend.fetch(record(0x1000 + 4 * i)) for i in range(8)]
        # warm-up miss aside, instructions 0-3 share a cycle, 4-7 the next
        assert cycles[3] == cycles[0]
        assert cycles[4] == cycles[0] + 1

    def test_taken_branch_ends_group(self):
        frontend, _config = make_frontend()
        frontend.fetch(record(0x1000))
        branch = record(0x1004, btype="uncond", taken=True, target=0x2000)
        cycle = frontend.fetch(branch)
        frontend.resolve_control(branch, cycle)
        next_cycle = frontend.fetch(record(0x2000))
        assert next_cycle > cycle

    def test_mispredict_redirects_fetch(self):
        frontend, config = make_frontend()
        # a never-taken branch first predicted taken mispredicts
        branch = record(0x1000, btype="cond", taken=False)
        cycle = frontend.fetch(branch)
        assert frontend.resolve_control(branch, cycle + 10)
        assert frontend.cycle >= cycle + 10 + config.redirect_latency
        assert frontend.mispredictions == 1

    def test_icache_miss_stalls(self):
        frontend, _config = make_frontend()
        first = frontend.fetch(record(0x1000))   # cold miss charged
        frontend_warm, _ = make_frontend()
        frontend_warm.fetch(record(0x1000))
        warm = frontend_warm.fetch(record(0x1004))  # same line: no miss
        assert warm < first + 80


class TestIInstructionMethods:
    def test_reads_acc_matrix(self):
        from repro.ildp_isa.instruction import IInstruction
        from repro.ildp_isa.opcodes import IOp

        alu = IInstruction(IOp.ALU, op="addq", acc=0, src_a="acc",
                           src_b="imm", imm=1)
        assert alu.reads_acc()
        start = IInstruction(IOp.ALU, op="addq", acc=0, src_a="gpr",
                             gpr=1, src_b="imm", imm=1)
        assert not start.reads_acc()
        load = IInstruction(IOp.LOAD, acc=0, addr_src="acc")
        assert load.reads_acc()
        copy_to = IInstruction(IOp.COPY_TO_GPR, acc=0, gpr=1)
        assert copy_to.reads_acc()

    def test_gpr_sources(self):
        from repro.ildp_isa.instruction import IInstruction
        from repro.ildp_isa.opcodes import IOp

        store = IInstruction(IOp.STORE, acc=0, addr_src="acc",
                             data_src="gpr", gpr=7)
        assert store.gpr_sources() == (7,)
        branch = IInstruction(IOp.BRANCH, op="bne", cond_src="gpr", gpr=9)
        assert branch.gpr_sources() == (9,)
        ret = IInstruction(IOp.RET_RAS, gpr=26)
        assert ret.gpr_sources() == (26,)

    def test_gpr_dest_by_format(self):
        from repro.ildp_isa.instruction import IInstruction
        from repro.ildp_isa.opcodes import IFormat, IOp

        alu = IInstruction(IOp.ALU, op="addq", acc=0, src_a="acc",
                           src_b="imm", imm=1, dest_gpr=5,
                           operational=False)
        assert alu.gpr_dest(IFormat.BASIC) is None
        assert alu.gpr_dest(IFormat.MODIFIED) is None   # not operational
        alu.operational = True
        assert alu.gpr_dest(IFormat.MODIFIED) == 5
        assert alu.gpr_dest(IFormat.ALPHA) == 5

    def test_copy_classification(self):
        from repro.ildp_isa.instruction import IInstruction
        from repro.ildp_isa.opcodes import IOp

        assert IInstruction(IOp.COPY_TO_GPR, acc=0, gpr=1).is_copy()
        assert IInstruction(IOp.COPY_FROM_GPR, acc=0, gpr=1).is_copy()
        assert not IInstruction(IOp.SAVE_VRA, gpr=26,
                                vtarget=0).is_copy()


class TestSuperblockHelpers:
    def test_side_exit_vpcs(self):
        from repro.asm import assemble
        from repro.ildp_isa.opcodes import IFormat
        from repro.vm import CoDesignedVM, VMConfig

        vm = CoDesignedVM(assemble("""
_start: li r1, 80
loop:   and r1, 1, r2
        beq r2, even
        addq r3, 1, r3
even:   subq r1, 1, r1
        bne r1, loop
        call_pal halt
"""), VMConfig(fmt=IFormat.MODIFIED))
        vm.run(max_v_instructions=100_000)
        superblock = vm.tcache.fragments[0].superblock
        exits = superblock.side_exit_vpcs()
        assert exits  # the beq produces one side exit
        for vpc in exits:
            assert vpc != superblock.entry_vpc
