"""Branch predictor model tests."""

import pytest

from repro.uarch.config import MachineConfig
from repro.uarch.predictors import (
    BranchTargetBuffer,
    BranchUnit,
    GShare,
    ReturnAddressStack,
)
from repro.vm.events import TraceRecord


def cond(pc, taken, target=None):
    return TraceRecord(pc, 4, "branch", btype="cond", taken=taken,
                       target=target if taken else None)


def ret(pc, target, ras_hit=None):
    return TraceRecord(pc, 4, "branch", btype="ret", taken=True,
                       target=target, ras_hit=ras_hit)


def call(pc, target):
    return TraceRecord(pc, 4, "branch", btype="call", taken=True,
                       target=target)


def indirect(pc, target):
    return TraceRecord(pc, 4, "branch", btype="indirect", taken=True,
                       target=target)


class TestGShare:
    def test_learns_always_taken(self):
        predictor = GShare(entries=1024, history_bits=8)
        for _ in range(8):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000)

    def test_learns_alternating_pattern(self):
        predictor = GShare(entries=4096, history_bits=8)
        outcomes = [True, False] * 200
        wrong = 0
        for taken in outcomes:
            if predictor.predict(0x2000) != taken:
                wrong += 1
            predictor.update(0x2000, taken)
        assert wrong < 20  # history makes the pattern learnable

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            GShare(entries=1000)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, assoc=4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(entries=4, assoc=4)  # one set
        for i in range(5):
            btb.update(i * 4, 0x1000 + i)
        assert btb.lookup(0) is None          # LRU victim
        assert btb.lookup(16) == 0x1004

    def test_lru_refresh_on_lookup(self):
        btb = BranchTargetBuffer(entries=4, assoc=4)
        for i in range(4):
            btb.update(i * 4, i)
        btb.lookup(0)                  # refresh the oldest entry
        btb.update(16, 99)             # evicts pc=4 instead
        assert btb.lookup(0) == 0
        assert btb.lookup(4) is None


class TestRAS:
    def test_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_depth_limit_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for value in (1, 2, 3):
            ras.push(value)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


class TestBranchUnit:
    def _unit(self, **overrides):
        return BranchUnit(MachineConfig("test", **overrides))

    def test_cond_misprediction_counted(self):
        unit = self._unit()
        # a never-taken branch first predicted taken (counters start weak)
        mispredicted = unit.process(cond(0x1000, False))
        assert mispredicted
        assert unit.stats.cond_mispredictions == 1

    def test_call_ret_pairs_predicted(self):
        unit = self._unit()
        for i in range(20):
            call_pc = 0x1000 + i * 32
            unit.process(call(call_pc, 0x8000))
            assert not unit.process(ret(0x8004, call_pc + 4))
        assert unit.stats.ras_mispredictions == 0

    def test_ret_without_ras_uses_btb(self):
        unit = self._unit(use_conventional_ras=False)
        unit.process(call(0x1000, 0x8000))
        unit.process(call(0x2000, 0x8000))
        # returns alternate: BTB-predicted returns must miss
        assert unit.process(ret(0x8004, 0x2004))
        assert unit.process(ret(0x8004, 0x1004))

    def test_dual_ras_outcome_honoured(self):
        unit = self._unit()
        assert not unit.process(ret(0x1000, 0x2000, ras_hit=True))
        assert unit.process(ret(0x1000, 0x2000, ras_hit=False))
        assert unit.stats.ras_mispredictions == 1

    def test_indirect_target_mispredict(self):
        unit = self._unit()
        assert unit.process(indirect(0x1000, 0x2000))  # cold BTB
        assert not unit.process(indirect(0x1000, 0x2000))  # learned
        assert unit.process(indirect(0x1000, 0x3000))  # target changed

    def test_shared_dispatch_jump_thrashes(self):
        """The paper's no_pred pathology: one jump address serving many
        targets mispredicts almost always."""
        unit = self._unit()
        targets = [0x2000, 0x3000, 0x4000, 0x5000]
        missed = sum(unit.process(indirect(0x1000, targets[i % 4]))
                     for i in range(100))
        assert missed > 90

    def test_per_kilo_normalisation(self):
        unit = self._unit()
        unit.note_instruction(500)
        unit.process(ret(0x1000, 0x2000, ras_hit=False))
        assert unit.stats.per_kilo_instructions() == pytest.approx(2.0)
