"""The differential oracle stack, including its sensitivity self-test.

A fuzzer is only as good as its oracles: beyond checking that clean
programs pass every stage, this suite *injects a semantic bug* (a
test-local mutation of one I-ISA ALU operation — the table only
translated code executes) and requires the oracle to catch it within a
bounded number of seeded programs, then shrink the finding to a minimal
reproducer that still diverges — the guard against a vacuously-passing
fuzzer.
"""

import pytest

import repro.ildp_isa.semantics as ildp_semantics
from repro.fuzz.campaign import Finding, _shrink_finding, run_campaign
from repro.fuzz.gen import generate, program_from_words
from repro.fuzz.oracle import (
    ORACLE_BUDGET,
    Outcome,
    check_program,
    compare_outcomes,
    oracle_config,
    run_reference,
    run_vm_outcome,
)
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction

#: The sensitivity contract: an injected semantic mutation must surface
#: within this many seeded programs.
DETECTION_BOUND = 10


class TestCleanPrograms:
    @pytest.mark.parametrize("index", range(4))
    def test_all_stages_agree(self, index):
        report = check_program(generate(21, index), chaos=True)
        assert report["failures"] == []

    def test_vm_actually_translates(self):
        """A fuzz oracle whose programs never reach translated code
        would compare the interpreter against itself."""
        _outcome, vm = run_vm_outcome(generate(21, 0), oracle_config())
        assert vm.stats.fragments_created > 0

    def test_budget_is_inconclusive_not_a_finding(self):
        report = check_program(generate(21, 0), budget=50)
        assert report["failures"] == []
        assert "cosim" in report["inconclusive"]


class TestCompareOutcomes:
    def _halted(self, **overrides):
        fields = dict(status="halted", pc=0x10040, regs=[0] * 32,
                      console="a", mem="d" * 64, committed=10)
        fields.update(overrides)
        return Outcome(**fields)

    def test_equal_outcomes_no_reasons(self):
        assert compare_outcomes(self._halted(), self._halted()) == []

    def test_register_divergence_named(self):
        other = self._halted(regs=[0] * 30 + [5, 0])
        reasons = compare_outcomes(self._halted(), other)
        assert any("r30" in reason for reason in reasons)

    def test_committed_divergence(self):
        reasons = compare_outcomes(self._halted(),
                                   self._halted(committed=11))
        assert any("committed" in reason for reason in reasons)
        assert compare_outcomes(self._halted(),
                                self._halted(committed=11),
                                check_committed=False) == []

    def test_trap_kind_and_vpc_compared(self):
        a = Outcome("trap", 0x10040, [0] * 32, "", "d", trap_kind="gentrap",
                    trap_vpc=0x10040)
        b = Outcome("trap", 0x10040, [0] * 32, "", "d",
                    trap_kind="unaligned", trap_vpc=0x10040)
        reasons = compare_outcomes(a, b)
        assert any("trap kind" in reason for reason in reasons)

    def test_budget_inconclusive(self):
        budget = self._halted(status="budget")
        assert compare_outcomes(budget, self._halted()) is None
        assert compare_outcomes(self._halted(), budget) is None


@pytest.fixture
def mutated_xor(monkeypatch):
    """Corrupt the I-ISA ``xor`` semantic — the table only *translated*
    code executes, so the pure interpreter stays correct and cosim must
    notice.  Per-VM fragment closures bind the table entry at build
    time, so no cache invalidation is needed."""
    monkeypatch.setitem(ildp_semantics.IALU_OPS, "xor",
                        lambda a, b: (a ^ b) ^ 0x10000)


class TestOracleSensitivity:
    def test_mutation_detected_and_shrunk(self, mutated_xor):
        finding = None
        for index in range(DETECTION_BOUND):
            fprog = generate(7, index, max_insns=24)
            report = check_program(fprog, stages=("cosim",))
            if report["failures"]:
                finding = Finding(fprog, report["failures"])
                break
        assert finding is not None, \
            f"mutated xor not detected in {DETECTION_BOUND} programs"

        _shrink_finding(finding, ORACLE_BUDGET)
        assert len(finding.shrunk_words) < len(finding.program.words)
        # the minimal reproducer still diverges...
        assert finding.shrunk_failures
        # ...and still contains the mutated operation
        from repro.isa.encoding import decode
        mnemonics = {decode(word).mnemonic
                     for word in finding.shrunk_words}
        assert "xor" in mnemonics

    def test_shrunk_reproducer_clean_without_mutation(self, monkeypatch):
        """The divergence is the mutation's, not the reproducer's: the
        shrunk program replays clean once the semantics are healthy."""
        fprog = generate(7, 0, max_insns=24)
        with monkeypatch.context() as patched:
            patched.setitem(ildp_semantics.IALU_OPS, "xor",
                            lambda a, b: (a ^ b) ^ 0x10000)
            report = check_program(fprog, stages=("cosim",))
            assert report["failures"]
            finding = Finding(fprog, report["failures"])
            _shrink_finding(finding, ORACLE_BUDGET)
        replay = check_program(fprog.with_words(finding.shrunk_words))
        assert replay["failures"] == []

    def test_healthy_semantics_pass_same_programs(self):
        """The same seeds the sensitivity test uses are clean when the
        semantics are intact — the divergence is the mutation's."""
        for index in range(2):
            report = check_program(generate(7, index, max_insns=24),
                                   stages=("cosim",))
            assert report["failures"] == []


class TestPalNoOpChaining:
    """Regression: a superblock ending on an *unknown* CALL_PAL (an
    architectural no-op) used to produce a fragment with no terminal
    exit — the specialized executor ran off the end of the closure list
    (IndexError).  Found by the fuzzer's very first generated program."""

    def _program(self):
        words = [
            encode(Instruction("lda", ra=1, rb=31, imm=40)),
            # loop: a no-op PAL inside the hot body
            encode(Instruction("call_pal", imm=0x3FF)),
            encode(Instruction("addq", ra=2, rc=2, imm=1, islit=True)),
            encode(Instruction("subq", ra=1, rc=1, imm=1, islit=True)),
            encode(Instruction("bne", ra=1, imm=-4)),
            encode(Instruction("call_pal", imm=0)),     # halt
        ]
        return program_from_words(words, name="palnop-loop")

    def test_unknown_pal_block_chains_to_successor(self):
        from repro.vm.system import CoDesignedVM

        program = self._program()
        vm = CoDesignedVM(program, oracle_config())
        vm.run(max_v_instructions=ORACLE_BUDGET)
        assert vm.halted
        assert vm.stats.fragments_created > 0
        assert vm.state.regs[2] == 40

    def test_oracle_stack_agrees(self):
        fprog = generate(1, 0)      # the original finding's program
        assert "palnop" in fprog.shapes
        report = check_program(fprog)
        assert report["failures"] == []


class TestCampaign:
    def test_clean_campaign(self, tmp_path):
        result = run_campaign(4, 31, corpus_dir=str(tmp_path))
        assert result.ok
        assert result.count == 4
        assert len(result.corpus_files) == 4
        assert (tmp_path / "MANIFEST.json").exists()
        assert sum(result.shapes.values()) > 0

    def test_campaign_reports_findings(self, mutated_xor):
        result = run_campaign(DETECTION_BOUND, 7, max_insns=24,
                              shrink=True)
        assert not result.ok
        finding = result.findings[0]
        # tier-1 closures bind the corrupted table entry, so cosim
        # diverges from the pure interpreter; the jit inlines ``xor``
        # as a source template, so the engine stage flags the same
        # mutation as a jit-vs-specialized split
        assert "cosim" in finding.stages
        assert finding.shrunk_words is not None
        assert any("shrunk" in line for line in result.render_lines())
