"""Tests for the deterministic workload RNG."""

import pytest

from repro.utils.rng import Xorshift64


class TestXorshift64:
    def test_deterministic(self):
        a = Xorshift64(seed=42)
        b = Xorshift64(seed=42)
        assert [a.next_u64() for _ in range(10)] == \
            [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Xorshift64(seed=1)
        b = Xorshift64(seed=2)
        assert a.next_u64() != b.next_u64()

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Xorshift64(seed=0)

    def test_range_bounds(self):
        rng = Xorshift64(seed=7)
        values = [rng.next_range(10) for _ in range(200)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) > 1

    def test_range_rejects_nonpositive(self):
        rng = Xorshift64(seed=7)
        with pytest.raises(ValueError):
            rng.next_range(0)

    def test_bytes_length(self):
        rng = Xorshift64(seed=7)
        assert len(rng.next_bytes(13)) == 13
        assert len(rng.next_bytes(0)) == 0

    def test_values_fit_64_bits(self):
        rng = Xorshift64(seed=99)
        for _ in range(100):
            assert 0 <= rng.next_u64() < (1 << 64)
