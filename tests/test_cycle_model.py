"""Cross-validation of the cycle-stepped ILDP model against the one-pass
model, plus its own behavioural tests."""

import pytest

from repro.harness.runner import run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import SUPERSCALAR, ildp_config
from repro.uarch.ildp import ILDPModel
from repro.uarch.ildp_cycle import CycleILDPModel
from repro.vm.config import VMConfig
from repro.vm.events import TraceRecord


def alu(addr, srcs=(), dst=None, acc=None, acc_read=False,
        strand_start=False, op_class="int"):
    return TraceRecord(0x1000 + (addr - 0x1000) % 2048, 4, op_class,
                       srcs=srcs, dst=dst, acc=acc, acc_read=acc_read,
                       acc_write=acc is not None,
                       strand_start=strand_start, v_weight=1)


@pytest.fixture(scope="module")
def workload_traces():
    traces = {}
    for name in ("gzip", "mcf", "twolf"):
        result = run_vm(name, VMConfig(fmt=IFormat.MODIFIED),
                        budget=15_000)
        traces[name] = result.trace
    return traces


class TestCrossValidation:
    def test_ipc_within_band_of_fast_model(self, workload_traces):
        """The two models use different abstractions; they must agree to
        within a modest band on real traces."""
        for name, trace in workload_traces.items():
            fast = ILDPModel(ildp_config(8, 0)).run(trace)
            cycle = CycleILDPModel(ildp_config(8, 0)).run(trace)
            ratio = cycle.ipc / fast.ipc
            assert 0.6 < ratio < 1.6, f"{name}: {ratio}"

    def test_pe_ordering_agrees(self, workload_traces):
        for _name, trace in workload_traces.items():
            wide = CycleILDPModel(ildp_config(8, 0)).run(trace)
            narrow = CycleILDPModel(ildp_config(4, 0)).run(trace)
            assert narrow.ipc <= wide.ipc * 1.02

    def test_comm_latency_ordering_agrees(self, workload_traces):
        for _name, trace in workload_traces.items():
            fast_comm = CycleILDPModel(ildp_config(8, 0)).run(trace)
            slow_comm = CycleILDPModel(ildp_config(8, 2)).run(trace)
            assert slow_comm.ipc <= fast_comm.ipc * 1.02


class TestBehaviour:
    def test_serial_chain_one_per_cycle(self):
        trace = [alu(0x1000 + 4 * i, acc=0, acc_read=i > 0,
                     strand_start=i == 0) for i in range(4000)]
        result = CycleILDPModel(ildp_config(8, 0)).run(trace)
        assert result.ipc < 1.1

    def test_parallel_strands_scale(self):
        trace = []
        for i in range(5000):
            for acc in range(4):
                trace.append(alu(0x1000 + 16 * i + 4 * acc, acc=acc,
                                 acc_read=i > 0, strand_start=i == 0))
        result = CycleILDPModel(ildp_config(8, 0)).run(trace)
        assert result.ipc > 2.0

    def test_mul_latency_respected(self):
        ints = [alu(0x1000 + 4 * i, acc=0, acc_read=i > 0,
                    strand_start=i == 0) for i in range(2000)]
        muls = [alu(0x1000 + 4 * i, acc=0, acc_read=i > 0,
                    strand_start=i == 0, op_class="mul")
                for i in range(2000)]
        fast = CycleILDPModel(ildp_config(8, 0)).run(ints)
        slow = CycleILDPModel(ildp_config(8, 0)).run(muls)
        assert slow.cycles > 4 * fast.cycles

    def test_rejects_superscalar_config(self):
        with pytest.raises(ValueError):
            CycleILDPModel(SUPERSCALAR)

    def test_empty_trace(self):
        result = CycleILDPModel(ildp_config(8, 0)).run([])
        assert result.instructions == 0

    def test_all_instructions_commit(self, workload_traces):
        trace = workload_traces["gzip"]
        result = CycleILDPModel(ildp_config(8, 0)).run(trace)
        # the run loop only terminates once the ROB has drained; cycles
        # must exceed the trivial fetch bound
        assert result.cycles >= len(trace) // 4

    def test_steering_policies_run(self, workload_traces):
        trace = workload_traces["gzip"]
        for steering in ("dependence", "least_loaded", "modulo"):
            machine = ildp_config(8, 0)
            machine.steering = steering
            result = CycleILDPModel(machine).run(trace)
            assert result.cycles > 0


class TestCycleSuperscalar:
    """The cycle-stepped OoO reference vs the fast one-pass model.

    The two use different issue abstractions (true windowed oldest-first
    vs per-instruction ready times), so the agreement band is loose — the
    paper itself cites [13] for SimpleScalar-class models diverging ~20%
    from detailed simulators.
    """

    def test_cross_validation(self, workload_traces):
        from repro.harness.runner import run_original
        from repro.uarch.config import MachineConfig
        from repro.uarch.superscalar import SuperscalarModel
        from repro.uarch.superscalar_cycle import CycleSuperscalarModel

        for name in ("gzip", "gcc"):
            trace, _interp = run_original(name, budget=15_000)
            fast = SuperscalarModel(MachineConfig("t")).run(trace)
            cycle = CycleSuperscalarModel(MachineConfig("t")).run(trace)
            ratio = cycle.ipc / fast.ipc
            assert 0.6 < ratio < 1.8, f"{name}: {ratio}"

    def test_dependence_chain_serialises(self):
        from repro.uarch.config import MachineConfig
        from repro.uarch.superscalar_cycle import CycleSuperscalarModel
        from repro.vm.events import TraceRecord

        trace = [TraceRecord(0x1000 + (4 * i) % 2048, 4, "int", srcs=(1,),
                             dst=1, v_weight=1) for i in range(4000)]
        result = CycleSuperscalarModel(MachineConfig("t")).run(trace)
        assert result.ipc < 1.1

    def test_independent_reach_width(self):
        from repro.uarch.config import MachineConfig
        from repro.uarch.superscalar_cycle import CycleSuperscalarModel
        from repro.vm.events import TraceRecord

        trace = [TraceRecord(0x1000 + (4 * i) % 2048, 4, "int",
                             v_weight=1) for i in range(40000)]
        result = CycleSuperscalarModel(MachineConfig("t")).run(trace)
        assert result.ipc > 3.0

    def test_store_load_dependence(self):
        from repro.uarch.config import MachineConfig
        from repro.uarch.superscalar_cycle import CycleSuperscalarModel
        from repro.vm.events import TraceRecord

        def build(same):
            out = []
            for i in range(3000):
                out.append(TraceRecord(0x1000 + (8 * i) % 2048, 4, "store",
                                       mem_addr=0x100000, v_weight=1))
                out.append(TraceRecord(0x1004 + (8 * i) % 2048, 4, "load",
                                       mem_addr=0x100000 if same
                                       else 0x100800, v_weight=1))
            return out

        conflict = CycleSuperscalarModel(MachineConfig("t")).run(
            build(True))
        disjoint = CycleSuperscalarModel(MachineConfig("t")).run(
            build(False))
        assert conflict.cycles > disjoint.cycles
