"""Seeded-random round-trip property tests for both binary codecs.

The V-ISA (Alpha subset) encoder/decoder and the I-ISA codec must agree:
``decode(encode(x)) == x`` for every representable instruction, and
``encode(decode(w)) == w`` for every word ``decode`` accepts.  Malformed
words must raise rather than decode into something plausible.
"""

import pytest

from repro.ildp_isa.encoding import (
    IEncodingError,
    IWORD_BITS,
    decode_iinstr,
    encode_iinstr,
    iinstr_fields,
)
from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IOp
from repro.ildp_isa.semantics import IALU_OPS
from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPS,
    JUMP_OPS,
    Kind,
    MEMORY_OPS,
    OPERATE_OPS,
    kind_of,
)
from repro.isa.semantics import BRANCH_CONDITIONS
from repro.utils.rng import Xorshift64

ROUNDS = 40


def _signed(rng, bits):
    return rng.next_range(1 << bits) - (1 << (bits - 1))


def _roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    again = decode(word)
    assert again == instr, (instr, again)
    assert encode(again) == word
    return again


class TestVisaRoundtrip:
    def test_memory_format(self):
        rng = Xorshift64(seed=101)
        for mnemonic in sorted(MEMORY_OPS):
            for _ in range(ROUNDS):
                _roundtrip(Instruction(mnemonic,
                                       ra=rng.next_range(32),
                                       rb=rng.next_range(32),
                                       imm=_signed(rng, 16)))

    def test_operate_format_register(self):
        rng = Xorshift64(seed=102)
        for mnemonic in sorted(OPERATE_OPS):
            for _ in range(ROUNDS):
                _roundtrip(Instruction(mnemonic,
                                       ra=rng.next_range(32),
                                       rb=rng.next_range(32),
                                       rc=rng.next_range(32)))

    def test_operate_format_literal(self):
        rng = Xorshift64(seed=103)
        for mnemonic in sorted(OPERATE_OPS):
            for _ in range(ROUNDS):
                _roundtrip(Instruction(mnemonic,
                                       ra=rng.next_range(32),
                                       rc=rng.next_range(32),
                                       imm=rng.next_range(256),
                                       islit=True))

    def test_branch_format(self):
        rng = Xorshift64(seed=104)
        for mnemonic in sorted(BRANCH_OPS):
            for _ in range(ROUNDS):
                _roundtrip(Instruction(mnemonic,
                                       ra=rng.next_range(32),
                                       imm=_signed(rng, 21)))

    def test_jump_format(self):
        rng = Xorshift64(seed=105)
        for mnemonic in sorted(JUMP_OPS):
            for _ in range(ROUNDS):
                _roundtrip(Instruction(mnemonic,
                                       ra=rng.next_range(32),
                                       rb=rng.next_range(32),
                                       imm=rng.next_range(1 << 14)))

    def test_pal_format(self):
        rng = Xorshift64(seed=106)
        for _ in range(ROUNDS):
            _roundtrip(Instruction("call_pal",
                                   imm=rng.next_range(1 << 26)))

    def test_every_kind_is_covered(self):
        covered = {kind_of(m) for table in
                   (MEMORY_OPS, OPERATE_OPS, BRANCH_OPS, JUMP_OPS)
                   for m in table}
        covered.add(kind_of("call_pal"))
        assert covered == set(Kind)

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("ldq", ra=1, rb=2, imm=1 << 15))
        with pytest.raises(EncodingError):
            encode(Instruction("addq", ra=1, rc=2, imm=256, islit=True))
        with pytest.raises(EncodingError):
            encode(Instruction("br", imm=1 << 20))
        with pytest.raises(EncodingError):
            encode(Instruction("jmp", ra=1, rb=2, imm=1 << 14))
        with pytest.raises(EncodingError):
            encode(Instruction("call_pal", imm=1 << 26))

    def test_malformed_words_rejected(self):
        for word in (-1, 1 << 32, 0x07 << 26,  # unknown opcode
                     (0x10 << 26) | (0x7F << 5)):  # unknown operate func
            with pytest.raises(EncodingError):
                decode(word)

    def test_random_words_reject_or_roundtrip(self):
        rng = Xorshift64(seed=107)
        decoded = 0
        for _ in range(4000):
            word = rng.next_range(1 << 32)
            try:
                instr = decode(word)
            except EncodingError:
                continue
            decoded += 1
            assert encode(instr) == word
        assert decoded > 0  # the property must actually exercise both arms


def _random_iinstr(rng, iop):
    """A random-but-in-domain instruction of the given operation class."""
    sources = (None, "acc", "gpr", "gpr2", "imm", "zero")
    op_names = (None,) + tuple(sorted(set(IALU_OPS)
                                      | set(BRANCH_CONDITIONS)))

    def maybe(bound):
        value = rng.next_range(bound + 1)
        return None if value == bound else value

    return IInstruction(
        iop,
        op=op_names[rng.next_range(len(op_names))],
        acc=maybe(8),
        gpr=maybe(32),
        gpr2=maybe(32),
        imm=_signed(rng, 64),
        islit=bool(rng.next_range(2)),
        src_a=sources[rng.next_range(len(sources))],
        src_b=sources[rng.next_range(len(sources))],
        addr_src=sources[rng.next_range(len(sources))],
        data_src=sources[rng.next_range(len(sources))],
        cond_src=sources[rng.next_range(len(sources))],
        dest_gpr=maybe(32),
        operational=bool(rng.next_range(2)),
        mem_size=(1, 2, 4, 8)[rng.next_range(4)],
        mem_signed=bool(rng.next_range(2)),
        target=maybe(1 << 32),
        vtarget=maybe(1 << 32),
        vpc=maybe(1 << 32),
    )


class TestIisaRoundtrip:
    def test_every_iop_roundtrips(self):
        rng = Xorshift64(seed=201)
        for iop in sorted(IOp, key=lambda o: o.value):
            for _ in range(ROUNDS):
                instr = _random_iinstr(rng, iop)
                word = encode_iinstr(instr)
                assert 0 <= word < (1 << IWORD_BITS)
                again = decode_iinstr(word)
                assert iinstr_fields(again) == iinstr_fields(instr)
                assert encode_iinstr(again) == word

    def test_layout_fields_not_encoded(self):
        instr = IInstruction(IOp.ALU, op="addq", acc=1, src_a="acc",
                             src_b="imm", imm=3)
        instr.address = 0x4000
        instr.size = 4
        instr.strand_start = True
        instr.v_weight = 1
        again = decode_iinstr(encode_iinstr(instr))
        assert again.address is None
        assert again.size is None
        assert again.strand_start is False
        assert again.v_weight == 0

    def test_unencodable_instructions_rejected(self):
        with pytest.raises(IEncodingError):
            encode_iinstr(IInstruction(IOp.ALU, op="not_an_op"))
        with pytest.raises(IEncodingError):
            encode_iinstr(IInstruction(IOp.ALU, src_a="stack"))
        with pytest.raises(IEncodingError):
            encode_iinstr(IInstruction(IOp.ALU, gpr=32))
        with pytest.raises(IEncodingError):
            encode_iinstr(IInstruction(IOp.ALU, imm=1 << 63))
        with pytest.raises(IEncodingError):
            encode_iinstr(IInstruction(IOp.LOAD, mem_size=3))
        with pytest.raises(IEncodingError):
            encode_iinstr(IInstruction(IOp.BR, target=1 << 48))

    def test_malformed_words_rejected(self):
        with pytest.raises(IEncodingError):
            decode_iinstr(-1)
        with pytest.raises(IEncodingError):
            decode_iinstr(1 << IWORD_BITS)  # reserved high bits
        with pytest.raises(IEncodingError):
            decode_iinstr("0")
        with pytest.raises(IEncodingError):
            decode_iinstr(31)  # iop code past the table

    def test_random_words_reject_or_roundtrip(self):
        rng = Xorshift64(seed=202)
        decoded = 0
        for _ in range(2000):
            word = 0
            for _chunk in range((IWORD_BITS + 63) // 64):
                word = (word << 64) | rng.next_u64()
            word &= (1 << IWORD_BITS) - 1
            try:
                instr = decode_iinstr(word)
            except IEncodingError:
                continue
            decoded += 1
            assert encode_iinstr(instr) == word
        assert decoded > 0

    def test_translated_fragments_roundtrip(self):
        from repro.harness.runner import run_vm
        from repro.vm.config import VMConfig

        result = run_vm("gzip", VMConfig(), budget=20_000,
                        collect_trace=False)
        count = 0
        for fragment in result.tcache.fragments:
            for instr in fragment.body:
                again = decode_iinstr(encode_iinstr(instr))
                assert iinstr_fields(again) == iinstr_fields(instr)
                count += 1
        assert count > 0
