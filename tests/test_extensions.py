"""Tests for the out-of-paper extensions: cache flushing, steering
policies, memory fusion ablation plumbing."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import ildp_config
from repro.uarch.ildp import ILDPModel
from repro.vm import CoDesignedVM, VMConfig
from repro.workloads import get_workload
from tests.conftest import FIG2_KERNEL, assert_cosim_equivalent

#: Two phases: a tight loop, then a second, different tight loop — the
#: sudden burst of new fragments after the phase change can trigger a
#: Dynamo-style flush.
PHASED = """
_start: li r9, 400
p1:     addq r2, r9, r2
        subq r9, 1, r9
        bne r9, p1
        li r9, 400
p2:     xor r3, r9, r3
        sll r3, 1, r3
        srl r3, 1, r3
        subq r9, 1, r9
        bne r9, p2
        call_pal halt
"""


class TestFlushPolicy:
    def test_flush_preserves_correctness(self):
        config = VMConfig(fmt=IFormat.MODIFIED, flush_on_phase_change=True,
                          flush_window=200, flush_rate_factor=1.5,
                          threshold=10)
        assert_cosim_equivalent(PHASED, config)

    def test_flush_counter_in_stats(self):
        config = VMConfig(fmt=IFormat.MODIFIED, flush_on_phase_change=True,
                          flush_window=100, flush_rate_factor=1.01,
                          threshold=10)
        vm = CoDesignedVM(assemble(PHASED), config)
        vm.run(max_v_instructions=500_000)
        assert vm.stats.tcache_flushes == vm.tcache.flush_count

    def test_disabled_by_default(self):
        vm = CoDesignedVM(assemble(PHASED), VMConfig(threshold=10))
        vm.run(max_v_instructions=500_000)
        assert vm.stats.tcache_flushes == 0

    def test_fids_unique_across_flushes(self):
        config = VMConfig(fmt=IFormat.MODIFIED, flush_on_phase_change=True,
                          flush_window=100, flush_rate_factor=1.01,
                          threshold=10)
        vm = CoDesignedVM(assemble(PHASED), config)
        vm.run(max_v_instructions=500_000)
        fids = list(vm.stats.fragment_usage)
        assert len(fids) == len(set(fids))
        assert len(fids) == vm.stats.fragments_created

    def test_retranslation_after_flush(self):
        workload = get_workload("gzip")
        config = VMConfig(fmt=IFormat.MODIFIED, flush_on_phase_change=True,
                          flush_window=500, flush_rate_factor=1.01,
                          threshold=10)
        vm = CoDesignedVM(workload.program(), config)
        vm.run(max_v_instructions=100_000)
        if vm.stats.tcache_flushes:
            # after a flush, hot code must get retranslated and still run
            assert vm.stats.fragments_created > vm.tcache.fragment_count()


class TestSteeringPolicies:
    @pytest.fixture(scope="class")
    def trace(self):
        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.MODIFIED,
                                   collect_trace=True))
        vm.run(max_v_instructions=200_000)
        return vm.trace

    @pytest.mark.parametrize("steering", ("dependence", "least_loaded",
                                          "modulo"))
    def test_each_policy_runs(self, trace, steering):
        machine = ildp_config(8, 0)
        machine.steering = steering
        result = ILDPModel(machine).run(trace)
        assert result.cycles > 0

    def test_modulo_wastes_pes_with_four_accumulators(self, trace):
        renamed = ildp_config(8, 0)
        modulo = ildp_config(8, 0)
        modulo.steering = "modulo"
        fast = ILDPModel(renamed).run(trace)
        slow = ILDPModel(modulo).run(trace)
        # 4 accumulators on 8 PEs: modulo steering can only ever use 4 PEs
        assert slow.cycles >= fast.cycles

    def test_unknown_policy_rejected(self):
        from repro.uarch.config import MachineConfig

        with pytest.raises(ValueError):
            MachineConfig("bad", steering="random")


class TestMemoryFusion:
    def test_fused_reduces_instruction_count(self):
        source = get_workload("mcf").source()
        split = CoDesignedVM(assemble(source),
                             VMConfig(fmt=IFormat.MODIFIED))
        split.run(max_v_instructions=60_000)
        fused = CoDesignedVM(assemble(source),
                             VMConfig(fmt=IFormat.MODIFIED,
                                      fuse_memory=True))
        fused.run(max_v_instructions=60_000)
        assert fused.stats.dynamic_expansion() < \
            split.stats.dynamic_expansion()

    def test_fused_still_decomposes_nothing_when_disp_zero(self):
        from repro.ildp_isa.opcodes import IOp

        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.MODIFIED,
                                   fuse_memory=True))
        vm.run(max_v_instructions=100_000)
        loads = [i for f in vm.tcache.fragments for i in f.body
                 if i.iop is IOp.LOAD]
        assert loads
        assert all(i.imm == 0 for i in loads)  # Fig. 2 loop has disp 0


class TestIdealisationKnobs:
    def test_oracle_prediction_never_hurts(self):
        from repro.harness.runner import run_vm
        from repro.uarch.config import ildp_config
        from repro.uarch.ildp import ILDPModel

        trace = run_vm("gcc", VMConfig(fmt=IFormat.MODIFIED),
                       budget=20_000).trace
        real = ILDPModel(ildp_config(8, 0)).run(trace)
        oracle_config = ildp_config(8, 0)
        oracle_config.perfect_prediction = True
        oracle = ILDPModel(oracle_config).run(trace)
        assert oracle.ipc >= real.ipc

    def test_perfect_dcache_never_hurts(self):
        from repro.harness.runner import run_vm
        from repro.uarch.config import ildp_config
        from repro.uarch.ildp import ILDPModel

        trace = run_vm("mcf", VMConfig(fmt=IFormat.MODIFIED),
                       budget=20_000).trace
        real = ILDPModel(ildp_config(8, 0)).run(trace)
        ideal_config = ildp_config(8, 0)
        ideal_config.perfect_dcache = True
        ideal = ILDPModel(ideal_config).run(trace)
        assert ideal.ipc >= real.ipc
