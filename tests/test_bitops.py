"""Unit and property tests for the two's complement helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    MASK64,
    fits_signed,
    fits_unsigned,
    sext,
    sext8,
    sext16,
    sext32,
    to_signed,
    to_unsigned,
)

u64 = st.integers(min_value=0, max_value=MASK64)


class TestConversions:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1
        assert to_signed(1 << 63) == -(1 << 63)

    def test_to_unsigned_negative(self):
        assert to_unsigned(-1) == MASK64
        assert to_unsigned(-2, 8) == 0xFE

    def test_narrow_widths(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127

    @given(u64)
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_signed(self, value):
        assert to_signed(to_unsigned(value)) == value


class TestSignExtension:
    def test_sext8(self):
        assert sext8(0x80) == to_unsigned(-128)
        assert sext8(0x7F) == 127

    def test_sext16(self):
        assert sext16(0x8000) == to_unsigned(-32768)

    def test_sext32(self):
        assert sext32(0x8000_0000) == to_unsigned(-(1 << 31))
        assert sext32(0x7FFF_FFFF) == 0x7FFF_FFFF

    @given(u64, st.sampled_from([8, 16, 32]))
    def test_sext_preserves_low_bits(self, value, width):
        extended = sext(value, width)
        assert extended & ((1 << width) - 1) == value & ((1 << width) - 1)

    @given(u64, st.sampled_from([8, 16, 32]))
    def test_sext_signed_value_matches(self, value, width):
        assert to_signed(sext(value, width)) == to_signed(value, width)


class TestFits:
    @pytest.mark.parametrize("value,bits,expected", [
        (127, 8, True), (128, 8, False), (-128, 8, True), (-129, 8, False),
        (0, 1, True), (1, 1, False), (-1, 1, True),
    ])
    def test_fits_signed(self, value, bits, expected):
        assert fits_signed(value, bits) is expected

    @pytest.mark.parametrize("value,bits,expected", [
        (255, 8, True), (256, 8, False), (-1, 8, False), (0, 8, True),
    ])
    def test_fits_unsigned(self, value, bits, expected):
        assert fits_unsigned(value, bits) is expected
