"""Documentation hygiene: every public module, class and function in the
library carries a docstring (deliverable (e): doc comments on every public
item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if ".programs." in info.name:
            continue  # workload sources document themselves via DESCRIPTION
        out.append(info.name)
    return out


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                missing.append(name)
    assert not missing, f"{module_name}: undocumented public items " \
                        f"{missing}"


def test_workload_programs_carry_descriptions():
    from repro.workloads.programs import __name__ as pkg_name
    import repro.workloads.programs as programs

    for info in pkgutil.iter_modules(programs.__path__):
        module = importlib.import_module(f"{pkg_name}.{info.name}")
        assert getattr(module, "DESCRIPTION", None), info.name
        assert module.__doc__
