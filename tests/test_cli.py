"""CLI tests."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_workloads_lists_all_twelve(self):
        code, text = run_cli("workloads")
        assert code == 0
        assert len(text.strip().splitlines()) == 12
        assert "gzip" in text and "perlbmk" in text

    def test_run(self):
        code, text = run_cli("run", "gzip", "--budget", "30000")
        assert code == 0
        assert "dynamic_expansion" in text
        assert "insts/translated inst" in text

    def test_run_basic_format(self):
        code, text = run_cli("run", "gzip", "--fmt", "basic",
                             "--budget", "30000")
        assert code == 0
        assert "basic" in text

    def test_translate_shows_fragment(self):
        code, text = run_cli("translate", "gzip", "--budget", "30000")
        assert code == 0
        assert "hottest fragment" in text
        assert "<-" in text  # RTL notation lines

    def test_experiment(self):
        code, text = run_cli("experiment", "fig5", "-w", "gzip",
                             "--budget", "20000")
        assert code == 0
        assert "Fig. 5" in text
        assert "gzip" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "doom")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")
