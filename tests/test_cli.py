"""CLI tests."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_workloads_lists_all_twelve(self):
        code, text = run_cli("workloads")
        assert code == 0
        assert len(text.strip().splitlines()) == 12
        assert "gzip" in text and "perlbmk" in text

    def test_run(self):
        code, text = run_cli("run", "gzip", "--budget", "30000")
        assert code == 0
        assert "dynamic_expansion" in text
        assert "insts/translated inst" in text

    def test_run_basic_format(self):
        code, text = run_cli("run", "gzip", "--fmt", "basic",
                             "--budget", "30000")
        assert code == 0
        assert "basic" in text

    def test_translate_shows_fragment(self):
        code, text = run_cli("translate", "gzip", "--budget", "30000")
        assert code == 0
        assert "hottest fragment" in text
        assert "<-" in text  # RTL notation lines

    def test_experiment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli("experiment", "fig5", "-w", "gzip",
                             "--budget", "20000")
        assert code == 0
        assert "Fig. 5" in text
        assert "gzip" in text
        assert "1 executed" in text

    def test_experiment_second_run_hits_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, first = run_cli("experiment", "fig5", "-w", "gzip",
                              "--budget", "20000")
        assert code == 0
        code, second = run_cli("experiment", "fig5", "-w", "gzip",
                               "--budget", "20000")
        assert code == 0
        assert "1 cache hits, 0 executed" in second
        # the rendered table itself is byte-identical
        assert first.split("run points:")[0] == \
            second.split("run points:")[0]

    def test_experiment_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli("experiment", "fig5", "-w", "gzip",
                             "--budget", "20000", "--no-cache")
        assert code == 0
        assert "0 cache hits, 1 executed" in text
        assert not any(tmp_path.iterdir())

    def test_trace_writes_valid_chrome_json(self, tmp_path):
        import json

        from repro.obs.trace import span_contains, validate_chrome_trace

        path = tmp_path / "trace.json"
        code, text = run_cli("trace", "gzip", "--budget", "20000",
                             "-o", str(path))
        assert code == 0
        assert "flame summary" in text
        assert "vm.run" in text
        doc = json.loads(path.read_text())
        completes = validate_chrome_trace(doc)
        (run,) = [e for e in completes if e["name"] == "vm.run"]
        captures = [e for e in completes if e["name"] == "vm.capture"]
        assert captures and all(span_contains(run, c) for c in captures)

    def test_run_trace_out(self, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        path = tmp_path / "run.json"
        code, text = run_cli("run", "gzip", "--budget", "20000",
                             "--trace-out", str(path))
        assert code == 0
        assert f"wrote {path}" in text
        validate_chrome_trace(json.loads(path.read_text()))

    def test_experiment_telemetry_and_trace_out(self, tmp_path,
                                                monkeypatch):
        import json

        from repro.obs.trace import validate_chrome_trace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "harness.json"
        code, text = run_cli("experiment", "fig5", "-w", "gzip",
                             "--budget", "20000", "--telemetry",
                             "--trace-out", str(path))
        assert code == 0
        assert "aggregate telemetry" in text
        assert "events.fragment_created" in text
        completes = validate_chrome_trace(json.loads(path.read_text()))
        names = {e["name"] for e in completes}
        assert "experiment.fig5" in names
        assert any(name.startswith("gzip (") for name in names)

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "doom")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")


class TestChaosCli:
    def test_default_schedule_converges(self):
        code, text = run_cli("chaos", "gzip")
        assert code == 0
        assert "converged" in text
        assert "injected" in text

    def test_explicit_spec_and_seed(self):
        code, text = run_cli("chaos", "mcf", "--fault-spec",
                             "translate@every=2,times=2",
                             "--fault-seed", "99")
        assert code == 0
        assert "seed 99" in text
        assert "translate" in text

    def test_capacity_bound(self):
        code, text = run_cli("chaos", "gzip", "--tcache-capacity", "100")
        assert code == 0
        assert "capacity_flushes" in text

    def test_watchdog_exits_nonzero(self):
        code, text = run_cli("chaos", "gzip", "--max-host-steps", "50")
        assert code == 1
        assert "watchdog" in text

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            run_cli("chaos", "gzip", "--fault-spec", "bogus")


class TestFuzzCli:
    def test_clean_campaign_exits_zero(self):
        code, text = run_cli("fuzz", "--count", "4", "--seed", "21")
        assert code == 0
        assert "0 finding(s)" in text
        assert "shape mix" in text

    def test_corpus_dir_written(self, tmp_path):
        corpus = tmp_path / "corpus"
        code, text = run_cli("fuzz", "--count", "3", "--seed", "21",
                             "--corpus-dir", str(corpus))
        assert code == 0
        assert "wrote 3 corpus records" in text
        assert (corpus / "MANIFEST.json").exists()
        assert len(list(corpus.glob("*.json"))) == 4  # 3 + manifest

    def test_trace_out(self, tmp_path):
        trace = tmp_path / "fuzz.trace.json"
        code, _text = run_cli("fuzz", "--count", "2", "--seed", "21",
                              "--trace-out", str(trace))
        assert code == 0
        assert trace.exists()
