"""CLI tests."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_workloads_lists_all_twelve(self):
        code, text = run_cli("workloads")
        assert code == 0
        assert len(text.strip().splitlines()) == 12
        assert "gzip" in text and "perlbmk" in text

    def test_run(self):
        code, text = run_cli("run", "gzip", "--budget", "30000")
        assert code == 0
        assert "dynamic_expansion" in text
        assert "insts/translated inst" in text

    def test_run_basic_format(self):
        code, text = run_cli("run", "gzip", "--fmt", "basic",
                             "--budget", "30000")
        assert code == 0
        assert "basic" in text

    def test_translate_shows_fragment(self):
        code, text = run_cli("translate", "gzip", "--budget", "30000")
        assert code == 0
        assert "hottest fragment" in text
        assert "<-" in text  # RTL notation lines

    def test_experiment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli("experiment", "fig5", "-w", "gzip",
                             "--budget", "20000")
        assert code == 0
        assert "Fig. 5" in text
        assert "gzip" in text
        assert "1 executed" in text

    def test_experiment_second_run_hits_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, first = run_cli("experiment", "fig5", "-w", "gzip",
                              "--budget", "20000")
        assert code == 0
        code, second = run_cli("experiment", "fig5", "-w", "gzip",
                               "--budget", "20000")
        assert code == 0
        assert "1 cache hits, 0 executed" in second
        # the rendered table itself is byte-identical
        assert first.split("run points:")[0] == \
            second.split("run points:")[0]

    def test_experiment_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, text = run_cli("experiment", "fig5", "-w", "gzip",
                             "--budget", "20000", "--no-cache")
        assert code == 0
        assert "0 cache hits, 1 executed" in text
        assert not any(tmp_path.iterdir())

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "doom")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "fig99")
