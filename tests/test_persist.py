"""The persistence subsystem: codec, store, session, VM wiring.

The warm-start *equality* contract (a warm VM's ``VMStats`` are
bit-identical to a cold run's, across every workload) lives in
``tests/test_warm_differential.py``; version-skew reads live in
``tests/test_version_skew.py``.  This module covers the mechanics:
round-trips through the store, every graceful-degradation path with its
counter, the fault-injection sites, and the config/env plumbing.
"""

import json
import os

import pytest

from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan, FaultSite, KNOWN_SITES
from repro.harness.runner import run_vm
from repro.persist.codec import canonical_json, superblock_digest
from repro.persist.session import PersistSession
from repro.persist.store import (
    ENV_PERSIST_DIR,
    ENV_PERSIST_FAULT_SEED,
    ENV_PERSIST_FAULTS,
    ENV_PERSIST_MODE,
    FragmentStore,
    PersistStats,
    program_digest,
    record_crc,
    store_key,
)
from repro.vm.config import VMConfig
from repro.workloads import get_workload

BUDGET = 20_000


def _cold(workload="gzip", **overrides):
    return run_vm(workload, VMConfig(**overrides), budget=BUDGET,
                  collect_trace=False, telemetry=True)


def _persist_run(root, mode, workload="gzip", **overrides):
    config = VMConfig(persist_path=str(root), persist_mode=mode,
                      **overrides)
    return run_vm(workload, config, budget=BUDGET, collect_trace=False,
                  telemetry=True)


def _persist_stats(result):
    return result.vm.telemetry.host_summary()["persist"]


def _store_file(root):
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        paths.extend(os.path.join(dirpath, name) for name in filenames
                     if name.endswith(".jsonl"))
    assert len(paths) == 1, paths
    return paths[0]


class TestStoreKeying:
    def test_program_digest_stable_and_content_sensitive(self):
        program_a = get_workload("gzip").program(None)
        program_b = get_workload("gzip").program(None)
        assert program_digest(program_a) == program_digest(program_b)
        assert program_digest(program_a) != \
            program_digest(get_workload("mcf").program(None))

    def test_store_key_tracks_semantic_config_only(self):
        code = "ab" * 32
        base = VMConfig()
        assert store_key(code, base) == \
            store_key(code, VMConfig(telemetry=True, exec_engine="naive"))
        assert store_key(code, base) != \
            store_key(code, VMConfig(n_accumulators=8))

    def test_persist_fields_are_not_key_fields(self):
        fields = VMConfig(persist_path="/tmp/x").key_fields()
        assert "persist_path" not in fields
        assert "persist_mode" not in fields

    def test_persist_fields_round_trip_dict(self):
        config = VMConfig(persist_path="/tmp/x", persist_mode="load")
        rebuilt = VMConfig.from_dict(config.to_dict())
        assert rebuilt.persist_path == "/tmp/x"
        assert rebuilt.persist_mode == "load"

    def test_invalid_persist_mode_rejected(self):
        with pytest.raises(ValueError, match="persist mode"):
            VMConfig(persist_mode="sideways")


class TestStoreRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        records = [{"digest": "d1", "payload": 1},
                   {"digest": "d1", "payload": 2},
                   {"digest": "d2", "payload": 3}]
        key = "ab" * 32
        assert store.save(key, records, "code", {"cfg": 1}) is not None
        assert store.stats.records_saved == 3

        fresh = FragmentStore(str(tmp_path))
        loaded = fresh.load(key, "code", {"cfg": 1})
        assert sorted(loaded) == ["d1", "d2"]
        assert len(loaded["d1"]) == 2
        assert fresh.stats.stores_loaded == 1
        assert fresh.stats.records_loaded == 3

    def test_save_merges_with_existing_records(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        key = "ab" * 32
        store.save(key, [{"digest": "d1", "payload": 1}], "code", {})
        store.save(key, [{"digest": "d1", "payload": 1},
                         {"digest": "d2", "payload": 2}], "code", {})
        assert store.stats.records_saved == 2  # the duplicate is free
        loaded = FragmentStore(str(tmp_path)).load(key, "code", {})
        assert sorted(loaded) == ["d1", "d2"]

    def test_missing_file_is_a_silent_miss(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        assert store.load("cd" * 32, "code", {}) == {}
        assert store.stats.to_dict() == PersistStats().to_dict()

    def test_identity_mismatch_reads_stale(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        key = "ab" * 32
        store.save(key, [{"digest": "d1"}], "code", {"cfg": 1})
        fresh = FragmentStore(str(tmp_path))
        assert fresh.load(key, "OTHER", {"cfg": 1}) == {}
        assert fresh.load(key, "code", {"cfg": 2}) == {}
        assert fresh.stats.stale_stores == 2
        assert fresh.stats.stores_loaded == 0


class TestStoreDegradation:
    def test_unparseable_header_quarantines(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        key = "ab" * 32
        store.save(key, [{"digest": "d1"}], "code", {})
        path = _store_file(tmp_path)
        with open(path, "w") as handle:
            handle.write("not json at all\n")
        fresh = FragmentStore(str(tmp_path))
        assert fresh.load(key, "code", {}) == {}
        assert fresh.stats.quarantined == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantined")
        # quarantined files are never re-probed: next load is a miss
        assert fresh.load(key, "code", {}) == {}
        assert fresh.stats.quarantined == 1

    def test_bit_flipped_record_skipped_and_counted(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        key = "ab" * 32
        store.save(key, [{"digest": "d1", "payload": 10},
                         {"digest": "d2", "payload": 20}], "code", {})
        path = _store_file(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        entry = json.loads(lines[1])
        entry["record"]["payload"] ^= 1      # flip a bit, keep the CRC
        lines[1] = json.dumps(entry)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        fresh = FragmentStore(str(tmp_path))
        loaded = fresh.load(key, "code", {})
        assert list(loaded) == ["d2"]
        assert fresh.stats.corrupt_records == 1
        assert fresh.stats.records_loaded == 1

    def test_truncated_record_line_skipped(self, tmp_path):
        store = FragmentStore(str(tmp_path))
        key = "ab" * 32
        store.save(key, [{"digest": "d1", "payload": 10}], "code", {})
        path = _store_file(tmp_path)
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[:-5])       # tear the final record
        fresh = FragmentStore(str(tmp_path))
        assert fresh.load(key, "code", {}) == {}
        assert fresh.stats.corrupt_records == 1

    def test_record_crc_is_canonical(self):
        assert record_crc({"b": 1, "a": 2}) == record_crc({"a": 2, "b": 1})


class TestStoreFaultInjection:
    def test_persist_sites_are_known(self):
        assert FaultSite.PERSIST_LOAD in KNOWN_SITES
        assert FaultSite.PERSIST_CORRUPT in KNOWN_SITES

    def test_persist_load_fault_is_counted_miss(self, tmp_path):
        key = "ab" * 32
        FragmentStore(str(tmp_path)).save(key, [{"digest": "d1"}],
                                          "code", {})
        injector = FaultInjector(FaultPlan.parse("persist_load@count=1"))
        store = FragmentStore(str(tmp_path), injector=injector)
        assert store.load(key, "code", {}) == {}
        assert store.stats.load_failures == 1
        assert store.stats.faults_injected == 1
        # the fault fired once; the next load succeeds
        assert store.load(key, "code", {}) != {}

    def test_persist_corrupt_fault_drops_records(self, tmp_path):
        key = "ab" * 32
        FragmentStore(str(tmp_path)).save(
            key, [{"digest": f"d{i}"} for i in range(4)], "code", {})
        injector = FaultInjector(FaultPlan.parse("persist_corrupt@every=2"))
        store = FragmentStore(str(tmp_path), injector=injector)
        loaded = store.load(key, "code", {})
        assert len(loaded) == 2
        assert store.stats.corrupt_records == 2
        assert store.stats.faults_injected == 2


class TestVMPersistence:
    def test_save_mode_writes_store(self, tmp_path):
        result = _persist_run(tmp_path, "save")
        stats = _persist_stats(result)
        assert stats["records_saved"] > 0
        assert stats["warm_hits"] == 0
        assert os.path.exists(_store_file(tmp_path))

    def test_load_without_store_is_counted_misses(self, tmp_path):
        cold = _cold()
        result = _persist_run(tmp_path, "load")
        stats = _persist_stats(result)
        assert stats["warm_hits"] == 0
        assert stats["warm_misses"] == cold.stats.fragments_created
        assert vars(result.stats) == vars(cold.stats)

    def test_both_mode_roundtrips_across_runs(self, tmp_path):
        first = _persist_run(tmp_path, "both")
        second = _persist_run(tmp_path, "both")
        assert _persist_stats(first)["records_saved"] > 0
        warm = _persist_stats(second)
        assert warm["warm_hits"] == second.stats.fragments_created
        assert warm["records_saved"] == 0   # nothing new to persist
        assert vars(first.stats) == vars(second.stats)

    def test_corrupted_store_degrades_to_cold(self, tmp_path):
        cold = _cold()
        _persist_run(tmp_path, "save")
        path = _store_file(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        # tear every record, keep the header
        broken = [lines[0]] + [line[:10] for line in lines[1:]]
        with open(path, "w") as handle:
            handle.write("\n".join(broken) + "\n")
        result = _persist_run(tmp_path, "load")
        stats = _persist_stats(result)
        assert stats["corrupt_records"] == len(lines) - 1
        assert stats["warm_hits"] == 0
        assert vars(result.stats) == vars(cold.stats)

    def test_garbage_store_quarantined_never_raises(self, tmp_path):
        cold = _cold()
        _persist_run(tmp_path, "save")
        path = _store_file(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"\x00\xff garbage \xfe")
        result = _persist_run(tmp_path, "load")
        stats = _persist_stats(result)
        assert stats["quarantined"] == 1
        assert vars(result.stats) == vars(cold.stats)
        assert os.path.exists(path + ".quarantined")

    def test_no_persist_path_means_no_session(self):
        result = _cold()
        assert result.vm.persist is None
        assert "persist" not in result.vm.telemetry.host_summary()

    def test_persist_save_is_idempotent(self, tmp_path):
        result = _persist_run(tmp_path, "save")
        saved = _persist_stats(result)["records_saved"]
        result.vm.persist_save()     # run_vm already saved once
        assert _persist_stats(result)["records_saved"] == saved


class TestConfiguredFaultsReachPersist:
    def test_config_fault_plan_with_persist_site_shares_injector(
            self, tmp_path):
        _persist_run(tmp_path, "save")
        result = _persist_run(tmp_path, "load",
                              faults="persist_load@count=1")
        assert result.vm.persist.injector is result.vm.injector
        stats = _persist_stats(result)
        assert stats["load_failures"] == 1
        assert stats["faults_injected"] == 1
        assert stats["warm_hits"] == 0

    def test_config_fault_plan_without_persist_site_stays_null(
            self, tmp_path):
        result = _persist_run(tmp_path, "save",
                              faults="translate@count=999")
        assert result.vm.persist.injector is NULL_INJECTOR

    def test_env_fault_overlay_builds_private_injector(
            self, tmp_path, monkeypatch):
        _persist_run(tmp_path, "save")
        monkeypatch.setenv(ENV_PERSIST_FAULTS, "persist_corrupt@every=1")
        monkeypatch.setenv(ENV_PERSIST_FAULT_SEED, "7")
        result = _persist_run(tmp_path, "load")
        session = result.vm.persist
        assert session.injector is not result.vm.injector
        assert session.injector.plan.seed == 7
        stats = _persist_stats(result)
        assert stats["corrupt_records"] > 0
        assert stats["warm_hits"] == 0
        # the private injector must not leak fault events into the
        # deterministic telemetry block
        events = result.vm.telemetry.summary()["events"]["by_kind"]
        assert "fault_injected" not in events


class TestEnvOverlay:
    def test_run_vm_picks_up_env_persist_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_PERSIST_DIR, str(tmp_path))
        monkeypatch.setenv(ENV_PERSIST_MODE, "save")
        result = run_vm("gzip", budget=BUDGET, collect_trace=False,
                        telemetry=True)
        assert result.config.persist_path == str(tmp_path)
        assert result.config.persist_mode == "save"
        assert _persist_stats(result)["records_saved"] > 0

    def test_explicit_config_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_PERSIST_DIR, str(tmp_path / "env"))
        config = VMConfig(persist_path=str(tmp_path / "explicit"))
        result = run_vm("gzip", config, budget=BUDGET,
                        collect_trace=False)
        assert result.config.persist_path == str(tmp_path / "explicit")


class TestSessionInternals:
    def test_session_digest_includes_taken_pattern_and_words(self):
        class Entry:
            def __init__(self, vpc, taken, next_pc, word=0x47FF041F):
                self.vpc = vpc
                self.taken = taken
                self.next_pc = next_pc
                self.next_vpc = next_pc
                self.word = word

        class Block:
            entry_vpc = 0x1000
            continuation_vpc = None

            class end_reason:
                value = "cycle"

            entries = [Entry(0x1000, False, 0x1004)]

        a = superblock_digest(Block)
        Block.entries = [Entry(0x1000, True, 0x1004)]
        b = superblock_digest(Block)
        assert b != a
        # self-modified code: the same path over different words must
        # never share a digest
        Block.entries = [Entry(0x1000, True, 0x1004, word=0x40230403)]
        assert superblock_digest(Block) not in (a, b)

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            canonical_json({"a": [1, 2], "b": 1})

    def test_session_save_without_capture_writes_nothing(self, tmp_path):
        program = get_workload("gzip").program(None)
        config = VMConfig(persist_path=str(tmp_path), persist_mode="load")
        session = PersistSession(program, config)
        assert not session.memo.capture
        assert session.save() is None
        assert list(os.walk(tmp_path))[0][2] == []
