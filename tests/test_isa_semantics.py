"""Semantics tests for the Alpha ALU operations and predicates."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_CONDITIONS,
    CMOV_CONDITIONS,
    branch_taken,
)
from repro.utils.bitops import MASK64, to_signed, to_unsigned

u64 = st.integers(min_value=0, max_value=MASK64)


class TestArithmetic:
    def test_addq_wraps(self):
        assert ALU_OPS["addq"](MASK64, 1) == 0

    def test_subq_wraps(self):
        assert ALU_OPS["subq"](0, 1) == MASK64

    def test_addl_sign_extends(self):
        # 32-bit overflow must sign-extend the truncated result
        assert ALU_OPS["addl"](0x7FFF_FFFF, 1) == to_unsigned(-(1 << 31))

    def test_subl(self):
        assert ALU_OPS["subl"](0, 1) == MASK64

    def test_scaled_adds(self):
        assert ALU_OPS["s4addq"](3, 5) == 17
        assert ALU_OPS["s8addq"](3, 5) == 29
        assert ALU_OPS["s4subq"](3, 5) == 7
        assert ALU_OPS["s8subq"](3, 5) == 19

    def test_mulq_wraps(self):
        assert ALU_OPS["mulq"](1 << 63, 2) == 0

    def test_umulh(self):
        assert ALU_OPS["umulh"](1 << 63, 4) == 2

    def test_mull(self):
        assert ALU_OPS["mull"](0x10000, 0x10000) == 0  # low 32 bits zero

    @given(u64, u64)
    def test_addq_matches_python(self, a, b):
        assert ALU_OPS["addq"](a, b) == (a + b) & MASK64

    @given(u64, u64)
    def test_mulq_matches_python(self, a, b):
        assert ALU_OPS["mulq"](a, b) == (a * b) & MASK64


class TestCompares:
    def test_cmpeq(self):
        assert ALU_OPS["cmpeq"](3, 3) == 1
        assert ALU_OPS["cmpeq"](3, 4) == 0

    def test_signed_compares(self):
        minus_one = MASK64
        assert ALU_OPS["cmplt"](minus_one, 0) == 1
        assert ALU_OPS["cmple"](minus_one, minus_one) == 1
        assert ALU_OPS["cmplt"](0, minus_one) == 0

    def test_unsigned_compares(self):
        assert ALU_OPS["cmpult"](0, MASK64) == 1
        assert ALU_OPS["cmpule"](MASK64, MASK64) == 1
        assert ALU_OPS["cmpult"](MASK64, 0) == 0

    def test_cmpbge(self):
        # every byte of 0xFF.. >= every byte of 0
        assert ALU_OPS["cmpbge"](MASK64, 0) == 0xFF
        assert ALU_OPS["cmpbge"](0, MASK64) == 0
        assert ALU_OPS["cmpbge"](0x00FF, 0x00FF) == 0xFF  # equal bytes

    @given(u64, u64)
    def test_cmplt_matches_signed(self, a, b):
        expected = 1 if to_signed(a) < to_signed(b) else 0
        assert ALU_OPS["cmplt"](a, b) == expected


class TestLogicalAndShifts:
    def test_bic_ornot_eqv(self):
        assert ALU_OPS["bic"](0xFF, 0x0F) == 0xF0
        assert ALU_OPS["ornot"](0, 0) == MASK64
        assert ALU_OPS["eqv"](MASK64, MASK64) == MASK64

    def test_shifts_use_low_six_bits(self):
        assert ALU_OPS["sll"](1, 64) == 1  # shift count wraps at 64
        assert ALU_OPS["srl"](1 << 63, 63) == 1

    def test_sra_sign_fills(self):
        assert ALU_OPS["sra"](1 << 63, 63) == MASK64

    def test_zap_zapnot(self):
        assert ALU_OPS["zap"](MASK64, 0xFF) == 0
        assert ALU_OPS["zapnot"](MASK64, 0x03) == 0xFFFF
        assert ALU_OPS["zap"](0x1122334455667788, 0x01) == \
            0x1122334455667700

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_sll_srl_inverse_on_low_bits(self, a, shift):
        shifted = ALU_OPS["srl"](ALU_OPS["sll"](a, shift), shift)
        assert shifted == a & (MASK64 >> shift)


class TestExtensionsAndCounts:
    def test_sextb_sextw(self):
        assert ALU_OPS["sextb"](0, 0x80) == to_unsigned(-128)
        assert ALU_OPS["sextw"](0, 0x8000) == to_unsigned(-32768)

    def test_ctpop(self):
        assert ALU_OPS["ctpop"](0, 0) == 0
        assert ALU_OPS["ctpop"](0, MASK64) == 64

    def test_ctlz_cttz(self):
        assert ALU_OPS["ctlz"](0, 0) == 64
        assert ALU_OPS["ctlz"](0, 1) == 63
        assert ALU_OPS["ctlz"](0, 1 << 63) == 0
        assert ALU_OPS["cttz"](0, 0) == 64
        assert ALU_OPS["cttz"](0, 1 << 13) == 13

    @given(u64)
    def test_ctpop_matches_bin(self, a):
        assert ALU_OPS["ctpop"](0, a) == bin(a).count("1")


class TestPredicates:
    @pytest.mark.parametrize("mnemonic,value,expected", [
        ("beq", 0, True), ("beq", 1, False),
        ("bne", 0, False), ("bne", 5, True),
        ("blt", MASK64, True), ("blt", 1, False),
        ("bge", 0, True), ("bge", MASK64, False),
        ("ble", 0, True), ("bgt", 1, True), ("bgt", 0, False),
        ("blbc", 2, True), ("blbc", 3, False),
        ("blbs", 3, True), ("blbs", 2, False),
    ])
    def test_branch_conditions(self, mnemonic, value, expected):
        assert branch_taken(mnemonic, value) is expected

    def test_cmov_matches_branch_pairs(self):
        for name, cond in CMOV_CONDITIONS.items():
            branch = BRANCH_CONDITIONS["b" + name[4:]]
            for value in (0, 1, 2, 3, MASK64, 1 << 63):
                assert cond(value) is branch(value)
