"""Closure-specialized execution engine: selection, equivalence, caching.

The heavyweight differential guarantees live in
``test_cosim_differential.py`` (full workloads, both engines); these are
the fast unit-level checks: engine selection and validation, interpreter
decode-cache specialization, trace equivalence, budget behaviour, and the
compiled-code invalidation that chaining patches must perform.
"""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.interp.interpreter import DECODE_CACHE, Interpreter
from repro.vm import CoDesignedVM, VMConfig
from tests.conftest import CALL_KERNEL, FIG2_KERNEL


def _record_fields(record):
    return {slot: getattr(record, slot) for slot in record.__slots__}


def _run_vm(source, engine, fmt=IFormat.MODIFIED, budget=1_000_000,
            collect_trace=False):
    vm = CoDesignedVM(assemble(source),
                      VMConfig(fmt=fmt, exec_engine=engine,
                               collect_trace=collect_trace))
    vm.run(max_v_instructions=budget)
    return vm


class TestEngineSelection:
    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="exec engine"):
            VMConfig(exec_engine="bytecode")

    def test_interpreter_rejects_unknown_engine(self):
        program = assemble(FIG2_KERNEL)
        with pytest.raises(ValueError, match="exec engine"):
            Interpreter(program, exec_engine="bytecode")

    def test_config_roundtrip_carries_engine(self):
        config = VMConfig(exec_engine="naive")
        assert config.to_dict()["exec_engine"] == "naive"
        assert VMConfig.from_dict(config.to_dict()).exec_engine == "naive"

    def test_engines_share_result_cache_keys(self):
        naive = VMConfig(exec_engine="naive")
        specialized = VMConfig(exec_engine="specialized")
        assert naive.key_fields() == specialized.key_fields()
        assert "exec_engine" not in naive.key_fields()


class TestInterpreterSpecialization:
    def test_decode_cache_carries_step_closures(self):
        program = assemble(FIG2_KERNEL)
        interp = Interpreter(program)
        instr = interp.fetch(program.entry)
        word = program.memory.load(program.entry, 4)
        instruction, step = DECODE_CACHE[word]
        assert instruction is instr
        assert callable(step)

    def test_interpreter_engines_agree(self):
        program_a = assemble(FIG2_KERNEL)
        program_b = assemble(FIG2_KERNEL)
        naive = Interpreter(program_a, exec_engine="naive")
        specialized = Interpreter(program_b, exec_engine="specialized")
        assert naive.run() == specialized.run()
        assert naive.state.pc == specialized.state.pc
        assert naive.state.regs == specialized.state.regs
        assert naive.console == specialized.console
        assert naive.instruction_count == specialized.instruction_count

    def test_interpreter_events_agree(self):
        program_a = assemble(CALL_KERNEL)
        program_b = assemble(CALL_KERNEL)
        naive = Interpreter(program_a, exec_engine="naive")
        specialized = Interpreter(program_b, exec_engine="specialized")
        for _ in range(200):
            ev_n = naive.step()
            ev_s = specialized.step()
            assert (ev_n.pc, ev_n.next_pc, ev_n.taken, ev_n.mem_addr) == \
                (ev_s.pc, ev_s.next_pc, ev_s.taken, ev_s.mem_addr)
            assert ev_n.instr is ev_s.instr     # shared decode cache


class TestExecutorSpecialization:
    @pytest.mark.parametrize("fmt",
                             (IFormat.BASIC, IFormat.MODIFIED,
                              IFormat.ALPHA))
    def test_vm_engines_agree(self, fmt):
        naive = _run_vm(FIG2_KERNEL, "naive", fmt=fmt)
        specialized = _run_vm(FIG2_KERNEL, "specialized", fmt=fmt)
        assert specialized.halted and naive.halted
        assert specialized.state.regs == naive.state.regs
        assert vars(specialized.stats) == vars(naive.stats)

    def test_traces_are_identical(self):
        naive = _run_vm(CALL_KERNEL, "naive", collect_trace=True)
        specialized = _run_vm(CALL_KERNEL, "specialized",
                              collect_trace=True)
        assert len(specialized.trace) == len(naive.trace)
        for ours, reference in zip(specialized.trace, naive.trace):
            assert _record_fields(ours) == _record_fields(reference)

    def test_budget_behaviour_is_identical(self):
        naive = _run_vm(FIG2_KERNEL, "naive", budget=800)
        specialized = _run_vm(FIG2_KERNEL, "specialized", budget=800)
        assert not naive.halted and not specialized.halted
        assert specialized.state.pc == naive.state.pc
        assert specialized.state.regs == naive.state.regs
        assert vars(specialized.stats) == vars(naive.stats)


class TestCompiledCodeCache:
    def test_executed_fragments_carry_compiled_code(self):
        vm = _run_vm(FIG2_KERNEL, "specialized")
        executed = [f for f in vm.tcache.fragments if f.execution_count]
        assert executed
        compiled = [f for f in executed if f._compiled[False] is not None]
        assert compiled, "no fragment was compiled to closures"

    def test_invalidate_drops_compiled_code(self):
        vm = _run_vm(FIG2_KERNEL, "specialized")
        fragment = next(f for f in vm.tcache.fragments
                        if f._compiled[False] is not None)
        fragment.invalidate_compiled()
        assert fragment._compiled == [None, None]

    def test_chaining_patch_invalidates_compiled_code(self):
        """A chaining patch rewrites a body instruction in place; stale
        closures would keep exiting to the translator forever."""
        vm = _run_vm(CALL_KERNEL, "specialized")
        assert vm.tcache.patches_applied > 0
        # patched fragments were recompiled and re-executed to completion:
        # the run halts only if patched branches actually chain
        assert vm.halted

    def test_naive_engine_compiles_nothing(self):
        vm = _run_vm(FIG2_KERNEL, "naive")
        assert all(f._compiled == [None, None]
                   for f in vm.tcache.fragments)
