"""Tests for the experiment harness plumbing."""

import pytest

from repro.harness.reporting import ExperimentResult, format_table
from repro.harness.runner import run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WorkloadError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "x"), [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in lines[2]
        assert "2.000" in lines[3]

    def test_title(self):
        text = format_table(("a",), [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"


class TestExperimentResult:
    @pytest.fixture
    def result(self):
        return ExperimentResult("demo", ("workload", "value"),
                                [["gzip", 1.5], ["mcf", 2.5],
                                 ["Avg.", 2.0]],
                                notes=["a note"])

    def test_row_lookup(self, result):
        assert result.row_for("mcf") == ["mcf", 2.5]
        with pytest.raises(KeyError):
            result.row_for("nope")

    def test_render_contains_notes(self, result):
        assert "note: a note" in result.render()

    def test_rows_copy(self, result):
        rows = result.rows()
        rows.append(["junk", 0])
        assert len(result.rows()) == 3


class TestRunner:
    def test_run_vm_returns_trace(self):
        result = run_vm("gzip", VMConfig(fmt=IFormat.MODIFIED),
                        budget=20_000)
        assert result.trace is not None
        assert result.stats.fragments_created > 0
        assert result.tcache is result.vm.tcache

    def test_run_vm_without_trace(self):
        result = run_vm("gzip", VMConfig(fmt=IFormat.MODIFIED),
                        budget=20_000, collect_trace=False)
        assert result.trace is None

    def test_run_vm_respects_budget(self):
        result = run_vm("gzip", budget=5_000)
        total = result.stats.total_v_instructions()
        assert total >= 5_000
        assert total < 10_000  # fragment-boundary overshoot only

    def test_run_original(self):
        trace, interp = run_original("gzip", budget=10_000)
        assert len(trace) == 10_000
        assert interp.instruction_count == 10_000
        assert all(record.size == 4 for record in trace[:100])

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            run_vm("nothere")

    def test_scale_passthrough(self):
        small = run_vm("gzip", budget=1_000_000, scale=1,
                       collect_trace=False)
        large = run_vm("gzip", budget=1_000_000, scale=2,
                       collect_trace=False)
        assert large.stats.total_v_instructions() > \
            small.stats.total_v_instructions()


class TestTraceUtils:
    def test_branch_types(self):
        from repro.uarch.trace_utils import record_for_event
        from repro.interp.interpreter import ExecEvent
        from repro.isa.instruction import Instruction

        cases = [
            (Instruction("bne", ra=1, imm=-2), "cond"),
            (Instruction("br", ra=31, imm=2), "uncond"),
            (Instruction("bsr", ra=26, imm=2), "call"),
            (Instruction("jsr", ra=26, rb=27), "call_ind"),
            (Instruction("jmp", ra=31, rb=27), "indirect"),
            (Instruction("ret", ra=31, rb=26), "ret"),
            (Instruction("addq", ra=1, rb=2, rc=3), None),
        ]
        for instr, expected in cases:
            event = ExecEvent(0x1000, instr, 0x2000, taken=True)
            assert record_for_event(event).btype == expected

    def test_nop_weight_zero(self):
        from repro.uarch.trace_utils import record_for_event
        from repro.interp.interpreter import ExecEvent
        from repro.isa.instruction import Instruction

        nop = Instruction("bis", ra=31, rb=31, rc=31)
        event = ExecEvent(0x1000, nop, 0x1004)
        assert record_for_event(event).v_weight == 0

    def test_mem_addr_propagates(self):
        from repro.uarch.trace_utils import record_for_event
        from repro.interp.interpreter import ExecEvent
        from repro.isa.instruction import Instruction

        ld = Instruction("ldq", ra=1, rb=2, imm=8)
        event = ExecEvent(0x1000, ld, 0x1004, mem_addr=0x2008)
        record = record_for_event(event)
        assert record.op_class == "load"
        assert record.mem_addr == 0x2008
