"""Property-based end-to-end tests.

The central invariant of the whole system: for ANY program, running it
through interpret -> profile -> translate -> execute must produce exactly
the architected state and console output of pure interpretation — under
every I-ISA format, every chaining policy and any accumulator count.

Programs are generated as a hot loop of random ALU/memory/branch
instructions over a safe register and memory window, so they always
terminate and never fault.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.interp import Interpreter
from repro.translator.chaining import ChainingPolicy
from repro.vm import CoDesignedVM, VMConfig

#: Registers the generated body may touch freely.
_BODY_REGS = (3, 4, 5, 6, 7, 8, 9)

_ALU_OPS = ("addq", "subq", "xor", "and", "bis", "sll", "srl", "cmpeq",
            "cmplt", "s4addq", "mulq", "sextb", "ctpop")
_CMOV_OPS = ("cmoveq", "cmovne", "cmovlt")
_BRANCHES = ("beq", "bne", "blt", "bge")


@st.composite
def loop_bodies(draw):
    """A list of renderable instruction descriptors."""
    length = draw(st.integers(min_value=3, max_value=18))
    body = []
    for _ in range(length):
        kind = draw(st.sampled_from(
            ("alu", "alu", "alu", "lit", "load", "store", "cmov",
             "branch")))
        a = draw(st.sampled_from(_BODY_REGS))
        b = draw(st.sampled_from(_BODY_REGS))
        c = draw(st.sampled_from(_BODY_REGS))
        if kind == "alu":
            op = draw(st.sampled_from(_ALU_OPS))
            body.append(("alu", op, a, b, c))
        elif kind == "lit":
            op = draw(st.sampled_from(("addq", "subq", "and", "xor",
                                       "sll")))
            lit = draw(st.integers(min_value=0, max_value=63))
            body.append(("lit", op, a, lit, c))
        elif kind == "load":
            disp = draw(st.integers(min_value=0, max_value=31)) * 8
            body.append(("load", a, disp))
        elif kind == "store":
            disp = draw(st.integers(min_value=0, max_value=31)) * 8
            body.append(("store", a, disp))
        elif kind == "cmov":
            op = draw(st.sampled_from(_CMOV_OPS))
            body.append(("cmov", op, a, b, c))
        else:
            op = draw(st.sampled_from(_BRANCHES))
            skip = draw(st.integers(min_value=1, max_value=3))
            body.append(("branch", op, a, skip))
    return body


def render(body, iterations=70):
    lines = [
        "_start: li r1, %d" % iterations,
        "        la r2, buf",
        "        clr r3",
        "        li r4, 9",
        "        li r5, 177",
        "        clr r6",
        "        li r7, 3",
        "        li r8, 54",
        "        clr r9",
        "loop:",
    ]
    for index, descriptor in enumerate(body):
        kind = descriptor[0]
        if kind == "alu":
            _k, op, a, b, c = descriptor
            if op in ("sextb", "ctpop"):
                lines.append(f"        {op} r{b}, r{c}")
            elif op in ("sll", "srl"):
                # bound shift counts to keep values interesting
                lines.append(f"        and r{b}, 15, r{c}")
                lines.append(f"        {op} r{a}, r{c}, r{c}")
            else:
                lines.append(f"        {op} r{a}, r{b}, r{c}")
        elif kind == "lit":
            _k, op, a, lit, c = descriptor
            lines.append(f"        {op} r{a}, {lit}, r{c}")
        elif kind == "load":
            _k, a, disp = descriptor
            lines.append(f"        ldq r{a}, {disp}(r2)")
        elif kind == "store":
            _k, a, disp = descriptor
            lines.append(f"        stq r{a}, {disp}(r2)")
        elif kind == "cmov":
            _k, op, a, b, c = descriptor
            lines.append(f"        {op} r{a}, r{b}, r{c}")
        elif kind == "branch":
            _k, op, a, skip = descriptor
            label = f"skip_{index}"
            lines.append(f"        {op} r{a}, {label}")
            for pad in range(skip):
                lines.append(f"        addq r9, {pad + 1}, r9")
            lines.append(f"{label}:")
    lines += [
        "        subq r1, 1, r1",
        "        bne r1, loop",
        "        and r9, 0x7f, r16",
        "        call_pal putc",
        "        call_pal halt",
        "        .data",
        "        .align 8",
        "buf:    .space 256, 5",
    ]
    return "\n".join(lines)


def _reference(source):
    interp = Interpreter(assemble(source))
    interp.run(max_instructions=500_000)
    return interp


def _check(source, config):
    reference = _reference(source)
    vm = CoDesignedVM(assemble(source), config)
    vm.run(max_v_instructions=500_000)
    assert vm.halted
    assert vm.interpreter.console == reference.console
    assert vm.state.regs == reference.state.regs, \
        vm.state.diff(reference.state)
    memory = vm.program.memory
    ref_memory = reference.program.memory
    base = vm.program.symbols["buf"]
    assert memory.read_bytes(base, 256) == ref_memory.read_bytes(base, 256)
    assert vm.stats.fragments_created > 0, \
        "program never got translated; the property checked nothing"


_SETTINGS = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestTranslationEquivalence:
    @_SETTINGS
    @given(loop_bodies())
    def test_basic_format(self, body):
        _check(render(body), VMConfig(fmt=IFormat.BASIC, threshold=10))

    @_SETTINGS
    @given(loop_bodies())
    def test_modified_format(self, body):
        _check(render(body), VMConfig(fmt=IFormat.MODIFIED, threshold=10))

    @_SETTINGS
    @given(loop_bodies())
    def test_alpha_format(self, body):
        _check(render(body), VMConfig(fmt=IFormat.ALPHA, threshold=10))

    @_SETTINGS
    @given(loop_bodies(), st.sampled_from((1, 2, 3, 8)))
    def test_accumulator_counts(self, body, n_accumulators):
        _check(render(body), VMConfig(fmt=IFormat.BASIC, threshold=10,
                                      n_accumulators=n_accumulators))

    @_SETTINGS
    @given(loop_bodies())
    def test_fused_memory(self, body):
        _check(render(body), VMConfig(fmt=IFormat.BASIC, threshold=10,
                                      fuse_memory=True))


class TestStructuralInvariants:
    @_SETTINGS
    @given(loop_bodies())
    def test_basic_format_register_discipline(self, body):
        """Every accumulator-format instruction uses at most one GPR and
        one accumulator — the defining I-ISA constraint (Section 2.1)."""
        from repro.ildp_isa.opcodes import IOp

        vm = CoDesignedVM(assemble(render(body)),
                          VMConfig(fmt=IFormat.BASIC, threshold=10))
        vm.run(max_v_instructions=500_000)
        for fragment in vm.tcache.fragments:
            for instr in fragment.body:
                if instr.iop in (IOp.ALU, IOp.LOAD, IOp.STORE):
                    assert instr.gpr2 is None

    @_SETTINGS
    @given(loop_bodies())
    def test_v_weights_account_every_source_instruction(self, body):
        vm = CoDesignedVM(assemble(render(body)),
                          VMConfig(fmt=IFormat.MODIFIED, threshold=10))
        vm.run(max_v_instructions=500_000)
        for fragment in vm.tcache.fragments:
            assert sum(i.v_weight for i in fragment.body) == \
                fragment.source_instr_count
