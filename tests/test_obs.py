"""Tests for the repro.obs telemetry subsystem.

Unit coverage for the metrics registry (creation-on-use, serialisation,
merge semantics), the bounded event stream (wraparound, JSONL round-trip)
and the fragment profiler, plus VM integration: instrumented runs produce
consistent telemetry, the no-op path leaves ``VMStats`` bit-identical,
and the ``repro profile`` CLI renders the report.
"""

import io
import json
from types import SimpleNamespace

import pytest

from repro.harness.runner import run_vm
from repro.obs.events import (
    EventKind,
    EventStream,
    NULL_EVENTS,
    parse_jsonl,
    parse_jsonl_lenient,
)
from repro.obs.profile import (
    FragmentProfiler,
    NULL_PROFILER,
    hot_fragment_table,
    phase_breakdown_lines,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    make_telemetry,
    merge_summary,
)
from repro.vm.config import VMConfig


class TestRegistryMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert registry.counter("c") is counter

    def test_gauge_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3

    def test_timer_spans(self):
        timer = MetricsRegistry().timer("t")
        timer.add(0.5)
        timer.add(0.25, count=3)
        assert timer.seconds == pytest.approx(0.75)
        assert timer.count == 4
        with timer.time():
            pass
        assert timer.count == 5

    def test_histogram_buckets(self):
        histogram = MetricsRegistry().histogram("h", bounds=(10, 20))
        histogram.observe(5)      # <= 10
        histogram.observe(10)     # inclusive upper edge
        histogram.observe(15)
        histogram.observe(1000)   # overflow
        assert histogram.counts == [2, 1, 1]
        assert histogram.total == 4
        histogram.reset()
        assert histogram.counts == [0, 0, 0] and histogram.total == 0

    def test_histogram_bounds_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", bounds=(5, 3))
        with pytest.raises(ValueError):
            registry.histogram("dup", bounds=(3, 3))

    def test_histogram_rebounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        assert registry.histogram("h", bounds=(1, 2)) is not None
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1, 3))


class TestRegistryMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.timer("t").add(1.0, count=2)
        registry.histogram("h", bounds=(10,)).observe(3)
        return registry

    def test_to_dict_json_able_and_sorted(self):
        registry = self._populated()
        registry.counter("a").inc()
        data = registry.to_dict()
        json.dumps(data)
        assert list(data["counters"]) == ["a", "c"]

    def test_merge_semantics(self):
        a, b = self._populated(), self._populated()
        b.gauge("g").set(3)         # lower: max keeps 7
        b.counter("only_b").inc()
        a.merge(b)
        assert a.counters["c"].value == 4
        assert a.counters["only_b"].value == 1
        assert a.gauges["g"].value == 7
        assert a.timers["t"].seconds == pytest.approx(2.0)
        assert a.timers["t"].count == 4
        assert a.histograms["h"].counts == [2, 0]
        assert a.histograms["h"].total == 2

    def test_merge_is_associative_on_counters(self):
        payload = self._populated().to_dict()
        once = MetricsRegistry().merge_dict(payload).merge_dict(payload)
        twice = MetricsRegistry()
        twice.merge(self._populated())
        twice.merge(self._populated())
        assert once.to_dict() == twice.to_dict()

    def test_merge_bounds_mismatch_raises(self):
        a = self._populated()
        payload = self._populated().to_dict()
        payload["histograms"]["h"]["bounds"] = [99]
        with pytest.raises(ValueError):
            a.merge_dict(payload)


class TestEventStream:
    def test_emit_sequences_and_counts(self):
        stream = EventStream()
        first = stream.emit(EventKind.FRAGMENT_CREATED, fid=0)
        second = stream.emit(EventKind.FRAGMENT_ENTERED, fid=0)
        assert (first.seq, second.seq) == (0, 1)
        assert stream.emitted == 2 and stream.dropped == 0
        assert stream.by_kind[EventKind.FRAGMENT_CREATED] == 1
        assert stream.records(EventKind.FRAGMENT_ENTERED) == [second]

    def test_ring_wraparound_drops_oldest(self):
        stream = EventStream(capacity=4)
        for index in range(10):
            stream.emit(EventKind.DISPATCH_RUN, index=index)
        assert len(stream) == 4
        assert stream.emitted == 10
        assert stream.dropped == 6
        kept = [event.data["index"] for event in stream.records()]
        assert kept == [6, 7, 8, 9]
        # per-kind totals survive eviction
        assert stream.by_kind[EventKind.DISPATCH_RUN] == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventStream(capacity=0)

    def test_jsonl_round_trip(self):
        stream = EventStream(capacity=8)
        stream.emit(EventKind.TCACHE_FLUSH, fragments=3, code_bytes=96)
        stream.emit(EventKind.TRAP_DELIVERED, trap_kind="gentrap",
                    vpc=0x1000)
        text = stream.to_jsonl()
        assert len(text.splitlines()) == 2
        for line in text.splitlines():
            json.loads(line)
        assert parse_jsonl(text) == stream.records()

    def test_parse_jsonl_skips_blank_lines(self):
        stream = EventStream()
        stream.emit(EventKind.SUPERBLOCK_CAPTURED, start_vpc=16)
        assert parse_jsonl("\n" + stream.to_jsonl() + "\n") == \
            stream.records()

    def test_parse_jsonl_invalid_json_names_line(self):
        stream = EventStream()
        stream.emit(EventKind.FRAGMENT_CREATED, fid=0)
        text = stream.to_jsonl() + "{not json\n"
        with pytest.raises(ValueError, match="line 2: invalid JSON"):
            parse_jsonl(text)

    def test_parse_jsonl_rejects_non_objects(self):
        with pytest.raises(ValueError, match="line 1: expected a JSON "
                                             "object"):
            parse_jsonl("[1, 2, 3]\n")

    def test_parse_jsonl_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="line 1: missing 'data'"):
            parse_jsonl('{"seq": 0, "kind": "tcache_flush"}\n')

    def test_parse_jsonl_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="line 1: unknown event kind"):
            parse_jsonl('{"seq": 0, "kind": "bogus", "data": {}}\n')

    def test_parse_jsonl_rejects_non_integer_seq(self):
        with pytest.raises(ValueError, match="'seq' must be an integer"):
            parse_jsonl('{"seq": "x", "kind": "tcache_flush", '
                        '"data": {}}\n')

    def test_parse_jsonl_lenient_skips_and_counts(self):
        stream = EventStream()
        stream.emit(EventKind.FRAGMENT_CREATED, fid=0)
        stream.emit(EventKind.TCACHE_FLUSH, fragments=1, code_bytes=8)
        text = ("garbage\n" + stream.to_jsonl()
                + '{"seq": 9, "kind": "bogus", "data": {}}\n')
        events, skipped = parse_jsonl_lenient(text)
        assert events == stream.records()
        assert skipped == 2

    def test_parse_jsonl_lenient_clean_input(self):
        stream = EventStream()
        stream.emit(EventKind.DISPATCH_RUN, vpc=4)
        events, skipped = parse_jsonl_lenient(stream.to_jsonl())
        assert events == stream.records()
        assert skipped == 0

    def test_parse_jsonl_lenient_reports_first_bad_line(self):
        stream = EventStream()
        stream.emit(EventKind.FRAGMENT_CREATED, fid=0)
        text = stream.to_jsonl() + "this is not json\n" + "[]\n"
        events, skipped = parse_jsonl_lenient(text)
        assert skipped == 2
        assert skipped.first_lineno == 2
        assert skipped.first_payload == "this is not json"
        warning = skipped.warning()
        assert "skipped 2 malformed line(s)" in warning
        assert "line 2" in warning
        assert "this is not json" in warning

    def test_parse_jsonl_lenient_truncates_long_payloads(self):
        payload = "x" * 500
        events, skipped = parse_jsonl_lenient(payload + "\n")
        assert events == []
        assert skipped == 1
        assert skipped.first_payload.endswith("...")
        assert len(skipped.first_payload) < 80
        assert "..." in skipped.warning()

    def test_skipped_lines_still_an_int(self):
        _events, skipped = parse_jsonl_lenient("nope\n")
        assert skipped == 1
        assert skipped + 1 == 2     # arithmetic keeps working
        assert bool(skipped) is True

    def test_summary(self):
        stream = EventStream(capacity=1)
        stream.emit(EventKind.FRAGMENT_CREATED, fid=0)
        stream.emit(EventKind.FRAGMENT_CHAINED, fid=0, to_fid=1)
        assert stream.summary() == {
            "emitted": 2, "dropped": 1,
            "by_kind": {EventKind.FRAGMENT_CHAINED: 1,
                        EventKind.FRAGMENT_CREATED: 1},
        }


class TestFragmentProfiler:
    def _stats(self, i=0, v=0):
        return SimpleNamespace(iinstructions_executed=i,
                               source_instructions_executed=v)

    def _frag(self, fid, vpc=0x100):
        return SimpleNamespace(fid=fid, entry_vpc=vpc)

    def test_enter_leave_charges_deltas(self):
        profiler = FragmentProfiler()
        profiler.enter(self._frag(0), self._stats(i=10, v=5))
        profiler.leave("halt", self._stats(i=25, v=12))
        record = profiler.records[0]
        assert record.entries == 1
        assert record.i_instructions == 15
        assert record.v_instructions == 7
        assert record.exit_reasons == {"halt": 1}

    def test_switch_closes_and_reopens(self):
        profiler = FragmentProfiler()
        profiler.enter(self._frag(0), self._stats(i=0, v=0))
        profiler.switch(self._frag(1), self._stats(i=8, v=4))
        profiler.leave("untranslated", self._stats(i=11, v=6))
        assert profiler.records[0].i_instructions == 8
        assert profiler.records[1].i_instructions == 3
        # the transfer counts as an entry but not as an exit of frag 0
        assert profiler.records[0].exit_reasons == {}
        assert profiler.records[1].exit_reasons == {"untranslated": 1}

    def test_top_orders_by_entries_then_iinstructions(self):
        profiler = FragmentProfiler()
        for fid, visits in ((0, 1), (1, 3), (2, 2)):
            for _ in range(visits):
                profiler.enter(self._frag(fid), self._stats())
                profiler.leave("halt", self._stats())
        assert [record.fid for record in profiler.top(2)] == [1, 2]
        assert len(profiler) == 3


class TestNullObjects:
    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("c").inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        with NULL_REGISTRY.timer("t").time():
            pass
        NULL_REGISTRY.histogram("h").observe(1)
        assert NULL_REGISTRY.to_dict() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {}}

    def test_null_events_and_profiler(self):
        assert NULL_EVENTS.emit(EventKind.TCACHE_FLUSH) is None
        assert NULL_EVENTS.summary() == \
            {"emitted": 0, "dropped": 0, "by_kind": {}}
        assert NULL_EVENTS.to_jsonl() == ""
        NULL_PROFILER.enter(None, None)
        NULL_PROFILER.leave("halt", None)
        assert NULL_PROFILER.top() == [] and len(NULL_PROFILER) == 0

    def test_make_telemetry_selects_by_config(self):
        assert make_telemetry(VMConfig()) is NULL_TELEMETRY
        live = make_telemetry(VMConfig(telemetry=True))
        assert live.enabled and isinstance(live, Telemetry)
        # each enabled VM gets a fresh object, never a shared one
        assert make_telemetry(VMConfig(telemetry=True)) is not live

    def test_null_summaries_are_empty(self):
        summary = NULL_TELEMETRY.summary()
        assert summary["counters"] == {} and summary["hot_fragments"] == []
        assert NULL_TELEMETRY.host_summary() == \
            {"timers": {}, "decode_misses": 0}


class TestMergeSummary:
    def test_folds_events_and_host(self):
        telemetry = Telemetry()
        telemetry.registry.counter("exec.fragment_entries").inc(4)
        telemetry.events.emit(EventKind.FRAGMENT_CREATED, fid=0)
        telemetry.events.emit(EventKind.FRAGMENT_CREATED, fid=1)
        telemetry.registry.timer("phase.vm.interpret").add(0.5)
        telemetry.decode_misses = 9
        telemetry.fragments.enter(
            SimpleNamespace(fid=0, entry_vpc=0), SimpleNamespace(
                iinstructions_executed=0, source_instructions_executed=0))

        aggregate = MetricsRegistry()
        for _ in range(2):
            merge_summary(aggregate, telemetry.summary(),
                          host=telemetry.host_summary())
        assert aggregate.counters["exec.fragment_entries"].value == 8
        assert aggregate.counters["events.fragment_created"].value == 4
        assert aggregate.counters["fragments.profiled"].value == 2
        assert aggregate.counters["interp.decode_misses"].value == 18
        assert aggregate.timers["phase.vm.interpret"].seconds == \
            pytest.approx(1.0)

    def test_host_optional(self):
        aggregate = merge_summary(MetricsRegistry(),
                                  NULL_TELEMETRY.summary())
        assert aggregate.timers == {}


@pytest.fixture(scope="module")
def instrumented():
    """One telemetry-on gzip run shared by the integration tests."""
    return run_vm("gzip", VMConfig(telemetry=True), budget=40_000,
                  collect_trace=False)


class TestVMIntegration:
    def test_events_cover_fragment_lifecycle(self, instrumented):
        by_kind = instrumented.vm.telemetry.events.by_kind
        assert by_kind[EventKind.SUPERBLOCK_CAPTURED] == \
            instrumented.stats.superblocks_captured
        assert by_kind[EventKind.FRAGMENT_CREATED] == \
            instrumented.stats.fragments_created
        assert by_kind[EventKind.FRAGMENT_ENTERED] > 0

    def test_profiler_matches_execution_counts(self, instrumented):
        profiler = instrumented.vm.telemetry.fragments
        entries = sum(r.entries for r in profiler.records.values())
        execs = sum(f.execution_count
                    for f in instrumented.tcache.fragments)
        assert entries == execs
        counters = instrumented.vm.telemetry.registry.counters
        assert counters["exec.fragment_entries"].value + \
            counters["exec.fragment_transitions"].value == entries

    def test_profiled_instructions_sum_to_stats(self, instrumented):
        profiler = instrumented.vm.telemetry.fragments
        stats = instrumented.stats
        assert sum(r.i_instructions for r in profiler.records.values()) \
            == stats.iinstructions_executed
        assert sum(r.v_instructions for r in profiler.records.values()) \
            == stats.source_instructions_executed

    def test_phase_timers_recorded(self, instrumented):
        timers = instrumented.vm.telemetry.registry.timers
        assert timers["phase.vm.interpret"].count > 0
        assert timers["phase.vm.translated"].count > 0
        assert timers["phase.translate.codegen"].count == \
            instrumented.stats.fragments_created

    def test_finalize_mirrors_stats_gauges(self, instrumented):
        gauges = instrumented.vm.telemetry.registry.gauges
        for name, value in instrumented.stats.summary().items():
            assert gauges[f"stats.{name}"].value == value
        assert gauges["tcache.fragments_live"].value == \
            len(instrumented.tcache.fragments)
        assert gauges["tcache.invalidations"].value == \
            instrumented.tcache.invalidations

    def test_summary_views_json_able(self, instrumented):
        telemetry = instrumented.vm.telemetry
        json.dumps(telemetry.summary())
        json.dumps(telemetry.host_summary())
        histogram = telemetry.summary()["histograms"]
        assert histogram["tcache.fragment_sizes"]["total"] == \
            instrumented.stats.fragments_created

    def test_report_renderers(self, instrumented):
        telemetry = instrumented.vm.telemetry
        table = hot_fragment_table(telemetry.fragments,
                                   instrumented.tcache, top=3)
        assert len(table) == 2 + min(3, len(telemetry.fragments))
        assert "V-entry" in table[1]
        breakdown = phase_breakdown_lines(telemetry.registry)
        assert any("vm.interpret" in line for line in breakdown)

    def test_hot_fragment_table_marks_flushed(self, instrumented):
        telemetry = instrumented.vm.telemetry
        empty = SimpleNamespace(fragments=[])
        table = hot_fragment_table(telemetry.fragments, empty, top=1)
        assert "(flushed)" in table[-1]


class TestNoOpParity:
    @pytest.mark.parametrize("workload", ("gzip", "mcf", "twolf"))
    def test_stats_identical_telemetry_on_off(self, workload):
        on = run_vm(workload, VMConfig(telemetry=True), budget=30_000,
                    collect_trace=False)
        off = run_vm(workload, VMConfig(), budget=30_000,
                     collect_trace=False)
        assert vars(on.stats) == vars(off.stats)
        assert on.vm.state.regs == off.vm.state.regs
        assert on.vm.state.pc == off.vm.state.pc
        assert on.vm.console_text() == off.vm.console_text()

    def test_disabled_vm_uses_shared_null(self):
        result = run_vm("gzip", VMConfig(), budget=5_000,
                        collect_trace=False)
        assert result.vm.telemetry is NULL_TELEMETRY
        assert result.vm.executor._prof is None


class TestProfileCli:
    def _run(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_profile_renders_report(self):
        code, text = self._run("profile", "gzip", "--budget", "20000")
        assert code == 0
        assert "hot fragments" in text
        assert "phase times" in text
        assert "vm.interpret" in text
        assert "fragment_created" in text

    def test_profile_accepts_telemetry_flag(self):
        code, text = self._run("profile", "gzip", "--telemetry",
                               "--budget", "20000")
        assert code == 0
        assert "hot fragments" in text

    def test_profile_exports_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        code, text = self._run("profile", "gzip", "--budget", "20000",
                               "--events-jsonl", str(path))
        assert code == 0
        events = parse_jsonl(path.read_text())
        assert events
        assert {event.kind for event in events} >= \
            {EventKind.FRAGMENT_CREATED, EventKind.FRAGMENT_ENTERED}

    def test_run_with_telemetry_prints_block(self):
        code, text = self._run("run", "gzip", "--telemetry",
                               "--budget", "20000")
        assert code == 0
        assert "telemetry:" in text and "emitted" in text

    def test_profile_warns_on_ring_overflow(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_CAPACITY", "4")
        code, text = self._run("profile", "gzip", "--budget", "20000")
        assert code == 0
        assert "warning: the event ring overflowed" in text
        assert "REPRO_EVENT_CAPACITY" in text

    def test_profile_no_warning_without_overflow(self):
        code, text = self._run("profile", "gzip", "--budget", "20000")
        assert code == 0
        assert "overflowed" not in text

    def test_event_capacity_env_override(self, monkeypatch):
        from repro.vm.config import VMConfig

        monkeypatch.setenv("REPRO_EVENT_CAPACITY", "7")
        telemetry = make_telemetry(VMConfig(telemetry=True))
        assert telemetry.events.capacity == 7
        monkeypatch.delenv("REPRO_EVENT_CAPACITY")
        telemetry = make_telemetry(VMConfig(telemetry=True))
        assert telemetry.events.capacity == 4096
