"""Tests for superblock capture and RTL decomposition."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.translator.decompose import NodeKind, decompose
from repro.translator.superblock import EndReason
from repro.vm import CoDesignedVM, VMConfig


def capture_superblock(source, fmt=IFormat.MODIFIED, threshold=5):
    """Run the VM until its first translation and return that superblock."""
    vm = CoDesignedVM(assemble(source),
                      VMConfig(fmt=fmt, threshold=threshold))
    vm.run(max_v_instructions=200_000)
    assert vm.tcache.fragments, "no fragment was ever translated"
    return vm.tcache.fragments[0].superblock


LOOP = """
_start: li r1, 100
        la r2, buf
loop:   ldq r3, 8(r2)
        addq r3, 1, r3
        stq r3, 8(r2)
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
        .data
buf:    .space 64
"""


class TestCapture:
    def test_backward_taken_ends_block(self):
        superblock = capture_superblock(LOOP)
        assert superblock.end_reason is EndReason.BACKWARD_TAKEN_BRANCH
        assert superblock.entries[-1].instr.mnemonic == "bne"

    def test_entry_is_loop_head(self):
        superblock = capture_superblock(LOOP)
        first = superblock.entries[0]
        assert first.instr.mnemonic == "ldq"

    def test_continuation_is_fallthrough(self):
        superblock = capture_superblock(LOOP)
        last = superblock.entries[-1]
        assert superblock.continuation_vpc == last.vpc + 4

    def test_indirect_ends_block(self):
        superblock = capture_superblock("""
_start: li r1, 60
        la r4, fnp
loop:   ldq r27, 0(r4)
        jsr r26, (r27)
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
fn:     ret
        .data
fnp:    .quad fn
""")
        assert superblock.end_reason is EndReason.INDIRECT_JUMP

    def test_nops_not_counted(self):
        superblock = capture_superblock("""
_start: li r1, 50
loop:   nop
        addq r2, 1, r2
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
""")
        # the nop appears in entries but is excluded from the count
        assert superblock.alpha_instruction_count() == \
            len(superblock.entries) - 1


class TestDecomposition:
    def _nodes(self, body, fuse_memory=False, split_cmov=True):
        source = f"_start: li r1, 20\nloop:   {body}\n" \
                 "        subq r1, 1, r1\n        bne r1, loop\n" \
                 "        call_pal halt\n        .data\nbuf: .space 64\n"
        superblock = capture_superblock(source)
        return decompose(superblock, fuse_memory=fuse_memory,
                         split_cmov=split_cmov)

    def test_load_with_displacement_splits(self):
        nodes = self._nodes("la r2, buf\n        ldq r3, 8(r2)")
        kinds = [n.kind for n in nodes]
        load_index = kinds.index(NodeKind.LOAD)
        addr_calc = nodes[load_index - 1]
        assert addr_calc.kind is NodeKind.ALU
        assert addr_calc.dest[0] == "temp"
        assert nodes[load_index].addr == addr_calc.dest
        assert nodes[load_index].disp == 0

    def test_load_zero_displacement_not_split(self):
        nodes = self._nodes("la r2, buf\n        ldq r3, 0(r2)")
        loads = [n for n in nodes if n.kind is NodeKind.LOAD]
        assert loads[0].addr == ("reg", 2)

    def test_fused_memory_keeps_displacement(self):
        nodes = self._nodes("la r2, buf\n        ldq r3, 8(r2)",
                            fuse_memory=True)
        loads = [n for n in nodes if n.kind is NodeKind.LOAD]
        assert loads[0].disp == 8
        assert loads[0].addr == ("reg", 2)

    def test_cmov_splits_into_pair(self):
        nodes = self._nodes("cmpeq r1, 5, r4\n        cmovne r4, 7, r5")
        ops = [n.op for n in nodes if n.kind is NodeKind.ALU]
        assert "cmov1_ne" in ops
        assert "cmov2" in ops
        first = next(n for n in nodes if n.op == "cmov1_ne")
        second = next(n for n in nodes if n.op == "cmov2")
        assert first.dest[0] == "temp"
        assert second.src_a == first.dest

    def test_cmov_unsplit_for_alpha(self):
        nodes = self._nodes("cmpeq r1, 5, r4\n        cmovne r4, 7, r5",
                            split_cmov=False)
        ops = [n.op for n in nodes if n.kind is NodeKind.ALU]
        assert "cmovne" in ops
        assert "cmov1_ne" not in ops

    def test_store_data_operand(self):
        nodes = self._nodes("la r2, buf\n        stq r1, 0(r2)")
        stores = [n for n in nodes if n.kind is NodeKind.STORE]
        assert stores[0].data == ("reg", 1)

    def test_r31_source_becomes_zero_imm(self):
        nodes = self._nodes("addq r31, r1, r4")
        adds = [n for n in nodes if n.op == "addq" and n.dest == ("reg", 4)]
        assert adds[0].src_a == ("imm", 0)

    def test_lda_becomes_add(self):
        nodes = self._nodes("lda r4, 24(r1)")
        adds = [n for n in nodes if n.dest == ("reg", 4)]
        assert adds[0].op == "addq"
        assert adds[0].src_b == ("imm", 24)

    def test_ldah_scales_displacement(self):
        nodes = self._nodes("ldah r4, 3(r1)")
        adds = [n for n in nodes if n.dest == ("reg", 4)]
        assert adds[0].src_b == ("imm", 3 * 65536)

    def test_branch_node_records_direction(self):
        nodes = self._nodes("addq r2, 1, r2")
        branch = nodes[-1]
        assert branch.kind is NodeKind.BRANCH
        assert branch.taken  # captured on the backward-taken iteration
        assert branch.taken_target < branch.vpc

    def test_node_indices_sequential(self):
        nodes = self._nodes("la r2, buf\n        ldq r3, 8(r2)")
        assert [n.index for n in nodes] == list(range(len(nodes)))
