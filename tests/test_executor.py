"""Functional executor tests: co-simulation, budgets, staleness checks."""

import pytest

from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm import CoDesignedVM, VMConfig
from repro.vm.executor import ExitReason, StalenessError
from repro.asm import assemble
from tests.conftest import (
    ALL_FORMATS,
    CALL_KERNEL,
    FIG2_KERNEL,
    assert_cosim_equivalent,
    run_reference,
)


class TestCoSimulation:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_fig2_kernel(self, fmt):
        assert_cosim_equivalent(FIG2_KERNEL, VMConfig(fmt=fmt))

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_call_kernel(self, fmt):
        assert_cosim_equivalent(CALL_KERNEL, VMConfig(fmt=fmt))

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_memory_mutation_kernel(self, fmt):
        source = """
_start: li r1, 90
        la r2, buf
loop:   ldq r3, 0(r2)
        addq r3, r1, r3
        stq r3, 0(r2)
        ldq r4, 8(r2)
        subq r4, 1, r4
        stq r4, 8(r2)
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
        .data
buf:    .quad 5
        .quad 1000
"""
        vm = assert_cosim_equivalent(source, VMConfig(fmt=fmt))
        reference = run_reference(source)
        base = vm.program.symbols["buf"]
        assert vm.program.memory.load(base, 8) == \
            reference.program.memory.load(base, 8)

    def test_eight_accumulators(self):
        assert_cosim_equivalent(
            FIG2_KERNEL, VMConfig(fmt=IFormat.BASIC, n_accumulators=8))

    def test_two_accumulators_forces_spills(self):
        vm = assert_cosim_equivalent(
            FIG2_KERNEL, VMConfig(fmt=IFormat.BASIC, n_accumulators=2))
        assert vm.stats.premature_terminations >= 0  # correctness first

    def test_fuse_memory_mode(self):
        source = """
_start: li r1, 80
        la r2, buf
loop:   ldq r3, 16(r2)
        addq r3, 1, r3
        stq r3, 16(r2)
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
        .data
buf:    .space 64
"""
        for fmt in (IFormat.BASIC, IFormat.MODIFIED):
            assert_cosim_equivalent(source,
                                    VMConfig(fmt=fmt, fuse_memory=True))


class TestBudget:
    def test_budget_stops_at_fragment_boundary(self):
        from repro.asm import assemble

        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.MODIFIED))
        stats = vm.run(max_v_instructions=800)
        assert not vm.halted
        assert stats.total_v_instructions() >= 800
        # the VM must be resumable: state.pc is a clean V-PC
        assert vm.state.pc != 0

    def test_budget_resume_completes(self):
        from repro.asm import assemble

        reference = run_reference(FIG2_KERNEL)
        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.BASIC))
        while not vm.halted:
            vm.run(max_v_instructions=vm.stats.total_v_instructions() + 311)
        assert vm.state.regs == reference.state.regs


class TestStaleness:
    def test_strict_mode_passes_on_correct_translations(self):
        assert_cosim_equivalent(
            FIG2_KERNEL,
            VMConfig(fmt=IFormat.MODIFIED, strict_modified=True))

    def test_stale_read_detected(self):
        """Manually corrupt an operational flag: strict mode must catch a
        same-fragment GPR read of the now-stale value."""
        source = """
_start: li r1, 90
loop:   addq r1, 3, r2
        addq r2, 1, r3
        addq r3, r2, r4
        subq r1, 1, r1
        bne r1, loop
        call_pal halt
"""
        vm = CoDesignedVM(assemble(source),
                          VMConfig(fmt=IFormat.MODIFIED,
                                   strict_modified=True))
        # translate first, then sabotage: clear every operational flag on
        # instructions whose value is read through a GPR later
        try:
            vm.run(max_v_instructions=2_000)
        except StalenessError:
            pytest.fail("correct translation flagged as stale")
        fragment = vm.tcache.fragments[0]
        sabotaged = False
        for instr in fragment.body:
            if instr.dest_gpr == 2 and instr.operational:
                instr.operational = False
                sabotaged = True
        if not sabotaged:
            pytest.skip("kernel did not produce an operational r2")
        vm2 = CoDesignedVM(assemble(source),
                           VMConfig(fmt=IFormat.MODIFIED,
                                    strict_modified=True))
        vm2.tcache = vm.tcache  # reuse the sabotaged cache
        vm2.executor.tcache = vm.tcache
        with pytest.raises(StalenessError):
            vm2.run(max_v_instructions=50_000)


class TestExitReasons:
    def test_halt_exit(self):
        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.MODIFIED))
        vm.run(max_v_instructions=1_000_000)
        assert vm.halted

    def test_untranslated_exit_notes_candidate(self):
        vm = CoDesignedVM(assemble(FIG2_KERNEL),
                          VMConfig(fmt=IFormat.MODIFIED))
        vm.run(max_v_instructions=1_000_000)
        # the loop fall-through became a fragment-exit candidate
        from repro.interp.profiler import CandidateKind

        kinds = [vm.profiler.candidate_kind(vpc)
                 for vpc in vm.profiler._kinds]
        assert CandidateKind.FRAGMENT_EXIT in kinds
