"""Memory model tests: paging, strict access checks, traps."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.semantics import Trap, TrapKind
from repro.memory.image import Memory, PAGE_SIZE


@pytest.fixture
def memory():
    mem = Memory()
    mem.map_segment("data", 0x10000, 0x4000)
    return mem


class TestAccess:
    def test_zero_filled(self, memory):
        assert memory.load(0x10000, 8) == 0

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_store_load_roundtrip(self, memory, size):
        value = 0x1122334455667788 & ((1 << (8 * size)) - 1)
        memory.store(0x10100, value, size)
        assert memory.load(0x10100, size) == value

    def test_little_endian(self, memory):
        memory.store(0x10000, 0x0102030405060708, 8)
        assert memory.load(0x10000, 1) == 0x08
        assert memory.load(0x10007, 1) == 0x01

    def test_store_truncates(self, memory):
        memory.store(0x10000, 0x1FF, 1)
        assert memory.load(0x10000, 1) == 0xFF

    def test_cross_page_bytes(self, memory):
        boundary = 0x10000 + PAGE_SIZE - 2
        memory.write_bytes(boundary, b"\x01\x02\x03\x04")
        assert memory.read_bytes(boundary, 4) == b"\x01\x02\x03\x04"

    @given(st.integers(min_value=0, max_value=0x3FF8 // 8 * 8),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, offset, value):
        mem = Memory()
        mem.map_segment("data", 0x10000, 0x4000)
        address = 0x10000 + (offset & ~7)
        mem.store(address, value, 8)
        assert mem.load(address, 8) == value


class TestTraps:
    def test_unmapped_load_traps(self, memory):
        with pytest.raises(Trap) as excinfo:
            memory.load(0x9999000, 8, vpc=0x123)
        assert excinfo.value.kind is TrapKind.ACCESS_VIOLATION
        assert excinfo.value.vpc == 0x123
        assert excinfo.value.address == 0x9999000

    def test_unmapped_store_traps(self, memory):
        with pytest.raises(Trap):
            memory.store(0x9999000, 1, 8)

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_unaligned_traps(self, memory, size):
        with pytest.raises(Trap) as excinfo:
            memory.load(0x10001, size)
        assert excinfo.value.kind is TrapKind.UNALIGNED

    def test_byte_access_never_unaligned(self, memory):
        memory.load(0x10001, 1)  # must not raise


class TestSegmentsAndSnapshot:
    def test_is_mapped(self, memory):
        assert memory.is_mapped(0x10000)
        assert not memory.is_mapped(0x500000)

    def test_segment_records(self, memory):
        segment = memory.segments[0]
        assert segment.name == "data"
        assert segment.end == 0x14000

    def test_snapshot_is_independent(self, memory):
        memory.store(0x10000, 42, 8)
        clone = memory.snapshot()
        memory.store(0x10000, 99, 8)
        assert clone.load(0x10000, 8) == 42
        assert memory.load(0x10000, 8) == 99
