"""Fault-injection framework: spec grammar, injector, config plumbing."""

import pytest

from repro.faults.inject import (
    NULL_INJECTOR,
    FaultInjector,
    make_injector,
)
from repro.faults.plan import (
    KNOWN_SITES,
    FaultPlan,
    FaultSite,
    FaultSpec,
    parse_fault_spec,
)
from repro.vm.config import VMConfig


class TestSpecGrammar:
    def test_bare_site(self):
        spec = parse_fault_spec("translate")
        assert spec.site == FaultSite.TRANSLATE
        assert spec.vpc is None and spec.count is None
        assert spec.every is None and spec.after == 0
        assert spec.p is None and spec.times is None

    def test_all_selectors(self):
        spec = parse_fault_spec(
            "translate@vpc=0x2000,every=2,after=4,times=3")
        assert spec.vpc == 0x2000
        assert spec.every == 2
        assert spec.after == 4
        assert spec.times == 3

    def test_decimal_and_hex_vpc_agree(self):
        assert parse_fault_spec("corrupt@vpc=0x1200").vpc == \
            parse_fault_spec("corrupt@vpc=4608").vpc

    def test_probability(self):
        assert parse_fault_spec("corrupt@p=0.25").p == 0.25

    def test_worker_selector(self):
        assert parse_fault_spec("worker_crash@worker=1").worker == 1

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            parse_fault_spec("meteor_strike")

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError, match="unknown fault selector"):
            parse_fault_spec("translate@frequency=2")

    def test_missing_value_rejected(self):
        with pytest.raises(ValueError, match="malformed fault selector"):
            parse_fault_spec("translate@vpc")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty fault spec"):
            parse_fault_spec("   ")

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            parse_fault_spec("translate@p=1.5")

    def test_positive_selectors_validated(self):
        for bad in ("count=0", "every=0", "times=0", "after=-1"):
            with pytest.raises(ValueError):
                parse_fault_spec(f"translate@{bad}")

    def test_render_round_trips(self):
        spec = FaultSpec(FaultSite.CORRUPT, vpc=0x1200, every=3, times=2)
        assert parse_fault_spec(spec.text) == spec

    def test_known_sites_cover_constants(self):
        assert KNOWN_SITES == {
            "translate", "tcache_full", "corrupt",
            "worker_crash", "worker_timeout",
            "persist_load", "persist_corrupt",
            "smc", "protect"}


class TestPlanParsing:
    def test_semicolon_separated(self):
        plan = FaultPlan.parse("translate@count=1; corrupt@count=2")
        assert [spec.site for spec in plan.specs] == \
            ["translate", "corrupt"]

    def test_iterable_of_specs(self):
        plan = FaultPlan.parse(["translate@count=1", "corrupt@count=2"])
        assert len(plan.specs) == 2

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="no specs"):
            FaultPlan.parse(" ; ; ")

    def test_spec_text_canonical(self):
        plan = FaultPlan.parse("translate@count=1;corrupt")
        assert plan.spec_text() == "translate@count=1;corrupt"

    def test_sites(self):
        plan = FaultPlan.parse("translate;translate@count=2;corrupt")
        assert plan.sites() == {"translate", "corrupt"}

    def test_plans_compare_by_specs_and_seed(self):
        assert FaultPlan.parse("translate", seed=1) == \
            FaultPlan.parse("translate", seed=1)
        assert FaultPlan.parse("translate", seed=1) != \
            FaultPlan.parse("translate", seed=2)


class TestSpecMatching:
    def _matches(self, text, occurrence, **attrs):
        spec = parse_fault_spec(text)
        return spec.matches(occurrence, attrs, lambda: 0.0)

    def test_bare_site_matches_everything(self):
        assert all(self._matches("translate", n) for n in (1, 2, 7))

    def test_count_is_exact(self):
        hits = [n for n in range(1, 8)
                if self._matches("translate@count=3", n)]
        assert hits == [3]

    def test_every_with_after_offset(self):
        hits = [n for n in range(1, 11)
                if self._matches("translate@every=3,after=1", n)]
        assert hits == [4, 7, 10]

    def test_after_skips_prefix(self):
        hits = [n for n in range(1, 6)
                if self._matches("translate@after=3", n)]
        assert hits == [4, 5]

    def test_vpc_filter(self):
        spec = parse_fault_spec("translate@vpc=0x2000")
        assert spec.matches(1, {"vpc": 0x2000}, lambda: 0.0)
        assert not spec.matches(1, {"vpc": 0x2004}, lambda: 0.0)

    def test_worker_filter(self):
        spec = parse_fault_spec("worker_crash@worker=0")
        assert spec.matches(1, {"worker": 0}, lambda: 0.0)
        assert not spec.matches(1, {"worker": 1}, lambda: 0.0)

    def test_probability_consults_draw(self):
        spec = parse_fault_spec("translate@p=0.5")
        assert spec.matches(1, {}, lambda: 0.4)
        assert not spec.matches(1, {}, lambda: 0.6)


class TestInjector:
    def _fire_n(self, injector, site, n):
        return [injector.fire(site) for _ in range(n)]

    def test_every_schedule(self):
        injector = FaultInjector(FaultPlan.parse("translate@every=2"))
        assert self._fire_n(injector, "translate", 6) == \
            [False, True, False, True, False, True]

    def test_times_caps_injections(self):
        injector = FaultInjector(FaultPlan.parse("translate@times=2"))
        assert self._fire_n(injector, "translate", 5) == \
            [True, True, False, False, False]
        assert injector.total_injected() == 2

    def test_sites_counted_independently(self):
        injector = FaultInjector(
            FaultPlan.parse("translate@count=2;corrupt@count=1"))
        assert not injector.fire("translate")
        assert injector.fire("corrupt")
        assert injector.fire("translate")
        assert injector.occurrences == {"translate": 2, "corrupt": 1}
        assert injector.injected == {"translate": 1, "corrupt": 1}

    def test_unplanned_site_never_fires(self):
        injector = FaultInjector(FaultPlan.parse("translate"))
        assert not any(self._fire_n(injector, "corrupt", 4))

    def test_probabilistic_schedule_deterministic_per_seed(self):
        def schedule(seed):
            injector = FaultInjector(
                FaultPlan.parse("translate@p=0.3", seed=seed))
            return self._fire_n(injector, "translate", 200)

        first = schedule(42)
        assert first == schedule(42)
        assert 0 < sum(first) < 200     # neither all-fire nor never-fire
        assert first != schedule(43)

    def test_attrs_matched_against_selectors(self):
        injector = FaultInjector(FaultPlan.parse("translate@vpc=0x2000"))
        assert not injector.fire("translate", vpc=0x1000)
        assert injector.fire("translate", vpc=0x2000)

    def test_summary(self):
        injector = FaultInjector(
            FaultPlan.parse("translate@count=1", seed=9))
        injector.fire("translate")
        summary = injector.summary()
        assert summary["plan"] == "translate@count=1"
        assert summary["seed"] == 9
        assert summary["occurrences"] == {"translate": 1}
        assert summary["injected"] == {"translate": 1}

    def test_telemetry_records_injections(self):
        from repro.obs.events import EventKind
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry()
        injector = FaultInjector(FaultPlan.parse("translate@count=1"),
                                 telemetry=telemetry)
        injector.fire("translate", vpc=0x1200)
        counter = telemetry.registry.counter("faults.injected.translate")
        assert counter.value == 1
        kinds = [record.kind for record in telemetry.events.records()]
        assert EventKind.FAULT_INJECTED in kinds


class TestNullInjector:
    def test_never_fires(self):
        assert not NULL_INJECTOR.fire("translate", vpc=0x2000)
        assert NULL_INJECTOR.total_injected() == 0
        assert not NULL_INJECTOR.enabled

    def test_empty_summary(self):
        assert NULL_INJECTOR.summary()["plan"] is None

    def test_selected_when_faults_unset(self):
        assert make_injector(VMConfig()) is NULL_INJECTOR

    def test_real_injector_when_faults_set(self):
        config = VMConfig(faults="translate@count=1", fault_seed=5)
        injector = make_injector(config)
        assert injector.enabled
        assert injector.plan.seed == 5
        assert injector.plan.spec_text() == "translate@count=1"


class TestConfigPlumbing:
    def test_list_of_specs_normalised(self):
        config = VMConfig(faults=["translate@count=1", "corrupt@count=2"])
        assert config.faults == "translate@count=1;corrupt@count=2"

    def test_bad_spec_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            VMConfig(faults="bogus_site")

    def test_empty_faults_normalised_to_none(self):
        assert VMConfig(faults="").faults is None

    def test_degradation_knobs_validated(self):
        with pytest.raises(ValueError):
            VMConfig(tcache_capacity_bytes=0)
        with pytest.raises(ValueError):
            VMConfig(max_host_steps=0)
        with pytest.raises(ValueError):
            VMConfig(translation_retry_limit=0)
        with pytest.raises(ValueError):
            VMConfig(flush_storm_window=-1)

    def test_verify_defaults_follow_plan(self):
        assert VMConfig().resolve_verify_fragments() is False
        assert VMConfig(faults="corrupt@count=1") \
            .resolve_verify_fragments() is True
        assert VMConfig(faults="translate@count=1") \
            .resolve_verify_fragments() is False

    def test_verify_explicit_wins(self):
        config = VMConfig(faults="corrupt@count=1", verify_fragments=False)
        assert config.resolve_verify_fragments() is False
        assert VMConfig(verify_fragments=True) \
            .resolve_verify_fragments() is True

    def test_fault_fields_excluded_from_cache_key(self):
        chaotic = VMConfig(faults="corrupt@count=1", fault_seed=77,
                           verify_fragments=True)
        assert chaotic.key_fields() == VMConfig().key_fields()

    def test_degradation_knobs_stay_in_cache_key(self):
        bounded = VMConfig(tcache_capacity_bytes=4096)
        assert bounded.key_fields() != VMConfig().key_fields()
        assert VMConfig(max_host_steps=10_000).key_fields() != \
            VMConfig().key_fields()

    def test_to_dict_round_trips_fault_fields(self):
        config = VMConfig(faults="translate@every=2", fault_seed=3,
                          tcache_capacity_bytes=2048, max_host_steps=500,
                          translation_retry_limit=2, flush_storm_window=9,
                          verify_fragments=True)
        rebuilt = VMConfig.from_dict(config.to_dict())
        assert rebuilt.to_dict() == config.to_dict()

    def test_copy_carries_fault_fields(self):
        config = VMConfig().copy(faults="corrupt@count=1", fault_seed=4)
        assert config.faults == "corrupt@count=1"
        assert config.fault_seed == 4
