"""The shrinker's mechanics, independent of any real divergence.

Predicates here are synthetic (word-content checks or interpreter
observations), so the passes can be validated in isolation: chunk
deletion converges, branch displacements are repaired across deleted
ranges, simplification rewrites operands, and the whole thing respects
its check budget.
"""

from repro.fuzz.gen import FuzzProgram, GENERATOR_VERSION
from repro.fuzz.oracle import run_reference
from repro.fuzz.shrink import NOP_WORD, shrink_words
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction


def _words(*instrs):
    return [encode(instr) for instr in instrs]


def _fprog(words):
    return FuzzProgram(0, 0, GENERATOR_VERSION, 4, words, b"")


HALT = encode(Instruction("call_pal", imm=0))
MARKER = encode(Instruction("xor", ra=3, rb=4, rc=5))


class TestDeletion:
    def test_deletes_to_single_survivor(self):
        filler = encode(Instruction("addq", ra=1, rc=1, imm=1, islit=True))
        words = [filler] * 9 + [MARKER] + [filler] * 9
        shrunk, checks = shrink_words(words, lambda ws: MARKER in ws)
        assert shrunk == [MARKER]
        assert checks > 0

    def test_one_minimal(self):
        words = [MARKER, MARKER, MARKER]
        shrunk, _checks = shrink_words(words,
                                       lambda ws: ws.count(MARKER) >= 2)
        assert shrunk.count(MARKER) == 2
        assert len(shrunk) == 2

    def test_budget_respected(self):
        filler = encode(Instruction("addq", ra=1, rc=1, imm=1, islit=True))
        words = [filler] * 50 + [MARKER]
        _shrunk, checks = shrink_words(words, lambda ws: MARKER in ws,
                                       max_checks=5)
        assert checks <= 5


class TestBranchRepair:
    def test_branch_retargeted_across_deletion(self):
        """Deleting filler under a forward branch shortens its
        displacement; the program must still execute identically."""
        filler = encode(Instruction("addq", ra=9, rc=9, imm=1, islit=True))
        words = _words(
            Instruction("lda", ra=1, rb=31, imm=1),
            Instruction("bne", ra=1, imm=3),          # over 3 fillers
        ) + [filler, filler, filler] + _words(
            Instruction("lda", ra=2, rb=31, imm=7),
            Instruction("call_pal", imm=0),
        )

        def lands_on_target(candidate):
            outcome = run_reference(_fprog(candidate))
            return outcome.status == "halted" and outcome.regs[2] == 7

        assert lands_on_target(words)
        shrunk, _checks = shrink_words(words, lands_on_target)
        assert lands_on_target(shrunk)
        assert len(shrunk) < len(words)
        # the repaired branch, if it survived, has a shorter displacement
        for word in shrunk:
            instr = decode(word)
            if instr.mnemonic == "bne":
                assert instr.imm < 3

    def test_backward_branch_survives_deletion(self):
        body = encode(Instruction("addq", ra=2, rc=2, imm=1, islit=True))
        words = _words(Instruction("lda", ra=1, rb=31, imm=5)) + \
            [body, body] + _words(
                Instruction("subq", ra=1, rc=1, imm=1, islit=True),
                Instruction("bne", ra=1, imm=-4),
                Instruction("call_pal", imm=0),
            )

        def loops_five_times(candidate):
            outcome = run_reference(_fprog(candidate))
            return outcome.status == "halted" and outcome.regs[2] == 10

        assert loops_five_times(words)
        # nothing is deletable without changing the observation: the
        # shrinker must return the input unchanged, not corrupt the loop
        shrunk, _checks = shrink_words(words, loops_five_times)
        assert loops_five_times(shrunk)
        # the loop itself is not deletable (the trailing halt is — the
        # zero-filled text past the end halts anyway), and the backward
        # displacement still points at the loop head
        branches = [decode(word) for word in shrunk
                    if decode(word).mnemonic == "bne"]
        assert len(branches) == 1
        assert branches[0].imm < 0


class TestSimplification:
    def test_irrelevant_instructions_deleted(self):
        words = _words(
            Instruction("addq", ra=1, rc=2, imm=55, islit=True),
            Instruction("xor", ra=3, rb=4, rc=5),
        )
        # predicate only cares that the xor survives
        shrunk, _checks = shrink_words(words, lambda ws: MARKER in ws)
        assert shrunk == [MARKER]

    def test_literal_zeroed_when_preserved(self):
        word = encode(Instruction("addq", ra=1, rc=2, imm=55, islit=True))

        def still_addq_lit(ws):
            return len(ws) == 1 and decode(ws[0]).mnemonic == "addq" \
                and decode(ws[0]).islit

        shrunk, _checks = shrink_words([word], still_addq_lit)
        assert decode(shrunk[0]).imm == 0

    def test_nop_replacement(self):
        """An undeletable-but-irrelevant instruction is NOPped out."""
        store = encode(Instruction("stq", ra=1, rb=2, imm=8))

        def has_both(ws):
            return MARKER in ws and len(ws) == 2

        shrunk, _checks = shrink_words([store, MARKER], has_both)
        assert shrunk == [NOP_WORD, MARKER]


class TestNopWord:
    def test_nop_word_is_canonical_nop(self):
        instr = decode(NOP_WORD)
        assert instr.mnemonic == "bis"
        assert instr.ra == instr.rb == instr.rc == 31
