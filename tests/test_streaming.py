"""The serve streaming layer: hub fan-out, live subscriptions, drops.

Three layers of coverage: :class:`SubscriptionHub` units on a private
event loop (filters, bounded-queue drops, the close sentinel), real
server generations driven over a socket (lifecycle frames with
correlation ids, snapshots, subscriber churn under concurrent load,
slow consumers losing frames without hurting anyone else), and the
degradation path (a seeded-fault run streaming ``fault_injected``
events through the process-global tap).  Client-side failure messages
and the ``repro top`` CLI ride along.
"""

import asyncio
import io
import socket as socket_module
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.cli_top import TopState, render_dashboard
from repro.harness.runner import run_vm
from repro.obs.events import EventKind
from repro.obs.expo import parse_exposition
from repro.obs.telemetry import tapped_events
from repro.serve.client import ServeError, Subscription, request
from repro.serve.streaming import (
    DEFAULT_EVENT_KINDS,
    FrameKind,
    SubscriptionHub,
)
from repro.vm.config import VMConfig

from tests.test_serve import BUDGET, ServerUnderTest, _run_payload


def run_cli(*argv):
    """Drive the real CLI entry point; returns ``(exit_code, text)``."""
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def sock(tmp_path):
    return str(tmp_path / "stream.sock")


def hub_call(coro):
    """Run one coroutine on a throwaway loop (hub methods must run on
    an event-loop thread because Subscriber owns an asyncio.Queue)."""
    return asyncio.run(coro)


class TestSubscriptionHub:
    def test_publish_reaches_every_subscriber(self):
        async def scenario():
            hub = SubscriptionHub(queue_depth=8)
            first = hub.subscribe()
            second = hub.subscribe()
            frame = hub.publish(FrameKind.LIFECYCLE, {"phase": "x"}, 1.0)
            assert frame.seq == 0
            assert first.queue.get_nowait() is not None
            assert second.queue.qsize() == 1
            assert hub.stats()["frames_published"] == 1
        hub_call(scenario())

    def test_frame_kind_filter(self):
        async def scenario():
            hub = SubscriptionHub(queue_depth=8)
            only_snapshots = hub.subscribe(kinds=("snapshot",))
            hub.publish(FrameKind.LIFECYCLE, {}, 1.0)
            hub.publish(FrameKind.SNAPSHOT, {}, 2.0)
            assert only_snapshots.queue.qsize() == 1
            assert only_snapshots.queue.get_nowait().kind == "snapshot"
        hub_call(scenario())

    def test_unknown_frame_kind_rejected(self):
        async def scenario():
            hub = SubscriptionHub()
            with pytest.raises(ValueError, match="unknown frame kinds"):
                hub.subscribe(kinds=("bogus",))
        hub_call(scenario())

    def test_event_kind_filter_defaults_exclude_high_rate(self):
        async def scenario():
            hub = SubscriptionHub(queue_depth=8)
            subscriber = hub.subscribe()
            hub.publish(FrameKind.EVENT,
                        {"kind": EventKind.FRAGMENT_ENTERED}, 1.0)
            hub.publish(FrameKind.EVENT,
                        {"kind": EventKind.FAULT_INJECTED}, 2.0)
            assert subscriber.queue.qsize() == 1
            frame = subscriber.queue.get_nowait()
            assert frame.data["kind"] == EventKind.FAULT_INJECTED
        hub_call(scenario())

    def test_slow_consumer_drops_are_counted_not_blocking(self):
        async def scenario():
            hub = SubscriptionHub(queue_depth=3)
            slow = hub.subscribe()
            fast = hub.subscribe()
            for index in range(10):
                hub.publish(FrameKind.LIFECYCLE, {"n": index}, float(index))
                fast.queue.get_nowait()     # fast consumer keeps up
            assert slow.dropped == 7
            assert slow.sent == 3
            assert fast.dropped == 0
            assert hub.stats()["frames_dropped"] == 7
        hub_call(scenario())

    def test_drops_survive_unsubscribe(self):
        async def scenario():
            hub = SubscriptionHub(queue_depth=1)
            subscriber = hub.subscribe()
            hub.publish(FrameKind.LOG, {}, 1.0)
            hub.publish(FrameKind.LOG, {}, 2.0)
            hub.unsubscribe(subscriber)
            assert hub.stats()["frames_dropped"] == 1
            assert hub.stats()["subscribers"] == 0
            assert hub.stats()["connected_total"] == 1
        hub_call(scenario())

    def test_close_sentinel_lands_even_when_full(self):
        async def scenario():
            hub = SubscriptionHub(queue_depth=2)
            subscriber = hub.subscribe()
            hub.publish(FrameKind.LOG, {}, 1.0)
            hub.publish(FrameKind.LOG, {}, 2.0)
            subscriber.close()
            drained = []
            while subscriber.queue.qsize():
                drained.append(subscriber.queue.get_nowait())
            assert drained[-1] is None      # the sentinel made it
        hub_call(scenario())

    def test_event_kind_union_tracks_subscribers(self):
        async def scenario():
            hub = SubscriptionHub()
            assert hub.event_kind_union() == frozenset()
            subscriber = hub.subscribe()
            assert hub.event_kind_union() == DEFAULT_EVENT_KINDS
            hub.subscribe(kinds=("snapshot",))  # no event frames wanted
            assert hub.event_kind_union() == DEFAULT_EVENT_KINDS
            hub.unsubscribe(subscriber)
        hub_call(scenario())


class TestServerStreaming:
    def test_subscribe_sees_request_lifecycle(self, sock):
        with ServerUnderTest(sock, snapshot_interval=0.1):
            with Subscription(sock, timeout=30) as subscription:
                assert subscription.hello["frame"] == "hello"
                assert subscription.hello["data"]["id"] == \
                    subscription.sid
                response = request(sock, _run_payload("gzip"))
                assert response["ok"]
                cid = response["cid"]
                phases = {}
                deadline = time.monotonic() + 20
                for frame in subscription.frames():
                    if frame["frame"] == "lifecycle" and \
                            frame["data"].get("cid") == cid:
                        phases[frame["data"]["phase"]] = frame["data"]
                    if "completed" in phases or \
                            time.monotonic() > deadline:
                        break
        assert "accepted" in phases
        assert "executed" in phases
        assert "completed" in phases
        executed = phases["executed"]
        assert executed["workload"] == "gzip"
        assert executed["queue_wait_seconds"] >= 0
        assert executed["run_seconds"] > 0
        assert phases["completed"]["total_seconds"] >= \
            executed["run_seconds"]

    def test_snapshot_frames_carry_values_and_deltas(self, sock):
        with ServerUnderTest(sock, snapshot_interval=0.05):
            with Subscription(sock, kinds=("snapshot",),
                              timeout=30) as subscription:
                request(sock, _run_payload("gzip"))
                snapshots = []
                deadline = time.monotonic() + 20
                for frame in subscription.frames():
                    snapshots.append(frame)
                    if frame["data"]["values"].get(
                            "serve.runs_completed") or \
                            time.monotonic() > deadline:
                        break
        assert all(frame["frame"] == "snapshot" for frame in snapshots)
        assert len(snapshots) >= 1
        newest = snapshots[-1]["data"]
        assert newest["values"]["serve.runs_completed"] == 1
        assert "serve.op.run" in newest["values"]
        assert "deltas" in newest and "latency" in newest
        assert newest["latency"]["serve.total_seconds"]["total"] == 1

    def test_two_concurrent_subscribers_zero_drops(self, sock):
        """The acceptance path: warm traffic to 2+ live subscribers at
        the default queue depth loses nothing."""
        with ServerUnderTest(sock, snapshot_interval=0.1):
            with Subscription(sock, timeout=30) as first, \
                    Subscription(sock, timeout=30) as second:
                for workload in ("gzip", "vortex"):
                    assert request(sock,
                                   _run_payload(workload))["ok"]
                stats = request(sock, {"op": "stats"})
                # both streams observed the runs completing
                seen = [0, 0]
                for index, subscription in enumerate((first, second)):
                    for frame in subscription.frames():
                        if frame["frame"] == "lifecycle" and \
                                frame["data"].get("phase") == "completed":
                            seen[index] += 1
                            if seen[index] == 2:
                                break
            assert seen == [2, 2]
            assert stats["streaming"]["subscribers"] == 2
            assert stats["streaming"]["frames_dropped"] == 0
            final = request(sock, {"op": "stats"})
        assert final["streaming"]["frames_dropped"] == 0
        assert final["streaming"]["connected_total"] == 2
        assert final["requests"]["runs_completed"] == 2

    def test_subscriber_churn_leaves_serving_intact(self, sock):
        with ServerUnderTest(sock, snapshot_interval=0.05):
            stop = threading.Event()
            churned = [0]

            def churn():
                while not stop.is_set():
                    try:
                        with Subscription(sock, timeout=30) as subscription:
                            for _ in subscription.frames(limit=2):
                                pass
                        churned[0] += 1
                    except ServeError:
                        pass

            threads = [threading.Thread(target=churn) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                responses = [request(sock, _run_payload("gzip")),
                             request(sock, _run_payload("vortex"))]
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert all(response["ok"] for response in responses)
            stats = request(sock, {"op": "stats"})
            assert stats["requests"]["runs_completed"] == 2
            assert stats["streaming"]["subscribers"] == 0
            assert stats["streaming"]["connected_total"] >= churned[0]

    def test_slow_consumer_drops_counted_server_side(self, sock):
        with ServerUnderTest(sock, snapshot_interval=0.01,
                             queue_depth=2):
            # subscribe and then never read a single frame
            with Subscription(sock, timeout=30):
                deadline = time.monotonic() + 20
                dropped = 0
                while time.monotonic() < deadline:
                    stats = request(sock, {"op": "stats"})
                    dropped = stats["streaming"]["frames_dropped"]
                    if dropped > 0:
                        break
                    time.sleep(0.02)
            assert dropped > 0
            # the batch path never noticed: a run still works fine
            assert request(sock, _run_payload("gzip"))["ok"]

    def test_metrics_verb_returns_parsable_exposition(self, sock):
        with ServerUnderTest(sock):
            request(sock, _run_payload("gzip"))
            response = request(sock, {"op": "metrics"})
        assert response["ok"]
        samples = parse_exposition(response["text"])
        assert samples["repro_serve_runs_completed_total"] == 1
        assert samples["repro_serve_requests_total"] >= 2
        assert any(name.startswith("repro_serve_total_seconds_bucket")
                   for name in samples)

    def test_run_responses_carry_correlation_ids(self, sock):
        with ServerUnderTest(sock):
            first = request(sock, _run_payload("gzip"))
            second = request(sock, _run_payload("vortex"))
        assert first["cid"] != second["cid"]
        assert first["cid"].startswith("r")


class TestDegradationStreaming:
    def test_seeded_fault_run_streams_fault_events(self):
        """A VM run under a seeded fault schedule pushes its
        degradation events through the global tap — the same path a
        serve subscriber's ``event`` frames come from."""
        seen = []
        config = VMConfig(faults="translate@count=2", fault_seed=11,
                          telemetry=True)
        with tapped_events(seen.append,
                           kinds=(EventKind.FAULT_INJECTED,
                                  EventKind.TRANSLATION_FAILED)):
            run_vm("gzip", config, budget=BUDGET, collect_trace=False)
        kinds = {event.kind for event in seen}
        assert EventKind.FAULT_INJECTED in kinds
        assert all(event.kind in (EventKind.FAULT_INJECTED,
                                  EventKind.TRANSLATION_FAILED)
                   for event in seen)

    def test_tap_removed_after_context(self):
        seen = []
        with tapped_events(seen.append):
            pass
        run_vm("gzip", VMConfig(telemetry=True), budget=1_000,
               collect_trace=False)
        assert seen == []


class TestClientErrors:
    def test_missing_socket_names_the_fix(self, tmp_path):
        with pytest.raises(ServeError, match="is `repro serve` running"):
            request(tmp_path / "absent.sock", {"op": "ping"}, timeout=2)

    def test_stale_socket_detected(self, tmp_path):
        stale = str(tmp_path / "stale.sock")
        holder = socket_module.socket(socket_module.AF_UNIX,
                                      socket_module.SOCK_STREAM)
        holder.bind(stale)
        holder.close()      # the file stays; nothing listens
        with pytest.raises(ServeError, match="nothing is listening"):
            request(stale, {"op": "ping"}, timeout=2)

    def test_client_cli_exits_2_with_message(self, tmp_path):
        code, text = run_cli("client", "ping", "--socket",
                             str(tmp_path / "absent.sock"))
        assert code == 2
        assert "is `repro serve` running" in text


class TestTopCli:
    def test_top_renders_live_dashboard(self, sock):
        with ServerUnderTest(sock, snapshot_interval=0.05):
            request(sock, _run_payload("gzip"))
            code, text = run_cli("top", "--socket", sock,
                                 "--frames", "12", "--no-clear")
        assert code == 0
        assert "repro top" in text
        assert "latency" in text
        assert "persist" in text

    def test_top_without_server_exits_2(self, tmp_path):
        code, text = run_cli("top", "--socket",
                             str(tmp_path / "absent.sock"),
                             "--frames", "1")
        assert code == 2
        assert "is `repro serve` running" in text

    def test_topstate_folds_frames(self):
        state = TopState()
        redraw = state.update({"frame": "lifecycle",
                               "data": {"phase": "completed", "cid": "r1",
                                        "workload": "gzip",
                                        "total_seconds": 0.5,
                                        "committed": 123}})
        assert redraw is False
        redraw = state.update({"frame": "snapshot", "data": {
            "seq": 3, "interval": 1.0,
            "values": {"serve.requests": 10, "serve.runs_completed": 4,
                       "persist.warm_hits": 3, "persist.warm_misses": 1},
            "deltas": {"serve.runs_completed": 2, "serve.requests": 5},
            "latency": {"serve.total_seconds": {
                "bounds": [0.1, 1.0], "counts": [2, 2, 0], "total": 4}},
        }})
        assert redraw is True
        text = render_dashboard(state, "sock")
        assert "snapshot #3" in text
        assert "2.0/s" in text          # runs delta over 1 s
        assert "(75%)" in text          # warm 3/4
        assert "r1" in text
        quantiles = state.quantiles("serve.total_seconds")
        assert quantiles[0.5] == pytest.approx(0.1)
