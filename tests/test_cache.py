"""Cache hierarchy model tests."""

import pytest

from repro.uarch.cache import Cache, MemoryHierarchy
from repro.uarch.config import CacheConfig, MachineConfig


def small_cache(size=256, line=64, assoc=2, latency=2, policy="lru",
                next_level=None):
    return Cache(CacheConfig("test", size, line, assoc, latency, policy),
                 next_level=next_level, memory_latency=72)


class TestCache:
    def test_hit_latency(self):
        cache = small_cache()
        cache.access(0)              # miss, fills
        assert cache.access(0) == 2  # hit

    def test_miss_charges_memory(self):
        cache = small_cache()
        assert cache.access(0) == 2 + 72

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(63) == 2
        assert cache.access(64) == 2 + 72  # next line

    def test_lru_eviction(self):
        cache = small_cache(size=256, line=64, assoc=2)  # 2 sets, 2 ways
        # set 0 holds lines 0 and 2 (addresses 0, 128); fill both + one more
        cache.access(0)
        cache.access(128)
        cache.access(256)            # evicts line 0 (LRU)
        assert cache.access(0) > 2   # miss again
        assert cache.access(256) == 2

    def test_lru_refresh(self):
        cache = small_cache(size=256, line=64, assoc=2)
        cache.access(0)
        cache.access(128)
        cache.access(0)              # refresh
        cache.access(256)            # should evict 128 now
        assert cache.access(0) == 2
        assert cache.access(128) > 2

    def test_random_policy_deterministic(self):
        a = small_cache(policy="random")
        b = small_cache(policy="random")
        addresses = [i * 64 for i in range(50)]
        assert [a.access(addr) for addr in addresses] == \
            [b.access(addr) for addr in addresses]

    def test_two_levels(self):
        l2 = small_cache(size=1024, line=64, assoc=4, latency=8)
        l1 = small_cache(size=128, line=64, assoc=2, latency=2,
                         next_level=l2)
        assert l1.access(0) == 2 + 8 + 72   # both miss
        assert l1.access(0) == 2            # L1 hit
        l1.access(64)
        l1.access(128)                      # evicts L1 line 0 eventually
        l1.access(192)
        # refetch of line 0: L1 miss but L2 hit
        latency = l1.access(0)
        assert latency == 2 + 8

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate() == pytest.approx(0.5)


class TestHierarchy:
    def test_ifetch_returns_extra_cycles(self):
        hierarchy = MemoryHierarchy(MachineConfig("test"))
        extra = hierarchy.ifetch(0x10000)
        assert extra > 0             # cold miss
        assert hierarchy.ifetch(0x10000) == 0  # hit: no extra

    def test_daccess_full_latency(self):
        hierarchy = MemoryHierarchy(MachineConfig("test"))
        first = hierarchy.daccess(0x2000)
        second = hierarchy.daccess(0x2000)
        assert first > second
        assert second == 2           # Table 1: 2-cycle D-cache hit

    def test_shared_l2(self):
        hierarchy = MemoryHierarchy(MachineConfig("test"))
        hierarchy.daccess(0x8000)            # brings line into L2
        extra = hierarchy.ifetch(0x8000)     # I-side L1 miss, L2 hit
        assert extra == 8                    # Table 1: 8-cycle L2
