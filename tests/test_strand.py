"""Tests for strand formation and accumulator assignment (Section 3.3)."""

import pytest

from repro.translator.decompose import Node, NodeKind
from repro.translator.strand import TranslationError, form_strands
from repro.translator.usage import analyze_usage


def _index(nodes):
    for i, node in enumerate(nodes):
        node.index = i
    return nodes


def alu(dest, a=None, b=None, op="addq"):
    return Node(NodeKind.ALU, 0x1000, op=op, dest=dest, src_a=a, src_b=b)


def store(addr, data):
    return Node(NodeKind.STORE, 0x1000, addr=addr, data=data)


def branch(src):
    return Node(NodeKind.BRANCH, 0x1000, op="bne", cond_src=src,
                taken=False, taken_target=0x2000, fallthrough=0x1004)


def analyse(nodes, n_accumulators=4):
    usage = analyze_usage(nodes)
    return usage, form_strands(nodes, usage, n_accumulators)


class TestStrandRules:
    def test_zero_local_inputs_starts_strand(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            alu(("reg", 2), ("reg", 8), ("imm", 1)),
        ])
        _usage, strands = analyse(nodes)
        assert strands.node_strand[0] != strands.node_strand[1]

    def test_single_local_input_joins(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            alu(("reg", 2), ("reg", 1), ("imm", 1)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),  # redef makes v0 local
        ])
        _usage, strands = analyse(nodes)
        assert strands.node_strand[0] == strands.node_strand[1]
        assert strands.resolutions[1]["src_a"] == ("acc",)

    def test_two_global_inputs_get_copy_from(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("reg", 8)),
        ])
        _usage, strands = analyse(nodes)
        assert strands.copy_from_before[0] == 7
        assert strands.resolutions[0]["src_a"] == ("acc",)
        assert strands.resolutions[0]["src_b"] == ("gpr", 8)

    def test_same_register_twice_needs_no_copy(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("reg", 7)),
        ])
        _usage, strands = analyse(nodes)
        assert strands.copy_from_before[0] is None

    def test_two_local_inputs_spills_one(self):
        # two independent locals feed one consumer; one must spill
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            alu(("reg", 2), ("reg", 8), ("imm", 1)),
            alu(("reg", 3), ("reg", 1), ("reg", 2)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
            alu(("reg", 2), ("imm", 0), ("imm", 0)),
            alu(("reg", 3), ("imm", 0), ("imm", 0)),
        ])
        usage, strands = analyse(nodes)
        spilled = [v for v in usage.values if v.spilled]
        assert len(spilled) == 1
        # the consumer joined the strand of the non-spilled input
        joined = strands.node_strand[2]
        assert joined in (strands.node_strand[0], strands.node_strand[1])

    def test_temp_producer_wins_join(self):
        # addr-calc temp and a local both feed a node: temp's strand wins
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),      # local
            alu(("temp", -1), ("reg", 8), ("imm", 8)),    # temp
            alu(("reg", 2), ("temp", -1), ("reg", 1)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
        ])
        _usage, strands = analyse(nodes)
        assert strands.node_strand[2] == strands.node_strand[1]

    def test_branch_taps_accumulator(self):
        nodes = _index([
            alu(("reg", 17), ("reg", 17), ("imm", 1), op="subl"),
            branch(("reg", 17)),
        ])
        _usage, strands = analyse(nodes)
        assert strands.resolutions[1]["cond_src"] == ("acc",)
        assert strands.node_strand[1] == strands.node_strand[0]

    def test_store_with_two_globals_splits(self):
        nodes = _index([
            store(("reg", 7), ("reg", 8)),
        ])
        _usage, strands = analyse(nodes)
        assert strands.copy_from_before[0] == 8
        assert strands.resolutions[0]["data"] == ("acc",)
        assert strands.resolutions[0]["addr"] == ("gpr", 7)


class TestAccumulatorPressure:
    def _parallel_strands(self, count):
        """``count`` independent live values, then consumers for each."""
        nodes = []
        for i in range(count):
            nodes.append(alu(("reg", i + 1), ("reg", 20), ("imm", i)))
        for i in range(count):
            nodes.append(alu(("reg", i + 1), ("reg", i + 1), ("imm", 1)))
        return _index(nodes)

    def test_enough_accumulators_no_termination(self):
        nodes = self._parallel_strands(4)
        _usage, strands = analyse(nodes, n_accumulators=4)
        assert strands.premature_terminations == 0

    def test_exhaustion_terminates_strands(self):
        nodes = self._parallel_strands(6)
        usage, strands = analyse(nodes, n_accumulators=4)
        assert strands.premature_terminations >= 1
        assert any(v.spilled for v in usage.values)

    def test_distinct_accumulators_for_live_strands(self):
        nodes = self._parallel_strands(4)
        _usage, strands = analyse(nodes, n_accumulators=4)
        accs = {strands.node_acc(i) for i in range(4)}
        assert len(accs) == 4

    def test_eight_accumulators_avoid_spills(self):
        nodes = self._parallel_strands(6)
        _usage, strands = analyse(nodes, n_accumulators=8)
        assert strands.premature_terminations == 0

    def test_single_accumulator_still_works(self):
        nodes = self._parallel_strands(3)
        usage, strands = analyse(nodes, n_accumulators=1)
        # everything must still get an accumulator (acc 0)
        assert all(strands.node_acc(i) == 0 for i in range(len(nodes))
                   if strands.node_strand[i] is not None)


class TestValidUntil:
    def test_join_bounds_previous_value(self):
        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
            alu(("reg", 2), ("reg", 1), ("imm", 1)),
            alu(("reg", 1), ("imm", 0), ("imm", 0)),
        ])
        usage, strands = analyse(nodes)
        vid = usage.producer_of[0].vid
        # old value visible through the consuming node itself (trap rule)
        assert strands.acc_valid_until[vid] == 2

    def test_unconsumed_value_valid_to_end(self):
        import math

        nodes = _index([
            alu(("reg", 1), ("reg", 7), ("imm", 1)),
        ])
        usage, strands = analyse(nodes)
        vid = usage.producer_of[0].vid
        assert strands.acc_valid_until[vid] == math.inf
