"""Disassembler tests for both ISAs."""

import pytest

from repro.ildp_isa.disasm import disassemble_iinstr
from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.isa.disasm import disassemble
from repro.isa.instruction import Instruction


class TestAlphaDisasm:
    def test_operate(self):
        assert disassemble(Instruction("addq", ra=1, rb=2, rc=3)) == \
            "addq r1, r2, r3"

    def test_operate_literal(self):
        assert disassemble(Instruction("subl", ra=17, rc=17, imm=1,
                                       islit=True)) == "subl r17, 1, r17"

    def test_memory(self):
        assert disassemble(Instruction("ldq", ra=3, rb=16, imm=-8)) == \
            "ldq r3, -8(r16)"

    def test_branch_with_pc(self):
        text = disassemble(Instruction("bne", ra=17, imm=-11), pc=0x1000)
        assert text == "bne r17, 0xfd8"

    def test_branch_without_pc(self):
        assert disassemble(Instruction("bne", ra=17, imm=4)) == \
            "bne r17, .+4"

    def test_unconditional_br_hides_r31(self):
        assert disassemble(Instruction("br", ra=31, imm=2)) == "br .+2"

    def test_jump(self):
        assert disassemble(Instruction("jsr", ra=26, rb=27)) == \
            "jsr r26, (r27)"

    def test_pal(self):
        assert disassemble(Instruction("call_pal", imm=0xAA)) == \
            "call_pal 0xaa"

    def test_rb_only(self):
        assert disassemble(Instruction("ctpop", rb=3, rc=4)) == \
            "ctpop r3, r4"


class TestIDisasm:
    def test_basic_alu(self):
        instr = IInstruction(IOp.ALU, op="subq", acc=1, src_a="gpr",
                             gpr=17, src_b="imm", imm=1, islit=True)
        assert disassemble_iinstr(instr) == "A1 <- R17 - 1"

    def test_modified_alu_shows_dest(self):
        instr = IInstruction(IOp.ALU, op="subq", acc=1, src_a="gpr",
                             gpr=17, src_b="imm", imm=1, islit=True,
                             dest_gpr=17)
        assert disassemble_iinstr(instr, IFormat.MODIFIED) == \
            "R17(A1) <- R17 - 1"

    def test_scaled_add(self):
        instr = IInstruction(IOp.ALU, op="s8addq", acc=0, src_a="acc",
                             src_b="gpr", gpr=0)
        assert disassemble_iinstr(instr) == "A0 <- 8*A0 + R0"

    def test_load_from_acc(self):
        instr = IInstruction(IOp.LOAD, acc=0, addr_src="acc")
        assert disassemble_iinstr(instr) == "A0 <- mem[A0]"

    def test_store(self):
        instr = IInstruction(IOp.STORE, acc=1, addr_src="acc",
                             data_src="gpr", gpr=6)
        assert disassemble_iinstr(instr) == "mem[A1] <- R6"

    def test_copies(self):
        to_gpr = IInstruction(IOp.COPY_TO_GPR, acc=2, gpr=17)
        from_gpr = IInstruction(IOp.COPY_FROM_GPR, acc=2, gpr=17)
        assert disassemble_iinstr(to_gpr) == "R17 <- A2"
        assert disassemble_iinstr(from_gpr) == "A2 <- R17"

    def test_branch(self):
        instr = IInstruction(IOp.BRANCH, op="bne", cond_src="acc", acc=1,
                             target=0x2000)
        assert disassemble_iinstr(instr) == "P <- 0x2000, if (A1 != 0)"

    def test_call_translator(self):
        instr = IInstruction(IOp.CALL_TRANSLATOR, vtarget=0x1234)
        assert disassemble_iinstr(instr) == "call_translator V:0x1234"

    def test_ret_ras(self):
        instr = IInstruction(IOp.RET_RAS, gpr=26)
        assert disassemble_iinstr(instr) == "ret_ras (R26)"

    def test_push_ras_unpatched(self):
        instr = IInstruction(IOp.PUSH_RAS, vtarget=0x1000)
        assert "dispatch" in disassemble_iinstr(instr)

    def test_every_iop_renders(self):
        # smoke: no IOp may crash the disassembler
        samples = {
            IOp.ALU: IInstruction(IOp.ALU, op="xor", acc=0, src_a="acc",
                                  src_b="gpr", gpr=1),
            IOp.LOAD: IInstruction(IOp.LOAD, acc=0, addr_src="acc"),
            IOp.STORE: IInstruction(IOp.STORE, acc=0, addr_src="acc",
                                    data_src="gpr", gpr=1),
            IOp.COPY_TO_GPR: IInstruction(IOp.COPY_TO_GPR, acc=0, gpr=1),
            IOp.COPY_FROM_GPR: IInstruction(IOp.COPY_FROM_GPR, acc=0,
                                            gpr=1),
            IOp.BRANCH: IInstruction(IOp.BRANCH, op="beq", cond_src="acc",
                                     acc=0, target=4),
            IOp.BR: IInstruction(IOp.BR, target=4),
            IOp.SET_VPC_BASE: IInstruction(IOp.SET_VPC_BASE,
                                           vtarget=0x10),
            IOp.SAVE_VRA: IInstruction(IOp.SAVE_VRA, gpr=26,
                                       vtarget=0x10),
            IOp.PUSH_RAS: IInstruction(IOp.PUSH_RAS, vtarget=0x10,
                                       target=0x20),
            IOp.RET_RAS: IInstruction(IOp.RET_RAS, gpr=26),
            IOp.LOAD_EMB: IInstruction(IOp.LOAD_EMB, acc=0,
                                       vtarget=0x10),
            IOp.CALL_TRANSLATOR: IInstruction(IOp.CALL_TRANSLATOR,
                                              vtarget=0x10),
            IOp.COND_CALL_TRANSLATOR: IInstruction(
                IOp.COND_CALL_TRANSLATOR, op="bne", cond_src="acc",
                acc=0, vtarget=0x10),
            IOp.TO_DISPATCH: IInstruction(IOp.TO_DISPATCH, gpr=26),
            IOp.JMP_DISPATCH: IInstruction(IOp.JMP_DISPATCH, acc=0),
            IOp.HALT: IInstruction(IOp.HALT),
            IOp.PUTC: IInstruction(IOp.PUTC, gpr=16),
            IOp.GENTRAP: IInstruction(IOp.GENTRAP),
        }
        for iop, instr in samples.items():
            text = disassemble_iinstr(instr)
            assert isinstance(text, str) and text
