"""Differential co-simulation over the full workload suite.

For every workload, the co-designed VM (profiling, translation, chaining,
trap recovery — the whole stack) must be observationally identical to the
pure V-ISA interpreter when both run the program to its natural halt:
same final architected register state, same console output, and the same
committed-instruction accounting.

The committed counts are compared on the set of instructions that survive
translation: the translator elides architectural NOPs and plain BRs (code
straightening), so the VM's raw total undercounts relative to a naive
interpreter step count.  ``Stats.committed_v_instructions`` and the
equivalent reduction over the interpreter trace count the same notion.
"""

import pytest

from repro.harness.runner import run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

#: Enough for every workload to halt naturally (gzip, the longest, needs
#: ~64k interpreter steps).
HALT_BUDGET = 200_000


def _assert_equivalent(name, config):
    trace, interp = run_original(name, budget=HALT_BUDGET)
    result = run_vm(name, config, budget=HALT_BUDGET, collect_trace=False)
    vm = result.vm

    assert vm.halted, f"{name}: VM did not reach halt"
    # the interpreter stopped short of the budget only because it halted
    assert interp.instruction_count < HALT_BUDGET, \
        f"{name}: interpreter did not reach halt"
    assert vm.state.pc == interp.state.pc
    assert vm.state.regs == interp.state.regs, \
        vm.state.diff(interp.state)
    assert vm.console_text() == interp.console_text()
    # v_weight is already 0 for NOPs; btype "uncond" marks the plain BRs
    # that code straightening removes
    expected = sum(record.v_weight for record in trace
                   if record.btype != "uncond")
    assert result.stats.committed_v_instructions() == expected


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_vm_matches_interpreter(name):
    _assert_equivalent(name, VMConfig(fmt=IFormat.MODIFIED))


@pytest.mark.parametrize("name", ("gzip", "perlbmk", "crafty"))
@pytest.mark.parametrize("fmt", (IFormat.BASIC, IFormat.ALPHA))
def test_other_formats_match_interpreter(name, fmt):
    _assert_equivalent(name, VMConfig(fmt=fmt))


@pytest.mark.parametrize("name", ("gap", "vortex"))
@pytest.mark.parametrize("policy", (ChainingPolicy.NO_PRED,
                                    ChainingPolicy.SW_PRED_NO_RAS))
def test_other_chaining_policies_match_interpreter(name, policy):
    _assert_equivalent(name, VMConfig(fmt=IFormat.MODIFIED, policy=policy))


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_execution_engines_agree(name):
    """All three execution engines must be bit-identical: same
    architected state, console, committed counts, and every ``VMStats``
    counter, on every workload.  The jit engine runs at a low promotion
    threshold so tier-2 generated code actually executes here."""
    results = {}
    for engine in ("naive", "specialized", "jit"):
        config = VMConfig(fmt=IFormat.MODIFIED, exec_engine=engine,
                          jit_threshold=2)
        results[engine] = run_vm(name, config, budget=HALT_BUDGET,
                                 collect_trace=False)
    naive = results["naive"]

    assert any(f._jit_code is not None
               for f in results["jit"].vm.tcache.fragments), \
        "jit engine never promoted a fragment"
    for engine in ("specialized", "jit"):
        other = results[engine]
        assert other.vm.halted and naive.vm.halted
        assert other.vm.state.pc == naive.vm.state.pc
        assert other.vm.state.regs == naive.vm.state.regs, \
            other.vm.state.diff(naive.vm.state)
        assert other.vm.console_text() == naive.vm.console_text()
        assert other.stats.committed_v_instructions() == \
            naive.stats.committed_v_instructions()
        assert vars(other.stats) == vars(naive.stats)
