"""Chaining policy tests (Section 3.2): glue shapes, RAS, dispatch."""

import pytest

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.translator.chaining import ChainingPolicy
from repro.vm import CoDesignedVM, VMConfig
from tests.conftest import CALL_KERNEL

INDIRECT_KERNEL = """
_start: li r15, 80
        la r9, fnp
loop:   ldq r27, 0(r9)
        jmp r31, (r27)
back:   subq r15, 1, r15
        bne r15, loop
        call_pal halt
target: br back
        .data
fnp:    .quad target
"""


def run_vm(source, policy, fmt=IFormat.MODIFIED):
    vm = CoDesignedVM(assemble(source), VMConfig(fmt=fmt, policy=policy))
    vm.run(max_v_instructions=500_000)
    return vm


def body_iops(vm):
    return [i.iop for f in vm.tcache.fragments for i in f.body]


class TestPolicies:
    def test_no_pred_emits_only_dispatch(self):
        vm = run_vm(INDIRECT_KERNEL, ChainingPolicy.NO_PRED)
        iops = body_iops(vm)
        assert IOp.TO_DISPATCH in iops
        assert IOp.LOAD_EMB not in iops

    def test_sw_pred_emits_compare_and_branch(self):
        vm = run_vm(INDIRECT_KERNEL, ChainingPolicy.SW_PRED_NO_RAS)
        for fragment in vm.tcache.fragments:
            iops = [i.iop for i in fragment.body]
            if IOp.LOAD_EMB not in iops:
                continue
            at = iops.index(IOp.LOAD_EMB)
            assert fragment.body[at + 1].iop is IOp.ALU
            assert fragment.body[at + 1].op == "cmpeq"
            assert fragment.body[at + 2].iop in (IOp.BRANCH,
                                                 IOp.COND_CALL_TRANSLATOR)
            assert fragment.body[at + 3].iop is IOp.TO_DISPATCH
            return
        pytest.fail("no software-prediction sequence emitted")

    def test_sw_pred_hit_avoids_dispatch(self):
        vm = run_vm(INDIRECT_KERNEL, ChainingPolicy.SW_PRED_NO_RAS)
        # the jmp target never changes: after chaining warms up, software
        # prediction should absorb nearly every transfer
        assert vm.stats.dispatch_runs <= 3

    def test_no_pred_always_dispatches(self):
        vm = run_vm(INDIRECT_KERNEL, ChainingPolicy.NO_PRED)
        # every post-warmup iteration's jmp goes through dispatch (the
        # first ~50 iterations are interpreted under the hot threshold)
        assert vm.stats.dispatch_runs > 20

    def test_ras_policy_emits_push_and_ret(self):
        vm = run_vm(CALL_KERNEL, ChainingPolicy.SW_PRED_RAS)
        iops = body_iops(vm)
        assert IOp.PUSH_RAS in iops
        assert IOp.RET_RAS in iops

    def test_no_ras_policy_treats_returns_as_indirect(self):
        vm = run_vm(CALL_KERNEL, ChainingPolicy.SW_PRED_NO_RAS)
        iops = body_iops(vm)
        assert IOp.PUSH_RAS not in iops
        assert IOp.RET_RAS not in iops

    def test_ret_ras_followed_by_dispatch_fallback(self):
        vm = run_vm(CALL_KERNEL, ChainingPolicy.SW_PRED_RAS)
        for fragment in vm.tcache.fragments:
            iops = [i.iop for i in fragment.body]
            if IOp.RET_RAS in iops:
                at = iops.index(IOp.RET_RAS)
                assert fragment.body[at + 1].iop is IOp.TO_DISPATCH
                return
        pytest.fail("no RET_RAS emitted")

    def test_dual_ras_mostly_hits(self):
        vm = run_vm(CALL_KERNEL, ChainingPolicy.SW_PRED_RAS)
        assert vm.stats.ras_hits > 0
        assert vm.stats.ras_hit_rate() > 0.8

    def test_save_vra_writes_link_register(self):
        vm = run_vm(CALL_KERNEL, ChainingPolicy.SW_PRED_RAS)
        saves = [i for f in vm.tcache.fragments for i in f.body
                 if i.iop is IOp.SAVE_VRA]
        assert saves
        assert all(i.gpr == 26 for i in saves)

    def test_all_policies_execute_correctly(self):
        from tests.conftest import assert_cosim_equivalent, ALL_POLICIES

        for policy in ALL_POLICIES:
            assert_cosim_equivalent(
                INDIRECT_KERNEL, VMConfig(fmt=IFormat.MODIFIED,
                                          policy=policy))
            assert_cosim_equivalent(
                CALL_KERNEL, VMConfig(fmt=IFormat.MODIFIED, policy=policy))


class TestDispatchAccounting:
    def test_dispatch_instruction_cost(self):
        vm = run_vm(INDIRECT_KERNEL, ChainingPolicy.NO_PRED)
        stats = vm.stats
        assert stats.dispatch_instructions == 20 * stats.dispatch_runs

    def test_dispatch_counts_in_expansion(self):
        no_pred = run_vm(INDIRECT_KERNEL, ChainingPolicy.NO_PRED)
        sw_pred = run_vm(INDIRECT_KERNEL, ChainingPolicy.SW_PRED_NO_RAS)
        assert no_pred.stats.dynamic_expansion() > \
            sw_pred.stats.dynamic_expansion()
