"""End-to-end VM tests across the full workload suite."""

import pytest

from repro.ildp_isa.opcodes import IFormat
from repro.interp import Interpreter
from repro.translator.chaining import ChainingPolicy
from repro.vm import CoDesignedVM, VMConfig
from repro.workloads import WORKLOAD_NAMES, get_workload

BUDGET = 150_000


def reference_for(name):
    workload = get_workload(name)
    interp = Interpreter(workload.program())
    interp.run(max_instructions=2_000_000)
    return interp


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("fmt", (IFormat.BASIC, IFormat.MODIFIED))
def test_workload_cosimulation(name, fmt):
    reference = reference_for(name)
    vm = CoDesignedVM(get_workload(name).program(), VMConfig(fmt=fmt))
    vm.run(max_v_instructions=2_000_000)
    assert vm.halted
    assert vm.interpreter.console == reference.console
    assert vm.state.regs == reference.state.regs


@pytest.mark.parametrize("name", ("eon", "perlbmk", "vortex"))
@pytest.mark.parametrize("policy", (ChainingPolicy.NO_PRED,
                                    ChainingPolicy.SW_PRED_NO_RAS))
def test_indirect_heavy_workloads_all_policies(name, policy):
    reference = reference_for(name)
    vm = CoDesignedVM(get_workload(name).program(),
                      VMConfig(fmt=IFormat.MODIFIED, policy=policy))
    vm.run(max_v_instructions=2_000_000)
    assert vm.halted
    assert vm.interpreter.console == reference.console


class TestStatsSanity:
    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for fmt in (IFormat.BASIC, IFormat.MODIFIED):
            vm = CoDesignedVM(get_workload("gzip").program(),
                              VMConfig(fmt=fmt))
            vm.run(max_v_instructions=BUDGET)
            out[fmt] = vm
        return out

    def test_modified_expands_less(self, runs):
        assert runs[IFormat.MODIFIED].stats.dynamic_expansion() < \
            runs[IFormat.BASIC].stats.dynamic_expansion()

    def test_modified_copies_fewer(self, runs):
        assert runs[IFormat.MODIFIED].stats.copy_percentage() < \
            runs[IFormat.BASIC].stats.copy_percentage()

    def test_expansion_above_one(self, runs):
        for vm in runs.values():
            assert vm.stats.dynamic_expansion() > 1.0

    def test_interpreted_covers_warmup(self, runs):
        # hot threshold 50: the loop body runs interpreted ~50 times first
        for vm in runs.values():
            assert vm.stats.interpreted_instructions > 400

    def test_fragment_execution_counts(self, runs):
        for vm in runs.values():
            assert any(f.execution_count > 10
                       for f in vm.tcache.fragments)

    def test_usage_histogram_nonempty(self, runs):
        vm = runs[IFormat.MODIFIED]
        histogram = vm.stats.dynamic_usage_histogram(vm.tcache)
        assert sum(histogram.values()) > 0

    def test_summary_keys(self, runs):
        summary = runs[IFormat.BASIC].stats.summary()
        for key in ("interpreted", "translated_v", "dynamic_expansion",
                    "copy_pct", "fragments"):
            assert key in summary


class TestProfilerIntegration:
    def test_candidates_accumulate(self):
        vm = CoDesignedVM(get_workload("gcc").program(),
                          VMConfig(fmt=IFormat.MODIFIED))
        vm.run(max_v_instructions=BUDGET)
        assert vm.profiler.candidate_count() > 2

    def test_threshold_respected(self):
        # a very high threshold means nothing ever gets translated
        vm = CoDesignedVM(get_workload("gzip").program(),
                          VMConfig(fmt=IFormat.MODIFIED, threshold=10**9))
        vm.run(max_v_instructions=20_000)
        assert vm.stats.fragments_created == 0
        assert vm.stats.interpreted_instructions >= 20_000

    def test_max_superblock_bounds_fragments(self):
        vm = CoDesignedVM(get_workload("gzip").program(),
                          VMConfig(fmt=IFormat.MODIFIED, max_superblock=8))
        vm.run(max_v_instructions=BUDGET)
        assert vm.halted is True or vm.stats.fragments_created > 0
        for fragment in vm.tcache.fragments:
            assert len(fragment.superblock.entries) <= 8


class TestTranslationCost:
    def test_cost_accumulates(self):
        vm = CoDesignedVM(get_workload("gzip").program(),
                          VMConfig(fmt=IFormat.MODIFIED))
        vm.run(max_v_instructions=BUDGET)
        cost = vm.cost_model
        assert cost.fragments == vm.stats.fragments_created
        assert cost.per_translated_instruction() > 0
        assert 0 < cost.phase_fraction("tcache_copy") < 1
