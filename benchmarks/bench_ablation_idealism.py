"""Ablation — idealisation knobs (loss decomposition)."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import ablation_idealism

WORKLOADS = ("gzip", "gcc", "mcf", "perlbmk", "vpr", "parser")


def test_idealism_ablation(bench_once, harness_runner):
    result = bench_once(
        lambda: ablation_idealism.run(workloads=WORKLOADS,
                                      budget=BENCH_BUDGET,
                                      runner=harness_runner))
    avg = result.row_for("Avg.")
    realistic, perfect_bp, perfect_dcache, both = avg[1:5]
    # removing a constraint can only help
    assert perfect_bp >= realistic
    assert perfect_dcache >= realistic
    assert both >= max(perfect_bp, perfect_dcache) * 0.98
    # on branchy integer code, branch prediction dominates memory as the
    # limiter (the paper's workloads behave the same way)
    assert (perfect_bp - realistic) > (perfect_dcache - realistic)
