"""Fig. 6 — IPC impact of code straightening and the hardware RAS."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import fig6


def test_fig6_code_straightening(bench_once, harness_runner):
    result = bench_once(lambda: fig6.run(budget=BENCH_BUDGET,
                                         runner=harness_runner))
    avg = result.row_for("Avg.")
    orig_noras, orig_ras, straight_noras, straight_ras = avg[1:5]
    # paper shapes: straightening without RAS underperforms the original
    # without RAS; with the dual-address RAS it is about level with the
    # original-with-RAS machine
    assert straight_noras < orig_noras * 1.05
    assert straight_ras > 0.85 * orig_ras
