"""Fig. 8 — IPC comparison: original / straightened superscalar vs the
basic and modified accumulator ISAs on the ILDP machine."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import fig8


def test_fig8_ipc_comparison(bench_once, harness_runner):
    result = bench_once(lambda: fig8.run(budget=BENCH_BUDGET,
                                         runner=harness_runner))
    avg = result.row_for("Avg.")
    original, straightened, basic, modified, native = avg[1:6]
    # paper shapes:
    # - the modified I-ISA beats the basic I-ISA (fewer instructions)
    assert modified > basic
    # - modified lands within striking distance of the straightened Alpha
    #   superscalar despite the extra instructions (~15% loss in the paper)
    assert modified > 0.6 * straightened
    # - the native I-ISA IPC is clearly higher than the V-ISA IPC: the
    #   machine sustains more (smaller) instructions per cycle
    assert native > modified
