"""Ablation — memory-instruction splitting vs fusion (Section 4.5's
"one way to deal with this instruction count expansion")."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import ablation_fusion

#: memory-light workloads tell us nothing here; use the load/store-heavy
#: half of the suite
WORKLOADS = ("gzip", "bzip2", "mcf", "twolf", "vortex", "vpr")


def test_memory_fusion_ablation(bench_once, harness_runner):
    result = bench_once(
        lambda: ablation_fusion.run(workloads=WORKLOADS,
                                    budget=BENCH_BUDGET,
                                    runner=harness_runner))
    avg = result.row_for("Avg.")
    split_expansion, fused_expansion = avg[1], avg[2]
    # fusing effective-address computation must reduce the dynamic
    # instruction count (that is its entire point)
    assert fused_expansion < split_expansion
