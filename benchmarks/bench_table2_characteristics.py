"""Table 2 — translated instruction statistics for the basic (B) and
modified (M) formats."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import table2


def test_table2_translated_statistics(bench_once, harness_runner):
    result = bench_once(lambda: table2.run(budget=BENCH_BUDGET,
                                           runner=harness_runner))
    avg = result.row_for("Avg.")
    dyn_b, dyn_m, copy_b, copy_m, bytes_b, bytes_m, _cost = avg[1:8]
    # paper averages: dynamic 1.60 (B) / 1.36 (M); copies 17.7% / 3.1%;
    # static bytes 1.17 / 1.07.  Our synthetic kernels have smaller
    # superblocks, which inflates all ratios, but every ordering must hold.
    assert dyn_m < dyn_b
    assert copy_m < copy_b
    assert bytes_m < bytes_b
    assert dyn_b > 1.2            # basic clearly expands
    assert copy_m < 15.0          # modified nearly eliminates copies
    assert copy_b > 2 * copy_m
