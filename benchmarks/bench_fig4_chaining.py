"""Fig. 4 — mispredictions per 1,000 instructions under the four chaining
configurations (original / no_pred / sw_pred.no_ras / sw_pred.ras)."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import fig4


def test_fig4_chaining_mispredictions(bench_once, harness_runner):
    result = bench_once(lambda: fig4.run(budget=BENCH_BUDGET,
                                         runner=harness_runner))
    avg = result.row_for("Avg.")
    original, no_pred, sw_no_ras, sw_ras = avg[1:5]
    # paper shapes: no_pred worst; software prediction roughly halves it;
    # the dual-address RAS lands at or below the original's rate
    assert no_pred > sw_no_ras
    assert no_pred > original
    assert sw_ras <= sw_no_ras
