"""Execution-engine benchmark — naive vs specialized VM throughput.

Runs the fig8 workload set end to end (DBT + functional execution, trace
collection off) under both ``VMConfig.exec_engine`` settings and writes
per-workload and aggregate wall times to ``BENCH_exec.json`` in the repo
root.  Each measurement is the best of ``REPS`` runs after a warm-up pass,
so one-time costs (imports, decode-cache population) don't pollute the
engine comparison.

``REPRO_BENCH_BUDGET`` overrides the V-ISA budget per run (``make
bench-quick`` uses this); the aggregate-speedup assertion only applies at
the full default budget, where timings are stable enough to gate on.
"""

import json
import os
import pathlib
import time

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.runner import run_vm
from repro.vm.config import VMConfig

WORKLOADS = ("gzip", "mcf", "twolf", "vortex")
ENGINES = ("naive", "specialized")
REPS = 3
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exec.json"
MIN_AGGREGATE_SPEEDUP = 1.5


def _budget():
    return int(os.environ.get("REPRO_BENCH_BUDGET", BENCH_BUDGET))


def _time_once(workload, engine, budget):
    config = VMConfig(exec_engine=engine)
    started = time.perf_counter()
    run_vm(workload, config, budget=budget, collect_trace=False)
    return time.perf_counter() - started


def _best_time(workload, engine, budget):
    return min(_time_once(workload, engine, budget) for _ in range(REPS))


def test_exec_engine_speedup():
    budget = _budget()
    for workload in WORKLOADS:            # warm caches for both engines
        for engine in ENGINES:
            _time_once(workload, engine, budget)

    rows = []
    totals = dict.fromkeys(ENGINES, 0.0)
    for workload in WORKLOADS:
        times = {engine: _best_time(workload, engine, budget)
                 for engine in ENGINES}
        for engine in ENGINES:
            totals[engine] += times[engine]
        rows.append({
            "workload": workload,
            "naive_seconds": round(times["naive"], 4),
            "specialized_seconds": round(times["specialized"], 4),
            "speedup": round(times["naive"] / times["specialized"], 2),
        })

    aggregate = totals["naive"] / totals["specialized"]
    record = {
        "benchmark": "exec_engine",
        "workloads": list(WORKLOADS),
        "budget": budget,
        "reps": REPS,
        "rows": rows,
        "naive_total_seconds": round(totals["naive"], 4),
        "specialized_total_seconds": round(totals["specialized"], 4),
        "aggregate_speedup": round(aggregate, 2),
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for row in rows:
        print(f"{row['workload']:8s} naive {row['naive_seconds']:.3f}s, "
              f"specialized {row['specialized_seconds']:.3f}s "
              f"({row['speedup']:.2f}x)")
    print(f"aggregate speedup {aggregate:.2f}x -> {OUTPUT.name}")

    if budget >= BENCH_BUDGET:
        assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
            f"specialized engine only {aggregate:.2f}x faster than naive "
            f"(need >= {MIN_AGGREGATE_SPEEDUP}x)")
