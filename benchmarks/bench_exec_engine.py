"""Execution-engine benchmark — naive vs specialized vs jit throughput.

Runs the fig8 workload set end to end (DBT + functional execution, trace
collection off) under all three ``VMConfig.exec_engine`` settings and
writes per-workload and aggregate wall times to ``BENCH_exec.json`` in
the repo root.  Each measurement is the best of ``REPS`` runs after a
warm-up pass, so one-time costs (imports, decode-cache population, jit
source compilation) don't pollute the engine comparison.

The same file carries the telemetry overhead gate: the specialized
timings above run with ``VMConfig.telemetry`` off (the default), so if a
prior ``BENCH_exec.json`` from the *same machine* exists, the fresh
telemetry-off total must stay within :data:`TELEMETRY_OFF_LIMIT` of it —
the no-op telemetry path may cost at most 2%.  A telemetry-*on* pass is
also measured and recorded under the default jit engine (informational;
the live instrumentation is allowed to cost real time).

``REPRO_BENCH_BUDGET`` overrides the V-ISA budget per run (``make
bench-quick`` uses this); the aggregate-speedup and overhead assertions
only apply at the full default budget, where timings are stable enough
to gate on.
"""

import json
import os
import pathlib
import time

from benchmarks.conftest import BENCH_BUDGET, machine_metadata
from repro.harness.runner import run_vm
from repro.vm.config import VMConfig

WORKLOADS = ("gzip", "mcf", "twolf", "vortex")
ENGINES = ("naive", "specialized", "jit")
REPS = 5
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exec.json"
MIN_AGGREGATE_SPEEDUP = 1.5
#: The tier-2 engine's hard floor over naive.  The committed record runs
#: well above this (>5x); the in-run assertion is looser so CI jitter
#: cannot flake it, while ``repro bench-compare`` against the committed
#: record still gates the recorded speedup within its 5% tolerance.
MIN_JIT_AGGREGATE_SPEEDUP = 4.0
#: telemetry-off total may be at most 2% slower than the prior record...
TELEMETRY_OFF_LIMIT = 1.02
#: ...plus a small absolute slack so sub-hundredth-second jitter on very
#: fast machines cannot trip a 2% relative gate
TELEMETRY_OFF_SLACK_S = 0.02


def _budget():
    return int(os.environ.get("REPRO_BENCH_BUDGET", BENCH_BUDGET))


def _output_path():
    """Where this run's record is written.

    ``REPRO_BENCH_OUTPUT`` redirects the record (``make bench-gate``
    writes a scratch file and diffs it against the committed baseline
    with ``repro bench-compare``); the overhead gate's prior record
    always comes from the committed :data:`OUTPUT`.
    """
    override = os.environ.get("REPRO_BENCH_OUTPUT")
    return pathlib.Path(override) if override else OUTPUT


def _time_once(workload, engine, budget, telemetry=False):
    config = VMConfig(exec_engine=engine, telemetry=telemetry)
    started = time.perf_counter()
    run_vm(workload, config, budget=budget, collect_trace=False)
    return time.perf_counter() - started


def _best_time(workload, engine, budget, telemetry=False):
    return min(_time_once(workload, engine, budget, telemetry)
               for _ in range(REPS))


def _prior_record(budget):
    """The previous BENCH_exec.json, if it can gate this run.

    Comparable means: same workloads, budget, rep count and machine
    (metadata block identical).  A record without machine metadata, or
    from other hardware, yields None and the overhead gate is skipped.
    """
    try:
        prior = json.loads(OUTPUT.read_text())
    except (OSError, ValueError):
        return None
    if (prior.get("workloads") == list(WORKLOADS)
            and prior.get("budget") == budget
            and prior.get("reps") == REPS
            and prior.get("machine") == machine_metadata()):
        return prior
    return None


def test_exec_engine_speedup():
    budget = _budget()
    for workload in WORKLOADS:            # warm caches for both engines
        for engine in ENGINES:
            _time_once(workload, engine, budget)

    rows = []
    totals = dict.fromkeys(ENGINES, 0.0)
    for workload in WORKLOADS:
        times = {engine: _best_time(workload, engine, budget)
                 for engine in ENGINES}
        for engine in ENGINES:
            totals[engine] += times[engine]
        rows.append({
            "workload": workload,
            "naive_seconds": round(times["naive"], 4),
            "specialized_seconds": round(times["specialized"], 4),
            "jit_seconds": round(times["jit"], 4),
            "speedup": round(times["naive"] / times["specialized"], 2),
            "jit_speedup": round(times["naive"] / times["jit"], 2),
        })

    telemetry_total = 0.0
    for workload in WORKLOADS:
        _time_once(workload, "jit", budget, telemetry=True)
        telemetry_total += _best_time(workload, "jit", budget,
                                      telemetry=True)

    aggregate = totals["naive"] / totals["specialized"]
    jit_aggregate = totals["naive"] / totals["jit"]
    telemetry_ratio = telemetry_total / totals["jit"]
    prior = _prior_record(budget)
    record = {
        "benchmark": "exec_engine",
        "workloads": list(WORKLOADS),
        "budget": budget,
        "reps": REPS,
        "rows": rows,
        "naive_total_seconds": round(totals["naive"], 4),
        "specialized_total_seconds": round(totals["specialized"], 4),
        "jit_total_seconds": round(totals["jit"], 4),
        "aggregate_speedup": round(aggregate, 2),
        "jit_aggregate_speedup": round(jit_aggregate, 2),
        "telemetry_on_total_seconds": round(telemetry_total, 4),
        "telemetry_on_ratio": round(telemetry_ratio, 3),
        "machine": machine_metadata(),
    }
    output = _output_path()
    output.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for row in rows:
        print(f"{row['workload']:8s} naive {row['naive_seconds']:.3f}s, "
              f"specialized {row['specialized_seconds']:.3f}s "
              f"({row['speedup']:.2f}x), "
              f"jit {row['jit_seconds']:.3f}s "
              f"({row['jit_speedup']:.2f}x)")
    print(f"aggregate speedup: specialized {aggregate:.2f}x, "
          f"jit {jit_aggregate:.2f}x -> {output.name}")
    print(f"telemetry on (jit): {telemetry_total:.3f}s "
          f"({telemetry_ratio:.2f}x of telemetry-off)")

    if budget >= BENCH_BUDGET:
        assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
            f"specialized engine only {aggregate:.2f}x faster than naive "
            f"(need >= {MIN_AGGREGATE_SPEEDUP}x)")
        assert jit_aggregate >= MIN_JIT_AGGREGATE_SPEEDUP, (
            f"jit engine only {jit_aggregate:.2f}x faster than naive "
            f"(need >= {MIN_JIT_AGGREGATE_SPEEDUP}x)")
        if prior is not None:
            baseline = prior["specialized_total_seconds"]
            limit = baseline * TELEMETRY_OFF_LIMIT + TELEMETRY_OFF_SLACK_S
            print(f"telemetry-off gate: {totals['specialized']:.3f}s vs "
                  f"prior {baseline:.3f}s (limit {limit:.3f}s)")
            assert totals["specialized"] <= limit, (
                f"telemetry-off run {totals['specialized']:.3f}s exceeds "
                f"{TELEMETRY_OFF_LIMIT:.0%} of the prior record "
                f"{baseline:.3f}s — the disabled-telemetry path must stay "
                f"within 2%")
        else:
            print("telemetry-off gate: no comparable prior record; "
                  "recorded fresh baseline")
