"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper over the full
twelve-workload suite and prints the rows the paper reports.  Timing-wise
each experiment is heavy (it runs the DBT plus trace-driven simulation), so
benchmarks run a single round.

``--repro-workers N`` fans the run points of each experiment out over N
worker processes; ``--repro-cache-dir PATH`` answers repeated runs from the
persistent result cache.  Both default off so that timings measure the
actual simulation.
"""

import pytest

from repro.harness.parallel import PointRunner
from repro.harness.resultcache import ResultCache
# machine_metadata moved to repro.obs.regress so the bench-compare
# sentinel shares the exact same host-identity block the benchmarks
# embed; re-exported here for the benchmark modules.
from repro.obs.regress import machine_metadata  # noqa: F401

#: V-ISA instruction budget per workload per configuration.  The paper ran
#: benchmarks to completion (up to 4.3G instructions); our synthetic
#: workloads complete in far less, and all reported metrics are
#: ratios/rates that stabilise well below this budget.
BENCH_BUDGET = 60_000


def pytest_addoption(parser):
    parser.addoption("--repro-workers", type=int, default=1,
                     help="worker processes per experiment's run points")
    parser.addoption("--repro-cache-dir", default=None,
                     help="persistent run-point cache directory "
                          "(off by default: benchmarks time real runs)")


@pytest.fixture
def harness_runner(request):
    """A fresh PointRunner per benchmark, honouring the CLI options."""
    workers = request.config.getoption("--repro-workers")
    cache_dir = request.config.getoption("--repro-cache-dir")
    cache = ResultCache(cache_dir) if cache_dir else None
    return PointRunner(workers=workers, cache=cache)


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing and
    print its rendered table."""

    def _run(experiment_fn):
        result = benchmark.pedantic(experiment_fn, rounds=1, iterations=1)
        print()
        print(result.render())
        if getattr(result, "run_report", None):
            report = result.run_report
            print(f"[{report['executed']} executed, "
                  f"{report['cache_hits']} cached, "
                  f"vm {report['vm_seconds']:.1f}s]")
        return result

    return _run
