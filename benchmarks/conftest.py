"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper over the full
twelve-workload suite and prints the rows the paper reports.  Timing-wise
each experiment is heavy (it runs the DBT plus trace-driven simulation), so
benchmarks run a single round.
"""

import pytest

#: V-ISA instruction budget per workload per configuration.  The paper ran
#: benchmarks to completion (up to 4.3G instructions); our synthetic
#: workloads complete in far less, and all reported metrics are
#: ratios/rates that stabilise well below this budget.
BENCH_BUDGET = 60_000


@pytest.fixture
def bench_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing and
    print its rendered table."""

    def _run(experiment_fn):
        result = benchmark.pedantic(experiment_fn, rounds=1, iterations=1)
        print()
        print(result.render())
        return result

    return _run
