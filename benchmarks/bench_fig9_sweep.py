"""Fig. 9 — IPC sensitivity of the ILDP machine to accumulator count,
D-cache size, communication latency and PE count."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import fig9


def test_fig9_machine_parameter_sweep(bench_once, harness_runner):
    result = bench_once(lambda: fig9.run(budget=BENCH_BUDGET,
                                         runner=harness_runner))
    avg = result.row_for("Avg.")
    eight_acc, base, small_dcache, comm2, six_pe, four_pe = avg[1:7]
    # paper shapes:
    # - the quarter-size replicated D-cache barely matters
    assert small_dcache > 0.9 * base
    # - two-cycle communication latency costs a few percent (our small
    #   kernels pay more than the paper's 3.4%, see EXPERIMENTS.md)
    assert comm2 < base
    # - 6 PEs hold up well; 4 PEs lag clearly more
    assert six_pe >= four_pe
    assert four_pe < base
    # - 8 accumulators never hurt
    assert eight_acc >= 0.98 * base
