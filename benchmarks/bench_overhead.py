"""Section 4.2 — translation overhead (modelled Alpha instructions per
translated source instruction, with phase breakdown)."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import overhead


def test_translation_overhead(bench_once, harness_runner):
    result = bench_once(lambda: overhead.run(budget=BENCH_BUDGET,
                                             runner=harness_runner))
    avg = result.row_for("Avg.")
    per_instruction, tcache_share = avg[1], avg[2]
    # paper: ~1,125 Alpha instructions per translated instruction (about a
    # quarter of DAISY's 4,000+), with ~20% spent copying into the tcache
    assert 500 < per_instruction < 2500
    assert 0.10 < tcache_share < 0.35
    assert per_instruction < 4000   # the DAISY comparison must hold
