"""Fig. 5 — relative dynamic instruction count of straightened code."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import fig5


def test_fig5_instruction_expansion(bench_once, harness_runner):
    result = bench_once(lambda: fig5.run(budget=BENCH_BUDGET,
                                         runner=harness_runner))
    rows = {row[0]: row[1] for row in result.rows()}
    # every workload expands (chaining adds instructions) ...
    assert all(value >= 1.0 for value in rows.values())
    # ... and the indirect-jump-heavy workloads expand most (Section 4.3)
    assert rows["perlbmk"] > rows["gzip"]
    assert rows["gap"] > rows["gzip"]
