"""Harness scaling — the same experiment executed serially, over a
process pool, and from a warm result cache.

Writes the three wall-clock times to ``BENCH_harness.json`` in the repo
root and asserts the central harness property: all three strategies render
byte-identical tables.
"""

import json
import pathlib
import time

from benchmarks.conftest import BENCH_BUDGET, machine_metadata
from repro.harness.experiments import fig8
from repro.harness.parallel import PointRunner
from repro.harness.resultcache import ResultCache

WORKLOADS = ("gzip", "mcf", "twolf", "vortex")
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_harness.json"


def _timed(runner):
    started = time.perf_counter()
    result = fig8.run(workloads=WORKLOADS, budget=BENCH_BUDGET,
                      runner=runner)
    return result.render(), time.perf_counter() - started


def test_harness_scaling(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))

    serial_table, serial_s = _timed(PointRunner())
    parallel_table, parallel_s = _timed(PointRunner(workers=4))
    warm_runner = PointRunner(cache=cache)
    _timed(warm_runner)                       # populate the cache
    cached_table, cached_s = _timed(warm_runner)

    assert parallel_table == serial_table
    assert cached_table == serial_table
    # the warm rerun must answer every point from the cache
    assert warm_runner.last_report["executed"] == 0
    assert warm_runner.last_report["cache_hits"] == \
        warm_runner.last_report["unique"]
    assert cached_s < serial_s

    record = {
        "experiment": "fig8",
        "workloads": list(WORKLOADS),
        "budget": BENCH_BUDGET,
        "run_points": warm_runner.last_report["unique"],
        "serial_seconds": serial_s,
        "parallel4_seconds": parallel_s,
        "cached_seconds": cached_s,
        "machine": machine_metadata(),
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(f"serial {serial_s:.2f}s, parallel(4) {parallel_s:.2f}s, "
          f"cached {cached_s:.3f}s -> {OUTPUT.name}")
