"""Warm-start benchmark — cold vs store-restored translation time.

For every workload in the full twelve-workload suite, measures the
wall-clock seconds the translator spends **producing** fragment bodies
— the pipeline stages the fragment store replaces: strand decompose,
usage analysis, accumulator allocation and code generation
(``phase.translate.*`` except ``chaining``) — on a cold boot, against a
warm boot answering every translation from a persisted store
(``persist.load`` + ``persist.restore``, plus any residual cold-phase
time for records the store fails to answer; zero when the store is
complete).  The ``chaining`` phase (``TranslationCache.add``: layout,
patch application) is deliberately *excluded from both sides*: a
restored fragment is installed through the identical add path — that is
what makes warm ``VMStats`` bit-identical to cold — so install time is
a constant both modes pay, not a cost the store can touch.

Each measurement is the best of ``REPS`` boots after a warm-up pass;
the store is seeded once per workload in a throwaway directory.  The
record lands in ``BENCH_warmstart.json`` (``REPRO_BENCH_OUTPUT``
redirects it, as in ``make bench-gate``), with a ``store`` context
block describing what was persisted — record counts and store bytes
guard comparability, they are not gated metrics (see
``CONTEXT_BLOCKS`` in :mod:`repro.obs.regress`).  The aggregate-speedup
floor only asserts at the full default budget.
"""

import json
import os
import pathlib

from benchmarks.conftest import BENCH_BUDGET, machine_metadata
from repro.harness.runner import run_vm
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

REPS = 3
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_warmstart.json"
#: In-run floor on the aggregate cold/warm translation-time ratio.  The
#: committed record runs well above this (the issue's acceptance bar is
#: 5x aggregate); the looser in-run floor keeps CI jitter from flaking
#: the suite while ``repro bench-compare`` against the committed record
#: still gates the recorded speedup within its 5% tolerance.
MIN_AGGREGATE_SPEEDUP = 3.0


def _budget():
    return int(os.environ.get("REPRO_BENCH_BUDGET", BENCH_BUDGET))


def _output_path():
    override = os.environ.get("REPRO_BENCH_OUTPUT")
    return pathlib.Path(override) if override else OUTPUT


def _translate_seconds(result):
    """Fragment-production wall seconds (see the module docstring):
    every translation phase except the shared install (``chaining``),
    plus the persistence-side load/restore time on warm boots."""
    timers = result.vm.telemetry.host_summary()["timers"]
    return sum(entry["seconds"] for name, entry in timers.items()
               if (name.startswith("phase.translate.")
                   and name != "phase.translate.chaining")
               or name.startswith("persist."))


def _boot(workload, budget, store=None, mode="load"):
    config = VMConfig(telemetry=True) if store is None else VMConfig(
        telemetry=True, persist_path=str(store), persist_mode=mode)
    return run_vm(workload, config, budget=budget, collect_trace=False)


def _best(workload, budget, store=None):
    best = None
    stats = None
    for _ in range(REPS):
        result = _boot(workload, budget, store)
        seconds = _translate_seconds(result)
        if best is None or seconds < best:
            best = seconds
            stats = result.vm.telemetry.host_summary().get("persist")
    return best, stats


def test_warm_start_translation_speedup(tmp_path_factory, monkeypatch):
    # ambient persist settings must not leak into the cold boots
    monkeypatch.delenv("REPRO_PERSIST_DIR", raising=False)
    monkeypatch.delenv("REPRO_PERSIST_MODE", raising=False)
    budget = _budget()
    store = tmp_path_factory.mktemp("warmstart-store")

    rows = []
    cold_total = warm_total = 0.0
    store_records = 0
    for workload in WORKLOAD_NAMES:
        seeded = _boot(workload, budget, store, mode="save")
        persisted = seeded.vm.telemetry.host_summary()["persist"]
        store_records += persisted["records_saved"]
        _boot(workload, budget)                 # warm-up (decode caches)
        cold, _ = _best(workload, budget)
        warm, stats = _best(workload, budget, store)
        assert stats["warm_misses"] == 0, (
            f"{workload}: {stats['warm_misses']} translations missed the "
            f"store the seeding run just wrote")
        cold_total += cold
        warm_total += warm
        rows.append({
            "workload": workload,
            "cold_translate_seconds": round(cold, 5),
            "warm_translate_seconds": round(warm, 5),
            "speedup": round(cold / warm, 2),
            "warm_hits": stats["warm_hits"],
            "fragments": seeded.stats.fragments_created,
        })

    store_bytes = sum(
        os.path.getsize(os.path.join(dirpath, name))
        for dirpath, _dirnames, filenames in os.walk(store)
        for name in filenames)
    aggregate = cold_total / warm_total
    record = {
        "benchmark": "warm_start",
        "workloads": list(WORKLOAD_NAMES),
        "budget": budget,
        "reps": REPS,
        "rows": rows,
        "cold_total_seconds": round(cold_total, 5),
        "warm_total_seconds": round(warm_total, 5),
        "aggregate_speedup": round(aggregate, 2),
        "store": {"records": store_records, "bytes": store_bytes},
        "machine": machine_metadata(),
    }
    output = _output_path()
    output.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for row in rows:
        print(f"{row['workload']:8s} cold "
              f"{row['cold_translate_seconds'] * 1000:7.2f}ms, warm "
              f"{row['warm_translate_seconds'] * 1000:7.2f}ms "
              f"({row['speedup']:.2f}x, {row['warm_hits']} hits)")
    print(f"aggregate warm-start speedup: {aggregate:.2f}x "
          f"({store_records} records, {store_bytes} store bytes) "
          f"-> {output.name}")

    if budget >= BENCH_BUDGET:
        assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
            f"warm start only {aggregate:.2f}x faster than cold "
            f"translation (need >= {MIN_AGGREGATE_SPEEDUP}x)")
