"""Fig. 7 — output register value usage ("globalness") breakdown."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import fig7


def test_fig7_register_usage(bench_once, harness_runner):
    result = bench_once(lambda: fig7.run(budget=BENCH_BUDGET,
                                         runner=harness_runner))
    avg = result.row_for("Avg.")
    modified_global, basic_global = avg[9], avg[10]
    # paper: ~25% global outputs for the modified format, rising to ~40%
    # with the basic format's ->global conversions.  Our synthetic kernels
    # have much smaller loop bodies than real SPEC superblocks, so a far
    # larger share of values is loop-carried (live-out) — the absolute
    # level is inflated, but both orderings must hold (EXPERIMENTS.md).
    assert 10.0 < modified_global < 90.0
    assert basic_global > modified_global
    # a healthy share of values stays purely local (that is the point of
    # the accumulator ISA)
    local_share = avg[2] + avg[3]   # local + temp
    assert local_share > 15.0
