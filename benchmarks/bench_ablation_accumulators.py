"""Ablation — logical accumulator count (why the paper picked four)."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import ablation_accumulators

WORKLOADS = ("gzip", "mcf", "gcc", "vortex", "twolf", "crafty")


def test_accumulator_count_ablation(bench_once, harness_runner):
    result = bench_once(
        lambda: ablation_accumulators.run(workloads=WORKLOADS,
                                          budget=BENCH_BUDGET,
                                          runner=harness_runner))
    avg = result.row_for("Avg.")
    spills = {1: avg[1], 2: avg[3], 4: avg[5], 8: avg[7]}
    copy_pct = {1: avg[2], 2: avg[4], 4: avg[6], 8: avg[8]}
    # fewer accumulators force more premature strand terminations ...
    assert spills[1] >= spills[2] >= spills[4] >= spills[8]
    # ... and the paper's observation holds: with four accumulators,
    # premature terminations are rare
    assert spills[4] < spills[1] / 2 + 1
    # spills surface as extra copies in the basic format
    assert copy_pct[1] >= copy_pct[4]
