"""Model validation — the cycle-stepped ILDP reference vs the fast
one-pass model used by the experiment harness.

The paper's numbers came from detailed (slow) simulation; our harness uses
a one-pass model for tractability.  This benchmark quantifies the
agreement between the two on real traces, which is what licenses using the
fast model everywhere else.
"""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import ildp_config
from repro.uarch.ildp import ILDPModel
from repro.uarch.ildp_cycle import CycleILDPModel
from repro.vm.config import VMConfig

WORKLOADS = ("gzip", "mcf", "gcc", "twolf", "vortex", "vpr")


def _run():
    rows = []
    for name in WORKLOADS:
        result = run_vm(name, VMConfig(fmt=IFormat.MODIFIED),
                        budget=BENCH_BUDGET // 2)
        fast = ILDPModel(ildp_config(8, 0)).run(result.trace)
        cycle = CycleILDPModel(ildp_config(8, 0)).run(result.trace)
        rows.append([name, fast.ipc, cycle.ipc, cycle.ipc / fast.ipc])
    rows.append(["Avg.",
                 sum(r[1] for r in rows) / len(rows),
                 sum(r[2] for r in rows) / len(rows),
                 sum(r[3] for r in rows) / len(rows)])
    return ExperimentResult(
        "Model validation — fast vs cycle-stepped ILDP (8 PE, 0-cycle "
        "comm)", ("workload", "fast IPC", "cycle IPC", "ratio"), rows)


def test_cycle_model_validation(bench_once):
    result = bench_once(_run)
    avg = result.row_for("Avg.")
    assert 0.7 < avg[3] < 1.4   # models agree on average
    for row in result.rows()[:-1]:
        assert 0.5 < row[3] < 1.8
