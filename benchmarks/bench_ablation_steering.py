"""Ablation — strand steering heuristics under communication latency."""

from benchmarks.conftest import BENCH_BUDGET
from repro.harness.experiments import ablation_steering

WORKLOADS = ("gzip", "mcf", "twolf", "vpr", "gcc", "parser")


def test_steering_ablation(bench_once, harness_runner):
    result = bench_once(
        lambda: ablation_steering.run(workloads=WORKLOADS,
                                      budget=BENCH_BUDGET,
                                      runner=harness_runner))
    avg = result.row_for("Avg.")
    dep_c0, dep_c2, least_c2, modulo_c2 = avg[1:5]
    # communication latency costs something under every policy
    assert dep_c2 < dep_c0
    # dependence-based steering must tolerate the latency at least as well
    # as naive least-loaded steering (the ISCA 2002 design point)
    assert dep_c2 >= 0.98 * least_c2
    # modulo steering without renaming wastes PEs and loses
    assert modulo_c2 <= dep_c0
