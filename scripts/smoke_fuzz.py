#!/usr/bin/env python
"""Smoke-test the fuzzing subsystem end to end.

Runs a small seeded campaign through the oracle stack and checks it
comes back clean and deterministic, proves the oracle is *sensitive*
(a deliberately corrupted I-ISA semantic must be detected and shrink to
a smaller reproducer), and round-trips a corpus record through the
on-disk format.  Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/smoke_fuzz.py [count] [seed]
"""

import sys
import tempfile

import repro.ildp_isa.semantics as ildp_semantics
from repro.fuzz.campaign import Finding, _shrink_finding, run_campaign
from repro.fuzz.corpus import (
    entry_dict,
    load_corpus,
    program_from_entry,
    write_corpus,
)
from repro.fuzz.gen import generate
from repro.fuzz.oracle import ORACLE_BUDGET, check_program


def _check_clean_campaign(failures, count, seed):
    a = run_campaign(count, seed)
    b = run_campaign(count, seed)
    if not a.ok:
        for finding in a.findings:
            for line in finding.describe():
                print(f"  {line}")
        failures.append(f"campaign(count={count}, seed={seed}) "
                        f"reported {len(a.findings)} finding(s)")
    if sum(a.shapes.values()) == 0:
        failures.append("campaign produced no shape statistics")
    if a.shapes != b.shapes or len(a.findings) != len(b.findings):
        failures.append("campaign is not deterministic across runs")


def _check_sensitivity(failures):
    healthy = ildp_semantics.IALU_OPS["xor"]
    ildp_semantics.IALU_OPS["xor"] = lambda a, b: (a ^ b) ^ 0x10000
    try:
        finding = None
        for index in range(10):
            fprog = generate(7, index, max_insns=24)
            report = check_program(fprog, stages=("cosim",))
            if report["failures"]:
                finding = Finding(fprog, report["failures"])
                break
        if finding is None:
            failures.append("oracle missed an injected semantic bug")
            return
        _shrink_finding(finding, ORACLE_BUDGET)
        if not finding.shrunk_failures or \
                len(finding.shrunk_words) >= len(finding.program.words):
            failures.append("shrinking did not keep a smaller diverging "
                            "reproducer")
    finally:
        ildp_semantics.IALU_OPS["xor"] = healthy


def _check_corpus_roundtrip(failures, seed):
    fprog = generate(seed, 0)
    with tempfile.TemporaryDirectory() as directory:
        write_corpus(directory, [entry_dict(fprog)])
        entries = load_corpus(directory)
        if len(entries) != 1:
            failures.append(f"corpus roundtrip: {len(entries)} entries")
            return
        again = program_from_entry(entries[0])
        if again.words != fprog.words or again.data != fprog.data:
            failures.append("corpus roundtrip changed the program")


def main(argv):
    count = int(argv[1]) if len(argv) > 1 else 8
    seed = int(argv[2]) if len(argv) > 2 else 1
    failures = []

    _check_clean_campaign(failures, count, seed)
    _check_sensitivity(failures)
    _check_corpus_roundtrip(failures, seed)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"fuzz smoke OK: {count} programs clean, injected bug "
          "detected and shrunk, corpus round-trips")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
