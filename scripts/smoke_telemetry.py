#!/usr/bin/env python
"""Smoke-test the repro.obs telemetry subsystem.

Runs one workload with telemetry enabled and checks the acceptance
properties end to end: events were emitted and export as parseable JSON
Lines, the translator and VM phase timers recorded spans, fragments were
profiled with entry counts matching the translation cache's execution
counts, and — against a second telemetry-off run — ``VMStats`` and the
architected state are bit-identical (the no-op parity contract).  Exits
non-zero on any failure.

Usage: PYTHONPATH=src python scripts/smoke_telemetry.py [workload] [budget]
"""

import sys

from repro.harness.runner import run_vm
from repro.obs.events import parse_jsonl
from repro.vm.config import VMConfig


def main(argv):
    workload = argv[1] if len(argv) > 1 else "gzip"
    budget = int(argv[2]) if len(argv) > 2 else 200_000

    on = run_vm(workload, VMConfig(telemetry=True), budget=budget,
                collect_trace=False)
    off = run_vm(workload, VMConfig(), budget=budget, collect_trace=False)
    telemetry = on.vm.telemetry

    failures = []
    if not telemetry.enabled:
        failures.append("telemetry facade is the null object")

    events = telemetry.events
    if events.emitted == 0:
        failures.append("no events were emitted")
    parsed = parse_jsonl(events.to_jsonl())
    if len(parsed) != len(events):
        failures.append(f"JSONL round-trip lost records "
                        f"({len(parsed)} != {len(events)})")
    if parsed != events.records():
        failures.append("JSONL round-trip altered records")

    timers = telemetry.registry.timers
    phase_spans = sum(timer.count for name, timer in timers.items()
                      if name.startswith("phase."))
    if phase_spans == 0:
        failures.append("no phase-timer spans recorded")
    if "phase.translate.codegen" not in timers:
        failures.append("translator pipeline timers missing")

    profiled_entries = sum(record.entries
                           for record in telemetry.fragments.records.values())
    cache_execs = sum(fragment.execution_count
                      for fragment in on.tcache.fragments)
    if profiled_entries != cache_execs:
        failures.append(f"profiled entries {profiled_entries} != cache "
                        f"execution counts {cache_execs}")

    if vars(on.stats) != vars(off.stats):
        failures.append("VMStats differ between telemetry on and off")
    if on.vm.state.regs != off.vm.state.regs or \
            on.vm.state.pc != off.vm.state.pc:
        failures.append("architected state differs between telemetry "
                        "on and off")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    print(f"ok: telemetry on {workload} — {events.emitted} events "
          f"({events.dropped} dropped), {phase_spans} phase spans, "
          f"{len(telemetry.fragments)} fragments profiled, "
          f"stats identical with telemetry off")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
