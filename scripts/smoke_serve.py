#!/usr/bin/env python
"""Smoke-test `repro serve` end to end: batching, dedup, warm restart.

Starts a real `repro serve` subprocess against a throwaway fragment
store, drives three workloads through the client (one duplicated, so
the duplicate must join the in-flight run — proven by the server's
``dedup_joined`` counter), shuts the server down, restarts it on the
same store, reruns the workloads and checks the warm-start hit counters
are nonzero.  The result cache is disabled throughout: a cache hit
would answer requests without booting a VM, hiding exactly the
warm-start path this smoke exists to exercise.  Exits non-zero on any
violation.

Usage: PYTHONPATH=src python scripts/smoke_serve.py [workloads...]
"""

import os
import subprocess
import sys
import tempfile
import time

from repro.serve.client import ServeError, request, run_many

BUDGET = 20_000
#: Generous batching window so concurrently issued requests reliably
#: land in one batch (the dedup proof must not depend on a tight race).
BATCH_WINDOW = 0.2


def start_server(socket_path, store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--no-cache", "--persist-dir", store_dir,
         "--batch-window", str(BATCH_WINDOW)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    # readiness: the server prints "serving on <socket>" once bound
    line = process.stdout.readline()
    if "serving on" not in line:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process


def stop_server(socket_path, process):
    try:
        request(socket_path, {"op": "shutdown"}, timeout=30)
    except ServeError:
        process.kill()
    process.wait(timeout=30)


def drive(socket_path, workloads):
    """Run ``workloads`` concurrently; returns the server's stats."""
    payloads = [{"op": "run", "workload": name, "budget": BUDGET}
                for name in workloads]
    responses = run_many(socket_path, payloads, timeout=300)
    for name, response in zip(workloads, responses):
        if not response.get("ok"):
            raise RuntimeError(
                f"run {name} failed: {response.get('error')}")
    return request(socket_path, {"op": "stats"}, timeout=30)


def main(argv):
    workloads = list(argv[1:]) or ["gzip", "mcf", "crafty"]
    # one duplicate proves in-flight dedup via the server counters
    requests = workloads + [workloads[0]]
    failures = []

    with tempfile.TemporaryDirectory(prefix="repro-smoke-serve-") as root:
        socket_path = os.path.join(root, "serve.sock")
        store_dir = os.path.join(root, "store")

        started = time.perf_counter()
        server = start_server(socket_path, store_dir)
        try:
            cold = drive(socket_path, requests)
        finally:
            stop_server(socket_path, server)
        counts = cold["requests"]
        print(f"cold: {counts.get('runs_completed', 0)} runs, "
              f"{counts.get('dedup_joined', 0)} dedup joins, "
              f"{counts.get('batches', 0)} batches, "
              f"persist {cold['persist']}")
        if counts.get("dedup_joined", 0) < 1:
            failures.append("duplicated request was not deduplicated "
                            f"(dedup_joined={counts.get('dedup_joined')})")
        if cold["report"]["executed"] != len(workloads):
            failures.append(
                f"cold server executed {cold['report']['executed']} "
                f"points, expected {len(workloads)}")
        if cold["persist"].get("records_saved", 0) < 1:
            failures.append("cold server persisted no fragment records")

        server = start_server(socket_path, store_dir)
        try:
            warm = drive(socket_path, requests)
        finally:
            stop_server(socket_path, server)
        print(f"warm: {warm['requests'].get('runs_completed', 0)} runs, "
              f"persist {warm['persist']}")
        if warm["persist"].get("warm_hits", 0) < 1:
            failures.append("restarted server reported zero warm-start "
                            "hits")
        if warm["persist"].get("warm_misses", 0) != 0:
            failures.append(
                f"restarted server missed "
                f"{warm['persist']['warm_misses']} translations the "
                f"store should have answered")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"ok: serve smoke passed in "
          f"{time.perf_counter() - started:.1f}s "
          f"({warm['persist']['warm_hits']} warm hits on restart)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
