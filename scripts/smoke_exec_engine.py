#!/usr/bin/env python
"""Smoke-test the closure-specialized execution engine.

Runs one workload to its natural halt under both ``VMConfig.exec_engine``
settings and checks the acceptance properties: identical final register
state, program counter, console output, committed-instruction count, and
every ``VMStats`` counter.  Exits non-zero on any divergence.

Usage: PYTHONPATH=src python scripts/smoke_exec_engine.py [workload] [budget]
"""

import sys

from repro.harness.runner import run_vm
from repro.vm.config import VMConfig


def main(argv):
    workload = argv[1] if len(argv) > 1 else "gzip"
    budget = int(argv[2]) if len(argv) > 2 else 200_000

    results = {}
    for engine in ("naive", "specialized"):
        results[engine] = run_vm(workload, VMConfig(exec_engine=engine),
                                 budget=budget, collect_trace=False)
    naive, specialized = results["naive"], results["specialized"]

    failures = []
    if specialized.vm.state.regs != naive.vm.state.regs:
        failures.append("final register state differs")
    if specialized.vm.state.pc != naive.vm.state.pc:
        failures.append("final PC differs")
    if specialized.vm.console_text() != naive.vm.console_text():
        failures.append("console output differs")
    if specialized.stats.committed_v_instructions() != \
            naive.stats.committed_v_instructions():
        failures.append("committed-instruction counts differ")
    stats_diff = [key for key in vars(naive.stats)
                  if vars(naive.stats)[key] != vars(specialized.stats)[key]]
    if stats_diff:
        failures.append(f"stats counters differ: {', '.join(stats_diff)}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    committed = naive.stats.committed_v_instructions()
    print(f"ok: engines agree on {workload} "
          f"({committed} committed V-ISA instructions, "
          f"{naive.stats.fragments_created} fragments)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
