#!/usr/bin/env python
"""Smoke-test precise self-modifying-code invalidation.

Runs a hand-written kernel that maps its code page, gets its loop hot
(translated), patches one instruction of that loop from guest code and
keeps running over the rewritten text.  Checks, under every execution
engine, that the VM (a) produces the pure interpreter's console, (b)
detects the store into translated code exactly once, (c) invalidates
only the overlapping fragment — never the whole cache — and (d) emits
the ``smc_detected`` telemetry event.  A second kernel stores into its
*own executing* fragment every iteration and must survive through
RETRANSLATE deopts instead of guest-visible traps.  Exits non-zero on
any failure.

Usage: PYTHONPATH=src python scripts/smoke_smc.py
"""

import sys

from repro.asm import assemble
from repro.interp import Interpreter
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.obs.events import EventKind
from repro.vm import CoDesignedVM, VMConfig

ENGINES = ("naive", "specialized", "jit")

#: Patch ``slot:`` exactly once (iteration r2==3) with a donor word kept
#: in the data segment, out of the loop's own way.
ONESHOT = """
        .text
_start: la   r5, donor
        ldl  r6, 0(r5)
        li   r2, 20
        clr  r3
loop:   cmpeq r2, 3, r4
        beq  r4, slot
        la   r7, slot
        stl  r6, 0(r7)
slot:   addq r3, 1, r3
        subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
        .data
donor:  .space 4, 0
"""

#: Store the hot loop's own ``slot`` word back onto itself every
#: iteration: each translated stint writes into the fragment it is
#: executing and must deopt precisely.
HOTSTORE = """
        .text
_start: li   r2, 16
        clr  r3
loop:   la   r7, slot
        ldl  r6, 0(r7)
        stl  r6, 0(r7)
slot:   addq r3, 1, r3
        subq r2, 1, r2
        bne  r2, loop
        and  r3, 0x7f, r16
        call_pal putc
        call_pal halt
"""


def _oneshot_program():
    program = assemble(ONESHOT)
    donor = encode(Instruction("addq", ra=3, rc=3, imm=2, islit=True))
    program.memory.write_bytes(program.symbols["donor"],
                               donor.to_bytes(4, "little"))
    return program


def _reference(program_factory):
    interp = Interpreter(program_factory())
    interp.run(max_instructions=100_000)
    return interp


def main():
    failures = []

    oneshot_ref = _reference(_oneshot_program)
    for engine in ENGINES:
        vm = CoDesignedVM(_oneshot_program(),
                          VMConfig(threshold=4, jit_threshold=1,
                                   exec_engine=engine, telemetry=True))
        vm.run(max_v_instructions=100_000)
        label = f"oneshot/{engine}"
        if not vm.halted:
            failures.append(f"{label}: VM did not halt")
            continue
        if vm.interpreter.console != oneshot_ref.console:
            failures.append(f"{label}: console diverged from interpreter")
        if vm.stats.smc_detected != 1:
            failures.append(f"{label}: expected exactly one SMC "
                            f"detection, got {vm.stats.smc_detected}")
        if vm.stats.smc_invalidations != 1:
            failures.append(f"{label}: expected exactly one precise "
                            f"invalidation, got "
                            f"{vm.stats.smc_invalidations}")
        if vm.stats.tcache_flushes != 0:
            failures.append(f"{label}: SMC caused a whole-cache flush")
        events = vm.telemetry.events.records(EventKind.SMC_DETECTED)
        if len(events) != 1:
            failures.append(f"{label}: expected one smc_detected event, "
                            f"got {len(events)}")

    hot_ref = _reference(lambda: assemble(HOTSTORE))
    deopts = 0
    for engine in ENGINES:
        vm = CoDesignedVM(assemble(HOTSTORE),
                          VMConfig(threshold=4, jit_threshold=1,
                                   exec_engine=engine))
        vm.run(max_v_instructions=100_000)
        label = f"hotstore/{engine}"
        if not vm.halted:
            failures.append(f"{label}: VM did not halt")
            continue
        if vm.interpreter.console != hot_ref.console:
            failures.append(f"{label}: console diverged from interpreter")
        if vm.stats.retranslate_deopts == 0:
            failures.append(f"{label}: store into the executing fragment "
                            "never deopted")
        if vm.stats.tcache_flushes != 0:
            failures.append(f"{label}: SMC caused a whole-cache flush")
        deopts = vm.stats.retranslate_deopts

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    print("ok: smc — one precise invalidation per patch under "
          f"{len(ENGINES)} engines, no cache flushes, "
          f"{deopts} RETRANSLATE deopts in the self-store loop")
    return 0


if __name__ == "__main__":
    sys.exit(main())
