#!/usr/bin/env python
"""Smoke-test the fault-injection framework and graceful degradation.

Runs one workload three ways — under injected translator failures, under
injected fragment corruption (with checksum verification), and under a
genuinely bounded translation cache — and checks each run converges to
the fault-free pure interpreter: same halt, same architected state, same
console output, same committed-instruction accounting.  Also checks the
no-op parity contract (``faults=None`` selects the shared null injector
and changes no stats) and that the fuel watchdog trips cleanly.  Exits
non-zero on any failure.

Usage: PYTHONPATH=src python scripts/smoke_chaos.py [workload] [budget]
"""

import sys

from repro.harness.runner import run_original, run_vm
from repro.vm.config import VMConfig
from repro.vm.system import BudgetExceeded


def _check_converges(failures, label, result, interp, expected):
    vm = result.vm
    if not vm.halted:
        failures.append(f"{label}: VM did not halt")
        return
    if vm.state.pc != interp.state.pc or \
            vm.state.regs != interp.state.regs:
        failures.append(f"{label}: architected state diverged")
    if vm.console_text() != interp.console_text():
        failures.append(f"{label}: console output diverged")
    if result.stats.committed_v_instructions() != expected:
        failures.append(
            f"{label}: committed {result.stats.committed_v_instructions()}"
            f" != expected {expected}")


def main(argv):
    workload = argv[1] if len(argv) > 1 else "gzip"
    budget = int(argv[2]) if len(argv) > 2 else 200_000

    trace, interp = run_original(workload, budget=budget)
    expected = sum(record.v_weight for record in trace
                   if record.btype != "uncond")
    failures = []

    # translator faults: backoff, then blacklist, interpret forever
    translate = run_vm(
        workload, VMConfig(faults="translate@every=2,times=4", fault_seed=7),
        budget=budget, collect_trace=False)
    _check_converges(failures, "translate faults", translate, interp,
                     expected)
    if translate.vm.injector.total_injected() == 0:
        failures.append("translate faults: nothing was injected")
    if translate.stats.translation_failures == 0:
        failures.append("translate faults: no failures recorded")

    # fragment corruption: checksum detection, invalidate, retranslate
    corrupt = run_vm(
        workload, VMConfig(faults="corrupt@every=2,times=3", fault_seed=11),
        budget=budget, collect_trace=False)
    _check_converges(failures, "corruption", corrupt, interp, expected)
    if corrupt.stats.corrupt_fragments_detected == 0:
        failures.append("corruption: no corrupt fragments detected")

    # a 100-byte cache: capacity flushes and retranslation
    bounded = run_vm(
        workload, VMConfig(tcache_capacity_bytes=100, flush_storm_window=0),
        budget=budget, collect_trace=False)
    _check_converges(failures, "bounded tcache", bounded, interp, expected)
    if bounded.stats.tcache_capacity_flushes == 0:
        failures.append("bounded tcache: no capacity flushes happened")

    # no-op parity: faults unset means the null injector and zero deltas
    plain = run_vm(workload, VMConfig(), budget=budget, collect_trace=False)
    if plain.vm.injector.enabled:
        failures.append("no-op parity: faultless VM holds a live injector")
    if any(plain.stats.resilience().values()):
        failures.append("no-op parity: resilience counters nonzero")
    _check_converges(failures, "fault-free", plain, interp, expected)

    # the fuel watchdog trips with partial stats instead of hanging
    try:
        run_vm(workload, VMConfig(max_host_steps=50), budget=budget,
               collect_trace=False)
    except BudgetExceeded as exc:
        if exc.stats.total_v_instructions() == 0:
            failures.append("watchdog: no partial stats attached")
    else:
        failures.append("watchdog: BudgetExceeded was not raised")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    print(f"ok: chaos on {workload} — "
          f"{translate.stats.translation_failures} translation failures "
          f"({translate.stats.translation_pcs_blacklisted} blacklisted), "
          f"{corrupt.stats.corrupt_fragments_detected} corruptions caught, "
          f"{bounded.stats.tcache_capacity_flushes} capacity flushes; "
          f"all runs converged to the interpreter")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
