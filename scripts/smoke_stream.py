#!/usr/bin/env python
"""Smoke-test the serve streaming layer end to end.

Boots a real `repro serve` subprocess, attaches two concurrent frame
subscribers, drives two workloads through the client, and asserts the
acceptance criteria: both subscribers observe the full request
lifecycle (accepted -> executed -> completed, with matching correlation
ids), the `metrics` verb returns Prometheus text that parses, zero
frames are dropped at the default queue depth, and `repro top` renders
a live dashboard off the same stream.  Then restarts the server on the
same fragment store and proves the warm-start generation streams the
same way (with warm hits visible in the exposed metrics).  Exits
non-zero on any violation.

Usage: PYTHONPATH=src python scripts/smoke_stream.py [workloads...]
"""

import io
import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.cli import main as cli_main
from repro.obs.expo import parse_exposition
from repro.serve.client import ServeError, Subscription, request, run_many

BUDGET = 20_000
SNAPSHOT_INTERVAL = 0.2


def start_server(socket_path, store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--no-cache", "--persist-dir", store_dir,
         "--snapshot-interval", str(SNAPSHOT_INTERVAL)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    line = process.stdout.readline()
    if "serving on" not in line:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process


def stop_server(socket_path, process):
    try:
        request(socket_path, {"op": "shutdown"}, timeout=30)
    except ServeError:
        process.kill()
    process.wait(timeout=30)


class Collector:
    """One background subscriber accumulating every frame it receives."""

    def __init__(self, socket_path):
        self.frames = []
        self.error = None
        self.subscription = Subscription(socket_path, timeout=120)
        self.thread = threading.Thread(target=self._pump, daemon=True)
        self.thread.start()

    def _pump(self):
        try:
            for frame in self.subscription.frames():
                self.frames.append(frame)
        except ServeError as exc:
            self.error = exc

    def finish(self):
        """Close the stream and return the collected frames."""
        self.subscription.close()
        self.thread.join(timeout=30)
        return self.frames

    def completed_cids(self):
        return {frame["data"]["cid"] for frame in self.frames
                if frame["frame"] == "lifecycle"
                and frame["data"].get("phase") == "completed"}


def drive_generation(socket_path, workloads, failures, label):
    """Attach 2 subscribers, run the workloads, check every criterion."""
    collectors = [Collector(socket_path), Collector(socket_path)]
    payloads = [{"op": "run", "workload": name, "budget": BUDGET}
                for name in workloads]
    responses = run_many(socket_path, payloads, timeout=300)
    cids = set()
    for name, response in zip(workloads, responses):
        if not response.get("ok"):
            failures.append(f"{label}: run {name} failed: "
                            f"{response.get('error')}")
        else:
            cids.add(response["cid"])

    # let the tail lifecycle/snapshot frames land before detaching
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if all(cids <= collector.completed_cids()
               for collector in collectors):
            break
        time.sleep(0.05)

    stats = request(socket_path, {"op": "stats"}, timeout=30)
    metrics = request(socket_path, {"op": "metrics"}, timeout=30)
    for collector in collectors:
        collector.finish()

    streaming = stats["streaming"]
    if streaming["subscribers"] != 2:
        failures.append(f"{label}: expected 2 live subscribers, stats "
                        f"saw {streaming['subscribers']}")
    if streaming["frames_dropped"] != 0:
        failures.append(f"{label}: {streaming['frames_dropped']} frames "
                        f"dropped at default queue depth")
    for index, collector in enumerate(collectors):
        if collector.error is not None:
            failures.append(f"{label}: subscriber {index} errored: "
                            f"{collector.error}")
        missing = cids - collector.completed_cids()
        if missing:
            failures.append(f"{label}: subscriber {index} missed "
                            f"completed frames for {sorted(missing)}")
        kinds = {frame["frame"] for frame in collector.frames}
        if "snapshot" not in kinds:
            failures.append(f"{label}: subscriber {index} saw no "
                            f"snapshot frames")
        phases = {frame["data"].get("phase")
                  for frame in collector.frames
                  if frame["frame"] == "lifecycle"}
        for phase in ("accepted", "executed", "completed"):
            if phase not in phases:
                failures.append(f"{label}: subscriber {index} never saw "
                                f"a {phase!r} lifecycle frame")

    if not metrics.get("ok"):
        failures.append(f"{label}: metrics verb failed: "
                        f"{metrics.get('error')}")
        return stats, {}
    try:
        samples = parse_exposition(metrics["text"])
    except ValueError as exc:
        failures.append(f"{label}: exposition does not parse: {exc}")
        return stats, {}
    if samples.get("repro_serve_runs_completed_total") != len(workloads):
        failures.append(
            f"{label}: exposition reports "
            f"{samples.get('repro_serve_runs_completed_total')} runs, "
            f"expected {len(workloads)}")
    bucket_names = [name for name in samples
                    if name.startswith("repro_serve_total_seconds_bucket")]
    if not bucket_names:
        failures.append(f"{label}: no latency histogram buckets in the "
                        f"exposition")
    return stats, samples


def main(argv):
    workloads = list(argv[1:]) or ["gzip", "vortex"]
    failures = []
    started = time.perf_counter()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-stream-") as root:
        socket_path = os.path.join(root, "serve.sock")
        store_dir = os.path.join(root, "store")

        server = start_server(socket_path, store_dir)
        try:
            cold_stats, _ = drive_generation(socket_path, workloads,
                                             failures, "cold")
        finally:
            stop_server(socket_path, server)
        print(f"cold: {cold_stats['requests'].get('runs_completed', 0)} "
              f"runs streamed to 2 subscribers, "
              f"{cold_stats['streaming']['frames_published']} frames, "
              f"{cold_stats['streaming']['frames_dropped']} dropped")

        # generation 2: same store, so traffic is warm-start traffic
        server = start_server(socket_path, store_dir)
        try:
            warm_stats, warm_samples = drive_generation(
                socket_path, workloads, failures, "warm")
            if warm_samples.get("repro_persist_warm_hits_total", 0) < 1:
                failures.append("warm generation exposed zero "
                                "persist warm hits")
            top_out = io.StringIO()
            code = cli_main(["top", "--socket", socket_path,
                             "--frames", "6", "--no-clear"], out=top_out)
            dashboard = top_out.getvalue()
            if code != 0:
                failures.append(f"repro top exited {code}")
            if "repro top" not in dashboard or "latency" not in dashboard:
                failures.append(f"repro top rendered nothing usable: "
                                f"{dashboard[:200]!r}")
        finally:
            stop_server(socket_path, server)
        print(f"warm: {warm_stats['requests'].get('runs_completed', 0)} "
              f"runs, warm hits "
              f"{warm_stats['persist'].get('warm_hits', 0)}, "
              f"{warm_stats['streaming']['frames_dropped']} dropped; "
              f"top rendered {len(dashboard.splitlines())} lines")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"ok: stream smoke passed in "
          f"{time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
