"""Rebuild the checked-in regression corpus (tests/corpus/).

Picks a spread of seeded programs whose shapes jointly cover branches,
memory ops, inner loops, calls and every trap shape, then shrinks each
one *behaviour-preservingly*: a candidate survives only if the oracle
stack still agrees, the reference outcome is unchanged bit for bit, and
the program still reaches translated code (an entry that never
translates would pin nothing).  The shrunk text is stored alongside the
original so replays are fast but provenance is kept.

Deterministic: same generator version in, same corpus bytes out.

Usage::

    PYTHONPATH=src python scripts/build_corpus.py [out_dir]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fuzz.corpus import entry_dict, write_corpus  # noqa: E402
from repro.fuzz.gen import generate  # noqa: E402
from repro.fuzz.oracle import (  # noqa: E402
    check_program,
    oracle_config,
    run_reference,
    run_vm_outcome,
)
from repro.fuzz.shrink import shrink_words  # noqa: E402

#: (seed, index, max_insns) — chosen so the combined shape coverage
#: includes branch/mem/loop/call/cmov/byteop/putc/palnop plus all three
#: epilogue trap shapes and the in-loop guarded gentrap.
SELECTION = [(1, i, 40) for i in range(10)] + \
            [(1, 17, 40), (1, 19, 40)] + \
            [(3, 0, 40), (3, 5, 40), (3, 6, 40), (3, 13, 40)] + \
            [(7, 0, 40), (7, 11, 40), (7, 20, 40), (7, 28, 40)]


def _signature(outcome):
    return (outcome.status, outcome.pc, tuple(outcome.regs),
            outcome.console, outcome.mem, outcome.committed,
            outcome.trap_kind, outcome.trap_vpc)


def build_entry(seed, index, max_insns):
    fprog = generate(seed, index, max_insns=max_insns)
    reference = _signature(run_reference(fprog))

    def behaviour_preserved(words):
        candidate = fprog.with_words(words)
        if _signature(run_reference(candidate)) != reference:
            return False
        _outcome, vm = run_vm_outcome(candidate, oracle_config())
        if vm.stats.fragments_created == 0:
            return False
        return not check_program(candidate,
                                 stages=("cosim", "engine"))["failures"]

    shrunk, checks = shrink_words(fprog.words, behaviour_preserved,
                                  max_checks=150)
    print(f"  {fprog.name}: {len(fprog.words)} -> {len(shrunk)} words "
          f"({checks} checks), shapes {sorted(fprog.shapes)}")
    return entry_dict(fprog, shrunk_words=shrunk)


def main(out_dir):
    entries = []
    for seed, index, max_insns in SELECTION:
        entries.append(build_entry(seed, index, max_insns))
    names = write_corpus(out_dir, entries)
    print(f"wrote {len(names)} corpus records to {out_dir}")


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else \
        os.path.join(os.path.dirname(__file__), "..", "tests", "corpus")
    main(target)
