#!/usr/bin/env python
"""Smoke-test span tracing end to end.

Runs one workload with ``VMConfig.trace`` on and checks the acceptance
properties: the export passes the Chrome trace-event schema check and
survives a JSON round-trip, the run-loop phases all produced spans, the
nesting chain ``vm.run ⊃ vm.capture ⊃ translate ⊃ translate.codegen``
holds positionally, the flame summary renders, and — against a second
tracing-off run — ``VMStats`` and the architected state are
bit-identical (the no-op parity contract).  Exits non-zero on any
failure.

Usage: PYTHONPATH=src python scripts/smoke_trace.py [workload] [budget]
"""

import json
import sys

from repro.harness.runner import run_vm
from repro.obs.trace import span_contains, validate_chrome_trace
from repro.vm.config import VMConfig


def main(argv):
    workload = argv[1] if len(argv) > 1 else "gzip"
    budget = int(argv[2]) if len(argv) > 2 else 100_000

    on = run_vm(workload, VMConfig(trace=True), budget=budget,
                collect_trace=False)
    off = run_vm(workload, VMConfig(), budget=budget, collect_trace=False)
    tracer = on.vm.tracer

    failures = []
    if not tracer.enabled:
        failures.append("tracer is the null object")

    doc = json.loads(json.dumps(tracer.to_chrome()))
    try:
        completes = validate_chrome_trace(doc)
    except ValueError as exc:
        failures.append(f"export failed schema validation: {exc}")
        completes = []

    by_name = {}
    for event in completes:
        by_name.setdefault(event["name"], []).append(event)
    for name in ("vm.run", "vm.interpret", "vm.capture", "vm.translated",
                 "translate", "translate.codegen"):
        if name not in by_name:
            failures.append(f"no {name} spans recorded")

    if not failures:
        run = by_name["vm.run"][0]
        capture = by_name["vm.capture"][0]
        translate = by_name["translate"][0]
        codegen = by_name["translate.codegen"][0]
        if not span_contains(run, capture):
            failures.append("vm.capture not nested inside vm.run")
        if not span_contains(capture, translate):
            failures.append("translate not nested inside vm.capture")
        if not span_contains(translate, codegen):
            failures.append("translate.codegen not nested inside "
                            "translate")

    flame = tracer.flame_lines()
    if len(flame) < 2:
        failures.append("flame summary is empty")

    if vars(on.stats) != vars(off.stats):
        failures.append("VMStats differ between tracing on and off")
    if on.vm.state.regs != off.vm.state.regs or \
            on.vm.state.pc != off.vm.state.pc:
        failures.append("architected state differs between tracing "
                        "on and off")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    print(f"ok: traced {workload} — {len(completes)} spans "
          f"({tracer.dropped} dropped), nesting "
          f"vm.run > vm.capture > translate > translate.codegen holds, "
          f"stats identical with tracing off")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
