#!/usr/bin/env python
"""Smoke-test the tier-2 jit execution engine.

Runs one workload to its natural halt under the jit engine (at a low
promotion threshold so tier-2 generated code actually executes) and
under the specialized engine, and checks the acceptance properties:
at least one fragment promoted to generated code, identical final
register state, program counter, console output, committed-instruction
count, and every ``VMStats`` counter.  Exits non-zero on any divergence.

Usage: PYTHONPATH=src python scripts/smoke_jit.py [workload] [budget]
"""

import sys

from repro.harness.runner import run_vm
from repro.vm.config import VMConfig


def main(argv):
    workload = argv[1] if len(argv) > 1 else "gzip"
    budget = int(argv[2]) if len(argv) > 2 else 200_000

    jit = run_vm(workload,
                 VMConfig(exec_engine="jit", jit_threshold=2),
                 budget=budget, collect_trace=False)
    reference = run_vm(workload, VMConfig(exec_engine="specialized"),
                       budget=budget, collect_trace=False)

    promoted = [f for f in jit.vm.tcache.fragments
                if f._jit_code is not None]

    failures = []
    if not promoted:
        failures.append("no fragment was promoted to tier-2 code")
    if jit.vm.state.regs != reference.vm.state.regs:
        failures.append("final register state differs")
    if jit.vm.state.pc != reference.vm.state.pc:
        failures.append("final PC differs")
    if jit.vm.console_text() != reference.vm.console_text():
        failures.append("console output differs")
    if jit.stats.committed_v_instructions() != \
            reference.stats.committed_v_instructions():
        failures.append("committed-instruction counts differ")
    stats_diff = [key for key in vars(reference.stats)
                  if vars(reference.stats)[key] != vars(jit.stats)[key]]
    if stats_diff:
        failures.append(f"stats counters differ: {', '.join(stats_diff)}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    committed = jit.stats.committed_v_instructions()
    print(f"ok: jit matches specialized on {workload} "
          f"({committed} committed V-ISA instructions, "
          f"{len(promoted)} of {len(jit.vm.tcache.fragments)} fragments "
          f"promoted)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
