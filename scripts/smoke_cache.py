#!/usr/bin/env python
"""Smoke-test the run-point cache end to end.

Runs one experiment twice against a throwaway cache directory and checks
the acceptance properties: the second run is answered entirely from the
cache (cache hits == unique run points, zero executed) and renders a
byte-identical table.  Exits non-zero on any violation.

Usage: PYTHONPATH=src python scripts/smoke_cache.py [experiment] [workloads...]
"""

import sys
import tempfile

from repro.harness import experiments
from repro.harness.parallel import PointRunner
from repro.harness.resultcache import ResultCache


def main(argv):
    name = argv[1] if len(argv) > 1 else "fig8"
    workloads = tuple(argv[2:]) or ("gzip", "mcf")
    module = getattr(experiments, name)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as root:
        cold = PointRunner(cache=ResultCache(root))
        first = module.run(workloads=workloads, budget=20_000,
                           runner=cold).render()
        print(f"cold: {cold.report.render()}")

        warm = PointRunner(cache=ResultCache(root))
        second = module.run(workloads=workloads, budget=20_000,
                            runner=warm).render()
        print(f"warm: {warm.report.render()}")

        failures = []
        if warm.report.executed != 0:
            failures.append(
                f"warm run executed {warm.report.executed} points")
        if warm.report.cache_hits != warm.report.unique:
            failures.append(
                f"warm run hit {warm.report.cache_hits} of "
                f"{warm.report.unique} points")
        if second != first:
            failures.append("warm table differs from cold table")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1

    print(f"ok: {name} cached cleanly "
          f"({warm.report.cache_hits} hits, tables identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
