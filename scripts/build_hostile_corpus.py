"""Rebuild the checked-in hostile regression corpus (tests/corpus/hostile/).

Picks a spread of hostile-guest programs (``generate(..., hostile=True)``)
whose shapes and observed behaviour jointly cover the hostile surface:
self-modifying stores that actually land on installed fragments
(``smc_detected``), ``protect`` calls that revoke execute permission and
kill the program with a precise protection fault, failing protect calls,
and the ``getc``/``brk``/``yield`` syscalls.  Each program is shrunk
*behaviour-preservingly*: a candidate survives only if the oracle stack
still agrees, the reference outcome is unchanged bit for bit, the
program still reaches translated code, and every hostile signal the
original exhibited (SMC detection, protect invalidation, each syscall)
is still exhibited.

Deterministic: same generator version in, same corpus bytes out.

Usage::

    PYTHONPATH=src python scripts/build_hostile_corpus.py [out_dir]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fuzz.corpus import entry_dict, write_corpus  # noqa: E402
from repro.fuzz.gen import generate  # noqa: E402
from repro.fuzz.oracle import (  # noqa: E402
    check_program,
    oracle_config,
    run_reference,
    run_vm_outcome,
)
from repro.fuzz.shrink import shrink_words  # noqa: E402

#: (seed, index) at max_insns=40 — chosen so the combined coverage
#: includes SMC stores that hit installed fragments, protect calls that
#: revoke execute permission (precise protection faults), failing
#: protect calls, getc/brk/yield syscalls, and hostile programs that
#: still halt cleanly.
SELECTION = [
    (1, 1),     # protection fault + SMC hit + getc + yield
    (1, 2),     # brk + getc + SMC hit, halts
    (1, 3),     # pure SMC hit
    (1, 5),     # getc + brk heavy, halts
    (1, 9),     # two SMC hits
    (1, 10),    # gentrap + SMC + getc + yield + protect
    (1, 13),    # unaligned epilogue trap + SMC + getc
    (1, 20),    # protection fault, repeated protect invalidations
    (1, 30),    # yield + SMC hit
    (3, 4),     # brk + two SMC hits
    (3, 21),    # protection fault, protect-dense body
    (3, 25),    # all five hostile shapes in one program
    (3, 29),    # protection fault + brk + yield
    (7, 3),     # protection fault, protect-only
    (7, 4),     # three SMC chunks, one hit
    (7, 14),    # two SMC hits + brk + yield
    (7, 23),    # protection fault *and* SMC hit + yield
    (7, 32),    # brk + getc + yield + protect + SMC, halts
]
MAX_INSNS = 40


def _signature(outcome):
    return (outcome.status, outcome.pc, tuple(outcome.regs),
            outcome.console, outcome.mem, outcome.committed,
            outcome.trap_kind, outcome.trap_vpc)


def _hostile_signals(vm):
    """Boolean fingerprint of which hostile surfaces a run touched."""
    stats = vm.stats
    calls = vm.interpreter.pal.calls
    return (stats.smc_detected > 0, stats.protect_invalidations > 0,
            tuple(sorted(name for name, count in calls.items() if count)))


def build_entry(seed, index):
    fprog = generate(seed, index, max_insns=MAX_INSNS, hostile=True)
    reference = _signature(run_reference(fprog))
    _outcome, baseline = run_vm_outcome(fprog, oracle_config())
    signals = _hostile_signals(baseline)

    def behaviour_preserved(words):
        candidate = fprog.with_words(words)
        if _signature(run_reference(candidate)) != reference:
            return False
        _outcome, vm = run_vm_outcome(candidate, oracle_config())
        if vm.stats.fragments_created == 0:
            return False
        if _hostile_signals(vm) != signals:
            return False
        return not check_program(candidate,
                                 stages=("cosim", "engine"))["failures"]

    shrunk, checks = shrink_words(fprog.words, behaviour_preserved,
                                  max_checks=150)
    print(f"  {fprog.name}: {len(fprog.words)} -> {len(shrunk)} words "
          f"({checks} checks), shapes {sorted(fprog.shapes)}, "
          f"signals {signals}")
    return entry_dict(fprog, shrunk_words=shrunk)


def main(out_dir):
    entries = []
    for seed, index in SELECTION:
        entries.append(build_entry(seed, index))
    names = write_corpus(out_dir, entries)
    print(f"wrote {len(names)} hostile corpus records to {out_dir}")


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else \
        os.path.join(os.path.dirname(__file__), "..", "tests", "corpus",
                     "hostile")
    main(target)
