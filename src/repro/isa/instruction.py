"""The Alpha instruction object used throughout the VM.

Instances are created either by the assembler or by the binary decoder and
are immutable after construction.  ``__slots__`` keeps them small: the
interpreter touches millions of these in its hot loop.
"""

from repro.isa.opcodes import (
    Format,
    Kind,
    MEMORY_OPS,
    OPERATE_OPS,
    BRANCH_OPS,
    JUMP_OPS,
    RB_ONLY_OPS,
    CMOV_OPS,
    kind_of,
)
from repro.isa.registers import ZERO_REG


class Instruction:
    """One decoded Alpha instruction.

    Register fields not used by the instruction's format hold ``ZERO_REG``.
    ``imm`` holds the operate literal, memory displacement, branch
    displacement (in instructions, already sign-interpreted) or PAL function
    depending on the format.  For operate instructions ``islit`` says whether
    Rb is replaced by an 8-bit literal.
    """

    __slots__ = ("mnemonic", "fmt", "kind", "ra", "rb", "rc", "imm", "islit")

    def __init__(self, mnemonic, ra=ZERO_REG, rb=ZERO_REG, rc=ZERO_REG,
                 imm=0, islit=False):
        self.mnemonic = mnemonic
        self.kind = kind_of(mnemonic)
        self.fmt = _format_of(mnemonic)
        self.ra = ra
        self.rb = rb
        self.rc = rc
        self.imm = imm
        self.islit = islit

    # -- register roles ----------------------------------------------------

    def dest(self):
        """Destination register index, or ``None`` when none is written.

        Writes to R31 are architectural no-ops and reported as ``None``.
        """
        if self.fmt is Format.OPERATE:
            dst = self.rc
        elif self.kind in (Kind.LOAD, Kind.LDA):
            dst = self.ra
        elif self.kind in (Kind.UNCOND_BRANCH, Kind.JUMP):
            dst = self.ra  # return-address link
        else:
            return None
        return None if dst == ZERO_REG else dst

    def sources(self):
        """Tuple of source register indices, with R31 filtered out."""
        srcs = ()
        if self.fmt is Format.OPERATE:
            if self.mnemonic in RB_ONLY_OPS:
                srcs = (self.rb,)
            elif self.islit:
                srcs = (self.ra,)
            else:
                srcs = (self.ra, self.rb)
            if self.mnemonic in CMOV_OPS:
                srcs = srcs + (self.rc,)  # old destination value
        elif self.kind in (Kind.LOAD, Kind.LDA):
            srcs = (self.rb,)
        elif self.kind is Kind.STORE:
            srcs = (self.ra, self.rb)
        elif self.kind is Kind.COND_BRANCH:
            srcs = (self.ra,)
        elif self.kind is Kind.JUMP:
            srcs = (self.rb,)
        return tuple(r for r in srcs if r != ZERO_REG)

    # -- predicates --------------------------------------------------------

    def is_control(self):
        """True for any control-transfer instruction."""
        return self.kind in (Kind.COND_BRANCH, Kind.UNCOND_BRANCH, Kind.JUMP,
                             Kind.PAL)

    def is_pei(self):
        """True for potentially-excepting instructions (memory accesses)."""
        return self.kind in (Kind.LOAD, Kind.STORE)

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.mnemonic == other.mnemonic
            and self.ra == other.ra
            and self.rb == other.rb
            and self.rc == other.rc
            and self.imm == other.imm
            and self.islit == other.islit
        )

    def __hash__(self):
        return hash((self.mnemonic, self.ra, self.rb, self.rc, self.imm,
                     self.islit))

    def __repr__(self):
        return (
            f"Instruction({self.mnemonic!r}, ra={self.ra}, rb={self.rb}, "
            f"rc={self.rc}, imm={self.imm}, islit={self.islit})"
        )


def _format_of(mnemonic):
    if mnemonic in MEMORY_OPS:
        return Format.MEMORY
    if mnemonic in OPERATE_OPS:
        return Format.OPERATE
    if mnemonic in BRANCH_OPS:
        return Format.BRANCH
    if mnemonic in JUMP_OPS:
        return Format.JUMP
    if mnemonic == "call_pal":
        return Format.PAL
    raise KeyError(f"unknown mnemonic: {mnemonic}")
