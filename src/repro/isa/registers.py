"""Alpha general-purpose register file conventions.

The Alpha integer register file has 32 registers; R31 reads as zero and
discards writes.  The standard calling convention names a few registers the
workload generators and the DBT rely on (return address, stack pointer).
"""

NUM_GPRS = 32

#: R31 is hardwired to zero.
ZERO_REG = 31
#: Standard Alpha calling convention: R26 holds the return address.
RA_REG = 26
#: R30 is the stack pointer.
SP_REG = 30
#: R29 is the global pointer.
GP_REG = 29

_ALIASES = {
    "v0": 0,
    "ra": RA_REG,
    "pv": 27,
    "at": 28,
    "gp": GP_REG,
    "sp": SP_REG,
    "zero": ZERO_REG,
}


def reg_name(index):
    """Return the canonical textual name (``r0``..``r31``) for a register."""
    if not 0 <= index < NUM_GPRS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_reg(text):
    """Parse a register name (``r7``, ``$7``, ``sp``, ``ra`` ...) to an index."""
    text = text.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith(("r", "$")):
        body = text[1:]
        if body.isdigit():
            index = int(body)
            if 0 <= index < NUM_GPRS:
                return index
    raise ValueError(f"not a register: {text!r}")
