"""Execution semantics for the Alpha integer subset.

The ALU operation table maps each operate mnemonic to a pure function over
64-bit unsigned values; conditional moves and branches get predicate tables.
Traps are modelled with the :class:`Trap` exception so the interpreter and
the I-ISA functional executor share one precise-trap mechanism.
"""

import enum

from repro.utils.bitops import MASK64, sext32, to_signed, to_unsigned


class TrapKind(enum.Enum):
    """Why a trap was raised."""

    UNALIGNED = "unaligned"
    ACCESS_VIOLATION = "access_violation"
    GENTRAP = "gentrap"
    ILLEGAL = "illegal"
    #: A page-protection fault: the page is mapped but the access kind
    #: (read / write / exec, carried on ``Trap.access``) is not permitted.
    PROTECTION_VIOLATION = "protection_violation"
    #: VM-internal only, never guest-visible: translated code performed an
    #: action (a store into translated guest code, a protection flip over
    #: it) that invalidated installed fragments, so the VM must abandon
    #: the current translated stint and resume interpretation after the
    #: instruction.  ``CoDesignedVM._execute_translated`` intercepts this
    #: kind before trap delivery; it can never reach a ``VMTrap``.
    RETRANSLATE = "retranslate"


class Trap(Exception):
    """A precise architectural trap at a V-ISA instruction."""

    def __init__(self, kind, vpc=None, address=None, access=None):
        super().__init__(f"{kind.value} trap at vpc={vpc} addr={address}")
        self.kind = kind
        self.vpc = vpc
        self.address = address
        #: access kind for protection faults ("read"/"write"/"exec"), and
        #: the origin marker for internal RETRANSLATE traps ("write" for
        #: an SMC store, "pal" for a protect syscall).
        self.access = access


def _add64(a, b):
    return (a + b) & MASK64


def _sub64(a, b):
    return (a - b) & MASK64


def _cmpbge(a, b):
    result = 0
    for i in range(8):
        if ((a >> (8 * i)) & 0xFF) >= ((b >> (8 * i)) & 0xFF):
            result |= 1 << i
    return result


def _zap_with_mask(a, mask):
    out = 0
    for i in range(8):
        if not mask & (1 << i):
            out |= a & (0xFF << (8 * i))
    return out


def _make_extract(size):
    mask = (1 << (8 * size)) - 1

    def extract(a, b):
        return (a >> (8 * (b & 7))) & mask

    return extract


def _make_insert(size):
    mask = (1 << (8 * size)) - 1

    def insert(a, b):
        return ((a & mask) << (8 * (b & 7))) & MASK64

    return insert


def _make_mask(size):
    mask = (1 << (8 * size)) - 1

    def mask_bytes(a, b):
        return a & ~(mask << (8 * (b & 7))) & MASK64

    return mask_bytes


def _ctpop(_a, b):
    return bin(b).count("1")


def _ctlz(_a, b):
    if b == 0:
        return 64
    return 64 - b.bit_length()


def _cttz(_a, b):
    if b == 0:
        return 64
    return (b & -b).bit_length() - 1


#: mnemonic -> f(a, b) over unsigned 64-bit ints, returning unsigned 64-bit.
ALU_OPS = {
    "addq": _add64,
    "subq": _sub64,
    "addl": lambda a, b: sext32(a + b),
    "subl": lambda a, b: sext32(a - b),
    "s4addl": lambda a, b: sext32(4 * a + b),
    "s4subl": lambda a, b: sext32(4 * a - b),
    "s8addl": lambda a, b: sext32(8 * a + b),
    "s8subl": lambda a, b: sext32(8 * a - b),
    "s4addq": lambda a, b: (4 * a + b) & MASK64,
    "s4subq": lambda a, b: (4 * a - b) & MASK64,
    "s8addq": lambda a, b: (8 * a + b) & MASK64,
    "s8subq": lambda a, b: (8 * a - b) & MASK64,
    "cmpeq": lambda a, b: 1 if a == b else 0,
    "cmplt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "cmple": lambda a, b: 1 if to_signed(a) <= to_signed(b) else 0,
    "cmpult": lambda a, b: 1 if a < b else 0,
    "cmpule": lambda a, b: 1 if a <= b else 0,
    "cmpbge": _cmpbge,
    "and": lambda a, b: a & b,
    "bic": lambda a, b: a & ~b & MASK64,
    "bis": lambda a, b: a | b,
    "ornot": lambda a, b: (a | (~b & MASK64)) & MASK64,
    "xor": lambda a, b: a ^ b,
    "eqv": lambda a, b: (a ^ (~b & MASK64)) & MASK64,
    "sll": lambda a, b: (a << (b & 0x3F)) & MASK64,
    "srl": lambda a, b: a >> (b & 0x3F),
    "sra": lambda a, b: to_unsigned(to_signed(a) >> (b & 0x3F)),
    "zap": _zap_with_mask,
    "zapnot": lambda a, b: _zap_with_mask(a, ~b & 0xFF),
    "extbl": _make_extract(1),
    "extwl": _make_extract(2),
    "extll": _make_extract(4),
    "extql": _make_extract(8),
    "insbl": _make_insert(1),
    "inswl": _make_insert(2),
    "insll": _make_insert(4),
    "insql": _make_insert(8),
    "mskbl": _make_mask(1),
    "mskwl": _make_mask(2),
    "mskll": _make_mask(4),
    "mskql": _make_mask(8),
    "mull": lambda a, b: sext32(to_signed(a, 32) * to_signed(b, 32)),
    "mulq": lambda a, b: (a * b) & MASK64,
    "umulh": lambda a, b: (a * b) >> 64,
    "sextb": lambda _a, b: to_unsigned(to_signed(b, 8)),
    "sextw": lambda _a, b: to_unsigned(to_signed(b, 16)),
    "ctpop": _ctpop,
    "ctlz": _ctlz,
    "cttz": _cttz,
}

#: Conditional-move predicates on the Ra operand: mnemonic -> f(a) -> bool.
CMOV_CONDITIONS = {
    "cmoveq": lambda a: a == 0,
    "cmovne": lambda a: a != 0,
    "cmovlt": lambda a: to_signed(a) < 0,
    "cmovge": lambda a: to_signed(a) >= 0,
    "cmovle": lambda a: to_signed(a) <= 0,
    "cmovgt": lambda a: to_signed(a) > 0,
    "cmovlbs": lambda a: (a & 1) == 1,
    "cmovlbc": lambda a: (a & 1) == 0,
}

#: Conditional-branch predicates on the Ra operand: mnemonic -> f(a) -> bool.
BRANCH_CONDITIONS = {
    "beq": lambda a: a == 0,
    "bne": lambda a: a != 0,
    "blt": lambda a: to_signed(a) < 0,
    "bge": lambda a: to_signed(a) >= 0,
    "ble": lambda a: to_signed(a) <= 0,
    "bgt": lambda a: to_signed(a) > 0,
    "blbc": lambda a: (a & 1) == 0,
    "blbs": lambda a: (a & 1) == 1,
}


def branch_taken(mnemonic, ra_value):
    """Evaluate a conditional branch's predicate on the Ra register value."""
    return BRANCH_CONDITIONS[mnemonic](ra_value)
