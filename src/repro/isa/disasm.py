"""Textual disassembly of Alpha instructions, in assembler-compatible syntax."""

from repro.isa.opcodes import Format, Kind, RB_ONLY_OPS
from repro.isa.registers import reg_name, ZERO_REG


def disassemble(instr, pc=None):
    """Render an :class:`~repro.isa.instruction.Instruction` as text.

    When ``pc`` (the instruction's own address) is given, branch targets are
    rendered as absolute hex addresses instead of relative displacements.
    """
    fmt = instr.fmt
    if fmt is Format.MEMORY:
        return (f"{instr.mnemonic} {reg_name(instr.ra)}, "
                f"{instr.imm}({reg_name(instr.rb)})")
    if fmt is Format.OPERATE:
        operand_b = str(instr.imm) if instr.islit else reg_name(instr.rb)
        if instr.mnemonic in RB_ONLY_OPS:
            return f"{instr.mnemonic} {operand_b}, {reg_name(instr.rc)}"
        return (f"{instr.mnemonic} {reg_name(instr.ra)}, {operand_b}, "
                f"{reg_name(instr.rc)}")
    if fmt is Format.BRANCH:
        if pc is not None:
            target = pc + 4 + 4 * instr.imm
            where = f"{target:#x}"
        else:
            where = f".{instr.imm:+d}"
        if instr.kind is Kind.UNCOND_BRANCH and instr.ra == ZERO_REG:
            return f"{instr.mnemonic} {where}"
        return f"{instr.mnemonic} {reg_name(instr.ra)}, {where}"
    if fmt is Format.JUMP:
        return (f"{instr.mnemonic} {reg_name(instr.ra)}, "
                f"({reg_name(instr.rb)})")
    if fmt is Format.PAL:
        return f"call_pal {instr.imm:#x}"
    raise ValueError(f"cannot disassemble format {fmt}")
