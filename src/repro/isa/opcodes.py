"""Alpha opcode and format tables for the integer subset.

Encodings follow the Alpha Architecture Handbook: 6-bit major opcode in bits
31:26, with format-specific minor function codes.  Only the instructions SPEC
INT code actually uses (plus the BWX/FIX extensions' byte/word and count
instructions) are included.
"""

import enum


class Format(enum.Enum):
    """Instruction word layout."""

    MEMORY = "memory"        # opcode ra rb disp16  (loads, stores, lda/ldah)
    JUMP = "jump"            # opcode ra rb hint14  (jmp/jsr/ret), opcode 0x1A
    BRANCH = "branch"        # opcode ra disp21     (br/bsr/conditional)
    OPERATE = "operate"      # opcode ra rb func rc (register or 8-bit literal)
    PAL = "pal"              # opcode func26        (call_pal)


class Kind(enum.Enum):
    """Behavioural class used by the interpreter, translator and uarch."""

    ALU = "alu"              # integer operate producing a register result
    LOAD = "load"
    STORE = "store"
    LDA = "lda"              # address arithmetic in memory format (no access)
    COND_BRANCH = "cond_branch"
    UNCOND_BRANCH = "uncond_branch"   # BR, BSR
    JUMP = "jump"            # JMP, JSR, RET (register indirect)
    PAL = "pal"


#: Memory-format instructions: mnemonic -> (major opcode, kind, access bytes,
#: signed-load flag).  ``lda``/``ldah`` perform no memory access.
MEMORY_OPS = {
    "lda": (0x08, Kind.LDA, 0, False),
    "ldah": (0x09, Kind.LDA, 0, False),
    "ldbu": (0x0A, Kind.LOAD, 1, False),
    "ldwu": (0x0C, Kind.LOAD, 2, False),
    "ldl": (0x28, Kind.LOAD, 4, True),
    "ldq": (0x29, Kind.LOAD, 8, False),
    "stb": (0x0E, Kind.STORE, 1, False),
    "stw": (0x0D, Kind.STORE, 2, False),
    "stl": (0x2C, Kind.STORE, 4, False),
    "stq": (0x2D, Kind.STORE, 8, False),
}

#: Operate-format instructions: mnemonic -> (major opcode, function code).
OPERATE_OPS = {
    # opcode 0x10: integer arithmetic
    "addl": (0x10, 0x00),
    "s4addl": (0x10, 0x02),
    "subl": (0x10, 0x09),
    "s4subl": (0x10, 0x0B),
    "s8addl": (0x10, 0x12),
    "s8subl": (0x10, 0x1B),
    "addq": (0x10, 0x20),
    "s4addq": (0x10, 0x22),
    "subq": (0x10, 0x29),
    "s4subq": (0x10, 0x2B),
    "s8addq": (0x10, 0x32),
    "s8subq": (0x10, 0x3B),
    "cmpult": (0x10, 0x1D),
    "cmpeq": (0x10, 0x2D),
    "cmpule": (0x10, 0x3D),
    "cmplt": (0x10, 0x4D),
    "cmple": (0x10, 0x6D),
    "cmpbge": (0x10, 0x0F),
    # opcode 0x11: logical and conditional move
    "and": (0x11, 0x00),
    "bic": (0x11, 0x08),
    "cmovlbs": (0x11, 0x14),
    "cmovlbc": (0x11, 0x16),
    "bis": (0x11, 0x20),
    "cmoveq": (0x11, 0x24),
    "cmovne": (0x11, 0x26),
    "ornot": (0x11, 0x28),
    "xor": (0x11, 0x40),
    "cmovlt": (0x11, 0x44),
    "cmovge": (0x11, 0x46),
    "eqv": (0x11, 0x48),
    "cmovle": (0x11, 0x64),
    "cmovgt": (0x11, 0x66),
    # opcode 0x12: shifts, byte zap, and the byte-manipulation families
    # (extract / insert / mask) Alpha string code is built from
    "mskbl": (0x12, 0x02),
    "extbl": (0x12, 0x06),
    "insbl": (0x12, 0x0B),
    "mskwl": (0x12, 0x12),
    "extwl": (0x12, 0x16),
    "inswl": (0x12, 0x1B),
    "mskll": (0x12, 0x22),
    "extll": (0x12, 0x26),
    "insll": (0x12, 0x2B),
    "zap": (0x12, 0x30),
    "zapnot": (0x12, 0x31),
    "mskql": (0x12, 0x32),
    "srl": (0x12, 0x34),
    "extql": (0x12, 0x36),
    "sll": (0x12, 0x39),
    "insql": (0x12, 0x3B),
    "sra": (0x12, 0x3C),
    # opcode 0x13: multiplies
    "mull": (0x13, 0x00),
    "mulq": (0x13, 0x20),
    "umulh": (0x13, 0x30),
    # opcode 0x1C: sign extension and counts (BWX/CIX extensions); these
    # read Rb only (Ra must encode R31)
    "sextb": (0x1C, 0x00),
    "sextw": (0x1C, 0x01),
    "ctpop": (0x1C, 0x30),
    "ctlz": (0x1C, 0x32),
    "cttz": (0x1C, 0x33),
}

#: Operate ops whose single source is Rb (Ra is required to be R31).
RB_ONLY_OPS = frozenset({"sextb", "sextw", "ctpop", "ctlz", "cttz"})

#: Conditional moves: need the old destination value as a third input.
CMOV_OPS = frozenset(
    {
        "cmoveq",
        "cmovne",
        "cmovlt",
        "cmovge",
        "cmovle",
        "cmovgt",
        "cmovlbs",
        "cmovlbc",
    }
)

#: Branch-format instructions: mnemonic -> (major opcode, kind).
BRANCH_OPS = {
    "br": (0x30, Kind.UNCOND_BRANCH),
    "bsr": (0x34, Kind.UNCOND_BRANCH),
    "blbc": (0x38, Kind.COND_BRANCH),
    "beq": (0x39, Kind.COND_BRANCH),
    "blt": (0x3A, Kind.COND_BRANCH),
    "ble": (0x3B, Kind.COND_BRANCH),
    "blbs": (0x3C, Kind.COND_BRANCH),
    "bne": (0x3D, Kind.COND_BRANCH),
    "bge": (0x3E, Kind.COND_BRANCH),
    "bgt": (0x3F, Kind.COND_BRANCH),
}

#: Inverse condition for each conditional branch (used by code straightening).
BRANCH_INVERSE = {
    "beq": "bne",
    "bne": "beq",
    "blt": "bge",
    "bge": "blt",
    "ble": "bgt",
    "bgt": "ble",
    "blbc": "blbs",
    "blbs": "blbc",
}

#: Jump-format (opcode 0x1A) sub-functions in displacement bits 15:14.
JUMP_OPS = {
    "jmp": 0,
    "jsr": 1,
    "ret": 2,
    "jsr_coroutine": 3,
}

#: CALL_PAL functions used by the simulated machine.  ``halt`` stops the
#: machine, ``putc`` writes the low byte of R16 to the console, ``gentrap``
#: raises a software trap (used by the precise-trap tests).  The remaining
#: four form the small syscall layer (see :mod:`repro.interp.pal`):
#: ``getc`` reads the next scripted-input byte into R0 (all-ones on
#: exhaustion), ``brk`` grows the guest heap (R16 = requested break, R0 =
#: resulting break), ``protect`` sets page protections (R16 = base, R17 =
#: size, R18 = R/W/X bits; R0 = 0 on success), and ``yield`` is the
#: nanosleep-style fuel yield (architecturally a no-op that ends the
#: current superblock, returning control to the VM at a fragment
#: boundary).
PAL_FUNCTIONS = {
    "halt": 0x00,
    "putc": 0x02,
    "getc": 0x03,
    "brk": 0x04,
    "protect": 0x05,
    "yield": 0x06,
    "gentrap": 0xAA,
}

#: The PAL functions dispatched through :class:`repro.interp.pal.PalContext`
#: (everything except halt/putc/gentrap, which the engines inline).
PAL_SYSCALLS = frozenset((PAL_FUNCTIONS["getc"], PAL_FUNCTIONS["brk"],
                          PAL_FUNCTIONS["protect"], PAL_FUNCTIONS["yield"]))

MNEMONICS = frozenset(
    list(MEMORY_OPS)
    + list(OPERATE_OPS)
    + list(BRANCH_OPS)
    + list(JUMP_OPS)
    + ["call_pal"]
)


def kind_of(mnemonic):
    """Return the behavioural :class:`Kind` of an Alpha mnemonic."""
    if mnemonic in MEMORY_OPS:
        return MEMORY_OPS[mnemonic][1]
    if mnemonic in OPERATE_OPS:
        return Kind.ALU
    if mnemonic in BRANCH_OPS:
        return BRANCH_OPS[mnemonic][1]
    if mnemonic in JUMP_OPS:
        return Kind.JUMP
    if mnemonic == "call_pal":
        return Kind.PAL
    raise KeyError(f"unknown mnemonic: {mnemonic}")


def is_branch_mnemonic(mnemonic):
    """True for any control-transfer mnemonic (branches and jumps)."""
    return mnemonic in BRANCH_OPS or mnemonic in JUMP_OPS


def is_memory_mnemonic(mnemonic):
    """True for mnemonics that access memory (loads and stores, not lda)."""
    if mnemonic not in MEMORY_OPS:
        return False
    return MEMORY_OPS[mnemonic][1] in (Kind.LOAD, Kind.STORE)
