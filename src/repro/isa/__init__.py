"""The Alpha V-ISA: the source instruction set the co-designed VM supports.

This package models the integer subset of the Alpha AXP architecture used by
SPEC CPU2000 INT code: memory format (loads/stores/lda), operate format
(arithmetic, logical, shift, compare, conditional move), branch format
(conditional and unconditional direct branches) and memory-format jumps
(JMP/JSR/RET), plus CALL_PAL for the simulator's halt/putc/trap services.
"""

from repro.isa.registers import (
    NUM_GPRS,
    ZERO_REG,
    RA_REG,
    SP_REG,
    GP_REG,
    reg_name,
    parse_reg,
)
from repro.isa.opcodes import (
    Format,
    Kind,
    MNEMONICS,
    kind_of,
    is_branch_mnemonic,
    is_memory_mnemonic,
)
from repro.isa.instruction import Instruction
from repro.isa.encoding import encode, decode, EncodingError
from repro.isa.semantics import ALU_OPS, branch_taken, Trap, TrapKind
from repro.isa.disasm import disassemble

__all__ = [
    "NUM_GPRS",
    "ZERO_REG",
    "RA_REG",
    "SP_REG",
    "GP_REG",
    "reg_name",
    "parse_reg",
    "Format",
    "Kind",
    "MNEMONICS",
    "kind_of",
    "is_branch_mnemonic",
    "is_memory_mnemonic",
    "Instruction",
    "encode",
    "decode",
    "EncodingError",
    "ALU_OPS",
    "branch_taken",
    "Trap",
    "TrapKind",
    "disassemble",
]
