"""Binary encode/decode of the Alpha instruction subset.

Every instruction is a 32-bit little-endian word.  The encoder and decoder
round-trip exactly over the supported subset, which lets workloads be stored
as genuine binary images and decoded by the interpreter's front end, the same
way a real co-designed VM would fetch V-ISA code from memory.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    MEMORY_OPS,
    OPERATE_OPS,
    BRANCH_OPS,
    JUMP_OPS,
    Format,
)
from repro.utils.bitops import fits_signed, fits_unsigned, to_signed, to_unsigned


class EncodingError(ValueError):
    """Raised when a word cannot be encoded or decoded as a supported instruction."""


_MEMORY_BY_OPCODE = {op: (name, kind, size, signed)
                     for name, (op, kind, size, signed) in MEMORY_OPS.items()}
_OPERATE_BY_KEY = {(op, func): name
                   for name, (op, func) in OPERATE_OPS.items()}
_BRANCH_BY_OPCODE = {op: name for name, (op, _kind) in BRANCH_OPS.items()}
_JUMP_BY_FUNC = {func: name for name, func in JUMP_OPS.items()}

_JUMP_OPCODE = 0x1A
_PAL_OPCODE = 0x00


def encode(instr):
    """Encode an :class:`Instruction` into a 32-bit word."""
    fmt = instr.fmt
    if fmt is Format.MEMORY:
        opcode = MEMORY_OPS[instr.mnemonic][0]
        if not fits_signed(instr.imm, 16):
            raise EncodingError(
                f"memory displacement out of range: {instr.imm}")
        return (opcode << 26) | (instr.ra << 21) | (instr.rb << 16) | \
            to_unsigned(instr.imm, 16)
    if fmt is Format.OPERATE:
        opcode, func = OPERATE_OPS[instr.mnemonic]
        word = (opcode << 26) | (instr.ra << 21) | (func << 5) | instr.rc
        if instr.islit:
            if not fits_unsigned(instr.imm, 8):
                raise EncodingError(
                    f"operate literal out of range: {instr.imm}")
            word |= (instr.imm << 13) | (1 << 12)
        else:
            word |= instr.rb << 16
        return word
    if fmt is Format.BRANCH:
        opcode = BRANCH_OPS[instr.mnemonic][0]
        if not fits_signed(instr.imm, 21):
            raise EncodingError(
                f"branch displacement out of range: {instr.imm}")
        return (opcode << 26) | (instr.ra << 21) | to_unsigned(instr.imm, 21)
    if fmt is Format.JUMP:
        func = JUMP_OPS[instr.mnemonic]
        if not fits_unsigned(instr.imm, 14):
            raise EncodingError(f"jump hint out of range: {instr.imm}")
        return (_JUMP_OPCODE << 26) | (instr.ra << 21) | (instr.rb << 16) | \
            (func << 14) | instr.imm
    if fmt is Format.PAL:
        if not fits_unsigned(instr.imm, 26):
            raise EncodingError(f"PAL function out of range: {instr.imm}")
        return (_PAL_OPCODE << 26) | instr.imm
    raise EncodingError(f"cannot encode format {fmt}")


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = (word >> 26) & 0x3F
    ra = (word >> 21) & 0x1F
    rb = (word >> 16) & 0x1F

    if opcode == _PAL_OPCODE:
        return Instruction("call_pal", imm=word & 0x3FFFFFF)
    if opcode in _MEMORY_BY_OPCODE:
        name = _MEMORY_BY_OPCODE[opcode][0]
        disp = to_signed(word & 0xFFFF, 16)
        return Instruction(name, ra=ra, rb=rb, imm=disp)
    if opcode == _JUMP_OPCODE:
        func = (word >> 14) & 0x3
        name = _JUMP_BY_FUNC[func]
        return Instruction(name, ra=ra, rb=rb, imm=word & 0x3FFF)
    if opcode in _BRANCH_BY_OPCODE:
        name = _BRANCH_BY_OPCODE[opcode]
        disp = to_signed(word & 0x1FFFFF, 21)
        return Instruction(name, ra=ra, imm=disp)
    if opcode in (0x10, 0x11, 0x12, 0x13, 0x1C):
        func = (word >> 5) & 0x7F
        name = _OPERATE_BY_KEY.get((opcode, func))
        if name is None:
            raise EncodingError(
                f"unknown operate function {opcode:#x}.{func:#x}")
        rc = word & 0x1F
        if word & (1 << 12):
            lit = (word >> 13) & 0xFF
            return Instruction(name, ra=ra, rc=rc, imm=lit, islit=True)
        if word & 0xE000:  # bits 15:13 are SBZ in the register form
            raise EncodingError(
                f"operate instruction with SBZ bits set: {word:#x}")
        return Instruction(name, ra=ra, rb=rb, rc=rc)
    raise EncodingError(f"unknown opcode {opcode:#x}")
