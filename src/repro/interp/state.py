"""Architected V-ISA state: 32 GPRs and the program counter.

This is the state precise traps must reconstruct, so it supports cheap
copying and comparison for the co-simulation tests.
"""

from repro.isa.registers import NUM_GPRS, ZERO_REG


class ArchState:
    """Alpha architected register state."""

    __slots__ = ("regs", "pc")

    def __init__(self, pc=0):
        self.regs = [0] * NUM_GPRS
        self.pc = pc

    def read(self, index):
        """Read a register; R31 always reads zero."""
        return self.regs[index]

    def write(self, index, value):
        """Write a register; writes to R31 are discarded."""
        if index != ZERO_REG:
            self.regs[index] = value

    def copy(self):
        """Deep copy for checkpointing."""
        clone = ArchState(self.pc)
        clone.regs = list(self.regs)
        return clone

    def __eq__(self, other):
        if not isinstance(other, ArchState):
            return NotImplemented
        return self.pc == other.pc and self.regs == other.regs

    def diff(self, other):
        """Human-readable register differences (for test failure messages)."""
        lines = []
        if self.pc != other.pc:
            lines.append(f"pc: {self.pc:#x} != {other.pc:#x}")
        for index, (mine, theirs) in enumerate(zip(self.regs, other.regs)):
            if mine != theirs:
                lines.append(f"r{index}: {mine:#x} != {theirs:#x}")
        return "\n".join(lines)

    def __repr__(self):
        return f"ArchState(pc={self.pc:#x})"
