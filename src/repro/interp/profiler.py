"""MRET hotness profiling (Section 3.1 of the paper).

During interpretation, counters are kept for *trace start candidates*:

* targets of register-indirect jumps (JMP/JSR/RET),
* targets of backward taken conditional branches,
* exit targets of existing fragments.

When a candidate's counter reaches the threshold, the interpreted path that
follows is collected as a superblock ("most recently executed tail").

This profiler decides *translation* (tier 0 -> tier 1).  The later
tier-1 -> tier-2 jit promotion is a separate, cheaper policy: the
executor counts fragment entries directly (``Fragment.execution_count``
against ``VMConfig.jit_threshold`` in
``FragmentExecutor._run_jit``), because by then the candidate set is
exactly the translated fragments and no candidate-kind analysis is
needed.
"""

import enum


class CandidateKind(enum.Enum):
    """Why a V-PC became a trace start candidate."""

    INDIRECT_TARGET = "indirect_target"
    BACKWARD_BRANCH_TARGET = "backward_branch_target"
    FRAGMENT_EXIT = "fragment_exit"


class HotnessProfiler:
    """Counts executions of trace-start candidate instructions."""

    def __init__(self, threshold=50):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._counters = {}
        self._kinds = {}
        #: per-V-PC threshold overrides, doubled on each translation
        #: failure (visit-count backoff — a failing PC must get twice as
        #: hot before the translator is retried)
        self._thresholds = {}
        #: V-PCs whose translation failed too often: interpreted forever.
        self._blacklist = set()

    def note_candidate(self, vpc, kind):
        """Register ``vpc`` as a candidate (idempotent; keeps first kind).

        Blacklisted V-PCs are never re-registered — they stay on the
        interpreted path for the rest of the run.
        """
        if vpc not in self._kinds and vpc not in self._blacklist:
            self._kinds[vpc] = kind
            self._counters[vpc] = 0

    def is_candidate(self, vpc):
        return vpc in self._counters

    def candidate_kind(self, vpc):
        return self._kinds.get(vpc)

    def threshold_for(self, vpc):
        """The effective hot threshold for ``vpc`` (backoff-aware)."""
        return self._thresholds.get(vpc, self.threshold)

    def record_execution(self, vpc):
        """Bump the counter for ``vpc``; returns True when it becomes hot."""
        count = self._counters.get(vpc)
        if count is None:
            return False
        count += 1
        self._counters[vpc] = count
        return count == self._thresholds.get(vpc, self.threshold)

    def is_hot(self, vpc):
        """True when the counter has reached the threshold."""
        return self._counters.get(vpc, 0) >= \
            self._thresholds.get(vpc, self.threshold)

    def reset(self, vpc):
        """Reset a counter (used after the candidate has been translated)."""
        self._counters[vpc] = 0

    def backoff(self, vpc):
        """Visit-count backoff after a failed translation of ``vpc``.

        Resets the counter and doubles the effective threshold, so each
        retry requires twice the interpreted visits before the
        translator is consulted again.  Returns the new threshold.
        """
        doubled = self._thresholds.get(vpc, self.threshold) * 2
        self._thresholds[vpc] = doubled
        self._counters[vpc] = 0
        return doubled

    def blacklist(self, vpc):
        """Permanently bar ``vpc`` from translation (interpret forever)."""
        self._blacklist.add(vpc)
        self._counters.pop(vpc, None)
        self._kinds.pop(vpc, None)
        self._thresholds.pop(vpc, None)

    def is_blacklisted(self, vpc):
        """Whether ``vpc`` has been barred from translation."""
        return vpc in self._blacklist

    def blacklisted_count(self):
        """How many V-PCs have been blacklisted this run."""
        return len(self._blacklist)

    def candidate_count(self):
        """Number of candidate counters in use (paper §4.1 discusses this)."""
        return len(self._counters)
