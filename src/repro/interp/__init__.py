"""V-ISA interpretation: architected state, the Alpha interpreter and the
MRET (Most Recently Executed Tail) hot-path profiler."""

from repro.interp.state import ArchState
from repro.interp.interpreter import Interpreter, ExecEvent, Halted
from repro.interp.profiler import HotnessProfiler, CandidateKind

__all__ = [
    "ArchState",
    "Interpreter",
    "ExecEvent",
    "Halted",
    "HotnessProfiler",
    "CandidateKind",
]
