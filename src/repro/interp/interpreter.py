"""The Alpha V-ISA interpreter.

The interpreter is the VM's fallback execution engine and the reference
implementation for co-simulation: the translated I-ISA code must produce
exactly the architected state transitions this interpreter produces.

``step()`` executes one instruction and returns an :class:`ExecEvent`
describing what happened, which the VM uses for profiling, superblock
capture and trace generation.

Two engines execute steps (selected per interpreter, default
``"specialized"``):

* **specialized** — each decoded instruction carries a pre-bound step
  closure (see :mod:`repro.interp.specialize`) built once at decode time:
  no per-step ``Kind`` dispatch, no table lookups, no dict construction.
* **naive** — the readable reference dispatch below, kept for
  differential testing and as the semantics of record.
"""

from repro.interp.specialize import STORE_SIZES, build_step
from repro.isa.encoding import decode
from repro.interp.pal import PalContext
from repro.isa.opcodes import Kind, PAL_FUNCTIONS, PAL_SYSCALLS
from repro.isa.registers import SP_REG
from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_CONDITIONS,
    CMOV_CONDITIONS,
    Trap,
    TrapKind,
)
from repro.utils.bitops import MASK64, sext

_PAL_HALT = PAL_FUNCTIONS["halt"]
_PAL_PUTC = PAL_FUNCTIONS["putc"]
_PAL_GENTRAP = PAL_FUNCTIONS["gentrap"]

#: Conditional-move predicate lookup, hoisted out of the step loop.
_CMOV_GET = CMOV_CONDITIONS.get

#: Decoded instructions keyed by the 32-bit instruction *word*, shared by
#: every interpreter in the process.  Each entry is an
#: ``(instruction, step_closure)`` pair: ``decode()`` and the closure
#: specialization are pure functions of the word, so keying by content
#: (rather than by PC) lets interpreters re-running the same program —
#: cached or parallel harness workers, the co-simulation reference runs —
#: reuse each other's decode *and* specialization work, and makes it
#: impossible for a stale entry to survive a code rewrite: a changed word
#: is simply a different key.
DECODE_CACHE = {}


def _decode_entry(word):
    """Decode ``word`` and specialize its step closure; cache both."""
    instr = decode(word)
    entry = (instr, build_step(instr))
    DECODE_CACHE[word] = entry
    return entry


class Halted(Exception):
    """The program executed ``call_pal halt``."""


class ExecEvent:
    """What one interpreted instruction did."""

    __slots__ = ("pc", "instr", "next_pc", "taken", "mem_addr")

    def __init__(self, pc, instr, next_pc, taken=False, mem_addr=None):
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken
        self.mem_addr = mem_addr

    def __repr__(self):
        return (f"ExecEvent(pc={self.pc:#x}, {self.instr.mnemonic}, "
                f"next={self.next_pc:#x}, taken={self.taken})")


class Interpreter:
    """Executes a loaded V-ISA program instruction by instruction."""

    def __init__(self, program, console=None, exec_engine="specialized"):
        if exec_engine not in ("jit", "specialized", "naive"):
            raise ValueError(f"unknown exec engine {exec_engine!r}")
        self.program = program
        self.memory = program.memory
        self.state = _initial_state(program)
        self.console = console if console is not None else []
        #: syscall state (scripted input, heap break) — shared with the
        #: VM's fragment executor so translated SYSCALL ops and
        #: interpreted CALL_PALs see one cursor and one break
        self.pal = PalContext(program)
        self.instruction_count = 0
        self.exec_engine = exec_engine
        self._decode_cache = DECODE_CACHE
        #: process-local telemetry: words decoded because they were absent
        #: from the (process-global) :data:`DECODE_CACHE`.  Nondeterministic
        #: across processes — a warm cache makes every fetch a hit — so the
        #: harness reports it in the host (non-reproducible) block only.
        self.decode_misses = 0
        #: the engine is chosen once; ``step`` is re-bound per instance so
        #: the hot loop pays no per-step engine check.  The jit engine
        #: only tiers *fragments* — single-step interpretation has no hot
        #: bodies to compile, so it shares the specialized step path.
        self.step = self._step_naive if exec_engine == "naive" \
            else self._step_specialized

    def fetch(self, pc):
        """Decode (with caching) the instruction at ``pc``.

        The word is always re-read from memory, so self-modifying code is
        decoded correctly; only the word -> (instruction, closure) mapping
        is cached.  The read is the exec-checked fetch path: a page
        without ``PROT_EXEC`` raises a precise PROTECTION_VIOLATION.
        """
        word = self.memory.fetch(pc, vpc=pc)
        entry = self._decode_cache.get(word)
        if entry is None:
            self.decode_misses += 1
            entry = _decode_entry(word)
        return entry[0]

    # -- specialized engine ---------------------------------------------------

    def _step_specialized(self):
        """Execute one instruction via its pre-bound step closure."""
        state = self.state
        pc = state.pc
        word = self.memory.fetch(pc, vpc=pc)
        entry = self._decode_cache.get(word)
        if entry is None:
            self.decode_misses += 1
            entry = _decode_entry(word)
        event = entry[1](self, state, state.regs, pc)
        self.instruction_count += 1
        return event

    # -- naive engine (the reference semantics) -------------------------------

    def _step_naive(self):
        """Execute one instruction; raises :class:`Halted` or :class:`Trap`."""
        state = self.state
        pc = state.pc
        instr = self.fetch(pc)
        regs = state.regs
        next_pc = pc + 4
        taken = False
        mem_addr = None
        kind = instr.kind
        mnemonic = instr.mnemonic

        if kind is Kind.ALU:
            cond = _CMOV_GET(mnemonic)
            b_value = instr.imm if instr.islit else regs[instr.rb]
            if cond is not None:
                if cond(regs[instr.ra]):
                    state.write(instr.rc, b_value)
            else:
                state.write(instr.rc,
                            ALU_OPS[mnemonic](regs[instr.ra], b_value))
        elif kind is Kind.LDA:
            displacement = instr.imm * 65536 if mnemonic == "ldah" else \
                instr.imm
            state.write(instr.ra, (regs[instr.rb] + displacement) & MASK64)
        elif kind is Kind.LOAD:
            mem_addr = (regs[instr.rb] + instr.imm) & MASK64
            value = self._load_value(mnemonic, mem_addr, pc)
            state.write(instr.ra, value)
        elif kind is Kind.STORE:
            mem_addr = (regs[instr.rb] + instr.imm) & MASK64
            size = STORE_SIZES[mnemonic]
            self.memory.store(mem_addr, regs[instr.ra], size, vpc=pc)
        elif kind is Kind.COND_BRANCH:
            if BRANCH_CONDITIONS[mnemonic](regs[instr.ra]):
                next_pc = pc + 4 + 4 * instr.imm
                taken = True
        elif kind is Kind.UNCOND_BRANCH:
            state.write(instr.ra, pc + 4)
            next_pc = pc + 4 + 4 * instr.imm
            taken = True
        elif kind is Kind.JUMP:
            target = regs[instr.rb] & ~3 & MASK64
            state.write(instr.ra, pc + 4)
            next_pc = target
            taken = True
        elif kind is Kind.PAL:
            self._do_pal(instr, pc)
        else:  # pragma: no cover - all kinds are handled above
            raise Trap(TrapKind.ILLEGAL, vpc=pc)

        state.pc = next_pc
        self.instruction_count += 1
        return ExecEvent(pc, instr, next_pc, taken, mem_addr)

    def run(self, max_instructions=10_000_000):
        """Run until halt or trap; returns the executed instruction count."""
        executed = 0
        step = self.step
        try:
            while executed < max_instructions:
                step()
                executed += 1
        except Halted:
            pass
        return executed

    def _load_value(self, mnemonic, address, pc):
        if mnemonic == "ldq":
            return self.memory.load(address, 8, vpc=pc)
        if mnemonic == "ldl":
            return sext(self.memory.load(address, 4, vpc=pc), 32)
        if mnemonic == "ldwu":
            return self.memory.load(address, 2, vpc=pc)
        if mnemonic == "ldbu":
            return self.memory.load(address, 1, vpc=pc)
        raise KeyError(mnemonic)

    def _do_pal(self, instr, pc):
        function = instr.imm
        if function == _PAL_HALT:
            raise Halted()
        if function == _PAL_PUTC:
            self.console.append(self.state.regs[16] & 0xFF)
        elif function == _PAL_GENTRAP:
            raise Trap(TrapKind.GENTRAP, vpc=pc)
        elif function in PAL_SYSCALLS:
            self.pal.call(self.state.regs, function, pc)
        # unknown PAL functions are architectural no-ops in this machine

    def console_text(self):
        """The console output decoded as latin-1 text."""
        return bytes(self.console).decode("latin-1")


def _initial_state(program):
    from repro.interp.state import ArchState

    state = ArchState(program.entry)
    stack_top = program.symbols.get("__stack_top")
    if stack_top is not None:
        state.write(SP_REG, stack_top - 64)
    return state
