"""The PAL syscall layer shared by the interpreter and the VM engines.

``CALL_PAL`` grew beyond halt/putc/gentrap into a small syscall dispatch
(:data:`repro.isa.opcodes.PAL_SYSCALLS`), implemented once here so the
pure interpreter, the naive executor, the specialized closures and the
tier-2 jit are observationally identical by construction:

``getc``
    read the next byte of the program's scripted input into R0
    (:data:`EOF_VALUE` once the script is exhausted);
``brk``
    grow the guest heap through the MMU: R16 carries the requested break
    (0 queries), pages are mapped lazily in whole-page segments, and R0
    returns the resulting break (unchanged on failure — an out-of-range
    request or a collision with a program segment degrades, never traps);
``protect``
    apply R18's R/W/X bits to ``[R16, R16 + R17)`` via
    :meth:`repro.memory.image.Memory.protect`; R0 is 0 on success and
    :data:`EOF_VALUE` when the range is unmapped or the bits invalid.
    When the VM wires ``on_protect``, dropping exec permission also
    invalidates the fragments translated from those pages, and — from
    inside translated code — raises the internal ``RETRANSLATE`` trap so
    the VM deopts to the interpreter after the call;
``yield``
    architecturally a no-op; the call still ends its superblock, so
    translated execution returns to a fragment boundary (where the VM's
    fuel budget is checked) — the nanosleep-shaped cooperative yield.

All register effects are written directly into the shared GPR file;
every syscall ends its superblock (``Kind.PAL`` terminates capture), so
the architected file is complete at the call and no staleness or
accumulator recovery can be pending.
"""

from repro.isa.opcodes import PAL_FUNCTIONS
from repro.isa.semantics import Trap, TrapKind
from repro.memory.image import PAGE_MASK, PAGE_SIZE, PROT_ALL
from repro.utils.bitops import MASK64

#: R0 value for getc-on-exhausted-input and failed protect calls.
EOF_VALUE = MASK64

#: Guest heap placement: far above the fuzz generator's text/data bases,
#: below nothing the workloads map.  ``brk`` never grows past the limit.
HEAP_BASE = 0x40_0000
HEAP_LIMIT = 0x10_0000

_GETC = PAL_FUNCTIONS["getc"]
_BRK = PAL_FUNCTIONS["brk"]
_PROTECT = PAL_FUNCTIONS["protect"]
_YIELD = PAL_FUNCTIONS["yield"]


class PalContext:
    """Per-run syscall state: input cursor, heap break, call counters."""

    def __init__(self, program):
        self.memory = program.memory
        self.input_script = program.input_script
        self._cursor = 0
        #: architectural break and the page-aligned end of mapped heap
        self.heap_break = HEAP_BASE
        self._heap_mapped = HEAP_BASE
        self._heap_segments = 0
        #: function name -> call count (telemetry / corpus classification)
        self.calls = {"getc": 0, "brk": 0, "protect": 0, "yield": 0}
        #: VM-wired hook: ``on_protect(base, size, prot, vpc)`` returns
        #: the number of fragments the protection change invalidated
        #: (None outside a co-designed VM — a bare interpreter has no
        #: translations to invalidate).
        self.on_protect = None

    def call(self, regs, function, vpc, translated=False):
        """Dispatch one syscall against the shared GPR file.

        ``translated`` marks calls issued from translated code: a protect
        that invalidates fragments must then abandon the translated stint
        via the internal ``RETRANSLATE`` trap (the interpreter path just
        continues — it re-fetches every instruction).
        """
        if function == _GETC:
            self.calls["getc"] += 1
            if self._cursor < len(self.input_script):
                regs[0] = self.input_script[self._cursor]
                self._cursor += 1
            else:
                regs[0] = EOF_VALUE
        elif function == _BRK:
            self.calls["brk"] += 1
            regs[0] = self._brk(regs[16])
        elif function == _PROTECT:
            self.calls["protect"] += 1
            invalidated = self._protect(regs, vpc)
            if invalidated and translated:
                raise Trap(TrapKind.RETRANSLATE, vpc=vpc, access="pal")
        elif function == _YIELD:
            self.calls["yield"] += 1
        # anything else stays an architectural no-op

    # -- brk ---------------------------------------------------------------

    def _brk(self, request):
        if request == 0 or request == self.heap_break:
            return self.heap_break
        if request < HEAP_BASE or request > HEAP_BASE + HEAP_LIMIT:
            return self.heap_break          # out of range: refuse
        if request <= self.heap_break:
            self.heap_break = request       # shrink: move the break only
            return self.heap_break
        needed_end = (request + PAGE_MASK) & ~PAGE_MASK
        if needed_end > self._heap_mapped:
            try:
                self.memory.map_segment(
                    f"heap{self._heap_segments}", self._heap_mapped,
                    needed_end - self._heap_mapped, prot=PROT_ALL)
            except ValueError:
                return self.heap_break      # collision: refuse, keep break
            self._heap_segments += 1
            self._heap_mapped = needed_end
        self.heap_break = request
        return self.heap_break

    # -- protect -----------------------------------------------------------

    def _protect(self, regs, vpc):
        base = regs[16]
        size = regs[17]
        prot = regs[18] & PROT_ALL
        try:
            self.memory.protect(base, size, prot)
        except ValueError:
            regs[0] = EOF_VALUE
            return 0
        regs[0] = 0
        if self.on_protect is None:
            return 0
        return self.on_protect(base, size, prot, vpc)


def heap_pages(context):
    """Mapped heap pages of a context (diagnostics)."""
    return (context._heap_mapped - HEAP_BASE) // PAGE_SIZE
