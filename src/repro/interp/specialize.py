"""Decode-time specialization of V-ISA instructions into step closures.

The paper's thesis is "translate once, execute many"; this module applies
the same idea to the interpreter itself.  :func:`build_step` lowers one
decoded instruction into a pre-bound Python closure: the operand registers,
ALU function, conditional-move/branch predicate, load size and sign, store
size and branch displacement are all resolved once, when the instruction
word is first decoded, instead of being re-derived from tables on every
execution.  The closures live in the shared
:data:`~repro.interp.interpreter.DECODE_CACHE` next to the instruction
they specialize, so every interpreter in the process reuses them.

Every closure has the signature ``step(interp, state, regs, pc)`` and must
be observationally identical to the naive ``Interpreter.step`` dispatch:
same architected updates in the same order, same :class:`ExecEvent`
fields, same exceptions (:class:`Halted`, :class:`Trap`) raised before the
PC advances.  The differential tests hold the two engines to that
contract.
"""

from repro.isa.opcodes import Kind, PAL_FUNCTIONS, PAL_SYSCALLS
from repro.isa.registers import ZERO_REG
from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_CONDITIONS,
    CMOV_CONDITIONS,
    Trap,
    TrapKind,
)
from repro.utils.bitops import MASK64, sext

_PAL_HALT = PAL_FUNCTIONS["halt"]
_PAL_PUTC = PAL_FUNCTIONS["putc"]
_PAL_GENTRAP = PAL_FUNCTIONS["gentrap"]

#: store mnemonic -> access size in bytes (shared with the naive engine).
STORE_SIZES = {"stb": 1, "stw": 2, "stl": 4, "stq": 8}

#: load mnemonic -> (access size in bytes, sign-extend flag).
LOAD_SIZES = {"ldq": (8, False), "ldl": (4, True), "ldwu": (2, False),
              "ldbu": (1, False)}


def _build_alu(instr):
    from repro.interp.interpreter import ExecEvent

    ra, rb, rc = instr.ra, instr.rb, instr.rc
    imm = instr.imm
    cond = CMOV_CONDITIONS.get(instr.mnemonic)

    if cond is not None:
        if instr.islit:
            def step(interp, state, regs, pc):
                if cond(regs[ra]) and rc != ZERO_REG:
                    regs[rc] = imm
                state.pc = next_pc = pc + 4
                return ExecEvent(pc, instr, next_pc)
        else:
            def step(interp, state, regs, pc):
                if cond(regs[ra]) and rc != ZERO_REG:
                    regs[rc] = regs[rb]
                state.pc = next_pc = pc + 4
                return ExecEvent(pc, instr, next_pc)
        return step

    op = ALU_OPS[instr.mnemonic]
    if rc == ZERO_REG:
        # result discarded: an architectural NOP that still executes
        def step(interp, state, regs, pc):
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    elif instr.islit:
        def step(interp, state, regs, pc):
            regs[rc] = op(regs[ra], imm)
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    else:
        def step(interp, state, regs, pc):
            regs[rc] = op(regs[ra], regs[rb])
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    return step


def _build_lda(instr):
    from repro.interp.interpreter import ExecEvent

    ra, rb = instr.ra, instr.rb
    displacement = instr.imm * 65536 if instr.mnemonic == "ldah" else \
        instr.imm

    if ra == ZERO_REG:
        def step(interp, state, regs, pc):
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    else:
        def step(interp, state, regs, pc):
            regs[ra] = (regs[rb] + displacement) & MASK64
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    return step


def _build_load(instr):
    from repro.interp.interpreter import ExecEvent

    ra, rb, imm = instr.ra, instr.rb, instr.imm
    size, signed = LOAD_SIZES[instr.mnemonic]
    bits = 8 * size
    write = ra != ZERO_REG

    if signed:
        def step(interp, state, regs, pc):
            mem_addr = (regs[rb] + imm) & MASK64
            value = sext(interp.memory.load(mem_addr, size, vpc=pc), bits)
            if write:
                regs[ra] = value
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc, False, mem_addr)
    else:
        def step(interp, state, regs, pc):
            mem_addr = (regs[rb] + imm) & MASK64
            value = interp.memory.load(mem_addr, size, vpc=pc)
            if write:
                regs[ra] = value
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc, False, mem_addr)
    return step


def _build_store(instr):
    from repro.interp.interpreter import ExecEvent

    ra, rb, imm = instr.ra, instr.rb, instr.imm
    size = STORE_SIZES[instr.mnemonic]

    def step(interp, state, regs, pc):
        mem_addr = (regs[rb] + imm) & MASK64
        interp.memory.store(mem_addr, regs[ra], size, vpc=pc)
        state.pc = next_pc = pc + 4
        return ExecEvent(pc, instr, next_pc, False, mem_addr)
    return step


def _build_cond_branch(instr):
    from repro.interp.interpreter import ExecEvent

    ra = instr.ra
    cond = BRANCH_CONDITIONS[instr.mnemonic]
    offset = 4 + 4 * instr.imm

    def step(interp, state, regs, pc):
        if cond(regs[ra]):
            state.pc = next_pc = pc + offset
            return ExecEvent(pc, instr, next_pc, True)
        state.pc = next_pc = pc + 4
        return ExecEvent(pc, instr, next_pc)
    return step


def _build_uncond_branch(instr):
    from repro.interp.interpreter import ExecEvent

    ra = instr.ra
    offset = 4 + 4 * instr.imm
    link = ra != ZERO_REG

    def step(interp, state, regs, pc):
        if link:
            regs[ra] = pc + 4
        state.pc = next_pc = pc + offset
        return ExecEvent(pc, instr, next_pc, True)
    return step


def _build_jump(instr):
    from repro.interp.interpreter import ExecEvent

    ra, rb = instr.ra, instr.rb
    link = ra != ZERO_REG

    def step(interp, state, regs, pc):
        # the target is read before the link write, as JMP R, (R) demands
        target = regs[rb] & ~3 & MASK64
        if link:
            regs[ra] = pc + 4
        state.pc = target
        return ExecEvent(pc, instr, target, True)
    return step


def _build_pal(instr):
    from repro.interp.interpreter import ExecEvent, Halted

    function = instr.imm
    if function == _PAL_HALT:
        def step(interp, state, regs, pc):
            raise Halted()
    elif function == _PAL_GENTRAP:
        def step(interp, state, regs, pc):
            raise Trap(TrapKind.GENTRAP, vpc=pc)
    elif function == _PAL_PUTC:
        def step(interp, state, regs, pc):
            interp.console.append(regs[16] & 0xFF)
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    elif function in PAL_SYSCALLS:
        # closures are process-global (keyed by word), so per-run syscall
        # state is reached through the ``interp`` parameter
        def step(interp, state, regs, pc):
            interp.pal.call(regs, function, pc)
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    else:
        # unknown PAL functions are architectural no-ops in this machine
        def step(interp, state, regs, pc):
            state.pc = next_pc = pc + 4
            return ExecEvent(pc, instr, next_pc)
    return step


_BUILDERS = {
    Kind.ALU: _build_alu,
    Kind.LDA: _build_lda,
    Kind.LOAD: _build_load,
    Kind.STORE: _build_store,
    Kind.COND_BRANCH: _build_cond_branch,
    Kind.UNCOND_BRANCH: _build_uncond_branch,
    Kind.JUMP: _build_jump,
    Kind.PAL: _build_pal,
}


def build_step(instr):
    """Specialize one decoded instruction into a pre-bound step closure."""
    return _BUILDERS[instr.kind](instr)
