"""Two's complement bit manipulation helpers for 64-bit architected values.

All architected register values in the simulator are stored as unsigned
Python integers in the range [0, 2**64).  These helpers convert between the
signed and unsigned views and perform the sign extensions the Alpha ISA
defines (byte, word, longword sub-widths).
"""

MASK8 = (1 << 8) - 1
MASK16 = (1 << 16) - 1
MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1


def to_unsigned(value, bits=64):
    """Return ``value`` reduced to an unsigned ``bits``-wide integer."""
    return value & ((1 << bits) - 1)


def to_signed(value, bits=64):
    """Interpret the low ``bits`` of ``value`` as a two's complement number."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def sext(value, from_bits, to_bits=64):
    """Sign-extend the low ``from_bits`` of ``value`` to ``to_bits`` wide."""
    return to_unsigned(to_signed(value, from_bits), to_bits)


def sext8(value):
    """Sign-extend a byte to 64 bits (Alpha SEXTB semantics)."""
    return sext(value, 8)


def sext16(value):
    """Sign-extend a word to 64 bits (Alpha SEXTW semantics)."""
    return sext(value, 16)


def sext32(value):
    """Sign-extend a longword to 64 bits (Alpha *L operate semantics)."""
    return sext(value, 32)


def fits_signed(value, bits):
    """True if ``value`` (a Python int) fits in a signed ``bits``-wide field."""
    limit = 1 << (bits - 1)
    return -limit <= value < limit


def fits_unsigned(value, bits):
    """True if ``value`` (a Python int) fits in an unsigned ``bits``-wide field."""
    return 0 <= value < (1 << bits)
