"""Deterministic xorshift RNG used by workload generators.

The simulator must be bit-for-bit reproducible across runs and platforms, so
workload data generation never touches ``random`` or NumPy's global state.
"""

from repro.utils.bitops import MASK64


class Xorshift64:
    """64-bit xorshift* generator with a tiny, explicit state."""

    def __init__(self, seed=0x9E3779B97F4A7C15):
        if seed == 0:
            raise ValueError("Xorshift64 seed must be non-zero")
        self._state = seed & MASK64

    def next_u64(self):
        """Return the next 64-bit unsigned value."""
        x = self._state
        x ^= (x << 13) & MASK64
        x ^= x >> 7
        x ^= (x << 17) & MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & MASK64

    def next_range(self, bound):
        """Return a value uniform-ish in ``[0, bound)``; bound must be positive."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_bytes(self, count):
        """Return ``count`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < count:
            out += self.next_u64().to_bytes(8, "little")
        return bytes(out[:count])
