"""Small shared utilities: 64-bit two's complement helpers and a seeded RNG."""

from repro.utils.bitops import (
    MASK64,
    sext,
    sext8,
    sext16,
    sext32,
    to_signed,
    to_unsigned,
    fits_signed,
    fits_unsigned,
)
from repro.utils.rng import Xorshift64

__all__ = [
    "MASK64",
    "sext",
    "sext8",
    "sext16",
    "sext32",
    "to_signed",
    "to_unsigned",
    "fits_signed",
    "fits_unsigned",
    "Xorshift64",
]
