"""The fault injector the stack consults at its named sites.

Each site calls :meth:`FaultInjector.fire` once per occurrence; the
injector walks the plan's specs for that site, applies the selectors, and
answers whether a fault strikes *this* occurrence.  All decisions are
deterministic: occurrence counters are plain per-site counts and
probabilistic specs draw from a :class:`~repro.utils.rng.Xorshift64`
seeded from the plan, so the same plan + seed produces the same fault
schedule on every run — the property the differential chaos suite and
the result-cache exclusion both rely on.

With ``VMConfig.faults`` unset the stack holds the shared
:data:`NULL_INJECTOR`, whose ``fire`` is a constant ``False``: the
fault-free hot paths pay one attribute load and (at most) one branch per
*site occurrence* — translation, cache installation and worker dispatch,
never per instruction.
"""

from collections import Counter

from repro.faults.plan import FaultPlan
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.trace import NULL_TRACER
from repro.utils.bitops import MASK64
from repro.utils.rng import Xorshift64


class FaultInjector:
    """Fires a :class:`~repro.faults.plan.FaultPlan`'s faults on demand."""

    enabled = True

    def __init__(self, plan, telemetry=None, tracer=None):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.plan = plan
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: site -> how many times the site was consulted
        self.occurrences = Counter()
        #: site -> how many consultations faulted
        self.injected = Counter()
        self._spec_hits = [0] * len(plan.specs)
        # (seed << 1) | 1 is injective over the seed range and never
        # zero, which Xorshift64 rejects
        self._rng = Xorshift64(((plan.seed << 1) | 1) & MASK64)

    def _draw(self):
        """One deterministic float in [0, 1) for probabilistic specs."""
        return self._rng.next_u64() / 2**64

    def fire(self, site, **attrs):
        """Consult the plan at ``site``; True when a fault strikes now.

        ``attrs`` are the site's details (``vpc``, ``fid``, ``worker``)
        matched against spec selectors and recorded on the telemetry
        event when a fault fires.
        """
        occurrence = self.occurrences[site] + 1
        self.occurrences[site] = occurrence
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.times is not None and \
                    self._spec_hits[index] >= spec.times:
                continue
            if not spec.matches(occurrence, attrs, self._draw):
                continue
            self._spec_hits[index] += 1
            self.injected[site] += 1
            self.telemetry.registry.counter(f"faults.injected.{site}").inc()
            self.telemetry.events.emit(
                EventKind.FAULT_INJECTED, site=site, occurrence=occurrence,
                spec=spec.text, **attrs)
            self.tracer.instant(f"fault.{site}", cat="faults",
                                occurrence=occurrence, **attrs)
            return True
        return False

    def total_injected(self):
        """Faults injected across all sites."""
        return sum(self.injected.values())

    def summary(self):
        """Per-site occurrence/injection totals as a JSON-able dict."""
        return {
            "plan": self.plan.spec_text(),
            "seed": self.plan.seed,
            "occurrences": dict(sorted(self.occurrences.items())),
            "injected": dict(sorted(self.injected.items())),
        }

    def __repr__(self):
        return (f"FaultInjector({self.plan.spec_text()!r}, "
                f"{self.total_injected()} injected)")


class NullFaultInjector:
    """Fault injection disabled: the same surface, ``fire`` always False."""

    enabled = False
    occurrences = {}
    injected = {}

    def fire(self, site, **attrs):
        """Never faults."""
        return False

    def total_injected(self):
        """Always zero."""
        return 0

    def summary(self):
        """An empty summary."""
        return {"plan": None, "seed": 0, "occurrences": {}, "injected": {}}

    def __repr__(self):
        return "NullFaultInjector()"


NULL_INJECTOR = NullFaultInjector()


def make_injector(config, telemetry=None, tracer=None):
    """The injector ``config`` asks for.

    ``VMConfig.faults`` truthy (a spec string) builds a fresh
    :class:`FaultInjector` seeded with ``config.fault_seed``; anything
    else returns the shared :data:`NULL_INJECTOR`.
    """
    spec = getattr(config, "faults", None)
    if spec:
        plan = FaultPlan.parse(spec, seed=getattr(config, "fault_seed", 0))
        return FaultInjector(plan, telemetry=telemetry, tracer=tracer)
    return NULL_INJECTOR
