"""Fault plans: which faults strike where, parsed from a tiny grammar.

A plan is a seed plus a list of specs.  Each spec names an injection
*site* and an optional set of selectors restricting which occurrences of
that site actually fault::

    spec   := site [ "@" match { "," match } ]
    plan   := spec { ";" spec }
    match  := key "=" value

Sites (see ``docs/robustness.md`` for the degradation path each drives):

``translate``
    the translator aborts with a ``TranslationError`` before producing a
    fragment;
``tcache_full``
    ``TranslationCache.add`` raises ``TCacheFull`` as if the capacity
    bound were hit;
``corrupt``
    a freshly installed fragment's body is silently corrupted (detected
    by the entry checksum when verification is on);
``worker_crash`` / ``worker_timeout``
    a harness pool worker dies / stalls before returning its chunk;
``persist_load``
    a fragment-store load fails wholesale (the VM starts cold);
``persist_corrupt``
    individual fragment-store records are dropped at load time as if
    their CRCs had failed;
``smc``
    a guest store that hit translated code invalidates *every* fragment
    on the written page instead of just the overlapping ones (spurious
    widening — behaviour-neutral, the victims retranslate);
``protect``
    a guest ``protect`` PAL call spuriously invalidates every fragment
    in the affected range even when execute permission survives.

Selector keys (all optional; a bare site faults on every occurrence):

``vpc=0x1200``   only when the site reports this V-PC;
``count=3``      only the 3rd occurrence of the site;
``every=4``      every 4th occurrence;
``after=10``     skip the first 10 occurrences;
``p=0.25``       fault with probability 0.25, drawn from the plan's
                 seeded generator (deterministic per seed);
``times=2``      stop after this spec has injected twice;
``worker=0``     only pool worker 0 (harness sites).

Examples: ``translate@vpc=0x2000``, ``translate@every=2,times=4``,
``corrupt@count=3``, ``worker_crash@worker=0,times=1``.
"""


class FaultSite:
    """Names of the injection sites the stack consults (plain strings)."""

    TRANSLATE = "translate"
    TCACHE_FULL = "tcache_full"
    CORRUPT = "corrupt"
    WORKER_CRASH = "worker_crash"
    WORKER_TIMEOUT = "worker_timeout"
    PERSIST_LOAD = "persist_load"
    PERSIST_CORRUPT = "persist_corrupt"
    SMC = "smc"
    PROTECT = "protect"


#: Every site a spec may name — parsing rejects anything else.
KNOWN_SITES = frozenset(
    value for name, value in vars(FaultSite).items()
    if not name.startswith("_"))

#: Default chaos schedule (``repro chaos`` and the fuzz oracle's chaos
#: stage): every degradation path fires at least once on any workload
#: hot enough to translate a handful of superblocks.
DEFAULT_CHAOS_SPECS = (
    "translate@every=2,times=4",
    "corrupt@every=3,times=3",
    "tcache_full@count=5,times=1",
)

#: Extra specs for hostile-guest chaos (``repro chaos --hostile`` and the
#: hostile fuzz oracle): spurious SMC widening and protect invalidation.
#: Both are behaviour-neutral degradations — architected results must
#: still converge to the fault-free interpreter reference.
HOSTILE_CHAOS_SPECS = (
    "smc@every=2",
    "protect@every=2",
)

_INT_KEYS = ("vpc", "count", "every", "after", "times", "worker")


class FaultSpec:
    """One parsed spec: a site plus the selectors restricting it."""

    __slots__ = ("site", "vpc", "count", "every", "after", "p", "times",
                 "worker", "text")

    def __init__(self, site, vpc=None, count=None, every=None, after=0,
                 p=None, times=None, worker=None, text=None):
        if site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {site!r} "
                f"(expected one of {', '.join(sorted(KNOWN_SITES))})")
        if p is not None and not 0.0 <= p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], "
                             f"got {p}")
        for name, value in (("count", count), ("every", every),
                            ("times", times)):
            if value is not None and value < 1:
                raise ValueError(f"fault selector {name}= must be >= 1, "
                                 f"got {value}")
        if after < 0:
            raise ValueError(f"fault selector after= must be >= 0, "
                             f"got {after}")
        self.site = site
        self.vpc = vpc
        self.count = count
        self.every = every
        self.after = after
        self.p = p
        self.times = times
        self.worker = worker
        self.text = text if text is not None else self._render()

    def _render(self):
        matches = []
        for key in ("vpc", "count", "every", "after", "p", "times",
                    "worker"):
            value = getattr(self, key)
            if value is None or (key == "after" and value == 0):
                continue
            matches.append(f"{key}={value:#x}" if key == "vpc"
                           else f"{key}={value}")
        return self.site + ("@" + ",".join(matches) if matches else "")

    def matches(self, occurrence, attrs, draw):
        """Whether this spec fires on the given site occurrence.

        ``occurrence`` is 1-based per site; ``attrs`` are the site's
        keyword details (``vpc``, ``worker``...); ``draw`` supplies a
        deterministic float in ``[0, 1)`` for probabilistic specs and is
        only consulted when ``p=`` is set.
        """
        if occurrence <= self.after:
            return False
        if self.count is not None and occurrence != self.count:
            return False
        if self.every is not None and \
                (occurrence - self.after) % self.every != 0:
            return False
        if self.vpc is not None and attrs.get("vpc") != self.vpc:
            return False
        if self.worker is not None and attrs.get("worker") != self.worker:
            return False
        if self.p is not None and draw() >= self.p:
            return False
        return True

    def __eq__(self, other):
        return isinstance(other, FaultSpec) and self.text == other.text

    def __repr__(self):
        return f"FaultSpec({self.text!r})"


def parse_fault_spec(text):
    """Parse one ``site@key=value,...`` spec into a :class:`FaultSpec`."""
    text = text.strip()
    if not text:
        raise ValueError("empty fault spec")
    site, _sep, tail = text.partition("@")
    kwargs = {}
    if tail:
        for match in tail.split(","):
            key, sep, value = match.partition("=")
            key = key.strip()
            if not sep or not value.strip():
                raise ValueError(
                    f"malformed fault selector {match!r} in {text!r} "
                    "(expected key=value)")
            if key == "p":
                kwargs["p"] = float(value)
            elif key in _INT_KEYS:
                # int(value, 0) accepts 0x-prefixed V-PCs
                kwargs[key] = int(value.strip(), 0)
            else:
                raise ValueError(
                    f"unknown fault selector {key!r} in {text!r} "
                    f"(expected one of p, {', '.join(_INT_KEYS)})")
    return FaultSpec(site.strip(), text=text, **kwargs)


class FaultPlan:
    """A seed plus the parsed specs — plain, picklable schedule data."""

    __slots__ = ("specs", "seed")

    def __init__(self, specs, seed=0):
        self.specs = tuple(specs)
        self.seed = seed

    @classmethod
    def parse(cls, text, seed=0):
        """Parse a ``;``-separated plan string (or an iterable of spec
        strings) into a :class:`FaultPlan`."""
        if isinstance(text, str):
            parts = text.split(";")
        else:
            parts = list(text)
        specs = [parse_fault_spec(part) for part in parts if part.strip()]
        if not specs:
            raise ValueError("fault plan contains no specs")
        return cls(specs, seed=seed)

    def spec_text(self):
        """The canonical ``;``-joined plan string (``VMConfig.faults``)."""
        return ";".join(spec.text for spec in self.specs)

    def sites(self):
        """The set of sites this plan can strike."""
        return {spec.site for spec in self.specs}

    def __eq__(self, other):
        return isinstance(other, FaultPlan) and \
            (self.specs, self.seed) == (other.specs, other.seed)

    def __repr__(self):
        return f"FaultPlan({self.spec_text()!r}, seed={self.seed})"
