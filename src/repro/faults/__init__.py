"""Deterministic fault injection for chaos-testing the DBT stack.

The co-designed VM's resilience story (precise traps, flushable
translation cache, interpretation as the always-correct fallback) is only
trustworthy if it is exercised.  This package provides the machinery to
exercise it *deterministically*: a :class:`FaultPlan` parsed from a small
spec grammar names the sites where faults should strike (translation
failure, translation-cache exhaustion, fragment corruption, harness
worker crash/timeout) and a seeded :class:`FaultInjector` fires them at
exactly the same occurrences on every run.

``VMConfig.faults`` selects between a live injector and the shared
:data:`NULL_INJECTOR` no-op twin — the same pattern as
``repro.obs.telemetry``/``trace`` — so the fault-free paths stay
bit-identical to a build without this package.  See
``docs/robustness.md`` for the spec grammar and the degradation paths
each site drives.
"""

from repro.faults.plan import FaultPlan, FaultSite, FaultSpec, parse_fault_spec
from repro.faults.inject import (
    FaultInjector,
    NULL_INJECTOR,
    NullFaultInjector,
    make_injector,
)

__all__ = [
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "parse_fault_spec",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_INJECTOR",
    "make_injector",
]
