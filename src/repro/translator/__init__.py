"""The dynamic binary translator (paper Section 3).

Pipeline stages, each its own module:

1. :mod:`~repro.translator.superblock` — the captured hot path (MRET tail).
2. :mod:`~repro.translator.decompose` — Alpha instructions to RTL nodes
   (memory address calculation and conditional moves are split in two).
3. :mod:`~repro.translator.usage` — dependence/usage identification: the
   no-user / local / temp / live-in / live-out / communication "globalness"
   classes of Section 3.3.
4. :mod:`~repro.translator.strand` — strand formation: chains of dependent
   instructions linked through accumulators.
5. :mod:`~repro.translator.allocate` — linear-scan assignment of unlimited
   strand numbers onto the finite accumulators, with strand termination
   (spill) when accumulators run out.
6. :mod:`~repro.translator.copyrules` — where copy-to-GPR / copy-from-GPR
   instructions are required (precise-trap state rules of Section 2.2), and
   per-PEI recovery maps.
7. :mod:`~repro.translator.codegen` — I-ISA emission for the basic,
   modified and straightened-Alpha targets.
8. :mod:`~repro.translator.chaining` — fragment chaining policies
   (Section 3.2) and patch records.
9. :mod:`~repro.translator.cost` — the translation-overhead cost model
   (Section 4.2).
10. :mod:`~repro.translator.pipeline` — the driver tying it all together.
"""

from repro.translator.superblock import Superblock, SuperblockEntry, EndReason
from repro.translator.usage import ValueClass
from repro.translator.chaining import ChainingPolicy
from repro.translator.pipeline import Translator, TranslationResult

__all__ = [
    "Superblock",
    "SuperblockEntry",
    "EndReason",
    "ValueClass",
    "ChainingPolicy",
    "Translator",
    "TranslationResult",
]
