"""Decomposition of superblock Alpha instructions into RTL nodes.

This is the translator's mid-level IR.  Per the paper:

* memory instructions with effective-address calculation are decomposed into
  two nodes — an address-calculation ALU node producing a *temp* and the
  access proper (Section 4.4, Fig. 7 caption);
* conditional moves are decomposed into two nodes passing a *temp* between
  them (the "Temp" usage category of Section 3.3);
* NOPs are removed;
* unconditional direct branches that do not save a return address are
  removed entirely (code straightening, Section 3.2).

Operands — including destinations — are ``("reg", index)``,
``("temp", id)`` or ``("imm", value)`` tuples; temps get negative ids so the
def-use bookkeeping treats them exactly like registers.
"""

import enum

from repro.isa.opcodes import Kind, RB_ONLY_OPS, CMOV_OPS, PAL_FUNCTIONS
from repro.translator.superblock import _is_nop


class NodeKind(enum.Enum):
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional direct branch (side exit)
    BSR = "bsr"            # direct branch saving a return address (inlined)
    JUMP = "jump"          # jmp / jsr / ret — always ends the block
    PAL = "pal"


_MEM_SIZES = {
    "ldbu": (1, False), "ldwu": (2, False), "ldl": (4, True),
    "ldq": (8, False),
    "stb": (1, False), "stw": (2, False), "stl": (4, False),
    "stq": (8, False),
}


class Node:
    """One RTL node; fields are meaningful per :class:`NodeKind`."""

    __slots__ = (
        "index", "vpc", "kind", "op", "dest", "src_a", "src_b",
        "addr", "data", "disp", "mem_size", "mem_signed",
        "cond_src", "taken", "taken_target", "fallthrough",
        "jump_kind", "link", "observed_target", "pal_function",
    )

    def __init__(self, kind, vpc, op=None, dest=None, src_a=None, src_b=None,
                 addr=None, data=None, disp=0, mem_size=8, mem_signed=False,
                 cond_src=None, taken=False, taken_target=None,
                 fallthrough=None, jump_kind=None, link=None,
                 observed_target=None, pal_function=None):
        self.index = -1  # assigned once the node list is final
        self.kind = kind
        self.vpc = vpc
        self.op = op
        self.dest = dest
        self.src_a = src_a
        self.src_b = src_b
        self.addr = addr
        self.data = data
        self.disp = disp
        self.mem_size = mem_size
        self.mem_signed = mem_signed
        self.cond_src = cond_src
        self.taken = taken
        self.taken_target = taken_target
        self.fallthrough = fallthrough
        self.jump_kind = jump_kind
        self.link = link
        self.observed_target = observed_target
        self.pal_function = pal_function

    def input_operands(self):
        """(slot_name, operand) pairs for every register/temp input."""
        out = []
        if self.kind is NodeKind.ALU:
            out.append(("src_a", self.src_a))
            out.append(("src_b", self.src_b))
        elif self.kind is NodeKind.LOAD:
            out.append(("addr", self.addr))
        elif self.kind is NodeKind.STORE:
            out.append(("addr", self.addr))
            out.append(("data", self.data))
        elif self.kind is NodeKind.BRANCH:
            out.append(("cond_src", self.cond_src))
        elif self.kind is NodeKind.JUMP:
            out.append(("addr", self.addr))
        elif self.kind is NodeKind.PAL:
            out.append(("data", self.data))
        return [(slot, operand) for slot, operand in out
                if operand is not None and operand[0] != "imm"]

    def produces_value(self):
        """True when ``dest`` receives a computed value held in a strand."""
        return self.dest is not None and self.kind in (
            NodeKind.ALU, NodeKind.LOAD)

    def is_pei(self):
        if self.kind in (NodeKind.LOAD, NodeKind.STORE):
            return True
        return (self.kind is NodeKind.PAL
                and self.pal_function == PAL_FUNCTIONS["gentrap"])

    def is_side_exit(self):
        return self.kind is NodeKind.BRANCH

    def __repr__(self):
        return f"Node({self.kind.value}, vpc={self.vpc:#x}, op={self.op})"


class _TempAllocator:
    def __init__(self):
        self._next = -1

    def new(self):
        temp = ("temp", self._next)
        self._next -= 1
        return temp


def _reg_operand(index):
    """Register source operand; R31 reads as the immediate zero."""
    if index == 31:
        return ("imm", 0)
    return ("reg", index)


def _dest_operand(index):
    """Destination operand; writes to R31 are dropped (None)."""
    return None if index == 31 else ("reg", index)


def decompose(superblock, fuse_memory=False, split_cmov=True):
    """Convert a superblock to the RTL node list.

    ``fuse_memory=True`` keeps effective-address computation inside the
    memory node (the ablation discussed in Section 4.5: "One way to deal
    with this instruction count expansion is to not split memory
    instructions in two").  ``split_cmov=False`` keeps conditional moves as
    single three-input nodes (the straightened-Alpha target, whose machine
    reads the old destination from the register file).
    """
    temps = _TempAllocator()
    nodes = []
    for entry in superblock.entries:
        if _is_nop(entry.instr):
            continue
        _decompose_one(entry, nodes, temps, fuse_memory, split_cmov)
    for index, node in enumerate(nodes):
        node.index = index
    return nodes


def _decompose_one(entry, nodes, temps, fuse_memory, split_cmov):
    instr = entry.instr
    kind = instr.kind
    vpc = entry.vpc

    if kind is Kind.ALU:
        _decompose_alu(entry, nodes, temps, split_cmov)
    elif kind is Kind.LDA:
        displacement = instr.imm * 65536 if instr.mnemonic == "ldah" else \
            instr.imm
        nodes.append(Node(NodeKind.ALU, vpc, op="addq",
                          dest=_dest_operand(instr.ra),
                          src_a=_reg_operand(instr.rb),
                          src_b=("imm", displacement)))
    elif kind in (Kind.LOAD, Kind.STORE):
        size, signed = _MEM_SIZES[instr.mnemonic]
        address, displacement = _effective_address(entry, nodes, temps,
                                                   fuse_memory)
        if kind is Kind.LOAD:
            nodes.append(Node(NodeKind.LOAD, vpc,
                              dest=_dest_operand(instr.ra), addr=address,
                              disp=displacement, mem_size=size,
                              mem_signed=signed))
        else:
            nodes.append(Node(NodeKind.STORE, vpc, addr=address,
                              disp=displacement,
                              data=_reg_operand(instr.ra), mem_size=size))
    elif kind is Kind.COND_BRANCH:
        taken_target = vpc + 4 + 4 * instr.imm
        nodes.append(Node(NodeKind.BRANCH, vpc, op=instr.mnemonic,
                          cond_src=_reg_operand(instr.ra),
                          taken=entry.taken, taken_target=taken_target,
                          fallthrough=vpc + 4))
    elif kind is Kind.UNCOND_BRANCH:
        if instr.ra != 31:
            # BSR (or BR with a link register): the return address is saved,
            # the target is followed inline by code straightening.
            nodes.append(Node(NodeKind.BSR, vpc,
                              dest=_dest_operand(instr.ra), link=vpc + 4,
                              taken_target=vpc + 4 + 4 * instr.imm))
        # plain BR: removed entirely by code straightening
    elif kind is Kind.JUMP:
        nodes.append(Node(NodeKind.JUMP, vpc, jump_kind=instr.mnemonic,
                          addr=_reg_operand(instr.rb),
                          dest=_dest_operand(instr.ra), link=vpc + 4,
                          observed_target=entry.next_vpc))
    elif kind is Kind.PAL:
        data = _reg_operand(16) if instr.imm == PAL_FUNCTIONS["putc"] \
            else None
        nodes.append(Node(NodeKind.PAL, vpc, pal_function=instr.imm,
                          data=data))
    else:  # pragma: no cover
        raise ValueError(f"cannot decompose kind {kind}")


def _effective_address(entry, nodes, temps, fuse_memory):
    """Return (address operand, displacement), splitting address calculation
    into its own node unless the displacement is zero or fusing is on."""
    instr = entry.instr
    if instr.imm == 0:
        return _reg_operand(instr.rb), 0
    if fuse_memory:
        return _reg_operand(instr.rb), instr.imm
    temp = temps.new()
    nodes.append(Node(NodeKind.ALU, entry.vpc, op="addq", dest=temp,
                      src_a=_reg_operand(instr.rb),
                      src_b=("imm", instr.imm)))
    return temp, 0


def _decompose_alu(entry, nodes, temps, split_cmov=True):
    instr = entry.instr
    vpc = entry.vpc
    mnemonic = instr.mnemonic
    operand_b = ("imm", instr.imm) if instr.islit else \
        _reg_operand(instr.rb)

    if mnemonic in CMOV_OPS and not split_cmov:
        # single three-input node; the ALPHA-format machine reads the old
        # destination value from its register file
        nodes.append(Node(NodeKind.ALU, vpc, op=mnemonic,
                          dest=_dest_operand(instr.rc),
                          src_a=_reg_operand(instr.ra), src_b=operand_b))
        return
    if mnemonic in CMOV_OPS:
        # cmovCC ra, rb, rc  splits into the EV6-style pair:
        #   t  <- cmov1_CC(ra, rc_old)     (predicate + old value)
        #   rc <- cmov2(t, rb)             (select)
        temp = temps.new()
        condition = mnemonic[4:]
        nodes.append(Node(NodeKind.ALU, vpc, op=f"cmov1_{condition}",
                          dest=temp, src_a=_reg_operand(instr.ra),
                          src_b=_reg_operand(instr.rc)))
        nodes.append(Node(NodeKind.ALU, vpc, op="cmov2",
                          dest=_dest_operand(instr.rc), src_a=temp,
                          src_b=operand_b))
        return
    if mnemonic in RB_ONLY_OPS:
        nodes.append(Node(NodeKind.ALU, vpc, op=mnemonic,
                          dest=_dest_operand(instr.rc), src_a=None,
                          src_b=operand_b))
        return
    nodes.append(Node(NodeKind.ALU, vpc, op=mnemonic,
                      dest=_dest_operand(instr.rc),
                      src_a=_reg_operand(instr.ra), src_b=operand_b))
