"""Strand formation and accumulator assignment (paper Section 3.3).

This pass walks the RTL nodes in program order — crucially, it never
reorders them ("our DBT system ... does not re-schedule code") — and decides
for every node:

* which strand (and therefore accumulator) it belongs to,
* where each of its operands comes from: the strand accumulator, a GPR, or
  an immediate,
* whether a ``copy-from-GPR`` must precede it (strand start with two global
  inputs, or resumption after a premature strand termination).

The paper's rules, implemented here:

* **zero local inputs** — start a new strand; with two distinct global
  register inputs, a ``copy-from-GPR`` initiates the strand and the
  instruction consumes the copy as its local input;
* **one local input** — join the producing strand;
* **two local inputs** — join the temp producer's strand if one input is a
  temp, otherwise the longer strand; the other input is converted to a
  *spill global*;
* stores and conditional branches may *tap* one accumulator (they produce
  nothing); indirect jumps and PAL operations read GPRs;
* when the accumulator file is exhausted, a live strand is terminated: its
  value is spilled and any continuation resumes through a copy-from-GPR.
"""

import math

from repro.translator.allocate import AccumulatorFile, Strand
from repro.translator.decompose import NodeKind


class TranslationError(RuntimeError):
    """An internal consistency violation inside the translator."""


class StrandResult:
    """Output of strand formation for one superblock."""

    def __init__(self, nodes, n_accumulators):
        self.nodes = nodes
        self.n_accumulators = n_accumulators
        self.strands = []
        #: per node: strand id (producing nodes and taps) or None
        self.node_strand = [None] * len(nodes)
        #: per node: {slot: ("acc",) | ("gpr", reg) | ("imm", value)}
        self.resolutions = [dict() for _ in nodes]
        #: per node: GPR to copy into the accumulator first, or None
        self.copy_from_before = [None] * len(nodes)
        #: vid -> accumulator the value was produced into
        self.value_acc = {}
        #: vid -> first node index at which the value is no longer
        #: guaranteed to be in its accumulator (math.inf = to block end)
        self.acc_valid_until = {}
        self.premature_terminations = 0

    def strand(self, sid):
        return self.strands[sid]

    def node_acc(self, node_index):
        """Accumulator used by the node, or None."""
        sid = self.node_strand[node_index]
        return None if sid is None else self.strands[sid].acc


def form_strands(nodes, usage, n_accumulators=4):
    """Run the combined strand-formation / accumulator-assignment pass."""
    result = StrandResult(nodes, n_accumulators)
    accfile = AccumulatorFile(n_accumulators)
    values = usage.values
    strand_of_value = {}

    def on_release(strand, node_index, premature):
        holder_vid = strand.holder_vid
        if holder_vid is None:
            return
        holder = values[holder_vid]
        result.acc_valid_until[holder_vid] = node_index
        if premature:
            if holder.reg is None:  # pragma: no cover - victims are screened
                raise TranslationError("cannot spill a temp value")
            holder.spilled = True

    def new_strand(node, copy_from_reg=None):
        acc = accfile.acquire(node.index, values, on_release)
        strand = Strand(len(result.strands), acc, node.index,
                        copy_from_reg=copy_from_reg)
        result.strands.append(strand)
        accfile.install(strand)
        return strand

    for node in nodes:
        taps_acc = node.kind in (NodeKind.STORE, NodeKind.BRANCH)
        resolutions = result.resolutions[node.index]
        linkable = []
        for slot, resolution in usage.node_inputs[node.index].items():
            if resolution[0] == "livein":
                resolutions[slot] = ("gpr", resolution[1])
                continue
            value = values[resolution[1]]
            strand = strand_of_value.get(value.vid)
            can_link = (
                (node.produces_value() or taps_acc)
                and strand is not None
                and strand.active
                and strand.holder_vid == value.vid
                and len(value.uses) == 1
                and not value.spilled
                and not value.via_link
            )
            if can_link:
                linkable.append((slot, value, strand))
            else:
                _resolve_via_gpr(value, resolutions, slot)

        if node.produces_value():
            strand = _attach_producer(node, linkable, resolutions,
                                      new_strand, result, values)
            vid = usage.producer_of[node.index].vid
            strand.holder_vid = vid
            strand.last_access = node.index
            if node.index not in strand.nodes:
                strand.nodes.append(node.index)
            strand_of_value[vid] = strand
            result.value_acc[vid] = strand.acc
            result.node_strand[node.index] = strand.sid
        elif linkable:
            _attach_tap(node, linkable, resolutions, result, values)
        elif node.kind is NodeKind.STORE:
            _fix_two_gpr_store(node, resolutions, new_strand, result)

    # values never displaced from their accumulator stay to block end
    for vid in result.value_acc:
        result.acc_valid_until.setdefault(vid, math.inf)
    result.premature_terminations = accfile.premature_terminations
    return result


def _resolve_via_gpr(value, resolutions, slot):
    """Read an in-block value from a GPR, spilling it there if needed."""
    if value.reg is None:
        raise TranslationError("temp value cannot be read through a GPR")
    if not value.needs_gpr() and not value.via_link:
        value.spilled = True  # spill-global conversion (Section 3.3)
    value.gpr_read = True
    resolutions[slot] = ("gpr", value.reg)


def _attach_producer(node, linkable, resolutions, new_strand, result,
                     values):
    """Assign a producing node to a strand per the paper's three rules."""
    if not linkable:
        copy_reg = _two_global_copy(node, resolutions)
        strand = new_strand(node, copy_from_reg=copy_reg)
        result.copy_from_before[node.index] = copy_reg
        return strand

    if len(linkable) == 1:
        slot, value, strand = linkable[0]
    else:
        slot, value, strand = _choose_join(linkable, values)
        for other_slot, other_value, _other in linkable:
            if other_slot != slot:
                _resolve_via_gpr(other_value, resolutions, other_slot)
    resolutions[slot] = ("acc",)
    # the join overwrites the accumulator: the old value is visible up to
    # and including this node (a trap here happens before write-back)
    result.acc_valid_until[value.vid] = node.index + 1
    return strand


def _choose_join(linkable, values):
    """Two local inputs: pick which strand the instruction joins.

    Temp producers win (the paper's rule).  Otherwise, prefer joining a
    value that does NOT already need a GPR copy: the other input is then
    read through the GPR it is being copied to anyway, so no extra spill is
    emitted (this is what Fig. 2c does for ``xor r3, r1, r1``).  Among pure
    locals, the longer strand wins (the paper's tie-break).
    """
    for entry in linkable:
        if entry[1].is_temp:
            return entry
    pure_local = [entry for entry in linkable if not entry[1].needs_gpr()]
    candidates = pure_local if pure_local else linkable
    return max(candidates, key=lambda entry: len(entry[2].nodes))


def _two_global_copy(node, resolutions):
    """ALU node with two distinct global register inputs: one is read
    through a copy-from-GPR that initiates the strand (Section 3.3)."""
    if node.kind is not NodeKind.ALU:
        return None
    res_a = resolutions.get("src_a")
    res_b = resolutions.get("src_b")
    if res_a is None or res_b is None:
        return None
    if res_a[0] == "gpr" and res_b[0] == "gpr" and res_a[1] != res_b[1]:
        resolutions["src_a"] = ("acc",)
        return res_a[1]
    return None


def _fix_two_gpr_store(node, resolutions, new_strand, result):
    """A store whose address and data are two distinct global registers
    cannot be encoded (one GPR per instruction): split it by copying the
    data value into an accumulator first."""
    res_addr = resolutions.get("addr")
    res_data = resolutions.get("data")
    if res_addr is None or res_data is None:
        return
    if res_addr[0] != "gpr" or res_data[0] != "gpr":
        return
    if res_addr[1] == res_data[1]:
        return
    strand = new_strand(node, copy_from_reg=res_data[1])
    result.copy_from_before[node.index] = res_data[1]
    resolutions["data"] = ("acc",)
    result.node_strand[node.index] = strand.sid


def _attach_tap(node, linkable, resolutions, result, values):
    """Stores and branches may read one accumulator without producing."""
    chosen = linkable[0]
    if len(linkable) > 1:
        # prefer tapping the address temp (store with both operands local),
        # else tap the value that would otherwise need a fresh spill
        for entry in linkable:
            if entry[1].is_temp:
                chosen = entry
                break
        else:
            for entry in linkable:
                if not entry[1].needs_gpr():
                    chosen = entry
                    break
        for other_slot, other_value, _other in linkable:
            if other_slot != chosen[0]:
                _resolve_via_gpr(other_value, resolutions, other_slot)
    slot, _value, strand = chosen
    resolutions[slot] = ("acc",)
    strand.last_access = node.index
    result.node_strand[node.index] = strand.sid
