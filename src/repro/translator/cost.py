"""Translation overhead accounting (paper Section 4.2).

The original study instrumented the translator with Atom on an Alpha 21164
and measured ~1,125 dynamic Alpha instructions per translated instruction,
about one quarter of DAISY's 4,000+, with roughly 20% of the time spent
copying translated-instruction records field by field into the translation
cache.

We cannot run our translator on Alpha hardware, so the equivalent here is a
calibrated work-unit model: every translation phase charges a cost
proportional to the work it actually performed (nodes decomposed, def-use
edges walked, strand operations, instructions emitted and copied, exits
recorded).  Per-benchmark variation therefore emerges from real workload
structure, exactly as in Table 2's last column, while the absolute scale is
calibrated to the paper's measurement.
"""

from collections import defaultdict

#: Cost (in modelled Alpha instructions) charged per unit of phase work.
#: Calibrated so the suite average lands near the paper's ~1,125
#: instructions per translated instruction with ~20% spent copying
#: translated-instruction records into the translation cache.
PHASE_WEIGHTS = {
    "fetch_decode": 72,     # per source instruction re-fetched and decoded
    "decompose": 88,        # per RTL node created
    "usage": 38,            # per def-use edge examined
    "classify": 45,         # per value classified
    "strand": 61,           # per strand operation (join/start/tap/spill)
    "codegen": 144,         # per I-ISA instruction built
    "tcache_copy": 177,     # per I-ISA instruction copied field-by-field
    "chaining": 176,        # per exit/patch record managed
    "fragment_overhead": 2700,  # per fragment: bookkeeping, PEI tables
}


class TranslationCostModel:
    """Accumulates modelled translator work."""

    def __init__(self, weights=None):
        self.weights = dict(PHASE_WEIGHTS if weights is None else weights)
        self.by_phase = defaultdict(int)
        self.translated_source_instructions = 0
        self.fragments = 0

    def charge(self, phase, units=1):
        """Charge ``units`` of work in ``phase``."""
        self.by_phase[phase] += self.weights[phase] * units

    def note_fragment(self, source_instruction_count):
        self.fragments += 1
        self.translated_source_instructions += source_instruction_count
        self.charge("fragment_overhead")

    @property
    def total(self):
        return sum(self.by_phase.values())

    def per_translated_instruction(self):
        """Modelled Alpha instructions per translated source instruction
        (the paper's headline ~1,125)."""
        if self.translated_source_instructions == 0:
            return 0.0
        return self.total / self.translated_source_instructions

    def phase_fraction(self, phase):
        """Share of total cost spent in ``phase`` (e.g. ~20% tcache_copy)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.by_phase[phase] / total
