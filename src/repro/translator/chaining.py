"""Fragment chaining (paper Section 3.2).

Three chaining implementations are modelled, matching Fig. 4:

* ``NO_PRED`` — no software prediction: every register-indirect transfer
  branches to the shared dispatch code;
* ``SW_PRED_NO_RAS`` — translation-time software jump-target prediction: a
  three-instruction compare-and-branch sequence (load-embedded-target-
  address, compare, conditional branch) guards a direct chain to the
  predicted fragment, falling back to dispatch.  Returns are treated like
  any other indirect jump;
* ``SW_PRED_RAS`` — software prediction plus the co-designed dual-address
  return address stack: ``push-dual-address-RAS`` instructions are emitted
  at calls and returns execute through the predicted I-ISA address, with
  the V-ISA address verified against the register value.

Direct branches chain through patching: an exit whose target is not yet
translated is emitted as ``call-translator[-if-condition-is-met]`` and
rewritten in place once the target fragment exists.
"""

import enum

from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IOp
from repro.tcache.fragment import ExitKind, FragmentExit

#: Accumulator used by chaining glue; at a fragment's end all strands have
#: delivered their live values, so reusing accumulator 0 is safe.
GLUE_ACC = 0


class ChainingPolicy(enum.Enum):
    NO_PRED = "no_pred"
    SW_PRED_NO_RAS = "sw_pred.no_ras"
    SW_PRED_RAS = "sw_pred.ras"

    @property
    def software_prediction(self):
        return self is not ChainingPolicy.NO_PRED

    @property
    def dual_address_ras(self):
        return self is ChainingPolicy.SW_PRED_RAS


class Emitter:
    """Collects a fragment body plus its exit records."""

    def __init__(self, fmt):
        self.fmt = fmt
        self.body = []
        self.exits = []

    def emit(self, instr):
        self.body.append(instr)
        return len(self.body) - 1

    def add_exit(self, kind, vtarget, index, patched=False):
        exit_record = FragmentExit(kind, vtarget, index, patched)
        self.exits.append(exit_record)
        return exit_record


def emit_direct_exit(emitter, lookup, vtarget, cond=None, vpc=None,
                     final=False):
    """Emit a direct-branch exit to V-PC ``vtarget``.

    ``cond`` is None for unconditional exits, else a dict with keys ``op``
    (branch mnemonic), ``cond_src`` ("acc"/"gpr"), ``acc`` and ``gpr``.
    If the target fragment already exists the branch chains directly;
    otherwise a call-translator instruction is emitted and recorded for
    patching.
    """
    target = lookup(vtarget)
    fields = dict(vtarget=vtarget, vpc=vpc)
    if cond is not None:
        fields.update(op=cond["op"], cond_src=cond["cond_src"],
                      acc=cond.get("acc"), gpr=cond.get("gpr"))
        kind = ExitKind.COND
    else:
        kind = ExitKind.UNCOND
    if target is not None:
        iop = IOp.BRANCH if cond is not None else IOp.BR
        index = emitter.emit(IInstruction(iop, target=target, **fields))
        emitter.add_exit(kind, vtarget, index, patched=True)
    else:
        iop = IOp.COND_CALL_TRANSLATOR if cond is not None else \
            IOp.CALL_TRANSLATOR
        index = emitter.emit(IInstruction(iop, **fields))
        emitter.add_exit(kind, vtarget, index, patched=False)
    return index


def emit_push_ras(emitter, lookup, v_return, vpc=None):
    """Emit ``push-dual-address-RAS`` for a call saving ``v_return``.

    The embedded I-ISA half of the pair is the return point's fragment
    address; when it is not yet translated, the dispatch address stands in
    and the instruction is patched later (the cache tracks it).
    """
    emitter.emit(IInstruction(IOp.PUSH_RAS, vtarget=v_return,
                              target=lookup(v_return), vpc=vpc))


def emit_indirect_exit(emitter, lookup, policy, jump_reg, observed_target,
                       vpc=None, is_return=False):
    """Emit the chaining glue for a register-indirect transfer.

    ``jump_reg`` is the GPR holding the V-ISA target; ``observed_target``
    is the target seen during trace capture (the translation-time
    prediction).
    """
    if is_return and policy.dual_address_ras:
        index = emitter.emit(IInstruction(IOp.RET_RAS, gpr=jump_reg,
                                          vpc=vpc))
        emitter.add_exit(ExitKind.RETURN, None, index)
        index = emitter.emit(IInstruction(IOp.TO_DISPATCH, gpr=jump_reg,
                                          vpc=vpc))
        emitter.add_exit(ExitKind.INDIRECT, None, index)
        return

    if policy.software_prediction and observed_target is not None:
        # the three-instruction compare-and-branch of Section 3.2
        emitter.emit(IInstruction(IOp.LOAD_EMB, acc=GLUE_ACC,
                                  vtarget=observed_target, vpc=vpc))
        emitter.emit(IInstruction(IOp.ALU, op="cmpeq", acc=GLUE_ACC,
                                  src_a="acc", src_b="gpr", gpr=jump_reg,
                                  vpc=vpc))
        emit_direct_exit(emitter, lookup, observed_target,
                         cond=dict(op="bne", cond_src="acc", acc=GLUE_ACC),
                         vpc=vpc)
    index = emitter.emit(IInstruction(IOp.TO_DISPATCH, gpr=jump_reg,
                                      vpc=vpc))
    emitter.add_exit(ExitKind.RETURN if is_return else ExitKind.INDIRECT,
                     None, index)
