"""Copy-instruction placement and precise-trap recovery maps (Section 2.2).

Basic format
------------
A value must be delivered to its architected GPR when:

* it is a communication global, live-out global, ``local -> global`` /
  ``no-user -> global`` (architected-live at a side exit), or a spill
  global — the usage classes; or
* it is architected-live across a potentially-excepting instruction (PEI)
  at a point where its accumulator no longer holds it ("copy-to-GPR before
  instructions that overwrite an accumulator holding a value that will be
  live at a potential trap location").

Copies are placed immediately after the producing instruction, exactly as
in Fig. 2c of the paper.

For every PEI the pass also builds a *recovery map*: for each architected
register defined earlier in the fragment, whether its value-at-trap is in
the GPR file or still in a live accumulator.  The map is verified during
construction — an unrecoverable register is a translator bug and raises.

Modified format
---------------
Every producing instruction writes its destination GPR in the
off-critical-path architected file, so recovery is trivial and no
copy-to-GPR instructions exist.  The pass instead computes each value's
``operational`` flag: communication and live-out globals (about 25% of
dynamic instructions per Fig. 7) must also be written to the
latency-critical operational GPRs.
"""

from repro.translator.strand import TranslationError
from repro.translator.usage import ValueClass

#: Classes written to the operational GPR file in the modified format.
_OPERATIONAL_CLASSES = frozenset(
    {ValueClass.COMM_GLOBAL, ValueClass.LIVEOUT_GLOBAL}
)


class CopyPlan:
    """Where copies go, and how each PEI recovers architected state."""

    def __init__(self):
        #: node index -> [(vid, reg)] copy-to-GPR insertions after the node
        self.copy_to_after = {}
        #: vids that must reach a GPR (basic: via copy; used for stats)
        self.copied_values = set()
        #: vids with operational destination writes (modified format)
        self.operational_values = set()
        #: PEI node index -> {reg: ("gpr",) | ("acc", acc_index)}
        self.pei_recovery = {}


def build_copy_plan(nodes, usage, strands):
    """Compute the copy plan and recovery maps for one superblock."""
    plan = CopyPlan()
    pei_indices = [node.index for node in nodes if node.is_pei()]

    for value in usage.values:
        if value.is_temp or value.via_link:
            continue
        needs_copy = value.needs_gpr()
        if not needs_copy and _live_pei_after_acc_loss(value, pei_indices,
                                                       strands):
            needs_copy = True
        if needs_copy:
            plan.copied_values.add(value.vid)
            plan.copy_to_after.setdefault(value.producer, []).append(
                (value.vid, value.reg))
        if value.spilled or value.gpr_read or \
                value.vclass in _OPERATIONAL_CLASSES:
            plan.operational_values.add(value.vid)

    _build_recovery_maps(nodes, usage, strands, plan)
    return plan


def _live_pei_after_acc_loss(value, pei_indices, strands):
    """True when the value is architected-live across a PEI that executes
    after the value's accumulator stopped holding it.

    The interval is ``producer < pei <= redef``: a trap raised by the very
    instruction that redefines the register fires *before* write-back, so
    the old value is still the architected one there.
    """
    end = value.redef if value.redef is not None else float("inf")
    valid_until = strands.acc_valid_until.get(value.vid, float("inf"))
    for pei in pei_indices:
        if value.producer < pei <= end and pei >= valid_until:
            return True
    return False


def _build_recovery_maps(nodes, usage, strands, plan):
    current_def = {}  # arch reg -> ValueInfo
    for node in nodes:
        if node.is_pei():
            plan.pei_recovery[node.index] = _recovery_at(
                node.index, current_def, strands, plan)
        produced = usage.producer_of.get(node.index)
        if produced is not None and produced.reg is not None:
            current_def[produced.reg] = produced


def _recovery_at(pei_index, current_def, strands, plan):
    recovery = {}
    for reg, value in current_def.items():
        if value.via_link or value.vid in plan.copied_values:
            recovery[reg] = ("gpr",)
        elif pei_index < strands.acc_valid_until.get(value.vid,
                                                     float("inf")):
            recovery[reg] = ("acc", strands.value_acc[value.vid])
        else:  # pragma: no cover - guarded by the copy rules above
            raise TranslationError(
                f"register r{reg} unrecoverable at PEI node {pei_index}")
    return recovery
