"""The finite accumulator file used during strand assignment.

The translator forms strands with unlimited strand numbers and maps them
onto the machine's accumulators with a simple linear-scan discipline
(Section 3.3, "Accumulator assignment").  When no accumulator is free, a
live strand is terminated: its current value is spilled to a GPR and any
continuation is resumed later through a copy-from-GPR.
"""


class Strand:
    """A chain of dependent instructions sharing one accumulator."""

    __slots__ = ("sid", "acc", "start", "nodes", "holder_vid", "last_access",
                 "active", "copy_from_reg", "terminated_at", "premature")

    def __init__(self, sid, acc, start, copy_from_reg=None):
        self.sid = sid
        self.acc = acc
        self.start = start
        self.nodes = [start]
        self.holder_vid = None
        self.last_access = start
        self.active = True
        #: GPR copied into the accumulator to begin the strand (two-global
        #: -input decomposition or a spill-resumption point), or None.
        self.copy_from_reg = copy_from_reg
        self.terminated_at = None
        #: True when the allocator had to terminate this strand to free its
        #: accumulator (the paper notes this is rare with 4 accumulators).
        self.premature = False

    def __repr__(self):
        return (f"Strand(s{self.sid}, A{self.acc}, "
                f"nodes={self.nodes}, active={self.active})")


class AccumulatorFile:
    """Free-list management with dead-strand reclamation and LRU spill."""

    def __init__(self, count):
        if count < 1:
            raise ValueError("need at least one accumulator")
        self.count = count
        self._free = list(range(count))
        self._active = {}  # acc -> Strand
        self.premature_terminations = 0

    def active_strands(self):
        return list(self._active.values())

    def acquire(self, node_index, values, on_release):
        """Return a free accumulator index for a strand starting at
        ``node_index``.

        ``values`` is the ValueInfo list (to judge strand liveness);
        ``on_release`` is called with (strand, node_index, premature) for
        every strand whose accumulator is taken away.
        """
        if self._free:
            return self._free.pop()

        # Reclaim strands whose held value can never be linked again.
        for acc, strand in list(self._active.items()):
            if not _strand_live(strand, node_index, values):
                strand.active = False
                strand.terminated_at = node_index
                on_release(strand, node_index, False)
                del self._active[acc]
                self._free.append(acc)
        if self._free:
            return self._free.pop()

        victim = self._choose_victim(values)
        victim.active = False
        victim.terminated_at = node_index
        victim.premature = True
        self.premature_terminations += 1
        on_release(victim, node_index, True)
        del self._active[victim.acc]
        return victim.acc

    def _choose_victim(self, values):
        # LRU among strands whose held value can be spilled to a GPR
        # (temps have no architected home and must stay put).
        candidates = []
        for strand in self._active.values():
            holder = values[strand.holder_vid] if strand.holder_vid is not \
                None else None
            if holder is None or holder.reg is not None:
                candidates.append(strand)
        if not candidates:  # pragma: no cover - temps are consumed instantly
            raise RuntimeError("all accumulators pinned by temps")
        return min(candidates, key=lambda s: s.last_access)

    def install(self, strand):
        """Record ``strand`` as the owner of its accumulator."""
        self._active[strand.acc] = strand


def _strand_live(strand, node_index, values):
    """A strand is live while its held value has a pending accumulator use."""
    if strand.holder_vid is None:
        return False
    holder = values[strand.holder_vid]
    if holder.spilled or holder.via_link:
        return False
    return len(holder.uses) == 1 and holder.uses[0] >= node_index
