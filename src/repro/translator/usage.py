"""Dependence and usage identification (paper Section 3.3).

For every value produced inside a superblock this pass determines its
"globalness":

* **no user** — not used before being overwritten in the block;
* **local** — used exactly once before being overwritten, with no side exit
  in between (candidate for pure accumulator residence);
* **temp** — passed between the two halves of a decomposed instruction;
* **communication global** — used more than once before being overwritten;
* **live-out global** — still the architected value of its register at the
  block's final exit;
* **local → global** / **no-user → global** — used at most once but
  architected-live at a *side* exit, so the basic ISA must copy it to a GPR
  before the branch (the extra copies Fig. 7 shows for the basic format);
* **spill global** — promoted later by strand formation or accumulator
  allocation (two-local-input conflicts, strand termination).

Inputs are resolved to either an in-block value or a **live-in global**
(read from the GPR file).
"""

import enum

from repro.translator.decompose import NodeKind


class ValueClass(enum.Enum):
    NO_USER = "no_user"
    LOCAL = "local"
    TEMP = "temp"
    COMM_GLOBAL = "comm_global"
    LIVEOUT_GLOBAL = "liveout_global"
    LOCAL_TO_GLOBAL = "local_to_global"
    NOUSER_TO_GLOBAL = "nouser_to_global"
    SPILL_GLOBAL = "spill_global"


#: Classes whose value must be available in a GPR (the basic format emits a
#: copy-to-GPR; the modified format marks the destination write operational).
GLOBAL_CLASSES = frozenset(
    {
        ValueClass.COMM_GLOBAL,
        ValueClass.LIVEOUT_GLOBAL,
        ValueClass.LOCAL_TO_GLOBAL,
        ValueClass.NOUSER_TO_GLOBAL,
        ValueClass.SPILL_GLOBAL,
    }
)


class ValueInfo:
    """One in-block value: a node's register or temp output."""

    __slots__ = ("vid", "producer", "operand", "uses", "redef", "vclass",
                 "via_link", "spilled", "gpr_read")

    def __init__(self, vid, producer, operand):
        self.vid = vid
        self.producer = producer      # node index
        self.operand = operand        # ("reg", r) or ("temp", t)
        self.uses = []                # consumer node indices, in order
        self.redef = None             # node index of the next definition
        self.vclass = None
        self.via_link = False         # produced as a return-address link
        self.spilled = False          # promoted to SPILL_GLOBAL later
        #: an in-fragment consumer reads this value through its GPR (set
        #: by strand resolution; forces an operational write in the
        #: modified format)
        self.gpr_read = False

    @property
    def is_temp(self):
        return self.operand[0] == "temp"

    @property
    def reg(self):
        """Architected register index (None for temps)."""
        return self.operand[1] if self.operand[0] == "reg" else None

    def needs_gpr(self):
        """True when the value must be delivered to a GPR."""
        return self.spilled or self.vclass in GLOBAL_CLASSES

    def __repr__(self):
        return (f"ValueInfo(v{self.vid}, node{self.producer}, "
                f"{self.operand}, {self.vclass})")


class UsageResult:
    """Def-use information for a node list."""

    def __init__(self, nodes):
        self.nodes = nodes
        self.values = []
        #: node index -> ValueInfo produced there (ALU/LOAD dests and links)
        self.producer_of = {}
        #: per node: {slot: ("livein", reg) | ("value", vid)}
        self.node_inputs = [dict() for _ in nodes]
        self.livein_regs = set()
        self.side_exits = []

    def value(self, vid):
        return self.values[vid]

    def input_value(self, node_index, slot):
        """The ValueInfo feeding ``slot`` of node ``node_index``, or None
        when the input is a live-in global."""
        resolution = self.node_inputs[node_index].get(slot)
        if resolution is None or resolution[0] != "value":
            return None
        return self.values[resolution[1]]

    def class_counts(self):
        """Histogram of value classes (drives the Fig. 7 benchmark)."""
        counts = {vclass: 0 for vclass in ValueClass}
        for value in self.values:
            vclass = ValueClass.SPILL_GLOBAL if value.spilled else \
                value.vclass
            counts[vclass] += 1
        return counts


def analyze_usage(nodes):
    """Run def-use analysis and classification over decomposed nodes."""
    result = UsageResult(nodes)
    last_def = {}  # operand -> vid

    for node in nodes:
        index = node.index
        for slot, operand in node.input_operands():
            vid = last_def.get(operand)
            if vid is None:
                if operand[0] == "temp":  # pragma: no cover - decompose bug
                    raise AssertionError(f"temp {operand} used before def")
                result.node_inputs[index][slot] = ("livein", operand[1])
                result.livein_regs.add(operand[1])
            else:
                result.node_inputs[index][slot] = ("value", vid)
                result.values[vid].uses.append(index)
        dest = _definition_of(node)
        if dest is not None:
            previous = last_def.get(dest)
            if previous is not None:
                result.values[previous].redef = index
            info = ValueInfo(len(result.values), index, dest)
            info.via_link = node.kind in (NodeKind.BSR, NodeKind.JUMP)
            result.values.append(info)
            result.producer_of[index] = info
            last_def[dest] = info.vid
        if node.is_side_exit():
            result.side_exits.append(index)

    _classify(result)
    return result


def _definition_of(node):
    if node.kind in (NodeKind.ALU, NodeKind.LOAD):
        return node.dest
    if node.kind in (NodeKind.BSR, NodeKind.JUMP):
        return node.dest  # return-address link (may be None)
    return None


def _classify(result):
    exits = result.side_exits
    for value in result.values:
        end = value.redef if value.redef is not None else float("inf")
        exits_between = any(value.producer < e < end for e in exits)
        if value.is_temp:
            value.vclass = ValueClass.TEMP
        elif len(value.uses) >= 2:
            value.vclass = ValueClass.COMM_GLOBAL
        elif value.redef is None:
            value.vclass = ValueClass.LIVEOUT_GLOBAL
        elif len(value.uses) == 1:
            value.vclass = ValueClass.LOCAL_TO_GLOBAL if exits_between \
                else ValueClass.LOCAL
        else:
            value.vclass = ValueClass.NOUSER_TO_GLOBAL if exits_between \
                else ValueClass.NO_USER
