"""I-ISA code generation (the "translate" half of Section 3).

Takes the analysed superblock (nodes, usage, strands, copy plan) and emits
the fragment body for one of the three targets:

* **basic** accumulator format — results to accumulators, explicit
  ``copy-to-GPR`` instructions maintain architected state (Fig. 2c);
* **modified** accumulator format — destination GPRs embedded, results also
  written to the off-critical-path architected file (Fig. 2d);
* **ALPHA** — the code-straightening-only target: conventional two-source
  Alpha-style instructions, same superblocks and chaining.

The generator never reorders instructions; it walks the nodes in program
order, inserting copies and chaining glue exactly where the analyses said.
"""

from repro.isa.opcodes import PAL_FUNCTIONS, PAL_SYSCALLS
from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.translator.chaining import (
    ChainingPolicy,
    Emitter,
    emit_direct_exit,
    emit_indirect_exit,
    emit_push_ras,
)
from repro.translator.decompose import NodeKind
from repro.translator.strand import TranslationError
from repro.translator.superblock import EndReason
from repro.tcache.fragment import ExitKind, Fragment

_PAL_HALT = PAL_FUNCTIONS["halt"]
_PAL_PUTC = PAL_FUNCTIONS["putc"]
_PAL_GENTRAP = PAL_FUNCTIONS["gentrap"]


class CodeGenerator:
    """Emits one fragment; create a fresh instance per superblock."""

    def __init__(self, superblock, nodes, fmt, policy, tcache,
                 usage=None, strands=None, plan=None, n_accumulators=4):
        self.superblock = superblock
        self.nodes = nodes
        self.fmt = fmt
        self.policy = policy
        self.tcache = tcache
        self.usage = usage
        self.strands = strands
        self.plan = plan
        self.n_accumulators = n_accumulators
        self.emitter = Emitter(fmt)
        self.pei_table = []

    # -- public ----------------------------------------------------------------

    def generate(self):
        """Produce the (not yet laid out) :class:`Fragment`."""
        em = self.emitter
        em.emit(IInstruction(IOp.SET_VPC_BASE,
                             vtarget=self.superblock.entry_vpc))
        last_index = len(self.nodes) - 1
        for node in self.nodes:
            is_final = node.index == last_index
            self._emit_node(node, is_final)
        self._emit_continuation()
        return Fragment(
            entry_vpc=self.superblock.entry_vpc,
            fmt=self.fmt,
            body=em.body,
            exits=em.exits,
            pei_table=self.pei_table,
            source_instr_count=self.superblock.alpha_instruction_count(),
            n_accumulators=self.n_accumulators,
            premature_terminations=(self.strands.premature_terminations
                                    if self.strands else 0),
            superblock=self.superblock,
        )

    # -- helpers ---------------------------------------------------------------

    def _lookup(self, vpc):
        fragment = self.tcache.lookup(vpc)
        return None if fragment is None else fragment.entry_address()

    def _recovery_for(self, node):
        if self.fmt is not IFormat.BASIC:
            return None
        return self.plan.pei_recovery.get(node.index)

    def _note_pei(self, node, body_index):
        if node.is_pei():
            self.pei_table.append((body_index, node.vpc,
                                   self._recovery_for(node)))

    def _value_of(self, node):
        if self.usage is None:
            return None
        return self.usage.producer_of.get(node.index)

    def _dest_fields(self, node):
        """(dest_gpr, operational) for a producing node under this format."""
        if self.fmt is IFormat.ALPHA:
            if node.dest is not None and node.dest[0] == "reg":
                return node.dest[1], True
            return None, False
        value = self._value_of(node)
        if value is None or value.reg is None:
            return None, False
        operational = (self.fmt is IFormat.MODIFIED
                       and value.vid in self.plan.operational_values)
        return value.reg, operational

    # -- node emission -----------------------------------------------------------

    def _emit_node(self, node, is_final):
        kind = node.kind
        if kind is NodeKind.ALU:
            self._emit_computation(node)
        elif kind is NodeKind.LOAD:
            self._emit_computation(node)
        elif kind is NodeKind.STORE:
            self._emit_computation(node)
        elif kind is NodeKind.BRANCH:
            self._emit_branch(node, is_final)
        elif kind is NodeKind.BSR:
            self._emit_bsr(node)
        elif kind is NodeKind.JUMP:
            self._emit_jump(node)
        elif kind is NodeKind.PAL:
            self._emit_pal(node)
        else:  # pragma: no cover
            raise TranslationError(f"cannot emit node kind {kind}")

    def _emit_computation(self, node):
        em = self.emitter
        starts_strand = False
        if self.fmt is not IFormat.ALPHA:
            sid = self.strands.node_strand[node.index]
            starts_strand = (sid is not None
                             and self.strands.strand(sid).start ==
                             node.index)
            copy_reg = self.strands.copy_from_before[node.index]
            if copy_reg is not None:
                copy = IInstruction(IOp.COPY_FROM_GPR,
                                    acc=self.strands.node_acc(node.index),
                                    gpr=copy_reg, vpc=node.vpc)
                copy.strand_start = starts_strand
                starts_strand = False
                em.emit(copy)
        instr = self._build_computation(node)
        instr.strand_start = starts_strand
        index = em.emit(instr)
        self._note_pei(node, index)
        if self.fmt is IFormat.BASIC:
            for _vid, reg in self.plan.copy_to_after.get(node.index, []):
                em.emit(IInstruction(IOp.COPY_TO_GPR,
                                     acc=self.strands.node_acc(node.index),
                                     gpr=reg, vpc=node.vpc))

    def _build_computation(self, node):
        if self.fmt is IFormat.ALPHA:
            return self._build_alpha_computation(node)
        acc = self.strands.node_acc(node.index)
        resolutions = self.strands.resolutions[node.index]
        dest_gpr, operational = self._dest_fields(node)
        common = dict(acc=acc, vpc=node.vpc, dest_gpr=dest_gpr,
                      operational=operational)
        if node.kind is NodeKind.ALU:
            fields = _OperandPacker()
            src_a = fields.pack(node.src_a, resolutions.get("src_a"))
            src_b = fields.pack(node.src_b, resolutions.get("src_b"))
            return IInstruction(IOp.ALU, op=node.op, src_a=src_a,
                                src_b=src_b, **fields.attrs(), **common)
        if node.kind is NodeKind.LOAD:
            fields = _OperandPacker()
            addr_src = fields.pack(node.addr, resolutions.get("addr"))
            instr = IInstruction(IOp.LOAD, addr_src=addr_src,
                                 mem_size=node.mem_size,
                                 mem_signed=node.mem_signed,
                                 **fields.attrs(), **common)
            instr.imm = node.disp
            return instr
        if node.kind is NodeKind.STORE:
            fields = _OperandPacker()
            addr_src = fields.pack(node.addr, resolutions.get("addr"))
            data_src = fields.pack(node.data, resolutions.get("data"))
            instr = IInstruction(IOp.STORE, addr_src=addr_src,
                                 data_src=data_src, acc=acc,
                                 mem_size=node.mem_size, vpc=node.vpc,
                                 **fields.attrs())
            instr.imm = node.disp
            return instr
        raise TranslationError(f"not a computation node: {node.kind}")

    def _build_alpha_computation(self, node):
        dest_gpr, _op = self._dest_fields(node)
        common = dict(vpc=node.vpc, dest_gpr=dest_gpr,
                      operational=dest_gpr is not None)
        if node.kind is NodeKind.ALU:
            fields = _OperandPacker(alpha=True)
            src_a = fields.pack_alpha(node.src_a)
            src_b = fields.pack_alpha(node.src_b)
            return IInstruction(IOp.ALU, op=node.op, src_a=src_a,
                                src_b=src_b, **fields.attrs(), **common)
        if node.kind is NodeKind.LOAD:
            fields = _OperandPacker(alpha=True)
            addr_src = fields.pack_alpha(node.addr)
            instr = IInstruction(IOp.LOAD, addr_src=addr_src,
                                 mem_size=node.mem_size,
                                 mem_signed=node.mem_signed,
                                 **fields.attrs(), **common)
            instr.imm = node.disp
            return instr
        if node.kind is NodeKind.STORE:
            fields = _OperandPacker(alpha=True)
            addr_src = fields.pack_alpha(node.addr)
            data_src = fields.pack_alpha(node.data)
            instr = IInstruction(IOp.STORE, addr_src=addr_src,
                                 data_src=data_src, mem_size=node.mem_size,
                                 vpc=node.vpc, **fields.attrs())
            instr.imm = node.disp
            return instr
        raise TranslationError(f"not a computation node: {node.kind}")

    def _cond_fields(self, node):
        """Condition-source fields for a branch node under this format."""
        if node.cond_src[0] == "imm":
            return dict(op=node.op, cond_src="zero")
        if self.fmt is IFormat.ALPHA:
            return dict(op=node.op, cond_src="gpr", gpr=node.cond_src[1])
        resolution = self.strands.resolutions[node.index]["cond_src"]
        if resolution[0] == "acc":
            return dict(op=node.op, cond_src="acc",
                        acc=self.strands.node_acc(node.index))
        return dict(op=node.op, cond_src="gpr", gpr=resolution[1])

    def _emit_branch(self, node, is_final):
        backward_taken_end = (is_final and node.taken
                              and self.superblock.end_reason is
                              EndReason.BACKWARD_TAKEN_BRANCH)
        cond = self._cond_fields(node)
        if backward_taken_end:
            # Fig. 2: the block-ending branch keeps its direction, followed
            # by an unconditional exit to the fall-through path.
            emit_direct_exit(self.emitter, self._lookup, node.taken_target,
                             cond=cond, vpc=node.vpc)
            emit_direct_exit(self.emitter, self._lookup, node.fallthrough,
                             vpc=node.vpc)
            return
        if node.taken:
            cond["op"] = _reverse_condition(cond["op"])
            exit_target = node.fallthrough
        else:
            exit_target = node.taken_target
        emit_direct_exit(self.emitter, self._lookup, exit_target, cond=cond,
                         vpc=node.vpc)

    def _emit_bsr(self, node):
        if node.dest is not None:
            self.emitter.emit(IInstruction(
                IOp.SAVE_VRA, gpr=node.dest[1], vtarget=node.link,
                dest_gpr=node.dest[1], operational=True, vpc=node.vpc))
        if self.policy.dual_address_ras:
            emit_push_ras(self.emitter, self._lookup, node.link,
                          vpc=node.vpc)

    def _emit_jump(self, node):
        jump_reg = self._jump_register(node)
        if node.jump_kind in ("jsr", "jsr_coroutine") or (
                node.jump_kind == "jmp" and node.dest is not None):
            if node.dest is not None:
                self.emitter.emit(IInstruction(
                    IOp.SAVE_VRA, gpr=node.dest[1], vtarget=node.link,
                    dest_gpr=node.dest[1], operational=True, vpc=node.vpc))
            if self.policy.dual_address_ras:
                emit_push_ras(self.emitter, self._lookup, node.link,
                              vpc=node.vpc)
        emit_indirect_exit(self.emitter, self._lookup, self.policy,
                           jump_reg, node.observed_target, vpc=node.vpc,
                           is_return=node.jump_kind == "ret")

    def _jump_register(self, node):
        if node.addr[0] == "imm":
            raise TranslationError("indirect jump through R31")
        if self.fmt is IFormat.ALPHA:
            return node.addr[1]
        resolution = self.strands.resolutions[node.index]["addr"]
        if resolution[0] != "gpr":  # pragma: no cover - jumps read GPRs
            raise TranslationError("indirect jump target not in a GPR")
        return resolution[1]

    def _emit_pal(self, node):
        em = self.emitter
        function = node.pal_function
        if function == _PAL_HALT:
            index = em.emit(IInstruction(IOp.HALT, vpc=node.vpc))
            em.add_exit(ExitKind.HALT, None, index)
        elif function == _PAL_PUTC:
            em.emit(IInstruction(IOp.PUTC, gpr=16, vpc=node.vpc))
            emit_direct_exit(em, self._lookup, node.vpc + 4, vpc=node.vpc)
        elif function == _PAL_GENTRAP:
            index = em.emit(IInstruction(IOp.GENTRAP, vpc=node.vpc))
            self.pei_table.append((index, node.vpc,
                                   self._recovery_for(node)))
        elif function in PAL_SYSCALLS:
            # one syscall-dispatch instruction, then chain to the next
            # V-PC like putc.  The PEI row covers the internal
            # RETRANSLATE deopt a protect call can raise.
            index = em.emit(IInstruction(IOp.SYSCALL, imm=function,
                                         vpc=node.vpc))
            self.pei_table.append((index, node.vpc,
                                   self._recovery_for(node)))
            emit_direct_exit(em, self._lookup, node.vpc + 4, vpc=node.vpc)
        else:
            # unknown PAL functions are no-ops; nothing is emitted
            pass

    def _emit_continuation(self):
        reason = self.superblock.end_reason
        if reason in (EndReason.CYCLE, EndReason.MAX_SIZE,
                      EndReason.EXISTING_FRAGMENT):
            emit_direct_exit(self.emitter, self._lookup,
                             self.superblock.continuation_vpc,
                             vpc=self.superblock.entries[-1].vpc)
        elif reason is EndReason.TRAP_INSTRUCTION:
            # halt emits nothing further; putc and the syscalls already
            # chained; gentrap always traps, but fall through must still
            # be safe; unknown PAL functions are architectural no-ops
            # that emit no code at all, so the block must chain to the
            # next instruction or the executor falls off the fragment
            last = self.nodes[-1]
            if last.kind is NodeKind.PAL and \
                    last.pal_function not in (_PAL_HALT, _PAL_PUTC) and \
                    last.pal_function not in PAL_SYSCALLS:
                emit_direct_exit(self.emitter, self._lookup, last.vpc + 4,
                                 vpc=last.vpc)


class _OperandPacker:
    """Folds node operands into the single-GPR/single-immediate fields."""

    def __init__(self, alpha=False):
        self.alpha = alpha
        self.gpr = None
        self.gpr2 = None
        self.imm = None

    def pack(self, operand, resolution):
        """Accumulator-format operand: honours the strand resolutions."""
        if operand is None:
            return None
        if operand[0] == "imm":
            return self._pack_imm(operand[1])
        if resolution is None:  # pragma: no cover - analysis bug
            raise TranslationError(f"unresolved operand {operand}")
        if resolution[0] == "acc":
            return "acc"
        return self._pack_gpr(resolution[1])

    def pack_alpha(self, operand):
        """ALPHA-format operand: registers map to gpr/gpr2 directly."""
        if operand is None:
            return None
        if operand[0] == "imm":
            return self._pack_imm(operand[1])
        return self._pack_gpr(operand[1])

    def _pack_imm(self, value):
        # zero immediates (mostly R31 reads) use the dedicated zero source
        # so the single literal field stays free for a real literal
        if value == 0:
            return "zero"
        if self.imm is not None and self.imm != value:
            raise TranslationError("two distinct non-zero immediates")
        self.imm = value
        return "imm"

    def _pack_gpr(self, reg):
        if self.gpr is None or self.gpr == reg:
            self.gpr = reg
            return "gpr"
        if not self.alpha:
            raise TranslationError(
                f"two distinct GPRs (r{self.gpr}, r{reg}) in one "
                "accumulator-format instruction")
        if self.gpr2 is None or self.gpr2 == reg:
            self.gpr2 = reg
            return "gpr2"
        raise TranslationError("three distinct GPRs in one instruction")

    def attrs(self):
        out = {}
        if self.gpr is not None:
            out["gpr"] = self.gpr
        if self.gpr2 is not None:
            out["gpr2"] = self.gpr2
        if self.imm is not None:
            out["imm"] = self.imm
            out["islit"] = True
        return out


_REVERSE = {
    "beq": "bne", "bne": "beq",
    "blt": "bge", "bge": "blt",
    "ble": "bgt", "bgt": "ble",
    "blbc": "blbs", "blbs": "blbc",
}


def _reverse_condition(op):
    return _REVERSE[op]
