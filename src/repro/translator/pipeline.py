"""The translation pipeline driver.

``Translator.translate(superblock)`` runs the full pipeline for the
configured target, charges the cost model, installs the fragment in the
translation cache (applying chaining patches), and returns the intermediate
analyses for statistics collection.
"""

from repro.faults.inject import NULL_INJECTOR
from repro.faults.plan import FaultSite
from repro.ildp_isa.opcodes import IFormat
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.trace import NULL_TRACER, MultiSpan
from repro.translator.chaining import ChainingPolicy
from repro.translator.codegen import CodeGenerator
from repro.translator.copyrules import build_copy_plan
from repro.translator.cost import TranslationCostModel
from repro.translator.decompose import decompose
from repro.translator.strand import form_strands
from repro.translator.usage import analyze_usage


class TranslationError(Exception):
    """The translator failed to produce a fragment for a superblock.

    Raised before any translation-cache state is mutated.  The VM
    degrades gracefully: the superblock's entry PC falls back to
    interpretation, with retry/backoff and eventual blacklisting
    (``docs/robustness.md``).
    """

    def __init__(self, entry_vpc, reason):
        super().__init__(
            f"translation failed for V:{entry_vpc:#x}: {reason}")
        self.entry_vpc = entry_vpc
        self.reason = reason


class TranslationResult:
    """A freshly installed fragment plus its analyses (for statistics)."""

    __slots__ = ("fragment", "nodes", "usage", "strands", "plan")

    def __init__(self, fragment, nodes, usage=None, strands=None, plan=None):
        self.fragment = fragment
        self.nodes = nodes
        self.usage = usage
        self.strands = strands
        self.plan = plan


class Translator:
    """Translates superblocks into fragments for one target configuration."""

    def __init__(self, tcache, fmt=IFormat.MODIFIED,
                 policy=ChainingPolicy.SW_PRED_RAS, n_accumulators=4,
                 fuse_memory=False, cost_model=None, telemetry=None,
                 tracer=None, injector=None, memo=None):
        self.tcache = tcache
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.fmt = fmt
        self.policy = policy
        self.n_accumulators = n_accumulators
        self.fuse_memory = fuse_memory
        self.cost = cost_model if cost_model is not None else \
            TranslationCostModel()
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional persistence memo (repro.persist): consulted before
        #: the cold pipeline, fed pre-install records after it
        self.memo = memo

    def _phase(self, name):
        """A wall-clock span for one pipeline stage (no-op when
        telemetry is off; translation is off the execution hot path, so
        even the disabled spans cost only a dead context manager).  With
        tracing on, the stage also lands on the span timeline."""
        timer = self.telemetry.registry.timer(
            f"phase.translate.{name}").time()
        if self.tracer.enabled:
            return MultiSpan(timer, self.tracer.span(
                f"translate.{name}", cat="translate"))
        return timer

    def translate(self, superblock):
        """Translate one superblock and install the fragment."""
        with self.tracer.span("translate", cat="translate",
                              entry_vpc=superblock.entry_vpc,
                              entries=len(superblock.entries)):
            return self._translate(superblock)

    def _translate(self, superblock):
        if self.injector.fire(FaultSite.TRANSLATE,
                              vpc=superblock.entry_vpc):
            # before any cache mutation or cost charge: an injected
            # failure must leave the stack exactly as it found it
            raise TranslationError(superblock.entry_vpc, "injected fault")
        if self.memo is not None:
            restored = self.memo.try_restore(self, superblock)
            if restored is not None:
                return restored
        cost = self.cost
        if self.memo is not None and self.memo.capture:
            charges = []

            def charge(phase, units):
                # mirror every charge into the persistence record so a
                # warm restore can replay translation-cost accounting
                cost.charge(phase, units)
                charges.append((phase, units))
        else:
            charges = None
            charge = cost.charge
        charge("fetch_decode", len(superblock.entries))

        if self.fmt is IFormat.ALPHA:
            with self._phase("decompose"):
                nodes = decompose(superblock, fuse_memory=True,
                                  split_cmov=False)
            usage = strands = plan = None
        else:
            with self._phase("decompose"):
                nodes = decompose(superblock, fuse_memory=self.fuse_memory)
            with self._phase("usage"):
                usage = analyze_usage(nodes)
            with self._phase("strand"):
                strands = form_strands(nodes, usage, self.n_accumulators)
            with self._phase("allocate"):
                plan = build_copy_plan(nodes, usage, strands)
            charge("usage", sum(len(v.uses) + 1 for v in usage.values))
            charge("classify", len(usage.values))
            charge("strand", len(strands.strands) + len(nodes))
        charge("decompose", len(nodes))

        with self._phase("codegen"):
            generator = CodeGenerator(
                superblock, nodes, self.fmt, self.policy, self.tcache,
                usage=usage, strands=strands, plan=plan,
                n_accumulators=self.n_accumulators)
            fragment = generator.generate()

        charge("codegen", len(fragment.body))
        charge("tcache_copy", len(fragment.body))
        charge("chaining", len(fragment.exits))
        cost.note_fragment(fragment.source_instr_count)

        # serialise before install: ``add`` may patch the fragment's own
        # self-loop exits, and records must stay pre-install (see
        # repro.persist.codec); commit only once the install succeeded
        record = None
        if charges is not None:
            record = self.memo.encode(superblock, fragment, usage,
                                      charges, self.tcache)
        with self._phase("chaining"):
            self.tcache.add(fragment)
        if record is not None:
            self.memo.commit(record)
        return TranslationResult(fragment, nodes, usage, strands, plan)
