"""Superblock capture records (paper Section 3.1).

A superblock is a single-entry multiple-exit code sequence collected by
following the interpreted path once a trace-start candidate becomes hot
(Dynamo's Most Recently Executed Tail heuristic, slightly modified).
"""

import enum

from repro.isa.opcodes import Kind


class EndReason(enum.Enum):
    """Why superblock collection stopped (the fragment ending conditions)."""

    INDIRECT_JUMP = "indirect_jump"       # JMP/JSR/RET
    TRAP_INSTRUCTION = "trap_instruction"  # CALL_PAL
    BACKWARD_TAKEN_BRANCH = "backward_taken_branch"
    CYCLE = "cycle"                        # instruction collected twice
    MAX_SIZE = "max_size"
    EXISTING_FRAGMENT = "existing_fragment"  # path reached translated code


class SuperblockEntry:
    """One Alpha instruction on the captured path."""

    __slots__ = ("vpc", "instr", "taken", "next_vpc", "word")

    def __init__(self, vpc, instr, taken, next_vpc, word=None):
        self.vpc = vpc
        self.instr = instr
        #: For control transfers: whether the captured execution took it.
        self.taken = taken
        #: The V-PC the captured execution went to next.
        self.next_vpc = next_vpc
        #: The raw 32-bit instruction word at capture time.  Install-time
        #: validation compares it against current guest memory so a
        #: self-modifying store *during* capture (the page is only
        #: watched once a fragment is installed) cannot install a stale
        #: translation; it also feeds ``superblock_digest`` so persisted
        #: fragments can never alias across code rewrites.
        self.word = word

    def __repr__(self):
        return (f"SuperblockEntry({self.vpc:#x}, {self.instr.mnemonic}, "
                f"taken={self.taken})")


class Superblock:
    """A captured hot path, ready for translation."""

    def __init__(self, entry_vpc, entries, end_reason, continuation_vpc):
        if not entries:
            raise ValueError("superblock must contain at least one entry")
        self.entry_vpc = entry_vpc
        self.entries = entries
        self.end_reason = end_reason
        #: Where execution continues after the block's final instruction
        #: (None when the block ends at an indirect jump or halt).
        self.continuation_vpc = continuation_vpc

    def __len__(self):
        return len(self.entries)

    def side_exit_vpcs(self):
        """Targets of the not-followed directions of conditional branches."""
        exits = []
        for entry in self.entries[:-1]:
            if entry.instr.kind is Kind.COND_BRANCH:
                taken_target = entry.vpc + 4 + 4 * entry.instr.imm
                if entry.taken:
                    exits.append(entry.vpc + 4)       # fall-through not taken
                else:
                    exits.append(taken_target)
        return exits

    def alpha_instruction_count(self):
        """Number of V-ISA instructions on the path, NOPs excluded.

        The paper removes NOP instructions during translation and does not
        count them in V-ISA program characteristics (Section 4.4).
        """
        count = 0
        for entry in self.entries:
            if not _is_nop(entry.instr):
                count += 1
        return count

    def __repr__(self):
        return (f"Superblock(entry={self.entry_vpc:#x}, "
                f"n={len(self.entries)}, end={self.end_reason.value})")


def _is_nop(instr):
    """Architectural no-ops: operates writing R31 and BR-to-next quirks."""
    from repro.isa.opcodes import Format

    if instr.fmt is Format.OPERATE and instr.rc == 31:
        return True
    if instr.kind is Kind.LDA and instr.ra == 31:
        return True
    return False


def elided_by_translation(instr):
    """True for instructions that produce no translated code at all:
    architectural NOPs and plain BR (removed by code straightening)."""
    return _is_nop(instr) or \
        (instr.kind is Kind.UNCOND_BRANCH and instr.ra == 31)
