"""Command-line interface.

::

    python -m repro workloads                 # list the workload suite
    python -m repro run gzip --fmt modified   # run one workload in the VM
    python -m repro translate gzip            # dump the hottest fragment
    python -m repro profile gzip              # hot fragments + phase times
    python -m repro experiment fig8 -w gzip -w mcf   # one paper experiment
"""

import argparse
import sys

from repro.harness import experiments as experiment_modules
from repro.harness.runner import run_vm
from repro.ildp_isa.disasm import disassemble_iinstr
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES, all_workloads

_FORMATS = {fmt.value: fmt for fmt in IFormat}
_POLICIES = {policy.value: policy for policy in ChainingPolicy}
_EXPERIMENTS = {
    name: getattr(experiment_modules, name)
    for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2",
                 "overhead", "ablation_fusion", "ablation_steering",
                 "ablation_accumulators", "ablation_idealism",
                 "characterization")
}


def build_parser():
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Co-designed VM reproduction (Kim & Smith, CGO 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the synthetic workload suite")

    run_parser = sub.add_parser("run", help="run a workload under the VM")
    _add_vm_arguments(run_parser)

    translate_parser = sub.add_parser(
        "translate", help="show a workload's hottest translated fragment")
    _add_vm_arguments(translate_parser)

    profile_parser = sub.add_parser(
        "profile", help="run with telemetry and report the hottest "
                        "fragments and translation-phase times")
    _add_vm_arguments(profile_parser)
    profile_parser.add_argument("--top", type=_positive_int, default=10,
                                help="fragments to show (default 10)")
    profile_parser.add_argument("--events-jsonl", default=None,
                                metavar="PATH",
                                help="also export the event stream as "
                                     "JSON lines")

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures")
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment_parser.add_argument("-w", "--workload", action="append",
                                   choices=WORKLOAD_NAMES, dest="workloads",
                                   help="restrict to specific workloads")
    experiment_parser.add_argument("--budget", type=int, default=60_000)
    _add_runner_arguments(experiment_parser)

    map_parser = sub.add_parser(
        "map", help="show a workload's translation-cache fragment map")
    _add_vm_arguments(map_parser)

    report_parser = sub.add_parser(
        "report", help="run every experiment and write a markdown report")
    report_parser.add_argument("-o", "--output", default="results.md")
    report_parser.add_argument("-w", "--workload", action="append",
                               choices=WORKLOAD_NAMES, dest="workloads")
    report_parser.add_argument("--budget", type=int, default=60_000)
    _add_runner_arguments(report_parser)
    return parser


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_runner_arguments(parser):
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for independent run points")
    parser.add_argument("--no-cache", action="store_true",
                        help="always execute; skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro/runpoints)")


def _runner_from(args):
    from repro.harness.parallel import PointRunner
    from repro.harness.resultcache import ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return PointRunner(workers=args.workers, cache=cache)


def _add_vm_arguments(parser):
    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--fmt", choices=sorted(_FORMATS),
                        default="modified")
    parser.add_argument("--policy", choices=sorted(_POLICIES),
                        default="sw_pred.ras")
    parser.add_argument("--accumulators", type=int, default=4)
    parser.add_argument("--budget", type=int, default=200_000)
    parser.add_argument("--fuse-memory", action="store_true")
    parser.add_argument("--exec-engine",
                        choices=("specialized", "naive"),
                        default="specialized",
                        help="run pre-compiled step closures (specialized) "
                             "or the reference dispatch (naive)")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the repro.obs telemetry subsystem "
                             "(metrics, events, fragment profiling)")


def _config_from(args):
    return VMConfig(fmt=_FORMATS[args.fmt],
                    policy=_POLICIES[args.policy],
                    n_accumulators=args.accumulators,
                    fuse_memory=args.fuse_memory,
                    exec_engine=args.exec_engine,
                    telemetry=getattr(args, "telemetry", False))


def _command_workloads(_args, out):
    for workload in all_workloads():
        print(f"{workload.name:8s}  {workload.description}", file=out)
    return 0


def _command_run(args, out):
    result = run_vm(args.workload, _config_from(args), budget=args.budget,
                    collect_trace=False)
    stats = result.stats
    print(f"workload : {args.workload}", file=out)
    print(f"target   : {args.fmt} / {args.policy}", file=out)
    print(f"console  : {result.vm.console_text()!r}", file=out)
    for line in stats.render_lines():
        print(line, file=out)
    cost = result.vm.cost_model
    print(f"translation cost: "
          f"{cost.per_translated_instruction():.0f} insts/translated inst",
          file=out)
    telemetry = result.vm.telemetry
    if telemetry.enabled:
        from repro.obs.profile import phase_breakdown_lines

        print("", file=out)
        print("telemetry:", file=out)
        events = telemetry.events.summary()
        print(f"  events: {events['emitted']} emitted, "
              f"{events['dropped']} dropped", file=out)
        for line in phase_breakdown_lines(telemetry.registry):
            print(f"  {line}", file=out)
    return 0


def _command_profile(args, out):
    from repro.obs.profile import hot_fragment_table, phase_breakdown_lines
    from repro.tcache.dump import cache_totals_line

    config = _config_from(args).copy(telemetry=True)
    result = run_vm(args.workload, config, budget=args.budget,
                    collect_trace=False)
    vm = result.vm
    telemetry = vm.telemetry
    print(f"profile of {args.workload} "
          f"({args.fmt} / {args.policy}, budget {args.budget})", file=out)
    print(cache_totals_line(result.tcache), file=out)
    print("", file=out)
    for line in result.stats.render_lines():
        print(line, file=out)
    print("", file=out)
    for line in phase_breakdown_lines(telemetry.registry):
        print(line, file=out)
    print("", file=out)
    for line in hot_fragment_table(telemetry.fragments, result.tcache,
                                   top=args.top):
        print(line, file=out)
    events = telemetry.events.summary()
    print("", file=out)
    print(f"events: {events['emitted']} emitted, "
          f"{events['dropped']} dropped "
          f"(ring capacity {telemetry.events.capacity})", file=out)
    for kind in sorted(events["by_kind"]):
        print(f"  {kind:22s} {events['by_kind'][kind]}", file=out)
    if args.events_jsonl is not None:
        with open(args.events_jsonl, "w") as handle:
            handle.write(telemetry.events.to_jsonl())
        print(f"wrote {args.events_jsonl}", file=out)
    return 0


def _command_translate(args, out):
    result = run_vm(args.workload, _config_from(args), budget=args.budget,
                    collect_trace=False)
    fragments = sorted(result.tcache.fragments,
                       key=lambda f: f.execution_count, reverse=True)
    if not fragments:
        print("nothing was hot enough to translate", file=out)
        return 1
    fragment = fragments[0]
    print(f"hottest fragment: V:{fragment.entry_vpc:#x}, "
          f"executed {fragment.execution_count} times, "
          f"{fragment.source_instr_count} source instructions -> "
          f"{len(fragment.body)} {args.fmt} instructions "
          f"({fragment.byte_size} bytes)", file=out)
    for instr in fragment.body:
        print(f"  {instr.address:#09x}  "
              f"{disassemble_iinstr(instr, fragment.fmt)}", file=out)
    return 0


def _command_experiment(args, out):
    module = _EXPERIMENTS[args.name]
    runner = _runner_from(args)
    result = module.run(workloads=args.workloads, budget=args.budget,
                        runner=runner)
    print(result.render(), file=out)
    print(runner.report.render(), file=out)
    return 0


def _command_map(args, out):
    from repro.tcache.dump import print_fragment_map

    result = run_vm(args.workload, _config_from(args), budget=args.budget,
                    collect_trace=False)
    print_fragment_map(result.tcache, out=out)
    return 0


def _command_report(args, out):
    from repro.harness.report import generate_report

    runner = _runner_from(args)

    def progress(name, elapsed):
        delta = runner.last_report or {}
        print(f"  {name}: {elapsed:.1f}s "
              f"({delta.get('executed', 0)} executed, "
              f"{delta.get('cache_hits', 0)} cached)", file=out)

    text = generate_report(workloads=args.workloads, budget=args.budget,
                           progress=progress, runner=runner)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(runner.report.render(), file=out)
    print(f"wrote {args.output}", file=out)
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "workloads": _command_workloads,
        "run": _command_run,
        "translate": _command_translate,
        "profile": _command_profile,
        "experiment": _command_experiment,
        "map": _command_map,
        "report": _command_report,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
