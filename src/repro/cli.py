"""Command-line interface.

::

    python -m repro workloads                 # list the workload suite
    python -m repro run gzip --fmt modified   # run one workload in the VM
    python -m repro translate gzip            # dump the hottest fragment
    python -m repro profile gzip              # hot fragments + phase times
    python -m repro trace gzip -o trace.json  # span timeline (Perfetto)
    python -m repro experiment fig8 -w gzip -w mcf   # one paper experiment
    python -m repro bench-compare BENCH_exec.json fresh.json  # perf gate
"""

import argparse
import sys

from repro.harness import experiments as experiment_modules
from repro.harness.runner import run_vm
from repro.ildp_isa.disasm import disassemble_iinstr
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES, all_workloads

_FORMATS = {fmt.value: fmt for fmt in IFormat}
_POLICIES = {policy.value: policy for policy in ChainingPolicy}
_EXPERIMENTS = {
    name: getattr(experiment_modules, name)
    for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2",
                 "overhead", "ablation_fusion", "ablation_steering",
                 "ablation_accumulators", "ablation_idealism",
                 "characterization")
}


def build_parser():
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Co-designed VM reproduction (Kim & Smith, CGO 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the synthetic workload suite")

    run_parser = sub.add_parser("run", help="run a workload under the VM")
    _add_vm_arguments(run_parser)
    run_parser.add_argument("--trace-out", default=None, metavar="PATH",
                            help="also span-trace the run and write a "
                                 "Chrome trace-event JSON file")

    translate_parser = sub.add_parser(
        "translate", help="show a workload's hottest translated fragment")
    _add_vm_arguments(translate_parser)

    profile_parser = sub.add_parser(
        "profile", help="run with telemetry and report the hottest "
                        "fragments and translation-phase times")
    _add_vm_arguments(profile_parser)
    profile_parser.add_argument("--top", type=_positive_int, default=10,
                                help="fragments to show (default 10)")
    profile_parser.add_argument("--events-jsonl", default=None,
                                metavar="PATH",
                                help="also export the event stream as "
                                     "JSON lines")

    trace_parser = sub.add_parser(
        "trace", help="run one workload with span tracing and export a "
                      "Chrome trace-event JSON timeline (load it in "
                      "Perfetto or chrome://tracing)")
    _add_vm_arguments(trace_parser)
    trace_parser.add_argument("-o", "--output", default="trace.json",
                              help="trace-event JSON path "
                                   "(default trace.json)")
    trace_parser.add_argument("--flame-top", type=_positive_int,
                              default=15, metavar="N",
                              help="span paths in the flame summary "
                                   "(default 15)")

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures")
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment_parser.add_argument("-w", "--workload", action="append",
                                   choices=WORKLOAD_NAMES, dest="workloads",
                                   help="restrict to specific workloads")
    experiment_parser.add_argument("--budget", type=int, default=60_000)
    _add_runner_arguments(experiment_parser)

    compare_parser = sub.add_parser(
        "bench-compare",
        help="gate a fresh benchmark record against a baseline "
             "(exit 1 on regression)")
    compare_parser.add_argument("baseline",
                                help="baseline record, e.g. BENCH_exec.json")
    compare_parser.add_argument("current",
                                help="fresh record to gate")
    compare_parser.add_argument("--tolerance", type=float, default=None,
                                metavar="FRAC",
                                help="relative tolerance for wall-clock "
                                     "metrics (default 0.05)")
    compare_parser.add_argument("--slack", type=float, default=None,
                                metavar="SECONDS",
                                help="absolute slack for *_seconds metrics "
                                     "(default 0.005)")

    chaos_parser = sub.add_parser(
        "chaos", help="run a workload under a seeded fault schedule and "
                      "check convergence against the fault-free "
                      "interpreter (exit 1 on divergence)")
    _add_vm_arguments(chaos_parser)
    chaos_parser.add_argument("--fault-spec", action="append",
                              dest="fault_specs", metavar="SPEC",
                              help="fault spec (site[@key=value,...]); "
                                   "repeatable; default: a schedule "
                                   "covering translation failure, "
                                   "corruption and tcache exhaustion")
    chaos_parser.add_argument("--fault-seed", type=int, default=1234,
                              help="seed for probabilistic fault "
                                   "selectors (default 1234)")
    chaos_parser.add_argument("--tcache-capacity", type=_positive_int,
                              default=None, metavar="BYTES",
                              help="also bound the translation cache")
    chaos_parser.add_argument("--max-host-steps", type=_positive_int,
                              default=None, metavar="N",
                              help="fuel watchdog: abort cleanly after N "
                                   "host dispatch steps")
    chaos_parser.add_argument("--hostile", action="store_true",
                              help="extend the fault schedule with the "
                                   "hostile-guest sites (SMC widening, "
                                   "spurious protect invalidation)")

    fuzz_parser = sub.add_parser(
        "fuzz", help="run seeded random programs through the "
                     "differential oracle stack (exit 1 on divergence)")
    fuzz_parser.add_argument("--count", type=_positive_int, default=100,
                             help="programs to generate (default 100)")
    fuzz_parser.add_argument("--seed", type=int, default=1,
                             help="campaign seed (default 1)")
    fuzz_parser.add_argument("--max-insns", type=_positive_int,
                             default=60, metavar="N",
                             help="loop-body size bound per program "
                                  "(default 60)")
    fuzz_parser.add_argument("--budget", type=_positive_int,
                             default=200_000,
                             help="V-instruction budget per oracle run "
                                  "(default 200000)")
    fuzz_parser.add_argument("--chaos", action="store_true",
                             help="also run each program under a seeded "
                                  "fault schedule")
    fuzz_parser.add_argument("--hostile", action="store_true",
                             help="generate hostile-guest programs: "
                                  "self-modifying stores, page-"
                                  "protection flips and syscalls")
    fuzz_parser.add_argument("--engines", default=None, metavar="LIST",
                             help="comma-separated engine axis for the "
                                  "oracle engine stage (default: "
                                  "naive,jit; each is compared against "
                                  "the specialized reference)")
    fuzz_parser.add_argument("--shrink", action="store_true",
                             help="shrink each finding to a minimal "
                                  "reproducer")
    fuzz_parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                             help="write the reproducible corpus "
                                  "(one JSON record per program)")
    fuzz_parser.add_argument("--workers", type=_positive_int, default=1,
                             help="worker processes (default 1)")
    fuzz_parser.add_argument("--telemetry", action="store_true",
                             help="print aggregate VM telemetry across "
                                  "all oracle runs")
    fuzz_parser.add_argument("--trace-out", default=None, metavar="PATH",
                             help="span-trace the campaign and write "
                                  "Chrome trace-event JSON")

    serve_parser = sub.add_parser(
        "serve", help="long-lived run-point server on a local unix "
                      "socket (JSON-lines protocol; see docs/serving.md)")
    serve_parser.add_argument("--socket", default="repro-serve.sock",
                              metavar="PATH",
                              help="unix socket path "
                                   "(default repro-serve.sock)")
    serve_parser.add_argument("--workers", type=_positive_int, default=1,
                              help="worker processes per batch")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="skip the on-disk result cache")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="result-cache directory")
    serve_parser.add_argument("--persist-dir", default=None, metavar="DIR",
                              help="fragment-store directory shared by "
                                   "every served VM (AOT warm start)")
    serve_parser.add_argument("--persist-mode",
                              choices=("load", "save", "both"),
                              default="both",
                              help="fragment-store lifecycle half "
                                   "(default both)")
    serve_parser.add_argument("--batch-window", type=float, default=0.05,
                              metavar="SECONDS",
                              help="how long a batch collects requests "
                                   "(default 0.05)")
    serve_parser.add_argument("--max-batch", type=_positive_int,
                              default=16,
                              help="run points per batch (default 16)")
    serve_parser.add_argument("--snapshot-interval", type=float,
                              default=1.0, metavar="SECONDS",
                              help="metric snapshot / stream cadence "
                                   "(default 1.0)")
    serve_parser.add_argument("--queue-depth", type=_positive_int,
                              default=512,
                              help="per-subscriber frame queue depth — "
                                   "slow consumers drop frames past "
                                   "this (default 512)")
    serve_parser.add_argument("--log-json", action="store_true",
                              help="emit structured JSON log lines "
                                   "(with request correlation ids) "
                                   "instead of plain text")

    client_parser = sub.add_parser(
        "client", help="drive a running `repro serve` server")
    client_parser.add_argument("op",
                               choices=("ping", "run", "stats",
                                        "metrics", "shutdown"))
    client_parser.add_argument("--socket", default="repro-serve.sock",
                               metavar="PATH")
    client_parser.add_argument("-w", "--workload", action="append",
                               choices=WORKLOAD_NAMES, dest="workloads",
                               help="workload(s) for op=run; repeatable, "
                                    "duplicates allowed (they exercise "
                                    "the server's request dedup)")
    client_parser.add_argument("--budget", type=_positive_int,
                               default=60_000,
                               help="V-instruction budget for op=run")
    client_parser.add_argument("--timeout", type=float, default=600.0,
                               help="per-request socket timeout seconds")
    client_parser.add_argument("--json", action="store_true",
                               help="print full JSON responses instead "
                                    "of summary lines")

    top_parser = sub.add_parser(
        "top", help="live dashboard over a running `repro serve` "
                    "server's frame stream")
    top_parser.add_argument("--socket", default="repro-serve.sock",
                            metavar="PATH",
                            help="unix socket of the server "
                                 "(default repro-serve.sock)")
    top_parser.add_argument("--frames", type=_positive_int, default=None,
                            help="stop after this many frames (default: "
                                 "run until Ctrl-C / server shutdown)")
    top_parser.add_argument("--timeout", type=float, default=600.0,
                            help="socket timeout seconds")
    top_parser.add_argument("--no-clear", action="store_true",
                            help="append dashboards instead of clearing "
                                 "the screen between redraws")

    map_parser = sub.add_parser(
        "map", help="show a workload's translation-cache fragment map")
    _add_vm_arguments(map_parser)

    report_parser = sub.add_parser(
        "report", help="run every experiment and write a markdown report")
    report_parser.add_argument("-o", "--output", default="results.md")
    report_parser.add_argument("-w", "--workload", action="append",
                               choices=WORKLOAD_NAMES, dest="workloads")
    report_parser.add_argument("--budget", type=int, default=60_000)
    _add_runner_arguments(report_parser)
    return parser


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_runner_arguments(parser):
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for independent run points")
    parser.add_argument("--no-cache", action="store_true",
                        help="always execute; skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro/runpoints)")
    parser.add_argument("--telemetry", action="store_true",
                        help="print the aggregate telemetry the harness "
                             "collected across all run points")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="span-trace the harness (each run point a "
                             "span, workers on their own tracks) and "
                             "write Chrome trace-event JSON")


def _runner_from(args):
    from repro.harness.parallel import PointRunner
    from repro.harness.resultcache import ResultCache
    from repro.obs.trace import Tracer

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    tracer = Tracer(thread_name="runner") \
        if getattr(args, "trace_out", None) else None
    return PointRunner(workers=args.workers, cache=cache, tracer=tracer)


def _finish_runner(args, runner, out):
    """Shared experiment/report epilogue: telemetry + trace output."""
    if getattr(args, "telemetry", False):
        from repro.obs.profile import phase_breakdown_lines

        print("", file=out)
        print("aggregate telemetry (all run points):", file=out)
        for line in phase_breakdown_lines(runner.telemetry):
            print(f"  {line}", file=out)
        counters = runner.telemetry.to_dict()["counters"]
        for name in sorted(counters):
            print(f"  {name:32s} {counters[name]}", file=out)
    if getattr(args, "trace_out", None):
        runner.tracer.write(args.trace_out)
        print(f"wrote {args.trace_out} "
              f"({len(runner.tracer.events)} trace events)", file=out)


def _add_vm_arguments(parser):
    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--fmt", choices=sorted(_FORMATS),
                        default="modified")
    parser.add_argument("--policy", choices=sorted(_POLICIES),
                        default="sw_pred.ras")
    parser.add_argument("--accumulators", type=int, default=4)
    parser.add_argument("--budget", type=int, default=200_000)
    parser.add_argument("--fuse-memory", action="store_true")
    parser.add_argument("--exec-engine",
                        choices=("jit", "specialized", "naive"),
                        default="jit",
                        help="compile hot fragments to generated Python "
                             "(jit, the default), run pre-compiled step "
                             "closures (specialized), or the reference "
                             "dispatch (naive)")
    parser.add_argument("--jit-threshold", type=_positive_int,
                        default=None, metavar="N",
                        help="fragment visits before the jit engine "
                             "promotes a body to tier-2 generated code")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the repro.obs telemetry subsystem "
                             "(metrics, events, fragment profiling)")


def _config_from(args):
    overrides = {}
    if getattr(args, "jit_threshold", None) is not None:
        overrides["jit_threshold"] = args.jit_threshold
    return VMConfig(fmt=_FORMATS[args.fmt],
                    policy=_POLICIES[args.policy],
                    n_accumulators=args.accumulators,
                    fuse_memory=args.fuse_memory,
                    exec_engine=args.exec_engine,
                    telemetry=getattr(args, "telemetry", False),
                    **overrides)


def _command_workloads(_args, out):
    for workload in all_workloads():
        print(f"{workload.name:8s}  {workload.description}", file=out)
    return 0


def _command_run(args, out):
    config = _config_from(args)
    if args.trace_out is not None:
        config = config.copy(trace=True)
    result = run_vm(args.workload, config, budget=args.budget,
                    collect_trace=False)
    stats = result.stats
    print(f"workload : {args.workload}", file=out)
    print(f"target   : {args.fmt} / {args.policy}", file=out)
    print(f"console  : {result.vm.console_text()!r}", file=out)
    for line in stats.render_lines():
        print(line, file=out)
    cost = result.vm.cost_model
    print(f"translation cost: "
          f"{cost.per_translated_instruction():.0f} insts/translated inst",
          file=out)
    telemetry = result.vm.telemetry
    if telemetry.enabled:
        from repro.obs.profile import phase_breakdown_lines

        print("", file=out)
        print("telemetry:", file=out)
        events = telemetry.events.summary()
        print(f"  events: {events['emitted']} emitted, "
              f"{events['dropped']} dropped", file=out)
        for line in phase_breakdown_lines(telemetry.registry):
            print(f"  {line}", file=out)
    if args.trace_out is not None:
        result.vm.tracer.write(args.trace_out)
        print(f"wrote {args.trace_out} "
              f"({len(result.vm.tracer.events)} trace events)", file=out)
    return 0


def _command_trace(args, out):
    config = _config_from(args).copy(trace=True)
    result = run_vm(args.workload, config, budget=args.budget,
                    collect_trace=False)
    tracer = result.vm.tracer
    print(f"trace of {args.workload} "
          f"({args.fmt} / {args.policy}, budget {args.budget})", file=out)
    for line in tracer.flame_lines(top=args.flame_top):
        print(line, file=out)
    if tracer.dropped:
        print(f"warning: {tracer.dropped} spans dropped (buffer holds "
              f"{tracer.max_events}); the timeline is truncated", file=out)
    tracer.write(args.output)
    print(f"wrote {args.output} ({len(tracer.events)} trace events) — "
          f"load it in https://ui.perfetto.dev or chrome://tracing",
          file=out)
    return 0


def _command_bench_compare(args, out):
    import json

    from repro.obs import regress

    docs = []
    for path in (args.baseline, args.current):
        try:
            with open(path) as handle:
                docs.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"bench-compare: cannot read {path}: {exc}", file=out)
            return 2
    kwargs = {}
    if args.tolerance is not None:
        kwargs["time_tolerance"] = args.tolerance
    if args.slack is not None:
        kwargs["slack"] = args.slack
    comparison = regress.compare_benchmarks(docs[0], docs[1], **kwargs)
    print(f"bench-compare: {args.baseline} (baseline) vs "
          f"{args.current}", file=out)
    for line in comparison.render_lines():
        print(line, file=out)
    return 0 if comparison.ok else 1


def _command_profile(args, out):
    from repro.obs.profile import histogram_quantile_lines, \
        hot_fragment_table, phase_breakdown_lines
    from repro.tcache.dump import cache_totals_line

    config = _config_from(args).copy(telemetry=True)
    result = run_vm(args.workload, config, budget=args.budget,
                    collect_trace=False)
    vm = result.vm
    telemetry = vm.telemetry
    print(f"profile of {args.workload} "
          f"({args.fmt} / {args.policy}, budget {args.budget})", file=out)
    print(cache_totals_line(result.tcache), file=out)
    print("", file=out)
    for line in result.stats.render_lines():
        print(line, file=out)
    print("", file=out)
    for line in phase_breakdown_lines(telemetry.registry):
        print(line, file=out)
    print("", file=out)
    for line in histogram_quantile_lines(telemetry.registry):
        print(line, file=out)
    print("", file=out)
    for line in hot_fragment_table(telemetry.fragments, result.tcache,
                                   top=args.top):
        print(line, file=out)
    events = telemetry.events.summary()
    print("", file=out)
    print(f"events: {events['emitted']} emitted, "
          f"{events['dropped']} dropped "
          f"(ring capacity {telemetry.events.capacity})", file=out)
    if events["dropped"]:
        print(f"warning: the event ring overflowed — the oldest "
              f"{events['dropped']} records were dropped; per-kind "
              f"totals below are still complete, but the JSONL export "
              f"only holds the newest {telemetry.events.capacity} "
              f"(set REPRO_EVENT_CAPACITY to raise it)", file=out)
    for kind in sorted(events["by_kind"]):
        print(f"  {kind:22s} {events['by_kind'][kind]}", file=out)
    if args.events_jsonl is not None:
        with open(args.events_jsonl, "w") as handle:
            handle.write(telemetry.events.to_jsonl())
        print(f"wrote {args.events_jsonl}", file=out)
    return 0


def _command_translate(args, out):
    result = run_vm(args.workload, _config_from(args), budget=args.budget,
                    collect_trace=False)
    fragments = sorted(result.tcache.fragments,
                       key=lambda f: f.execution_count, reverse=True)
    if not fragments:
        print("nothing was hot enough to translate", file=out)
        return 1
    fragment = fragments[0]
    print(f"hottest fragment: V:{fragment.entry_vpc:#x}, "
          f"executed {fragment.execution_count} times, "
          f"{fragment.source_instr_count} source instructions -> "
          f"{len(fragment.body)} {args.fmt} instructions "
          f"({fragment.byte_size} bytes)", file=out)
    for instr in fragment.body:
        print(f"  {instr.address:#09x}  "
              f"{disassemble_iinstr(instr, fragment.fmt)}", file=out)
    return 0


def _command_experiment(args, out):
    module = _EXPERIMENTS[args.name]
    runner = _runner_from(args)
    with runner.tracer.span(f"experiment.{args.name}", cat="report"):
        result = module.run(workloads=args.workloads, budget=args.budget,
                            runner=runner)
    print(result.render(), file=out)
    print(runner.report.render(), file=out)
    _finish_runner(args, runner, out)
    return 0


def _command_chaos(args, out):
    from repro.faults.plan import DEFAULT_CHAOS_SPECS, HOSTILE_CHAOS_SPECS
    from repro.harness.runner import run_original
    from repro.vm.system import BudgetExceeded

    specs = args.fault_specs if args.fault_specs else \
        list(DEFAULT_CHAOS_SPECS)
    if args.hostile:
        specs = specs + list(HOSTILE_CHAOS_SPECS)
    config = _config_from(args).copy(
        faults=";".join(specs), fault_seed=args.fault_seed,
        tcache_capacity_bytes=args.tcache_capacity,
        max_host_steps=args.max_host_steps)
    print(f"chaos run: {args.workload} under "
          f"{config.faults!r} (seed {args.fault_seed})", file=out)

    try:
        result = run_vm(args.workload, config, budget=args.budget,
                        collect_trace=False)
    except BudgetExceeded as exc:
        print(f"fuel watchdog tripped: {exc} "
              f"({exc.stats.total_v_instructions()} V-instructions "
              "committed before the abort)", file=out)
        return 1
    vm = result.vm

    injected = vm.injector.summary()
    print(f"faults injected: {injected['injected'] or 'none'} "
          f"(site occurrences {injected['occurrences']})", file=out)
    for name, value in vm.stats.resilience().items():
        if value:
            print(f"  {name:28s} {value}", file=out)

    trace, interp = run_original(args.workload, budget=args.budget)
    failures = []
    if not vm.halted:
        failures.append("VM did not reach halt")
    if vm.state.pc != interp.state.pc:
        failures.append(f"final PC {vm.state.pc:#x} != "
                        f"{interp.state.pc:#x}")
    if vm.state.regs != interp.state.regs:
        failures.append("final register state diverged")
    if vm.console_text() != interp.console_text():
        failures.append("console output diverged")
    expected = sum(record.v_weight for record in trace
                   if record.btype != "uncond")
    committed = vm.stats.committed_v_instructions()
    if committed != expected:
        failures.append(f"committed count {committed} != {expected}")

    if failures:
        print("DIVERGED from the fault-free interpreter:", file=out)
        for failure in failures:
            print(f"  - {failure}", file=out)
        return 1
    print(f"converged: architected state and committed count "
          f"({committed}) bit-identical to the fault-free interpreter",
          file=out)
    return 0


def _command_fuzz(args, out):
    from repro.fuzz.campaign import run_campaign
    from repro.harness.parallel import PointRunner
    from repro.obs.trace import Tracer

    engines = None
    if args.engines:
        engines = tuple(name.strip() for name in args.engines.split(",")
                        if name.strip())
        for name in engines:
            if name not in ("jit", "specialized", "naive"):
                print(f"unknown engine {name!r} in --engines", file=out)
                return 2
    tracer = Tracer(thread_name="fuzz") if args.trace_out else None
    runner = PointRunner(workers=args.workers, cache=None, tracer=tracer)
    result = run_campaign(args.count, args.seed,
                          max_insns=args.max_insns, chaos=args.chaos,
                          shrink=args.shrink, workers=args.workers,
                          budget=args.budget, corpus_dir=args.corpus_dir,
                          telemetry=args.telemetry, runner=runner,
                          engines=engines, hostile=args.hostile)
    for line in result.render_lines():
        print(line, file=out)
    if args.corpus_dir:
        print(f"wrote {len(result.corpus_files)} corpus records to "
              f"{args.corpus_dir}", file=out)
    print(runner.report.render(), file=out)
    _finish_runner(args, runner, out)
    return 0 if result.ok else 1


def _command_serve(args, out):
    import asyncio
    import os

    from repro.harness.parallel import PointRunner
    from repro.harness.resultcache import ResultCache
    from repro.persist.store import ENV_PERSIST_DIR, ENV_PERSIST_MODE
    from repro.serve.server import FragmentServer

    if args.persist_dir:
        # the environment overlay reaches run_vm in this process *and*
        # in forked pool workers (persist fields are not run-point key
        # fields, so the workers cannot receive them any other way)
        os.environ[ENV_PERSIST_DIR] = args.persist_dir
        os.environ[ENV_PERSIST_MODE] = args.persist_mode
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = PointRunner(workers=args.workers, cache=cache)
    server = FragmentServer(runner, args.socket,
                            batch_window=args.batch_window,
                            max_batch=args.max_batch, out=out,
                            snapshot_interval=args.snapshot_interval,
                            queue_depth=args.queue_depth,
                            log_json=args.log_json)
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        print("interrupted", file=out)
    return 0


def _command_client(args, out):
    import json

    from repro.serve.client import ServeError, request, run_many

    try:
        if args.op == "run":
            workloads = args.workloads or ["gzip"]
            payloads = [{"op": "run", "workload": name,
                         "budget": args.budget} for name in workloads]
            responses = run_many(args.socket, payloads,
                                 timeout=args.timeout)
            ok = True
            for name, response in zip(workloads, responses):
                if args.json:
                    print(json.dumps(response), file=out)
                elif response.get("ok"):
                    summary = response["summary"]
                    print(f"{name:8s} committed {summary['committed']} "
                          f"halted={summary['halted']} "
                          f"elapsed {summary.get('elapsed', 0.0):.2f}s",
                          file=out)
                else:
                    print(f"{name:8s} FAILED: {response.get('error')}",
                          file=out)
                ok = ok and bool(response.get("ok"))
            return 0 if ok else 1
        response = request(args.socket, {"op": args.op},
                           timeout=args.timeout)
    except ServeError as exc:
        print(f"client: {exc}", file=out)
        return 2
    if args.op == "metrics" and response.get("ok") and not args.json:
        # the exposition text IS the output format — print it raw
        print(response.get("text", ""), file=out, end="")
        return 0
    print(json.dumps(response, indent=2, sort_keys=True), file=out)
    return 0 if response.get("ok") else 1


def _command_top(args, out):
    from repro.cli_top import command_top

    return command_top(args.socket, frames=args.frames, out=out,
                       clear=False if args.no_clear else None,
                       timeout=args.timeout)


def _command_map(args, out):
    from repro.tcache.dump import print_fragment_map

    result = run_vm(args.workload, _config_from(args), budget=args.budget,
                    collect_trace=False)
    print_fragment_map(result.tcache, out=out)
    return 0


def _command_report(args, out):
    from repro.harness.report import generate_report

    runner = _runner_from(args)

    def progress(name, elapsed):
        delta = runner.last_report or {}
        print(f"  {name}: {elapsed:.1f}s "
              f"({delta.get('executed', 0)} executed, "
              f"{delta.get('cache_hits', 0)} cached)", file=out)

    text = generate_report(workloads=args.workloads, budget=args.budget,
                           progress=progress, runner=runner)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(runner.report.render(), file=out)
    print(f"wrote {args.output}", file=out)
    _finish_runner(args, runner, out)
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "workloads": _command_workloads,
        "run": _command_run,
        "translate": _command_translate,
        "profile": _command_profile,
        "trace": _command_trace,
        "experiment": _command_experiment,
        "bench-compare": _command_bench_compare,
        "chaos": _command_chaos,
        "fuzz": _command_fuzz,
        "serve": _command_serve,
        "client": _command_client,
        "top": _command_top,
        "map": _command_map,
        "report": _command_report,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
