"""Seeded, deterministic random program generator for the V-ISA subset.

Programs are emitted *structurally* — never as raw random words — so
every generated program terminates and every memory access stays inside
a sandboxed, mapped data buffer:

* the skeleton is one bounded outer loop (a counter register strictly
  decrements to zero) around a body of randomly chosen **chunks**;
* chunks are straight-line ALU strands, CMOV / byte-op / bit-op idioms,
  sized loads and stores at aligned displacements into the buffer,
  forward branches over filler, bounded inner loops (backward taken
  branches, the superblock-capture trigger), BSR/RET leaf calls (RAS
  and chaining patterns), console output, and trap-adjacent edges:
  unknown-PAL no-ops, boundary literals, and — at low probability —
  genuine guarded traps (GENTRAP from inside the hot loop, unaligned
  and unmapped accesses in the epilogue) so precise-trap delivery is on
  the fuzzed surface;
* ``hostile=True`` adds the hostile-guest chunks: guarded
  self-modifying stores that patch a donor instruction word over a
  labelled slot in the program's own text (the SMC surface), ``protect``
  PAL calls that flip page protections (including, when traps are
  allowed, revoking execute permission on the running code), and the
  ``getc``/``brk``/``yield`` syscalls; hostile programs also carry a
  scripted input for ``getc``;
* all randomness flows from one :class:`~repro.utils.rng.Xorshift64`
  seeded by ``mix(seed, index)``; the same ``(seed, index,
  max_insns, GENERATOR_VERSION)`` always yields byte-identical program
  words and data, in any process.

Bump :data:`GENERATOR_VERSION` whenever a change alters the emitted
words for an existing seed; corpus records carry the version so a
finding is always reproducible.
"""

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPS,
    JUMP_OPS,
    MEMORY_OPS,
    OPERATE_OPS,
    PAL_FUNCTIONS,
    RB_ONLY_OPS,
)
from repro.isa.registers import RA_REG, ZERO_REG
from repro.interp.pal import HEAP_BASE
from repro.memory.image import (
    PAGE_SIZE,
    PROT_ALL,
    PROT_READ,
    PROT_WRITE,
    Memory,
    Program,
)
from repro.utils.rng import Xorshift64
from repro.workloads.base import BinaryWorkload

#: Bump on any change that alters emitted words for an existing seed.
#: 2: hostile-guest chunks (SMC self-patching, protect flips, syscalls).
GENERATOR_VERSION = 2

#: Section layout; matches the assembler defaults so fuzz programs look
#: exactly like assembled workloads to the VM.
TEXT_BASE = 0x1_0000
DATA_BASE = 0x8_0000
#: Size of the sandboxed data buffer all memory chunks stay inside.
BUF_SIZE = 256

# -- register conventions -----------------------------------------------------
#: outer-loop counter; written only by the prologue and the loop tail.
_COUNTER = 1
#: data-buffer base pointer; never written after the prologue.
_BUF = 2
#: registers the body may freely overwrite.
_BODY_REGS = (3, 4, 5, 6, 7, 8, 9, 13, 14, 15)
#: registers the body may read (never written inside the body loop).
_READ_REGS = _BODY_REGS + (_COUNTER, _BUF)
#: inner-loop counter, guarded-trap scratch, address scratch.
_INNER = 10
_GUARD = 12
_SCRATCH = 11
#: console-output operand (CALL_PAL putc reads R16).
_CONSOLE = 16

#: ALU mnemonics safe for any operand values (semantics mask shifts).
_ALU_REG_OPS = (
    "addq", "subq", "addl", "subl", "s4addq", "s8subq", "s4addl",
    "s8addl", "and", "bis", "bic", "xor", "ornot", "eqv", "sll", "srl",
    "sra", "cmpeq", "cmplt", "cmple", "cmpult", "cmpule", "cmpbge",
    "mull", "mulq", "umulh",
)
_ALU_LIT_OPS = ("addq", "subq", "and", "xor", "bis", "sll", "srl",
                "cmpeq", "cmplt", "mulq", "zap", "zapnot")
_BYTE_OPS = ("extbl", "extwl", "extll", "extql", "insbl", "inswl",
             "insll", "insql", "mskbl", "mskwl", "mskll", "mskql")
_BIT_OPS = ("ctpop", "ctlz", "cttz", "sextb", "sextw")
_CMOV_PAIRS = (("cmpeq", "cmoveq"), ("cmpeq", "cmovne"),
               ("cmplt", "cmovlt"), ("cmpule", "cmovge"),
               ("and", "cmovlbs"), ("xor", "cmovlbc"),
               ("subq", "cmovle"), ("addq", "cmovgt"))
_COND_BRANCHES = ("beq", "bne", "blt", "bge", "ble", "bgt", "blbc",
                  "blbs")
_LOADS = (("ldq", 8), ("ldl", 4), ("ldwu", 2), ("ldbu", 1))
_STORES = (("stq", 8), ("stl", 4), ("stw", 2), ("stb", 1))
#: CALL_PAL functions that are architectural no-ops in this machine.
_PAL_NOOPS = (0x01, 0x13, 0x80, 0x3FF)
#: 8-bit operate literals, weighted toward the boundary encodings.
_BOUNDARY_LITS = (0, 1, 2, 7, 8, 15, 127, 128, 254, 255)


def _mix(seed, index):
    """Derive a non-zero 64-bit RNG seed from (campaign seed, index)."""
    x = (seed * 0x9E3779B97F4A7C15 + (index + 1) * 0xBF58476D1CE4E5B9)
    x &= (1 << 64) - 1
    x ^= x >> 31
    return x | 1


class _Emitter:
    """Accumulates instructions and label-indexed branches."""

    def __init__(self):
        self.items = []          # ("instr", Instruction) |
        #                          ("branch", mnemonic, ra, label) |
        #                          ("label", label)
        self._next_label = 0

    def label(self):
        self._next_label += 1
        return self._next_label

    def place(self, label):
        self.items.append(("label", label))

    def instr(self, instruction):
        self.items.append(("instr", instruction))

    def branch(self, mnemonic, ra, label):
        self.items.append(("branch", mnemonic, ra, label))

    def lda_slot(self, ra, label):
        """``lda ra, <4 * label index>(ra)`` — materialise the byte
        offset of a labelled text slot (combined with an ``ldah`` of the
        text base, this is how SMC chunks address their patch target)."""
        self.items.append(("lda_slot", ra, label))

    def instr_count(self):
        return sum(1 for item in self.items if item[0] != "label")

    def resolve(self):
        """Resolve labels and return the final instruction list."""
        index = 0
        positions = {}
        for item in self.items:
            if item[0] == "label":
                positions[item[1]] = index
            else:
                index += 1
        out = []
        for item in self.items:
            if item[0] == "label":
                continue
            if item[0] == "instr":
                out.append(item[1])
                continue
            if item[0] == "lda_slot":
                _kind, ra, label = item
                out.append(Instruction("lda", ra=ra, rb=ra,
                                       imm=4 * positions[label]))
                continue
            _kind, mnemonic, ra, label = item
            displacement = positions[label] - (len(out) + 1)
            out.append(Instruction(mnemonic, ra=ra, imm=displacement))
        return out


class FuzzProgram:
    """One generated (or corpus-loaded) program, ready to run or store.

    ``words`` are the encoded 32-bit text words, ``data`` the initial
    contents of the sandboxed buffer.  :meth:`to_program` builds a fresh
    :class:`~repro.memory.image.Program` per call — programs mutate
    their data, so every run needs its own image.
    """

    __slots__ = ("seed", "index", "version", "max_insns", "words", "data",
                 "entry", "text_base", "data_base", "shapes", "input",
                 "hostile")

    def __init__(self, seed, index, version, max_insns, words, data,
                 entry=TEXT_BASE, text_base=TEXT_BASE,
                 data_base=DATA_BASE, shapes=None, input=b"",
                 hostile=False):
        self.seed = seed
        self.index = index
        self.version = version
        self.max_insns = max_insns
        self.words = list(words)
        self.data = bytes(data)
        self.entry = entry
        self.text_base = text_base
        self.data_base = data_base
        self.shapes = dict(shapes or {})
        self.input = bytes(input)
        self.hostile = bool(hostile)

    @property
    def name(self):
        return f"fuzz[{self.seed}/{self.index}]"

    def to_bytes(self):
        """The program text as little-endian bytes (the corpus payload)."""
        return b"".join(word.to_bytes(4, "little") for word in self.words)

    def to_program(self):
        """Build a fresh loaded-program image."""
        return program_from_words(self.words, data=self.data,
                                  text_base=self.text_base,
                                  data_base=self.data_base,
                                  entry=self.entry, name=self.name,
                                  input_script=self.input)

    def to_workload(self):
        """Wrap as a workload so harness plumbing can run it."""
        return BinaryWorkload(
            self.name, f"fuzz program (seed {self.seed}, #{self.index})",
            self.to_program)

    def with_words(self, words):
        """A copy with replacement text words (used by the shrinker)."""
        return FuzzProgram(self.seed, self.index, self.version,
                           self.max_insns, words, self.data,
                           entry=self.entry, text_base=self.text_base,
                           data_base=self.data_base, shapes=self.shapes,
                           input=self.input, hostile=self.hostile)

    def __repr__(self):
        return (f"FuzzProgram({self.name}, {len(self.words)} words, "
                f"v{self.version})")


def program_from_words(words, data=b"", text_base=TEXT_BASE,
                       data_base=DATA_BASE, entry=None, name="fuzz",
                       input_script=b""):
    """Build a loaded program image from raw 32-bit text words.

    The data buffer is always mapped (``BUF_SIZE`` bytes minimum), so
    generated memory chunks have a sandbox even when ``data`` is short.
    Untouched text-page words read as zero, which decodes to ``call_pal
    halt`` — running off the end of a (shrunk) program halts cleanly.
    """
    memory = Memory()
    memory.map_segment("text", text_base, max(len(words) * 4, 4))
    memory.map_segment("data", data_base, max(BUF_SIZE, len(data)))
    for offset, word in enumerate(words):
        memory.store(text_base + 4 * offset, word, 4)
    if data:
        memory.write_bytes(data_base, bytes(data))
    return Program(memory, entry if entry is not None else text_base,
                   symbols={"buf": data_base},
                   text_base=text_base, text_size=len(words) * 4,
                   source_name=name, input_script=input_script)


# -- single-instruction emission (shared with the property tests) -------------

def _literal(rng):
    """An 8-bit operate literal, weighted toward boundary encodings."""
    if rng.next_range(3) == 0:
        return _BOUNDARY_LITS[rng.next_range(len(_BOUNDARY_LITS))]
    return rng.next_range(256)


def _pick(rng, pool):
    return pool[rng.next_range(len(pool))]


def random_instruction(rng):
    """One random-but-valid instruction of any format.

    Used by the hypothesis codec property tests: immediates are
    boundary-weighted, and every format (memory, operate register and
    literal forms, branch, jump, PAL) is reachable.
    """
    fmt = rng.next_range(6)
    if fmt == 0:        # memory format (loads/stores/lda/ldah)
        mnemonic = _pick(rng, tuple(sorted(MEMORY_OPS)))
        disp = _pick(rng, (-32768, -1, 0, 1, 32767,
                           rng.next_range(1 << 16) - (1 << 15)))
        return Instruction(mnemonic, ra=rng.next_range(32),
                           rb=rng.next_range(32), imm=disp)
    if fmt == 1:        # operate, register form
        mnemonic = _pick(rng, tuple(sorted(OPERATE_OPS)))
        ra = ZERO_REG if mnemonic in RB_ONLY_OPS else rng.next_range(32)
        return Instruction(mnemonic, ra=ra, rb=rng.next_range(32),
                           rc=rng.next_range(32))
    if fmt == 2:        # operate, literal form
        mnemonic = _pick(rng, tuple(sorted(OPERATE_OPS)))
        ra = ZERO_REG if mnemonic in RB_ONLY_OPS else rng.next_range(32)
        return Instruction(mnemonic, ra=ra, rc=rng.next_range(32),
                           imm=_literal(rng), islit=True)
    if fmt == 3:        # branch format
        mnemonic = _pick(rng, tuple(sorted(BRANCH_OPS)))
        disp = _pick(rng, (-(1 << 20), -1, 0, 1, (1 << 20) - 1,
                           rng.next_range(1 << 21) - (1 << 20)))
        return Instruction(mnemonic, ra=rng.next_range(32), imm=disp)
    if fmt == 4:        # jump format
        mnemonic = _pick(rng, tuple(sorted(JUMP_OPS)))
        return Instruction(mnemonic, ra=rng.next_range(32),
                           rb=rng.next_range(32),
                           imm=_pick(rng, (0, 1, (1 << 14) - 1,
                                           rng.next_range(1 << 14))))
    return Instruction("call_pal",
                       imm=_pick(rng, (0, 1, (1 << 26) - 1,
                                       rng.next_range(1 << 26))))


# -- chunk emitters -----------------------------------------------------------

def _emit_alu(rng, emitter):
    for _ in range(1 + rng.next_range(5)):
        rc = _pick(rng, _BODY_REGS)
        choice = rng.next_range(4)
        if choice == 0:
            op = _pick(rng, _ALU_LIT_OPS)
            emitter.instr(Instruction(op, ra=_pick(rng, _READ_REGS),
                                      rc=rc, imm=_literal(rng),
                                      islit=True))
        elif choice == 1:
            op = _pick(rng, _BIT_OPS)
            emitter.instr(Instruction(op, ra=ZERO_REG,
                                      rb=_pick(rng, _READ_REGS), rc=rc))
        else:
            op = _pick(rng, _ALU_REG_OPS)
            emitter.instr(Instruction(op, ra=_pick(rng, _READ_REGS),
                                      rb=_pick(rng, _READ_REGS), rc=rc))


def _emit_byteop(rng, emitter):
    """Extract/insert/mask idioms Alpha string code is built from."""
    rc = _pick(rng, _BODY_REGS)
    op = _pick(rng, _BYTE_OPS)
    if rng.next_range(2):
        emitter.instr(Instruction(op, ra=_pick(rng, _READ_REGS), rc=rc,
                                  imm=rng.next_range(8), islit=True))
    else:
        emitter.instr(Instruction(op, ra=_pick(rng, _READ_REGS),
                                  rb=_pick(rng, _READ_REGS), rc=rc))
    if rng.next_range(2):
        emitter.instr(Instruction(_pick(rng, ("zap", "zapnot")),
                                  ra=rc, rc=_pick(rng, _BODY_REGS),
                                  imm=_literal(rng), islit=True))


def _emit_cmov(rng, emitter):
    cmp_op, cmov_op = _pick(rng, _CMOV_PAIRS)
    guard = _pick(rng, _BODY_REGS)
    emitter.instr(Instruction(cmp_op, ra=_pick(rng, _READ_REGS),
                              rb=_pick(rng, _READ_REGS), rc=guard))
    emitter.instr(Instruction(cmov_op, ra=guard,
                              rb=_pick(rng, _READ_REGS),
                              rc=_pick(rng, _BODY_REGS)))


def _emit_mem(rng, emitter):
    """One sized access at an aligned displacement inside the buffer."""
    if rng.next_range(2):
        mnemonic, size = _pick(rng, _LOADS)
        reg = _pick(rng, _BODY_REGS)
    else:
        mnemonic, size = _pick(rng, _STORES)
        reg = _pick(rng, _READ_REGS)
    slot = rng.next_range(BUF_SIZE // size)
    emitter.instr(Instruction(mnemonic, ra=reg, rb=_BUF,
                              imm=slot * size))


def _emit_fwd_branch(rng, emitter):
    """A conditional branch over 1..3 filler instructions."""
    skip = emitter.label()
    emitter.branch(_pick(rng, _COND_BRANCHES), _pick(rng, _READ_REGS),
                   skip)
    for _ in range(1 + rng.next_range(3)):
        emitter.instr(Instruction("addq", ra=_pick(rng, _READ_REGS),
                                  rc=_pick(rng, _BODY_REGS),
                                  imm=_literal(rng), islit=True))
    emitter.place(skip)


def _emit_inner_loop(rng, emitter):
    """A bounded inner loop: the backward-taken-branch capture trigger."""
    emitter.instr(Instruction("lda", ra=_INNER, rb=ZERO_REG,
                              imm=2 + rng.next_range(5)))
    top = emitter.label()
    emitter.place(top)
    for _ in range(1 + rng.next_range(3)):
        if rng.next_range(4) == 0:
            _emit_mem(rng, emitter)
        else:
            emitter.instr(Instruction(_pick(rng, _ALU_REG_OPS),
                                      ra=_pick(rng, _READ_REGS),
                                      rb=_INNER,
                                      rc=_pick(rng, _BODY_REGS)))
    emitter.instr(Instruction("subq", ra=_INNER, rc=_INNER, imm=1,
                              islit=True))
    emitter.branch("bne", _INNER, top)


def _emit_putc(rng, emitter):
    emitter.instr(Instruction("and", ra=_pick(rng, _READ_REGS),
                              rc=_CONSOLE, imm=0x7F, islit=True))
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["putc"]))


def _emit_pal_noop(rng, emitter):
    emitter.instr(Instruction("call_pal", imm=_pick(rng, _PAL_NOOPS)))


def _emit_guarded_trap(rng, emitter):
    """GENTRAP fired from inside the hot loop on a late iteration.

    ``cmpeq`` the outer counter against a small value: the trap fires
    exactly once, after enough iterations that the loop is translated —
    precise delivery from translated code, not interpretation.
    """
    skip = emitter.label()
    emitter.instr(Instruction("cmpeq", ra=_COUNTER, rc=_GUARD,
                              imm=1 + rng.next_range(4), islit=True))
    emitter.branch("beq", _GUARD, skip)
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["gentrap"]))
    emitter.place(skip)


# -- hostile chunk emitters ---------------------------------------------------
#
# Everything below fires behind the same guard idiom as
# ``_emit_guarded_trap`` (``cmpeq`` the outer counter against a small
# value) so the hostile act lands on a *late* iteration — after the hot
# loop has been captured and translated — which is exactly where SMC
# invalidation, protect-driven invalidation and the retranslate deopt
# path live.

#: donor-word ALU mnemonics: any operand values are safe, so a patched
#: slot can swap between them freely without risking a trap.
_DONOR_OPS = ("addq", "subq", "xor", "bis", "and")
#: protect scratch: the PAL argument registers (a0..a2 = R16..R18).
#: R16 doubles as the console operand, but every putc re-materialises it.
_PAL_ARGS = (16, 17, 18)


def _emit_smc(rng, emitter, donors):
    """A guarded self-modifying store over a labelled slot in own text.

    The generator encodes a donor ALU instruction and appends its word
    to the data image *past* the sandboxed buffer (random memory chunks
    never reach it).  On one late iteration the program loads the donor
    word back (``ldl``), materialises the patch target's own address
    (``ldah`` text base + ``lda`` of the slot's resolved byte offset)
    and ``stl``s it over the slot — which sits on the fall-through path
    and executes again on every remaining iteration.  Both the original
    and donor instructions are harmless ALU ops writing a body register,
    so the program survives its own patch; what changes is which values
    flow — and, underneath, that every engine must detect the write,
    invalidate precisely, and retranslate the rewritten code.
    """
    slot = emitter.label()
    skip = emitter.label()
    emitter.instr(Instruction("cmpeq", ra=_COUNTER, rc=_GUARD,
                              imm=1 + rng.next_range(4), islit=True))
    emitter.branch("beq", _GUARD, skip)
    donor = Instruction(_pick(rng, _DONOR_OPS),
                        ra=_pick(rng, _READ_REGS),
                        rc=_pick(rng, _BODY_REGS),
                        imm=_literal(rng), islit=True)
    offset = BUF_SIZE + 4 * len(donors)
    donors.append(encode(donor))
    emitter.instr(Instruction("ldl", ra=_SCRATCH, rb=_BUF, imm=offset))
    emitter.instr(Instruction("ldah", ra=17, rb=ZERO_REG,
                              imm=TEXT_BASE >> 16))
    emitter.lda_slot(17, slot)
    emitter.instr(Instruction("stl", ra=_SCRATCH, rb=17, imm=0))
    emitter.place(skip)
    emitter.place(slot)
    emitter.instr(Instruction(_pick(rng, _DONOR_OPS),
                              ra=_pick(rng, _READ_REGS),
                              rc=_pick(rng, _BODY_REGS),
                              imm=_literal(rng), islit=True))


def _emit_protect(rng, emitter, allow_traps):
    """A guarded ``protect`` PAL call flipping page protections.

    Three variants: revoke execute on the program's own first text page
    (the next fetch from it protection-faults — gated by
    ``allow_traps``), a deliberately failing call against an unmapped
    range (R0 reads back ``EOF_VALUE``), and a benign flip of the data
    page between writable protection combinations.
    """
    skip = emitter.label()
    emitter.instr(Instruction("cmpeq", ra=_COUNTER, rc=_GUARD,
                              imm=1 + rng.next_range(3), islit=True))
    emitter.branch("beq", _GUARD, skip)
    choice = rng.next_range(6)
    if allow_traps and choice == 0:
        base_high, prot = TEXT_BASE >> 16, PROT_READ | PROT_WRITE
    elif choice == 1:
        base_high, prot = 0x30, PROT_ALL        # unmapped: fails clean
    else:
        base_high = DATA_BASE >> 16
        prot = _pick(rng, (PROT_READ | PROT_WRITE, PROT_ALL))
    emitter.instr(Instruction("ldah", ra=16, rb=ZERO_REG, imm=base_high))
    emitter.instr(Instruction("lda", ra=17, rb=ZERO_REG, imm=PAGE_SIZE))
    emitter.instr(Instruction("lda", ra=18, rb=ZERO_REG, imm=prot))
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["protect"]))
    emitter.place(skip)


def _emit_getc(rng, emitter):
    """Read one scripted input byte and fold it into a body register."""
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["getc"]))
    emitter.instr(Instruction("addq", ra=0, rb=_pick(rng, _READ_REGS),
                              rc=_pick(rng, _BODY_REGS)))


def _emit_brk(rng, emitter):
    """Grow the heap with ``brk``, then store/load through the new page."""
    request = 8 + 8 * rng.next_range(64)
    emitter.instr(Instruction("ldah", ra=16, rb=ZERO_REG,
                              imm=HEAP_BASE >> 16))
    emitter.instr(Instruction("lda", ra=16, rb=16, imm=request))
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["brk"]))
    # the first heap page is mapped now (request >= HEAP_BASE + 8);
    # fresh pages read back deterministic zeros
    emitter.instr(Instruction("ldah", ra=_SCRATCH, rb=ZERO_REG,
                              imm=HEAP_BASE >> 16))
    emitter.instr(Instruction("stq", ra=_pick(rng, _READ_REGS),
                              rb=_SCRATCH, imm=8 * rng.next_range(16)))
    emitter.instr(Instruction("ldq", ra=_pick(rng, _BODY_REGS),
                              rb=_SCRATCH, imm=8 * rng.next_range(16)))


def _emit_yield(rng, emitter):
    """Cooperative yield: a superblock-ending architectural no-op."""
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["yield"]))


#: body chunk emitters with selection weights.
_CHUNKS = (
    (_emit_alu, 6),
    (_emit_byteop, 2),
    (_emit_cmov, 2),
    (_emit_mem, 4),
    (_emit_fwd_branch, 3),
    (_emit_inner_loop, 2),
    (_emit_putc, 1),
    (_emit_pal_noop, 1),
)
_CHUNK_TABLE = tuple(emit for emit, weight in _CHUNKS
                     for _ in range(weight))
_CHUNK_NAMES = {
    _emit_alu: "alu", _emit_byteop: "byteop", _emit_cmov: "cmov",
    _emit_mem: "mem", _emit_fwd_branch: "branch",
    _emit_inner_loop: "loop", _emit_putc: "putc",
    _emit_pal_noop: "palnop", _emit_guarded_trap: "guarded_trap",
}


def _emit_prologue(rng, emitter, iterations):
    emitter.instr(Instruction("ldah", ra=_BUF, rb=ZERO_REG,
                              imm=DATA_BASE >> 16))
    for reg in _BODY_REGS:
        init = _pick(rng, (-32768, -1, 0, 1, 32767,
                           rng.next_range(1 << 16) - (1 << 15)))
        emitter.instr(Instruction("lda", ra=reg, rb=ZERO_REG, imm=init))
        if rng.next_range(3) == 0:
            # spread seeds into the high bits so 64-bit paths matter
            emitter.instr(Instruction("sll", ra=reg, rc=reg,
                                      imm=rng.next_range(48), islit=True))
    emitter.instr(Instruction("lda", ra=_GUARD, rb=ZERO_REG, imm=0))
    emitter.instr(Instruction("lda", ra=_CONSOLE, rb=ZERO_REG, imm=0))
    emitter.instr(Instruction("lda", ra=_COUNTER, rb=ZERO_REG,
                              imm=iterations))


def _emit_epilogue_trap(rng, emitter, shapes):
    """One post-loop trap shape: runs once, after the hot loop."""
    choice = rng.next_range(3)
    if choice == 0:
        shapes["trap_unaligned"] = shapes.get("trap_unaligned", 0) + 1
        emitter.instr(Instruction("lda", ra=_SCRATCH, rb=_BUF, imm=1))
        emitter.instr(Instruction("ldq", ra=_pick(rng, _BODY_REGS),
                                  rb=_SCRATCH, imm=0))
    elif choice == 1:
        shapes["trap_unmapped"] = shapes.get("trap_unmapped", 0) + 1
        emitter.instr(Instruction("ldah", ra=_SCRATCH, rb=ZERO_REG,
                                  imm=0x40))
        emitter.instr(Instruction("ldq", ra=_pick(rng, _BODY_REGS),
                                  rb=_SCRATCH, imm=0))
    else:
        shapes["trap_gentrap"] = shapes.get("trap_gentrap", 0) + 1
        emitter.instr(Instruction("call_pal",
                                  imm=PAL_FUNCTIONS["gentrap"]))


def generate(seed, index=0, max_insns=60, allow_traps=True,
             hostile=False):
    """Generate one program; deterministic in all arguments.

    ``max_insns`` bounds the emitted *body* size (the loop body between
    prologue and epilogue); whole programs run a few thousand dynamic
    instructions at most.  ``hostile=True`` mixes the hostile-guest
    chunks (SMC self-patching, protect flips, getc/brk/yield syscalls)
    into the selection table and attaches a scripted input.
    """
    if max_insns < 4:
        raise ValueError("max_insns must be >= 4")
    rng = Xorshift64(_mix(seed, index))
    emitter = _Emitter()
    shapes = {}
    donors = []
    chunk_table, chunk_names = _CHUNK_TABLE, _CHUNK_NAMES
    if hostile:
        def smc(chunk_rng, chunk_emitter):
            _emit_smc(chunk_rng, chunk_emitter, donors)

        def protect(chunk_rng, chunk_emitter):
            _emit_protect(chunk_rng, chunk_emitter, allow_traps)

        hostile_chunks = ((smc, 2), (protect, 2), (_emit_getc, 2),
                          (_emit_brk, 1), (_emit_yield, 1))
        chunk_table = _CHUNK_TABLE + tuple(
            emit for emit, weight in hostile_chunks
            for _ in range(weight))
        chunk_names = dict(_CHUNK_NAMES)
        chunk_names.update({smc: "smc", protect: "protect",
                            _emit_getc: "getc", _emit_brk: "brk",
                            _emit_yield: "yield"})
    iterations = 12 + rng.next_range(29)

    _emit_prologue(rng, emitter, iterations)

    # decide leaf functions up front so body chunks can call them
    leaves = [emitter.label() for _ in range(rng.next_range(3))]
    if leaves:
        shapes["call"] = 0

    loop_top = emitter.label()
    emitter.place(loop_top)
    body_start = emitter.instr_count()
    if allow_traps and rng.next_range(12) == 0:
        _emit_guarded_trap(rng, emitter)
        shapes["guarded_trap"] = 1
    while emitter.instr_count() - body_start < max_insns:
        if leaves and rng.next_range(10) == 0:
            emitter.instr(Instruction("bsr", ra=RA_REG, imm=0))
            # rewrite as a label branch: bsr is branch-format
            emitter.items[-1] = ("branch", "bsr", RA_REG,
                                 _pick(rng, leaves))
            shapes["call"] += 1
            continue
        chunk = _pick(rng, chunk_table)
        chunk(rng, emitter)
        name = chunk_names[chunk]
        shapes[name] = shapes.get(name, 0) + 1
    emitter.instr(Instruction("subq", ra=_COUNTER, rc=_COUNTER, imm=1,
                              islit=True))
    emitter.branch("bne", _COUNTER, loop_top)

    # epilogue: fold state into a console byte, maybe trap, halt
    emitter.instr(Instruction("xor", ra=3, rb=5, rc=_CONSOLE))
    emitter.instr(Instruction("xor", ra=_CONSOLE, rb=8, rc=_CONSOLE))
    emitter.instr(Instruction("and", ra=_CONSOLE, rc=_CONSOLE, imm=0x7F,
                              islit=True))
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["putc"]))
    if allow_traps and rng.next_range(8) == 0:
        _emit_epilogue_trap(rng, emitter, shapes)
    emitter.instr(Instruction("call_pal", imm=PAL_FUNCTIONS["halt"]))

    # leaf functions live after the halt; reachable only via BSR
    for leaf in leaves:
        emitter.place(leaf)
        for _ in range(2 + rng.next_range(3)):
            emitter.instr(Instruction(_pick(rng, _ALU_REG_OPS),
                                      ra=_pick(rng, (13, 14, 15)),
                                      rb=_pick(rng, _READ_REGS),
                                      rc=_pick(rng, (13, 14, 15))))
        emitter.instr(Instruction("ret", ra=ZERO_REG, rb=RA_REG, imm=1))

    words = [encode(instr) for instr in emitter.resolve()]
    data = rng.next_bytes(BUF_SIZE)
    if donors:
        # donor words live past the sandboxed buffer, out of reach of
        # random stores — a corrupted donor could patch in garbage
        data += b"".join(word.to_bytes(4, "little") for word in donors)
    input_script = rng.next_bytes(4 + rng.next_range(28)) if hostile \
        else b""
    return FuzzProgram(seed, index, GENERATOR_VERSION, max_insns, words,
                       data, shapes=shapes, input=input_script,
                       hostile=hostile)
