"""Seeded Alpha-subset program fuzzer with differential oracles.

The fuzzer turns the repository's three independent execution semantics
(pure interpreter, naive VM engine, specialized VM engine) plus the
chaos layer into a generative correctness harness: a deterministic
seeded generator emits structured random V-ISA programs, an oracle stack
runs each one through interpreter-vs-VM co-simulation, the
specialized-vs-naive engine differential and (optionally) a seeded
fault schedule, and any divergence in architectural state, console
output, data memory, committed counts or ``VMStats`` is a finding.
Findings shrink to minimal reproducers and every program serialises to
a reproducible corpus record (seed + generator version + program
bytes).  See ``docs/testing.md``.
"""

from repro.fuzz.campaign import Finding, FuzzCampaignResult, run_campaign
from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    entry_dict,
    load_corpus,
    load_entry,
    program_from_entry,
    write_corpus,
)
from repro.fuzz.gen import (
    GENERATOR_VERSION,
    FuzzProgram,
    generate,
    program_from_words,
    random_instruction,
)
from repro.fuzz.oracle import ORACLE_BUDGET, check_program, execute_fuzz_point
from repro.fuzz.shrink import shrink_words

__all__ = [
    "CORPUS_FORMAT",
    "Finding",
    "FuzzCampaignResult",
    "FuzzProgram",
    "GENERATOR_VERSION",
    "ORACLE_BUDGET",
    "check_program",
    "entry_dict",
    "execute_fuzz_point",
    "generate",
    "load_corpus",
    "load_entry",
    "program_from_entry",
    "program_from_words",
    "random_instruction",
    "run_campaign",
    "shrink_words",
    "write_corpus",
]
