"""Differential oracles for generated programs.

Every generated program is judged by agreement between independent
semantics, never by a hand-written expectation:

* **cosim** — the co-designed VM (specialized interpreter engine) must
  reproduce the naive pure interpreter bit for bit: final PC, all 32
  registers, console output, the data buffer, the committed-instruction
  count, and — on a trap — the trap kind and precise V-PC;
* **engine** — the VM run again under every other execution engine (the
  ``engines`` axis, default naive *and* jit) must match the specialized
  run, including every ``VMStats`` counter (``vars()`` equality); jit
  runs use a low promotion threshold so tier-2 generated code actually
  executes on short fuzz loops;
* **chaos** (optional) — the VM under a seeded fault schedule must still
  converge to the fault-free reference.

Budget exhaustion on either side makes a comparison *inconclusive*, not
a finding: generated programs terminate by construction, but shrinking
can manufacture infinite loops, and the shrink predicate must not chase
them.
"""

import hashlib

from repro.faults.plan import DEFAULT_CHAOS_SPECS, HOSTILE_CHAOS_SPECS
from repro.fuzz.gen import BUF_SIZE
from repro.interp.interpreter import Halted, Interpreter
from repro.isa.semantics import Trap
from repro.translator.superblock import elided_by_translation
from repro.vm.config import VMConfig
from repro.vm.system import BudgetExceeded, CoDesignedVM
from repro.vm.traps import VMTrap

#: Generous default: generated programs run a few thousand dynamic
#: instructions, so hitting this means a shrink artifact, not slowness.
ORACLE_BUDGET = 200_000

#: Hot threshold for oracle runs.  The default (50) would leave short
#: fuzz loops interpreted forever; 8 guarantees the outer loop — and
#: usually the inner ones — actually reach translated code.
ORACLE_THRESHOLD = 8

#: Jit promotion threshold for oracle runs: fuzz loops are short, so the
#: default (16) could leave tier-2 code cold; 2 promotes on the second
#: visit, making the engine stage exercise generated code.
ORACLE_JIT_THRESHOLD = 2

#: Chaos-stage fault schedule (the same default ``repro chaos`` uses).
CHAOS_SPEC = ";".join(DEFAULT_CHAOS_SPECS)

#: Chaos-stage schedule for hostile programs: the defaults plus the
#: SMC-widening and spurious-protect-invalidation sites, which only have
#: something to bite when the guest actually self-modifies or calls
#: ``protect``.  Both are behaviour-neutral (they invalidate more than
#: strictly needed), so the fault-free reference still applies.
HOSTILE_CHAOS_SPEC = ";".join(DEFAULT_CHAOS_SPECS + HOSTILE_CHAOS_SPECS)

STAGES = ("cosim", "engine", "chaos")

#: Engines the engine stage compares against the specialized reference.
ENGINE_AXIS = ("naive", "jit")


class Outcome:
    """What one execution of a program observably did."""

    __slots__ = ("status", "pc", "regs", "console", "mem", "committed",
                 "trap_kind", "trap_vpc", "insns")

    def __init__(self, status, pc, regs, console, mem, committed=None,
                 trap_kind=None, trap_vpc=None, insns=0):
        self.status = status          # "halted" | "trap" | "budget"
        self.pc = pc
        self.regs = list(regs)
        self.console = console
        self.mem = mem                # sha256 hex digest of the buffer
        self.committed = committed    # non-elided count (halt only)
        self.trap_kind = trap_kind
        self.trap_vpc = trap_vpc
        self.insns = insns            # total dynamic instructions

    def to_dict(self):
        return {
            "status": self.status, "pc": self.pc, "console": self.console,
            "mem": self.mem, "committed": self.committed,
            "trap_kind": self.trap_kind, "trap_vpc": self.trap_vpc,
            "insns": self.insns,
        }


def _mem_digest(program, fprog):
    data = program.memory.read_bytes(
        fprog.data_base, max(BUF_SIZE, len(fprog.data)))
    return hashlib.sha256(data).hexdigest()


def run_reference(fprog, budget=ORACLE_BUDGET):
    """Pure naive interpretation: the ground-truth outcome.

    A hand-written step loop (``Interpreter.run`` folds halt and budget
    exhaustion together) that also counts committed instructions the way
    the VM does: NOPs and plain unconditional branches are elided by
    translation, so they carry no commit weight.
    """
    program = fprog.to_program()
    interp = Interpreter(program, exec_engine="naive")
    committed = 0
    steps = 0
    status = "budget"
    trap_kind = trap_vpc = None
    while steps < budget:
        pc = interp.state.pc
        try:
            instr = interp.fetch(pc)
            interp.step()
        except Halted:
            # the halting CALL_PAL is not committed (matches the VM,
            # which drops it from interpreted_instructions too)
            status = "halted"
            break
        except Trap as trap:
            status = "trap"
            trap_kind = trap.kind.value
            trap_vpc = trap.vpc
            break
        if not elided_by_translation(instr):
            committed += 1
        steps += 1
    return Outcome(status, interp.state.pc, interp.state.regs,
                   interp.console_text(), _mem_digest(program, fprog),
                   committed=committed if status == "halted" else None,
                   trap_kind=trap_kind, trap_vpc=trap_vpc, insns=steps)


def oracle_config(exec_engine="specialized", faults=None, fault_seed=0,
                  telemetry=False, trace=False):
    """The VM configuration oracle stages run under."""
    return VMConfig(threshold=ORACLE_THRESHOLD, collect_trace=False,
                    exec_engine=exec_engine,
                    jit_threshold=ORACLE_JIT_THRESHOLD, faults=faults,
                    fault_seed=fault_seed, telemetry=telemetry,
                    trace=trace)


def run_vm_outcome(fprog, config, budget=ORACLE_BUDGET):
    """Run under the co-designed VM; returns ``(Outcome, vm)``."""
    program = fprog.to_program()
    vm = CoDesignedVM(program, config)
    status = "halted"
    trap_kind = trap_vpc = None
    pc = None
    regs = None
    try:
        vm.run(max_v_instructions=budget)
    except VMTrap as exc:
        status = "trap"
        trap_kind = exc.trap.kind.value
        trap_vpc = exc.trap.vpc
        pc = exc.state.pc
        regs = exc.state.regs
    except BudgetExceeded:
        status = "budget"
    if pc is None:
        pc = vm.state.pc
        regs = vm.state.regs
    committed = vm.stats.committed_v_instructions() \
        if status == "halted" else None
    outcome = Outcome(status, pc, regs, vm.console_text(),
                      _mem_digest(program, fprog), committed=committed,
                      trap_kind=trap_kind, trap_vpc=trap_vpc,
                      insns=vm.stats.total_v_instructions())
    return outcome, vm


def compare_outcomes(expected, actual, check_committed=True):
    """Differences between two outcomes, as human-readable reasons.

    Returns ``None`` (inconclusive) when either side ran out of budget.
    """
    if expected.status == "budget" or actual.status == "budget":
        return None
    reasons = []
    if expected.status != actual.status:
        reasons.append(f"status: expected {expected.status}, "
                       f"got {actual.status}")
        return reasons
    if expected.status == "trap":
        if expected.trap_kind != actual.trap_kind:
            reasons.append(f"trap kind: expected {expected.trap_kind}, "
                           f"got {actual.trap_kind}")
        if expected.trap_vpc != actual.trap_vpc:
            reasons.append(
                f"trap vpc: expected {expected.trap_vpc:#x}, "
                f"got {actual.trap_vpc:#x}")
    if expected.pc != actual.pc:
        reasons.append(f"pc: expected {expected.pc:#x}, got {actual.pc:#x}")
    for index, (want, got) in enumerate(zip(expected.regs, actual.regs)):
        if want != got:
            reasons.append(f"r{index}: expected {want:#x}, got {got:#x}")
    if expected.console != actual.console:
        reasons.append(f"console: expected {expected.console!r}, "
                       f"got {actual.console!r}")
    if expected.mem != actual.mem:
        reasons.append("data buffer contents differ")
    if check_committed and expected.status == "halted" and \
            expected.committed != actual.committed:
        reasons.append(f"committed: expected {expected.committed}, "
                       f"got {actual.committed}")
    return reasons


def check_program(fprog, budget=ORACLE_BUDGET, chaos=False, stages=None,
                  chaos_seed=None, engines=ENGINE_AXIS):
    """Run the oracle stack over one program.

    ``engines`` is the engine stage's comparison axis: each listed
    engine is run against the specialized reference with full
    ``VMStats`` equality.  Returns a report dict: ``failures`` is a
    list of ``{stage, reason}`` records (empty means the program agrees
    everywhere), ``inconclusive`` lists stages skipped for budget
    exhaustion.
    """
    if stages is None:
        stages = ("cosim", "engine") + (("chaos",) if chaos else ())
    failures = []
    inconclusive = []

    reference = run_reference(fprog, budget=budget)
    specialized = None
    _svm = None

    if "cosim" in stages:
        specialized, _svm = run_vm_outcome(fprog, oracle_config(),
                                           budget=budget)
        reasons = compare_outcomes(reference, specialized)
        if reasons is None:
            inconclusive.append("cosim")
        else:
            failures.extend({"stage": "cosim", "reason": reason}
                            for reason in reasons)

    if "engine" in stages:
        if specialized is None:
            specialized, _svm = run_vm_outcome(fprog, oracle_config(),
                                               budget=budget)
        for engine in engines:
            if engine == "specialized":
                continue  # comparing the reference with itself
            other, other_vm = run_vm_outcome(
                fprog, oracle_config(exec_engine=engine), budget=budget)
            reasons = compare_outcomes(specialized, other)
            if reasons is None:
                if "engine" not in inconclusive:
                    inconclusive.append("engine")
                continue
            failures.extend({"stage": "engine",
                             "reason": f"[{engine}] {reason}"}
                            for reason in reasons)
            if vars(other_vm.stats) != vars(_svm.stats):
                diffs = _stats_diff(_svm.stats, other_vm.stats)
                failures.extend({"stage": "engine",
                                 "reason": f"stats.{name}: specialized "
                                           f"{a}, {engine} {b}"}
                                for name, a, b in diffs)

    if "chaos" in stages:
        seed = chaos_seed if chaos_seed is not None else \
            (fprog.seed * 1_000_003 + fprog.index + 1) & 0x7FFFFFFF
        spec = HOSTILE_CHAOS_SPEC if getattr(fprog, "hostile", False) \
            else CHAOS_SPEC
        chaotic, _chaos_vm = run_vm_outcome(
            fprog, oracle_config(faults=spec, fault_seed=seed),
            budget=budget)
        # faults change how the run gets there, never where it ends up:
        # stats are expected to differ, committed accounting is not
        reasons = compare_outcomes(reference, chaotic)
        if reasons is None:
            inconclusive.append("chaos")
        else:
            failures.extend({"stage": "chaos", "reason": reason}
                            for reason in reasons)

    return {
        "seed": fprog.seed,
        "index": fprog.index,
        "generator_version": fprog.version,
        "outcome": reference.to_dict(),
        "failures": failures,
        "inconclusive": inconclusive,
    }


def _stats_diff(a, b):
    avars, bvars = vars(a), vars(b)
    return [(name, avars[name], bvars[name])
            for name in sorted(avars)
            if avars[name] != bvars.get(name)]


def execute_fuzz_point(point):
    """Harness entry: run one fuzz run point and summarise it.

    Pure function of the point (see ``repro.harness.runpoints``): the
    program is regenerated from ``(seed, index, max_insns)``, so the
    summary — including the program's text hash — is bit-identical in
    any process, which the campaign exploits as a built-in cross-process
    determinism check.
    """
    from repro.fuzz.gen import generate

    fields = dict(point.config)
    engines = fields.get("engines", ENGINE_AXIS)
    hostile = fields.get("hostile", False)
    fprog = generate(fields["seed"], index=fields["index"],
                     max_insns=fields["max_insns"], hostile=hostile)
    report = check_program(fprog, budget=point.budget,
                           chaos=fields["chaos"], engines=engines)
    text = fprog.to_bytes()
    summary = {
        "kind": "fuzz",
        "workload": fprog.name,
        "seed": fprog.seed,
        "index": fprog.index,
        "generator_version": fprog.version,
        "max_insns": fields["max_insns"],
        "chaos": fields["chaos"],
        "hostile": hostile,
        "engines": list(engines),
        "budget": point.budget,
        "insns": len(fprog.words),
        "text_sha256": hashlib.sha256(text).hexdigest(),
        "shapes": dict(fprog.shapes),
        "outcome": report["outcome"],
        "failures": report["failures"],
        "inconclusive": report["inconclusive"],
        "evals": {},
    }
    if fields.get("telemetry"):
        _outcome, vm = run_vm_outcome(
            fprog, oracle_config(telemetry=True), budget=point.budget)
        summary["telemetry"] = vm.telemetry.summary()
        summary["telemetry_host"] = vm.telemetry.host_summary()
    return summary
