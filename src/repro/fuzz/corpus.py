"""Reproducible corpus format for fuzz programs.

One JSON file per program, byte-deterministic (sorted keys, fixed
separators, trailing newline) so identical seeds produce identical
corpora in any process — the seed-stability tests diff the files
directly.  Records are self-contained: they carry the encoded program
bytes, the initial data buffer and the memory layout, so a corpus entry
replays *without* regenerating — checked-in regression corpora survive
generator evolution (``generator_version`` records provenance, it is
not needed for replay).
"""

import hashlib
import json
import os

from repro.fuzz.gen import FuzzProgram

#: Bump only on incompatible record-layout changes.
CORPUS_FORMAT = "repro-fuzz-corpus-v1"

MANIFEST_NAME = "MANIFEST.json"


def entry_dict(fprog, failures=None, shrunk_words=None):
    """The JSON-able corpus record for one program."""
    text = fprog.to_bytes()
    entry = {
        "format": CORPUS_FORMAT,
        "generator_version": fprog.version,
        "seed": fprog.seed,
        "index": fprog.index,
        "max_insns": fprog.max_insns,
        "entry": fprog.entry,
        "text_base": fprog.text_base,
        "data_base": fprog.data_base,
        "text": text.hex(),
        "text_sha256": hashlib.sha256(text).hexdigest(),
        "data": fprog.data.hex(),
        "shapes": dict(fprog.shapes),
    }
    if fprog.hostile:
        entry["hostile"] = True
    if fprog.input:
        entry["input"] = fprog.input.hex()
    if failures:
        entry["failures"] = list(failures)
    if shrunk_words is not None:
        shrunk = b"".join(word.to_bytes(4, "little")
                          for word in shrunk_words)
        entry["shrunk_text"] = shrunk.hex()
    return entry


def _render(entry):
    return json.dumps(entry, sort_keys=True,
                      separators=(",", ": "), indent=1) + "\n"


def entry_filename(entry):
    """Deterministic per-record file name: ``<seed-hex>-<index>.json``."""
    return f"{entry['seed']:08x}-{entry['index']:05d}.json"


def write_corpus(directory, entries):
    """Write corpus records plus a manifest; returns the file names."""
    os.makedirs(directory, exist_ok=True)
    names = []
    for entry in entries:
        name = entry_filename(entry)
        with open(os.path.join(directory, name), "w",
                  encoding="utf-8") as handle:
            handle.write(_render(entry))
        names.append(name)
    manifest = {
        "format": CORPUS_FORMAT,
        "entries": [{"file": name,
                     "seed": entry["seed"],
                     "index": entry["index"],
                     "text_sha256": entry["text_sha256"]}
                    for name, entry in zip(names, entries)],
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w",
              encoding="utf-8") as handle:
        handle.write(_render(manifest))
    return names


def load_entry(path):
    """Read and validate one corpus record (format + text hash)."""
    with open(path, encoding="utf-8") as handle:
        entry = json.load(handle)
    if entry.get("format") != CORPUS_FORMAT:
        raise ValueError(f"{path}: unknown corpus format "
                         f"{entry.get('format')!r}")
    text = bytes.fromhex(entry["text"])
    digest = hashlib.sha256(text).hexdigest()
    if digest != entry["text_sha256"]:
        raise ValueError(f"{path}: text hash mismatch "
                         f"({digest} != {entry['text_sha256']})")
    return entry


def load_corpus(directory):
    """All corpus entries in a directory, in deterministic name order."""
    entries = []
    for name in sorted(os.listdir(directory)):
        if name == MANIFEST_NAME or not name.endswith(".json"):
            continue
        entries.append(load_entry(os.path.join(directory, name)))
    return entries


def _words_from_hex(text_hex):
    text = bytes.fromhex(text_hex)
    return [int.from_bytes(text[offset:offset + 4], "little")
            for offset in range(0, len(text), 4)]


def program_from_entry(entry, shrunk=False):
    """Rebuild a :class:`FuzzProgram` from a corpus record.

    With ``shrunk=True`` the shrunk text is used when present (falling
    back to the full text otherwise).
    """
    text_hex = entry.get("shrunk_text") if shrunk else None
    if text_hex is None:
        text_hex = entry["text"]
    return FuzzProgram(entry["seed"], entry["index"],
                       entry["generator_version"], entry["max_insns"],
                       _words_from_hex(text_hex),
                       bytes.fromhex(entry["data"]),
                       entry=entry["entry"],
                       text_base=entry["text_base"],
                       data_base=entry["data_base"],
                       shapes=entry.get("shapes"),
                       input=bytes.fromhex(entry.get("input", "")),
                       hostile=entry.get("hostile", False))
