"""Automatic test-case shrinking for fuzz findings.

``shrink_words`` reduces a failing program's text to a (locally)
minimal word list that still satisfies the caller's divergence
predicate.  Three passes, all budget-bounded:

1. **chunk deletion** (ddmin-style): delete runs of instructions with
   chunk sizes halving from ``n // 2`` down to 1, repairing branch
   displacements across each deleted range so survivors keep their
   targets;
2. **simplification**: replace single instructions with an
   architectural NOP, zero operate literals, neutralise ``rb`` to R31,
   zero memory displacements;
3. a final single-deletion sweep, so the result is 1-minimal under
   deletion.

The predicate sees candidate word lists and must return True only for
genuine reproductions — oracle comparisons treat budget exhaustion as
inconclusive, so a shrink step that manufactures an infinite loop is
rejected rather than chased.
"""

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind
from repro.utils.bitops import fits_signed

#: ``bis r31, r31, r31`` — the canonical architectural NOP word.
NOP_WORD = encode(Instruction("bis", ra=31, rb=31, rc=31))

#: Default cap on predicate evaluations per ``shrink_words`` call.
DEFAULT_MAX_CHECKS = 400


def _decoded(word):
    try:
        return decode(word)
    except EncodingError:
        return None


def _retarget(words, start, count):
    """Delete ``words[start:start+count]``, repairing branch targets.

    Branch-format displacements are PC-relative in instructions, so any
    branch that jumps across (or into) the deleted range must be
    re-encoded.  Targets inside the range land on the first surviving
    instruction.  Returns the new word list, or ``None`` when a repaired
    displacement no longer fits its 21-bit field (the candidate is then
    simply skipped).
    """
    n = len(words)
    end = start + count

    def new_index(old):
        if old < start:
            return old
        if old < end:
            return start          # first survivor after the range
        return old - count

    out = []
    for index, word in enumerate(words):
        if start <= index < end:
            continue
        instr = _decoded(word)
        if instr is not None and instr.kind in (Kind.COND_BRANCH,
                                                Kind.UNCOND_BRANCH):
            target = index + 1 + instr.imm
            if not 0 <= target <= n:
                return None       # branch already escapes the text
            displacement = new_index(target) - (new_index(index) + 1)
            if displacement != instr.imm:
                if not fits_signed(displacement, 21):
                    return None
                word = encode(Instruction(instr.mnemonic, ra=instr.ra,
                                          imm=displacement))
        out.append(word)
    return out


def _simplify_candidates(instr):
    """Strictly-simpler replacements for one instruction, best first."""
    candidates = [None]           # None means: replace with NOP_WORD
    if instr is None:
        return candidates
    if instr.kind is Kind.ALU:
        if instr.islit and instr.imm != 0:
            candidates.append(Instruction(instr.mnemonic, ra=instr.ra,
                                          rc=instr.rc, imm=0, islit=True))
        elif not instr.islit and instr.rb != 31:
            candidates.append(Instruction(instr.mnemonic, ra=instr.ra,
                                          rb=31, rc=instr.rc))
    elif instr.kind in (Kind.LOAD, Kind.STORE, Kind.LDA) and \
            instr.imm != 0:
        candidates.append(Instruction(instr.mnemonic, ra=instr.ra,
                                      rb=instr.rb, imm=0))
    return candidates


class _Budget:
    __slots__ = ("used", "limit")

    def __init__(self, limit):
        self.used = 0
        self.limit = limit

    def spent(self):
        return self.used >= self.limit

    def check(self, predicate, words):
        if self.spent():
            return False
        self.used += 1
        return bool(predicate(words))


def shrink_words(words, predicate, max_checks=DEFAULT_MAX_CHECKS):
    """Shrink ``words`` while ``predicate(candidate_words)`` holds.

    ``predicate(words)`` must be True for the input.  Returns
    ``(shrunk_words, checks_used)``.
    """
    budget = _Budget(max_checks)
    current = list(words)

    # pass 1: ddmin-style chunk deletion
    chunk = max(len(current) // 2, 1)
    while chunk >= 1 and not budget.spent():
        start = 0
        progressed = False
        while start < len(current) and not budget.spent():
            count = min(chunk, len(current) - start)
            candidate = _retarget(current, start, count)
            if candidate is not None and candidate and \
                    budget.check(predicate, candidate):
                current = candidate
                progressed = True
            else:
                start += count
        if chunk == 1 and not progressed:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if progressed else 0)

    # pass 2: per-instruction simplification
    index = 0
    while index < len(current) and not budget.spent():
        word = current[index]
        if word == NOP_WORD:
            index += 1
            continue
        for replacement in _simplify_candidates(_decoded(word)):
            new_word = NOP_WORD if replacement is None \
                else encode(replacement)
            if new_word == word:
                continue
            candidate = list(current)
            candidate[index] = new_word
            if budget.check(predicate, candidate):
                current = candidate
                break
        index += 1

    # pass 3: final single-deletion sweep (1-minimality under deletion)
    index = 0
    while index < len(current) and not budget.spent():
        candidate = _retarget(current, index, 1)
        if candidate is not None and candidate and \
                budget.check(predicate, candidate):
            current = candidate
        else:
            index += 1

    return current, budget.used
