"""Fuzz campaigns: fan generated programs out over the harness.

``run_campaign`` builds one :class:`~repro.harness.runpoints.RunPoint`
per ``(seed, index)``, hands the batch to a
:class:`~repro.harness.parallel.PointRunner` (serial or process pool —
run points are pure functions, so both yield bit-identical summaries),
collects divergences as :class:`Finding` records, optionally shrinks
each finding to a minimal reproducer, and writes the deterministic
corpus.

The corpus is written by the *parent* process, regenerating each
program from its seed — then cross-checked against the ``text_sha256``
every worker reported.  A mismatch means generation is not reproducible
across processes, which is itself a campaign-fatal bug, so it raises.
"""

from collections import Counter

from repro.fuzz import corpus as corpus_mod
from repro.fuzz.gen import generate
from repro.fuzz.oracle import ORACLE_BUDGET, check_program
from repro.fuzz.shrink import shrink_words
from repro.harness.parallel import PointRunner
from repro.harness.runpoints import RunPoint


class CampaignError(RuntimeError):
    """Cross-process determinism violation during a campaign."""


class Finding:
    """One diverging program, with its (optional) shrunk reproducer."""

    __slots__ = ("program", "failures", "shrunk_words", "shrunk_failures",
                 "shrink_checks")

    def __init__(self, program, failures):
        self.program = program
        self.failures = list(failures)
        self.shrunk_words = None
        self.shrunk_failures = None
        self.shrink_checks = 0

    @property
    def stages(self):
        return sorted({failure["stage"] for failure in self.failures})

    def describe(self):
        lines = [f"{self.program.name}: "
                 f"{len(self.failures)} divergence(s) "
                 f"[{', '.join(self.stages)}]"]
        for failure in self.failures[:8]:
            lines.append(f"  {failure['stage']}: {failure['reason']}")
        if self.shrunk_words is not None:
            lines.append(f"  shrunk: {len(self.program.words)} -> "
                         f"{len(self.shrunk_words)} instructions "
                         f"({self.shrink_checks} oracle runs)")
        return lines


class FuzzCampaignResult:
    """Everything one campaign produced."""

    def __init__(self, count, seed, findings, shapes, inconclusive,
                 corpus_files, report):
        self.count = count
        self.seed = seed
        self.findings = findings
        self.shapes = shapes              # Counter of generated shapes
        self.inconclusive = inconclusive  # programs with skipped stages
        self.corpus_files = corpus_files
        self.report = report              # PointRunner report delta

    @property
    def ok(self):
        return not self.findings

    def render_lines(self):
        lines = [f"fuzz campaign: {self.count} programs, seed "
                 f"{self.seed}, {len(self.findings)} finding(s)"]
        if self.shapes:
            mix = ", ".join(f"{name}={count}" for name, count
                            in sorted(self.shapes.items()))
            lines.append(f"  shape mix: {mix}")
        if self.inconclusive:
            lines.append(f"  {self.inconclusive} program(s) had "
                         "budget-inconclusive stages")
        for finding in self.findings:
            lines.extend(finding.describe())
        return lines


def _shrink_finding(finding, budget):
    """Shrink a finding's text while the same stages still diverge."""
    program = finding.program
    stages = tuple(finding.stages)

    def still_diverges(words):
        report = check_program(program.with_words(words), budget=budget,
                               stages=stages)
        return bool(report["failures"])

    shrunk, checks = shrink_words(program.words, still_diverges)
    finding.shrunk_words = shrunk
    finding.shrink_checks = checks
    report = check_program(program.with_words(shrunk), budget=budget,
                           stages=stages)
    finding.shrunk_failures = report["failures"]


def run_campaign(count, seed, max_insns=60, chaos=False, shrink=False,
                 workers=1, budget=ORACLE_BUDGET, corpus_dir=None,
                 telemetry=False, runner=None, engines=None,
                 hostile=False):
    """Run ``count`` seeded programs through the oracle stack.

    ``engines`` selects the oracle engine stage's comparison axis
    (``None`` uses the oracle default, currently naive + jit).
    ``hostile`` generates hostile-guest programs (self-modifying code,
    protection flips, syscalls) instead of tame ones.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    points = [RunPoint.fuzz(seed, index, max_insns=max_insns,
                            chaos=chaos, budget=budget,
                            telemetry=telemetry, engines=engines,
                            hostile=hostile)
              for index in range(count)]
    if runner is None:
        runner = PointRunner(workers=workers, cache=None)
    summaries = runner.run(points)

    findings = []
    shapes = Counter()
    inconclusive = 0
    corpus_entries = []
    for summary in summaries:
        shapes.update(summary["shapes"])
        if summary["inconclusive"]:
            inconclusive += 1
        fprog = generate(summary["seed"], index=summary["index"],
                         max_insns=max_insns, hostile=hostile)
        # the worker hashed the program it generated; the parent's
        # regeneration must match bit for bit in any process
        entry = corpus_mod.entry_dict(fprog,
                                      failures=summary["failures"])
        if entry["text_sha256"] != summary["text_sha256"]:
            raise CampaignError(
                f"{fprog.name}: generator not reproducible across "
                f"processes ({entry['text_sha256']} != "
                f"{summary['text_sha256']})")
        if summary["failures"]:
            finding = Finding(fprog, summary["failures"])
            if shrink:
                _shrink_finding(finding, budget)
                entry = corpus_mod.entry_dict(
                    fprog, failures=summary["failures"],
                    shrunk_words=finding.shrunk_words)
            findings.append(finding)
        corpus_entries.append(entry)

    corpus_files = []
    if corpus_dir is not None:
        corpus_files = corpus_mod.write_corpus(corpus_dir, corpus_entries)

    return FuzzCampaignResult(count, seed, findings, shapes, inconclusive,
                              corpus_files, runner.last_report)
