"""The shared dispatch code (paper Section 3.2).

When a fragment's chaining cannot supply the next fragment address, control
transfers to a single shared dispatch sequence that looks the V-ISA target
up in the PC translation table.  The paper charges this path 20
instructions and notes that the register-indirect jump that ends it is
nearly unpredictable, because every indirect transfer in the program funnels
through this one jump (one BTB entry serves them all).

The sequence modelled here is a serial hash-table probe: hash the V-PC,
index the table, compare tags, reprobe once, load the fragment address and
jump.  The instructions carry no architected side effects (the VM owns its
own registers); they exist so that instruction counts, I-cache traffic, BTB
pressure and the dependence height of dispatch are all real in the traces.
"""

from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IOp

#: Number of instructions the dispatch path executes (paper Section 3.2).
DISPATCH_LENGTH = 20


def build_dispatch_code():
    """Build the dispatch body: 19 lookup instructions + the indirect jump.

    The chain computes through accumulator 0 (a single dependence strand,
    which is how a hash probe behaves) with four table loads.
    """
    body = []

    def alu(op, imm=None):
        body.append(IInstruction(IOp.ALU, op=op, acc=0, src_a="acc",
                                 src_b="imm", imm=imm if imm is not None
                                 else 0, islit=True))

    def load():
        body.append(IInstruction(IOp.LOAD, acc=0, addr_src="acc",
                                 mem_size=8))

    # hash the V-PC: shift/xor/mask (5 instructions)
    alu("srl", 2)
    alu("xor", 0x5D)
    alu("sll", 3)
    alu("xor", 0x33)
    alu("and", 0xFF)
    # index into the translation table and probe (3 + load)
    alu("sll", 4)
    alu("addq", 0x40)
    alu("addq", 0)
    load()
    # compare the stored tag, fold the result (3)
    alu("xor", 0)
    alu("cmpeq", 0)
    alu("and", 1)
    # reprobe the second way of the table (2 + load)
    alu("addq", 8)
    load()
    # tag check on the second way (2)
    alu("xor", 0)
    alu("cmpeq", 0)
    # load the fragment address and adjust it (1 load + 2)
    load()
    alu("addq", 0)
    alu("bic", 1)
    body.append(IInstruction(IOp.JMP_DISPATCH, acc=0))

    if len(body) != DISPATCH_LENGTH:  # pragma: no cover - construction bug
        raise AssertionError(
            f"dispatch body is {len(body)} instructions, expected "
            f"{DISPATCH_LENGTH}")
    return body
