"""Fragment records: translated superblocks living in the translation cache."""

import enum
import zlib

from repro.memory.image import PAGE_SHIFT

#: IInstruction fields with semantic meaning — the checksum input.  Layout
#: fields (address, size) and compilation caches are deliberately excluded
#: so relocation never invalidates a checksum.
_CHECKSUM_FIELDS = (
    "iop", "op", "acc", "gpr", "gpr2", "imm", "islit", "src_a", "src_b",
    "addr_src", "data_src", "cond_src", "dest_gpr", "operational",
    "mem_size", "mem_signed", "target", "vtarget", "vpc")


class ExitKind(enum.Enum):
    """How control can leave a fragment."""

    COND = "cond"            # side exit from a conditional branch
    UNCOND = "uncond"        # fall-off continuation or block-ending branch
    INDIRECT = "indirect"    # register-indirect jump (JMP/JSR)
    RETURN = "return"        # RET
    HALT = "halt"


class FragmentExit:
    """One exit point, with the bookkeeping needed for later patching."""

    __slots__ = ("kind", "vtarget", "instr_index", "patched")

    def __init__(self, kind, vtarget, instr_index, patched=False):
        self.kind = kind
        self.vtarget = vtarget        # None for indirect/return exits
        self.instr_index = instr_index
        self.patched = patched

    def __repr__(self):
        vtext = f"{self.vtarget:#x}" if self.vtarget is not None else "-"
        return (f"FragmentExit({self.kind.value}, V:{vtext}, "
                f"i={self.instr_index}, patched={self.patched})")


class Fragment:
    """A translated superblock placed in the translation cache."""

    def __init__(self, entry_vpc, fmt, body, exits, pei_table,
                 source_instr_count, n_accumulators,
                 premature_terminations=0, superblock=None):
        self.fid = None                  # assigned by the cache
        self.entry_vpc = entry_vpc
        self.fmt = fmt
        self.body = body                 # list of IInstruction
        self.exits = exits               # list of FragmentExit
        #: [(body_index, vpc, recovery_map)] in program order; the recovery
        #: map is {arch_reg: ("gpr",) | ("acc", acc_index)} (basic format)
        #: or None (modified/ALPHA formats, trivially recoverable).
        self.pei_table = pei_table
        #: Alpha instructions the fragment translates (NOPs excluded).
        self.source_instr_count = source_instr_count
        self.n_accumulators = n_accumulators
        self.premature_terminations = premature_terminations
        self.superblock = superblock     # kept for diagnostics/tests
        #: guest code addresses this fragment translates — the SMC
        #: overlap set.  V-ISA instructions are 4-byte words, so a store
        #: overlaps the fragment iff one of its touched word addresses
        #: is in here.  Chaining patches rewrite iops/targets but never
        #: vpcs, so both sets are stable for the fragment's lifetime.
        self.source_vpcs = frozenset(
            instr.vpc for instr in body if instr.vpc is not None)
        #: guest page indexes covered — the cache's ``_by_page`` keys.
        self.source_pages = frozenset(
            vpc >> PAGE_SHIFT for vpc in self.source_vpcs)
        self.base_address = None         # assigned at layout time
        self.byte_size = None
        self.execution_count = 0
        #: body_index -> pei_table row, built once at install time so trap
        #: recovery is a dict probe instead of a linear table scan.
        self.pei_index = {row[0]: row for row in pei_table}
        #: CRC32 of the semantic body fields, stamped by the cache at
        #: install time (None while unstamped / verification is off).
        self.checksum = None
        #: Entry verification is amortised: checked once, then trusted
        #: until an in-place patch resets this flag.
        self.verified = False
        #: step closures compiled by :mod:`repro.vm.specialize`, managed by
        #: ``FragmentExecutor._code_for``: the key identifies the executor
        #: the code was compiled for, the two slots hold the trace-off and
        #: trace-on variants.
        self._compiled_key = None
        self._compiled = [None, None]
        #: tier-2 code compiled by :mod:`repro.vm.jit`, keyed the same
        #: way; ``_jit_failed`` pins fragments whose compile raised so a
        #: hot loop doesn't retry every visit.
        self._jit_key = None
        self._jit_code = None
        self._jit_failed = False

    def invalidate_compiled(self):
        """Drop compiled code (all tiers) after an in-place body patch.

        Chaining patches and corruption recovery rewrite body
        instructions; both the tier-1 step closures and the tier-2
        generated function bake the old semantics in, so both must go.
        The next hot visit recompiles against the patched body.
        """
        self._compiled = [None, None]
        self._jit_code = None
        self._jit_failed = False

    def compute_checksum(self):
        """CRC32 over the body's semantic instruction fields.

        Covers every field that changes what the fragment computes —
        including the branch targets that chaining patches rewrite — but
        not layout addresses, so relocation is checksum-neutral.
        """
        crc = 0
        for instr in self.body:
            for field in _CHECKSUM_FIELDS:
                value = getattr(instr, field)
                crc = zlib.crc32(repr(value).encode("ascii", "replace"),
                                 crc)
            crc = zlib.crc32(b"|", crc)
        return crc

    def entry_address(self):
        """Translation-cache address of the fragment's first instruction."""
        if self.base_address is None:
            raise RuntimeError("fragment has not been laid out")
        return self.base_address

    def instruction_count(self):
        return len(self.body)

    def copy_instruction_count(self):
        """Copies as counted by Table 2 (copy-to-GPR + copy-from-GPR)."""
        return sum(1 for instr in self.body if instr.is_copy())

    def __repr__(self):
        return (f"Fragment(f{self.fid}, V:{self.entry_vpc:#x}, "
                f"{self.fmt.value}, {len(self.body)} instrs)")
