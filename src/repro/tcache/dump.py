"""Translation-cache inspection: a human-readable fragment map.

Prints what a co-designed VM developer would want from a debugger: where
every fragment sits, how hot it is, how its exits are chained, and the
cache-wide totals.
"""


def cache_totals_line(tcache):
    """Cache-wide totals as one line (shared by the fragment map header
    and the ``repro profile`` report)."""
    return (f"{len(tcache.fragments)} fragments, "
            f"{tcache.total_code_bytes()} code bytes, "
            f"{tcache.patches_applied} patches applied, "
            f"{tcache.invalidations} invalidations, "
            f"{tcache.flush_count} flushes")


def fragment_map(tcache):
    """Render the cache's fragment map as text lines."""
    lines = [
        f"translation cache @ {tcache.base:#x}; dispatch "
        f"{tcache.dispatch_address:#x} "
        f"({len(tcache.dispatch_body)} instructions)",
        cache_totals_line(tcache),
        "",
        f"{'fid':>4s} {'I-addr':>10s} {'V-entry':>10s} {'bytes':>6s} "
        f"{'insts':>6s} {'src':>4s} {'execs':>8s} {'exits':>18s}",
    ]
    for fragment in tcache.fragments:
        patched = sum(1 for e in fragment.exits if e.patched)
        pending = sum(1 for e in fragment.exits
                      if not e.patched and e.vtarget is not None)
        dynamic = sum(1 for e in fragment.exits if e.vtarget is None)
        exits = f"{patched} chained"
        if pending:
            exits += f", {pending} pending"
        if dynamic:
            exits += f", {dynamic} dyn"
        lines.append(
            f"{fragment.fid:4d} {fragment.base_address:#10x} "
            f"{fragment.entry_vpc:#10x} {fragment.byte_size:6d} "
            f"{len(fragment.body):6d} {fragment.source_instr_count:4d} "
            f"{fragment.execution_count:8d} {exits:>18s}")
    return lines


def print_fragment_map(tcache, out=None):
    """Print :func:`fragment_map` to ``out`` (default stdout)."""
    import sys

    out = out if out is not None else sys.stdout
    for line in fragment_map(tcache):
        print(line, file=out)
