"""The translation cache: layout, lookup and chaining patches.

Fragments are laid out at real byte addresses in a dedicated region of the
address space (disjoint from the V-ISA program image), honouring the 16/32
bit I-ISA size model.  This keeps the I-cache behaviour, BTB indexing and
the Table 2 static-bytes measurements of translated code genuine.

Patching implements the "patch is performed" step of Section 3.2: when the
target of a ``call-translator[-if-condition-is-met]`` instruction is later
translated, the instruction is rewritten in place into a normal (direct)
branch.  The rewritten instruction keeps its original encoding slot, as an
in-place binary patch must.
"""

from repro.ildp_isa.opcodes import IFormat, IOp
from repro.ildp_isa.sizes import instruction_size
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.trace import NULL_TRACER
from repro.tcache.dispatch import build_dispatch_code
from repro.tcache.fragment import ExitKind

#: Base address of the translation cache region.
DEFAULT_TCACHE_BASE = 0x100_0000


class TranslationCache:
    """Holds translated fragments plus the shared dispatch code."""

    def __init__(self, base=DEFAULT_TCACHE_BASE, telemetry=None,
                 tracer=None):
        self.base = base
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fragments = []
        self._by_entry_vpc = {}
        self._entry_addresses = {}      # I-address -> fragment
        #: exits waiting for a fragment at some V-PC:
        #: vtarget -> [(fragment, exit)]
        self._pending_exits = {}
        #: push-dual-RAS instructions waiting for their return-point
        #: fragment: vtarget -> [(fragment, body_index)]
        self._pending_ras = {}
        self.dispatch_body = build_dispatch_code()
        self.dispatch_address = base
        self._next_free = self._layout_dispatch()
        self.patches_applied = 0
        self._next_fid = 0
        self.flush_count = 0
        #: cumulative compiled-closure invalidations caused by in-place
        #: chaining patches (never reset — like fragment ids, statistics
        #: keyed on it must survive flushes)
        self.invalidations = 0

    def _layout_dispatch(self):
        address = self.base
        for instr in self.dispatch_body:
            instr.address = address
            instr.size = instruction_size(instr, IFormat.BASIC)
            address += instr.size
        return address

    # -- queries -------------------------------------------------------------

    def lookup(self, vpc):
        """Fragment whose entry corresponds to V-PC ``vpc``, or None."""
        return self._by_entry_vpc.get(vpc)

    def fragment_at(self, address):
        """Fragment whose entry address is ``address``, or None."""
        return self._entry_addresses.get(address)

    def total_code_bytes(self):
        """Static size of all fragment bodies (dispatch excluded)."""
        return sum(fragment.byte_size for fragment in self.fragments)

    def fragment_count(self):
        return len(self.fragments)

    # -- installation ----------------------------------------------------------

    def add(self, fragment):
        """Lay out a fragment, register it, and apply pending patches."""
        if fragment.entry_vpc in self._by_entry_vpc:
            raise ValueError(
                f"fragment for V:{fragment.entry_vpc:#x} already exists")
        fragment.fid = self._next_fid
        self._next_fid += 1
        address = self._next_free
        fragment.base_address = address
        last_vpc = None
        for instr in fragment.body:
            instr.address = address
            instr.size = instruction_size(instr, fragment.fmt)
            address += instr.size
            if instr.vpc is not None and instr.vpc != last_vpc:
                instr.v_weight = 1
                last_vpc = instr.vpc
        fragment.byte_size = address - fragment.base_address
        self._next_free = address

        self.fragments.append(fragment)
        self._by_entry_vpc[fragment.entry_vpc] = fragment
        self._entry_addresses[fragment.base_address] = fragment
        self.telemetry.events.emit(
            EventKind.FRAGMENT_CREATED, fid=fragment.fid,
            entry_vpc=fragment.entry_vpc, address=fragment.base_address,
            instructions=len(fragment.body), bytes=fragment.byte_size,
            source_instructions=fragment.source_instr_count)
        self.telemetry.registry.histogram("tcache.fragment_sizes").observe(
            len(fragment.body))
        self.tracer.instant("tcache.fragment", cat="tcache",
                            fid=fragment.fid, entry_vpc=fragment.entry_vpc,
                            bytes=fragment.byte_size)
        self._register_pending(fragment)
        self._apply_patches(fragment)
        return fragment

    def _register_pending(self, fragment):
        for exit_record in fragment.exits:
            if exit_record.patched or exit_record.vtarget is None:
                continue
            self._pending_exits.setdefault(exit_record.vtarget, []).append(
                (fragment, exit_record))
        for index, instr in enumerate(fragment.body):
            if instr.iop is IOp.PUSH_RAS and instr.target is None:
                self._pending_ras.setdefault(instr.vtarget, []).append(
                    (fragment, index))

    def _apply_patches(self, new_fragment):
        vpc = new_fragment.entry_vpc
        target = new_fragment.entry_address()
        events = self.telemetry.events
        for fragment, exit_record in self._pending_exits.pop(vpc, []):
            instr = fragment.body[exit_record.instr_index]
            if instr.iop is IOp.COND_CALL_TRANSLATOR:
                instr.iop = IOp.BRANCH
            elif instr.iop is IOp.CALL_TRANSLATOR:
                instr.iop = IOp.BR
            else:  # pragma: no cover - exit records only cover those two
                raise AssertionError(f"unpatchable exit {instr.iop}")
            instr.target = target
            exit_record.patched = True
            self.patches_applied += 1
            events.emit(EventKind.FRAGMENT_CHAINED, fid=fragment.fid,
                        to_fid=new_fragment.fid, vtarget=vpc,
                        instr_index=exit_record.instr_index)
            # the in-place binary patch invalidates any compiled closures
            self._invalidate(fragment)
        for fragment, index in self._pending_ras.pop(vpc, []):
            fragment.body[index].target = target
            self.patches_applied += 1
            events.emit(EventKind.FRAGMENT_CHAINED, fid=fragment.fid,
                        to_fid=new_fragment.fid, vtarget=vpc,
                        instr_index=index, ras=True)
            self._invalidate(fragment)

    def _invalidate(self, fragment):
        """Drop a fragment's compiled closures after an in-place patch."""
        fragment.invalidate_compiled()
        self.invalidations += 1
        self.telemetry.events.emit(EventKind.FRAGMENT_INVALIDATED,
                                   fid=fragment.fid)

    def flush(self):
        """Drop all fragments (translation cache flush, Section 4.1).

        Fragment ids stay globally unique across flushes so statistics
        keyed by fid never collide.
        """
        self.telemetry.events.emit(EventKind.TCACHE_FLUSH,
                                   fragments=len(self.fragments),
                                   code_bytes=self.total_code_bytes())
        self.tracer.instant("tcache.flush", cat="tcache",
                            fragments=len(self.fragments),
                            code_bytes=self.total_code_bytes())
        self.fragments = []
        self._by_entry_vpc = {}
        self._entry_addresses = {}
        self._pending_exits = {}
        self._pending_ras = {}
        self._next_free = self.dispatch_address + sum(
            instr.size for instr in self.dispatch_body)
        self.patches_applied = 0
        self.flush_count += 1
