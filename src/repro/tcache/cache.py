"""The translation cache: layout, lookup and chaining patches.

Fragments are laid out at real byte addresses in a dedicated region of the
address space (disjoint from the V-ISA program image), honouring the 16/32
bit I-ISA size model.  This keeps the I-cache behaviour, BTB indexing and
the Table 2 static-bytes measurements of translated code genuine.

Patching implements the "patch is performed" step of Section 3.2: when the
target of a ``call-translator[-if-condition-is-met]`` instruction is later
translated, the instruction is rewritten in place into a normal (direct)
branch.  The rewritten instruction keeps its original encoding slot, as an
in-place binary patch must.
"""

from repro.faults.inject import NULL_INJECTOR as _NULL_INJECTOR
from repro.faults.plan import FaultSite
from repro.ildp_isa.opcodes import IFormat, IOp
from repro.ildp_isa.sizes import instruction_size
from repro.memory.image import PAGE_SHIFT
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.trace import NULL_TRACER
from repro.tcache.dispatch import build_dispatch_code
from repro.tcache.fragment import ExitKind

#: Base address of the translation cache region.
DEFAULT_TCACHE_BASE = 0x100_0000


class TCacheFull(Exception):
    """Installing a fragment would exceed the cache's capacity bound.

    Raised before any cache state is mutated, so the caller can flush
    and retry the installation cleanly (``docs/robustness.md``).
    """

    def __init__(self, entry_vpc, needed, used, capacity):
        super().__init__(
            f"translation cache full installing V:{entry_vpc:#x}: "
            f"{needed} bytes needed, {used}/{capacity} used")
        self.entry_vpc = entry_vpc
        self.needed = needed
        self.used = used
        self.capacity = capacity


class TranslationCache:
    """Holds translated fragments plus the shared dispatch code."""

    def __init__(self, base=DEFAULT_TCACHE_BASE, telemetry=None,
                 tracer=None, capacity_bytes=None, injector=None,
                 verify=False):
        self.base = base
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Bound on total fragment code bytes (dispatch excluded);
        #: ``None`` leaves the cache unbounded.
        self.capacity_bytes = capacity_bytes
        #: Fault injector consulted at the ``tcache_full`` and
        #: ``corrupt`` sites (the shared no-op twin by default).
        self.injector = injector if injector is not None else _NULL_INJECTOR
        #: Stamp body checksums at install so the executor can verify
        #: fragment integrity at entry.
        self.verify = verify
        self.fragments = []
        self._by_entry_vpc = {}
        self._entry_addresses = {}      # I-address -> fragment
        #: exits waiting for a fragment at some V-PC:
        #: vtarget -> [(fragment, exit)]
        self._pending_exits = {}
        #: push-dual-RAS instructions waiting for their return-point
        #: fragment: vtarget -> [(fragment, body_index)]
        self._pending_ras = {}
        self.dispatch_body = build_dispatch_code()
        self.dispatch_address = base
        self._next_free = self._layout_dispatch()
        self.patches_applied = 0
        self._next_fid = 0
        self.flush_count = 0
        #: cumulative compiled-closure invalidations caused by in-place
        #: chaining patches (never reset — like fragment ids, statistics
        #: keyed on it must survive flushes)
        self.invalidations = 0
        #: target fid -> set of source fids whose *direct-branch* patches
        #: jump straight to the target's entry.  Used by
        #: :meth:`invalidate_fragment` to decide whether a single
        #: fragment can be removed safely or the whole cache must flush.
        #: RAS links are not tracked: the dual-address return path
        #: re-validates its target via :meth:`fragment_at` at run time.
        self._incoming = {}
        #: guest page index -> set of fragments translated from it; the
        #: SMC reverse map.  A page is write-watched in guest memory
        #: exactly while it has an entry here.
        self._by_page = {}
        #: the guest :class:`~repro.memory.image.Memory` whose stores we
        #: watch, set by :meth:`attach_memory` (None for cache-only use
        #: in unit tests).
        self._memory = None
        #: VM callback ``(vpc, invalidated, flushed)`` fired after an SMC
        #: store invalidates fragments — lets the VM keep its statistics
        #: and force a deopt when it happens under translated execution.
        self._smc_callback = None
        #: cumulative fragments invalidated by guest self-modifying
        #: stores (never reset, like ``invalidations``).
        self.smc_invalidations = 0
        #: cumulative SMC store events that hit at least one fragment.
        self.smc_detected = 0

    def _layout_dispatch(self):
        address = self.base
        for instr in self.dispatch_body:
            instr.address = address
            instr.size = instruction_size(instr, IFormat.BASIC)
            address += instr.size
        return address

    # -- queries -------------------------------------------------------------

    def lookup(self, vpc):
        """Fragment whose entry corresponds to V-PC ``vpc``, or None."""
        return self._by_entry_vpc.get(vpc)

    def fragment_at(self, address):
        """Fragment whose entry address is ``address``, or None."""
        return self._entry_addresses.get(address)

    def total_code_bytes(self):
        """Static size of all fragment bodies (dispatch excluded)."""
        return sum(fragment.byte_size for fragment in self.fragments)

    def fragment_count(self):
        return len(self.fragments)

    # -- self-modifying-code watch -------------------------------------------

    def attach_memory(self, memory):
        """Watch guest stores in ``memory`` for self-modifying code.

        Installs :meth:`_on_code_write` as the memory's code-write hook;
        from then on every page a fragment translates from is
        write-watched while fragments cover it, so a guest store landing
        on translated code precisely invalidates the overlapping
        fragments (and only those).
        """
        self._memory = memory
        memory.set_code_write_hook(self._on_code_write)
        for page in self._by_page:
            memory.watch_page(page)

    def _watch_fragment(self, fragment):
        for page in fragment.source_pages:
            watchers = self._by_page.get(page)
            if watchers is None:
                watchers = self._by_page[page] = set()
                if self._memory is not None:
                    self._memory.watch_page(page)
            watchers.add(fragment)

    def _unwatch_fragment(self, fragment):
        for page in fragment.source_pages:
            watchers = self._by_page.get(page)
            if watchers is None:
                continue
            watchers.discard(fragment)
            if not watchers:
                del self._by_page[page]
                if self._memory is not None:
                    self._memory.unwatch_page(page)

    def _on_code_write(self, address, size, vpc):
        """A guest store landed on a watched code page (fires post-write).

        Invalidates exactly the fragments whose source words the store
        touched — the precise SMC path.  The ``smc`` fault site widens a
        hit to every fragment on the page (spurious invalidation is
        behaviour-neutral: the victims simply retranslate).  Aligned
        stores never straddle a page, so one page lookup suffices.
        """
        candidates = self._by_page.get(address >> PAGE_SHIFT)
        if not candidates:
            return
        words = range(address & ~3, address + size, 4)
        victims = [fragment for fragment in candidates
                   if any(word in fragment.source_vpcs for word in words)]
        if victims and self.injector.fire(FaultSite.SMC, vpc=vpc):
            victims = list(candidates)
        if not victims:
            return
        victims.sort(key=lambda fragment: fragment.fid)
        self.smc_detected += 1
        self.smc_invalidations += len(victims)
        self.telemetry.events.emit(
            EventKind.SMC_DETECTED, address=address, size=size, vpc=vpc,
            fids=[fragment.fid for fragment in victims])
        flushed = False
        for fragment in victims:
            if fragment not in self.fragments:
                continue  # a flush below already removed it
            if self.invalidate_fragment(fragment) == "flushed":
                flushed = True
        if self._smc_callback is not None:
            self._smc_callback(vpc, len(victims), flushed)

    def invalidate_range(self, base, size):
        """Invalidate every fragment translated from ``[base, base+size)``.

        The ``protect`` PAL call uses this when a range loses execute
        permission (and the ``protect`` fault site uses it for spurious
        invalidation): the VM must stop running stale translations of
        pages the guest revoked.  Returns ``(invalidated, flushed)``.
        """
        if size <= 0:
            return 0, False
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        victims = set()
        for page in range(first, last + 1):
            victims.update(self._by_page.get(page, ()))
        if not victims:
            return 0, False
        flushed = False
        for fragment in sorted(victims, key=lambda f: f.fid):
            if fragment not in self.fragments:
                continue
            if self.invalidate_fragment(fragment) == "flushed":
                flushed = True
        return len(victims), flushed

    # -- installation ----------------------------------------------------------

    def add(self, fragment):
        """Lay out a fragment, register it, and apply pending patches.

        Raises :class:`TCacheFull` — before mutating any cache state —
        when the fragment would push total code bytes past
        ``capacity_bytes`` (or when the ``tcache_full`` fault site
        strikes); the VM reacts by flushing and retranslating.
        """
        if fragment.entry_vpc in self._by_entry_vpc:
            raise ValueError(
                f"fragment for V:{fragment.entry_vpc:#x} already exists")
        needed = sum(instruction_size(instr, fragment.fmt)
                     for instr in fragment.body)
        used = self.total_code_bytes()
        over_capacity = self.capacity_bytes is not None and \
            used + needed > self.capacity_bytes
        if over_capacity or self.injector.fire(
                FaultSite.TCACHE_FULL, vpc=fragment.entry_vpc):
            capacity = self.capacity_bytes if self.capacity_bytes \
                is not None else used + needed - 1
            self.telemetry.events.emit(
                EventKind.TCACHE_FULL, entry_vpc=fragment.entry_vpc,
                needed=needed, used=used, capacity=capacity,
                injected=not over_capacity)
            raise TCacheFull(fragment.entry_vpc, needed, used, capacity)
        fragment.fid = self._next_fid
        self._next_fid += 1
        address = self._next_free
        fragment.base_address = address
        last_vpc = None
        for instr in fragment.body:
            instr.address = address
            instr.size = instruction_size(instr, fragment.fmt)
            address += instr.size
            if instr.vpc is not None and instr.vpc != last_vpc:
                instr.v_weight = 1
                last_vpc = instr.vpc
        fragment.byte_size = address - fragment.base_address
        self._next_free = address

        self.fragments.append(fragment)
        self._by_entry_vpc[fragment.entry_vpc] = fragment
        self._entry_addresses[fragment.base_address] = fragment
        self._watch_fragment(fragment)
        self.telemetry.events.emit(
            EventKind.FRAGMENT_CREATED, fid=fragment.fid,
            entry_vpc=fragment.entry_vpc, address=fragment.base_address,
            instructions=len(fragment.body), bytes=fragment.byte_size,
            source_instructions=fragment.source_instr_count)
        self.telemetry.registry.histogram("tcache.fragment_sizes").observe(
            len(fragment.body))
        self.tracer.instant("tcache.fragment", cat="tcache",
                            fid=fragment.fid, entry_vpc=fragment.entry_vpc,
                            bytes=fragment.byte_size)
        self._register_pending(fragment)
        self._apply_patches(fragment)
        if self.verify:
            # stamp after patching: a self-loop patch may have rewritten
            # this fragment's own body during _apply_patches
            fragment.checksum = fragment.compute_checksum()
            fragment.verified = False
        if self.injector.fire(FaultSite.CORRUPT, vpc=fragment.entry_vpc,
                              fid=fragment.fid):
            self._corrupt(fragment)
        return fragment

    def _corrupt(self, fragment):
        """Silently flip a bit in one body instruction (fault injection).

        The stamped checksum predates the corruption, so entry
        verification detects the damage; with verification off the
        fragment would execute wrong code — which is exactly what the
        chaos suite proves the checksums prevent.
        """
        victim = fragment.body[fragment.fid % len(fragment.body)]
        victim.imm = (victim.imm if victim.imm is not None else 0) ^ 0x2A
        fragment.invalidate_compiled()

    def _register_pending(self, fragment):
        for exit_record in fragment.exits:
            if exit_record.vtarget is None:
                continue
            if exit_record.patched:
                # born chained (codegen saw the target already installed):
                # record the direct-branch edge for invalidate_fragment
                target = self._by_entry_vpc.get(exit_record.vtarget)
                if target is not None:
                    self._incoming.setdefault(target.fid, set()).add(
                        fragment.fid)
                continue
            self._pending_exits.setdefault(exit_record.vtarget, []).append(
                (fragment, exit_record))
        for index, instr in enumerate(fragment.body):
            if instr.iop is IOp.PUSH_RAS and instr.target is None:
                self._pending_ras.setdefault(instr.vtarget, []).append(
                    (fragment, index))

    def _apply_patches(self, new_fragment):
        vpc = new_fragment.entry_vpc
        target = new_fragment.entry_address()
        events = self.telemetry.events
        for fragment, exit_record in self._pending_exits.pop(vpc, []):
            clean = self._is_clean(fragment)
            instr = fragment.body[exit_record.instr_index]
            if instr.iop is IOp.COND_CALL_TRANSLATOR:
                instr.iop = IOp.BRANCH
            elif instr.iop is IOp.CALL_TRANSLATOR:
                instr.iop = IOp.BR
            else:  # pragma: no cover - exit records only cover those two
                raise AssertionError(f"unpatchable exit {instr.iop}")
            instr.target = target
            exit_record.patched = True
            self.patches_applied += 1
            self._incoming.setdefault(new_fragment.fid, set()).add(
                fragment.fid)
            events.emit(EventKind.FRAGMENT_CHAINED, fid=fragment.fid,
                        to_fid=new_fragment.fid, vtarget=vpc,
                        instr_index=exit_record.instr_index)
            # the in-place binary patch invalidates any compiled closures
            self._invalidate(fragment, clean)
        for fragment, index in self._pending_ras.pop(vpc, []):
            clean = self._is_clean(fragment)
            fragment.body[index].target = target
            self.patches_applied += 1
            events.emit(EventKind.FRAGMENT_CHAINED, fid=fragment.fid,
                        to_fid=new_fragment.fid, vtarget=vpc,
                        instr_index=index, ras=True)
            self._invalidate(fragment, clean)

    def _is_clean(self, fragment):
        """Whether a fragment's body still matches its stamped checksum.

        Consulted *before* an in-place patch mutates the body: a patch
        must not restamp (and thereby legitimise) a fragment that was
        already corrupted while sitting unexecuted in the cache.
        """
        if not self.verify or fragment.verified or \
                fragment.checksum is None:
            return True
        return fragment.compute_checksum() == fragment.checksum

    def _invalidate(self, fragment, clean=True):
        """Drop a fragment's compiled closures after an in-place patch."""
        fragment.invalidate_compiled()
        if self.verify:
            if clean:
                # the patch changed semantic fields; restamp so
                # verification keeps matching the (legitimate) new body
                fragment.checksum = fragment.compute_checksum()
            else:
                # the body failed verification before this patch: poison
                # the checksum so entry verification still trips and the
                # executor invalidates/retranslates the fragment
                fragment.checksum = -1
            fragment.verified = False
        self.invalidations += 1
        self.telemetry.events.emit(EventKind.FRAGMENT_INVALIDATED,
                                   fid=fragment.fid)

    def _forget_fragment(self, fragment):
        """Drop every registration a fragment holds in the cache maps.

        The single place removal bookkeeping lives — both
        :meth:`invalidate_fragment` and :meth:`flush` go through it, so
        the maps can never disagree about what was cleared: the fragment
        leaves the live list and both entry indexes, its ``_incoming``
        row is dropped *and* its fid is discarded from every other row,
        and its unresolved patch requests are purged from the pending
        waiter maps (emptied waiter keys are deleted, so a long-running
        cache does not accumulate ghost keys) — a later translation can
        never patch into freed space.
        """
        self.fragments.remove(fragment)
        del self._by_entry_vpc[fragment.entry_vpc]
        del self._entry_addresses[fragment.base_address]
        self._unwatch_fragment(fragment)
        self._incoming.pop(fragment.fid, None)
        for sources in self._incoming.values():
            sources.discard(fragment.fid)
        for waiters_by_vpc in (self._pending_exits, self._pending_ras):
            for vpc in list(waiters_by_vpc):
                waiters = [entry for entry in waiters_by_vpc[vpc]
                           if entry[0] is not fragment]
                if waiters:
                    waiters_by_vpc[vpc] = waiters
                else:
                    del waiters_by_vpc[vpc]

    def invalidate_fragment(self, fragment):
        """Remove one fragment (corruption recovery); may flush instead.

        Removing just the fragment is safe only when no *other* fragment
        holds a patched direct branch to its entry — such a branch would
        dangle into freed cache space.  When external incoming links
        exist the whole cache is flushed (the always-safe fallback).
        Returns ``"removed"`` or ``"flushed"``.
        """
        incoming = self._incoming.get(fragment.fid, set())
        if incoming - {fragment.fid}:
            self.flush()
            return "flushed"
        self._forget_fragment(fragment)
        self.telemetry.events.emit(EventKind.FRAGMENT_INVALIDATED,
                                   fid=fragment.fid, removed=True)
        return "removed"

    def flush(self):
        """Drop all fragments (translation cache flush, Section 4.1).

        Fragment ids stay globally unique across flushes so statistics
        keyed by fid never collide.  Removal runs through
        :meth:`_forget_fragment` per fragment (quadratic in the live
        count, which the capacity bound keeps small) so a flush exercises
        exactly the same bookkeeping as single-fragment invalidation.
        """
        self.telemetry.events.emit(EventKind.TCACHE_FLUSH,
                                   fragments=len(self.fragments),
                                   code_bytes=self.total_code_bytes())
        self.tracer.instant("tcache.flush", cat="tcache",
                            fragments=len(self.fragments),
                            code_bytes=self.total_code_bytes())
        for fragment in list(self.fragments):
            self._forget_fragment(fragment)
        self._next_free = self.dispatch_address + sum(
            instr.size for instr in self.dispatch_body)
        self.patches_applied = 0
        self.flush_count += 1
