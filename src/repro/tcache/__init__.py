"""The translation cache: fragments, layout, patching and dispatch code."""

from repro.tcache.fragment import Fragment, FragmentExit, ExitKind
from repro.tcache.cache import TranslationCache
from repro.tcache.dispatch import DISPATCH_LENGTH, build_dispatch_code

__all__ = [
    "Fragment",
    "FragmentExit",
    "ExitKind",
    "TranslationCache",
    "DISPATCH_LENGTH",
    "build_dispatch_code",
]
