"""repro — a reproduction of "Dynamic Binary Translation for
Accumulator-Oriented Architectures" (Kim & Smith, CGO 2003).

The package implements the paper's full co-designed virtual machine:

* an Alpha-subset V-ISA with assembler, binary encoder and interpreter;
* the accumulator-oriented I-ISA in its basic and modified forms;
* the dynamic binary translator — MRET superblock capture, usage
  classification, strand formation, linear-scan accumulator assignment,
  precise-trap copy rules, three chaining policies, a translation cache
  with in-place patching and a shared dispatch sequence;
* trace-driven timing models of the reference out-of-order superscalar and
  the ILDP distributed microarchitecture;
* twelve synthetic SPEC CPU2000 INT stand-in workloads and an experiment
  harness regenerating every table and figure of the paper's evaluation.

Typical use::

    from repro import CoDesignedVM, VMConfig, assemble

    vm = CoDesignedVM(assemble(source), VMConfig())
    stats = vm.run(max_v_instructions=1_000_000)
    print(stats.summary())
"""

from repro.asm import assemble
from repro.ildp_isa.opcodes import IFormat
from repro.interp import Interpreter
from repro.translator.chaining import ChainingPolicy
from repro.uarch import ILDPModel, SUPERSCALAR, SuperscalarModel, ildp_config
from repro.vm import CoDesignedVM, VMConfig, VMTrap
from repro.workloads import WORKLOAD_NAMES, all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "Interpreter",
    "IFormat",
    "ChainingPolicy",
    "CoDesignedVM",
    "VMConfig",
    "VMTrap",
    "SuperscalarModel",
    "ILDPModel",
    "SUPERSCALAR",
    "ildp_config",
    "WORKLOAD_NAMES",
    "get_workload",
    "all_workloads",
    "__version__",
]
