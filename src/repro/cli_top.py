"""The ``repro top`` live serving dashboard.

``repro top`` opens one ``subscribe`` stream against a running
``repro serve`` socket and redraws a terminal dashboard on every
``snapshot`` frame: request throughput and latency quantiles (computed
client-side from the streamed histogram buckets), dedup/cache
effectiveness, persistent-store warm-hit rate, tier-2 promotions,
degradation counters, the hottest fragments and the most recent
completions.  It is a pure *consumer* — everything it shows comes off
the frame stream, so running it costs the server one subscriber queue
and nothing on the batch path.

Split from :mod:`repro.cli` so the renderer and the frame-folding state
machine (:class:`TopState`) are importable and testable without a
terminal; ``--frames N`` bounds the stream for scripted runs (the smoke
test renders a real dashboard this way).
"""

from collections import Counter, deque

from repro.obs.registry import histogram_quantile
from repro.serve.client import DEFAULT_TIMEOUT, ServeError, Subscription

#: Completions remembered for the "recent" pane.
RECENT_LIMIT = 5
#: Rows in the hot-fragment pane.
HOT_LIMIT = 5


def _rate(deltas, interval, name):
    """Per-second rate of one delta'd value (0.0 before two snapshots)."""
    if interval <= 0:
        return 0.0
    return deltas.get(name, 0) / interval


class TopState:
    """Folds a frame stream into the numbers the dashboard renders.

    Feed every incoming frame to :meth:`update`; render whenever it
    returns True (a fresh ``snapshot`` arrived — the redraw cadence).
    """

    def __init__(self):
        #: newest snapshot frame payload (values/deltas/latency), or None
        self.snapshot = None
        self.frames_seen = 0
        #: lifecycle phase -> occurrences observed on this stream
        self.phases = Counter()
        #: telemetry event kind -> occurrences observed on this stream
        self.events = Counter()
        #: (workload, entry_vpc) -> summed entry count from executed frames
        self.hot = Counter()
        #: last few ``completed`` lifecycle payloads, newest last
        self.recent = deque(maxlen=RECENT_LIMIT)

    def update(self, frame):
        """Fold one frame dict in; returns True when it was a snapshot
        (i.e. the dashboard should redraw)."""
        self.frames_seen += 1
        kind = frame.get("frame")
        data = frame.get("data", {})
        if kind == "snapshot":
            self.snapshot = data
            return True
        if kind == "lifecycle":
            phase = data.get("phase", "?")
            self.phases[phase] += 1
            if phase == "completed":
                self.recent.append(data)
            elif phase == "executed":
                for record in data.get("hot_fragments", []):
                    self.hot[(data.get("workload", "?"),
                              record.get("entry_vpc"))] += \
                        record.get("entries", 0)
        elif kind == "event":
            self.events[data.get("kind", "?")] += 1
        return False

    def quantiles(self, name, qs=(0.5, 0.9, 0.99)):
        """Latency quantiles for one streamed histogram, or None when
        that histogram has no observations yet."""
        latency = (self.snapshot or {}).get("latency", {})
        histogram = latency.get(name)
        if not histogram or not histogram.get("total"):
            return None
        return {q: histogram_quantile(histogram["bounds"],
                                      histogram["counts"], q)
                for q in qs}

    def value(self, name, default=0):
        """One value from the newest snapshot."""
        return ((self.snapshot or {}).get("values") or {}).get(name,
                                                               default)


def _format_seconds(value):
    """Compact human latency: µs under 1 ms, ms under 1 s, else s."""
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _quantile_cell(state, name):
    """One 'p50/p90/p99' latency cell for the dashboard."""
    quantiles = state.quantiles(name)
    if quantiles is None:
        return "-"
    return "/".join(_format_seconds(quantiles[q])
                    for q in (0.5, 0.9, 0.99))


def render_dashboard(state, socket_path=""):
    """The dashboard as one multi-line string (no terminal control)."""
    lines = []
    snapshot = state.snapshot or {}
    values = snapshot.get("values", {})
    deltas = snapshot.get("deltas", {})
    interval = snapshot.get("interval", 0.0)
    lines.append(f"repro top — {socket_path}  "
                 f"[snapshot #{snapshot.get('seq', '-')}"
                 f" · {interval:.1f}s window"
                 f" · {state.frames_seen} frames]")
    lines.append("")
    run_rate = _rate(deltas, interval, "serve.runs_completed")
    req_rate = _rate(deltas, interval, "serve.requests")
    lines.append(
        f"requests   {values.get('serve.requests', 0):>6} total "
        f"({req_rate:5.1f}/s)   runs {values.get('serve.runs_completed', 0)}"
        f" ({run_rate:.1f}/s)   dedup joins "
        f"{values.get('serve.dedup_joined', 0)}   cache hits "
        f"{values.get('runner.cache_hits', 0)}   failures "
        f"{values.get('serve.run_failures', 0)}")
    lines.append(
        f"latency    total {_quantile_cell(state, 'serve.total_seconds')}"
        f"   queue {_quantile_cell(state, 'serve.queue_wait_seconds')}"
        f"   run {_quantile_cell(state, 'serve.run_seconds')}"
        f"   (p50/p90/p99)")
    warm_hits = values.get("persist.warm_hits", 0)
    warm_misses = values.get("persist.warm_misses", 0)
    warm_pct = 100.0 * warm_hits / (warm_hits + warm_misses) \
        if warm_hits + warm_misses else 0.0
    lines.append(
        f"persist    warm {warm_hits}/{warm_hits + warm_misses} "
        f"({warm_pct:.0f}%)   saved {values.get('persist.records_saved', 0)}"
        f"   tier-2 promotions {values.get('jit.promotions', 0)}")
    faults = {name.split('.', 1)[1]: value
              for name, value in values.items()
              if name.startswith("faults.") and value}
    if faults:
        lines.append("faults     " + "   ".join(
            f"{name} {value}" for name, value in sorted(faults.items())))
    lines.append(
        f"streaming  {values.get('stream.subscribers', 0)} subscribers"
        f"   {values.get('stream.frames_published', 0)} frames"
        f"   {values.get('stream.frames_dropped', 0)} dropped")
    if state.hot:
        lines.append("")
        lines.append("hot fragments        workload      entry_vpc   "
                     "entries")
        for (workload, entry_vpc), entries in \
                state.hot.most_common(HOT_LIMIT):
            lines.append(f"                     {workload:<12}  "
                         f"{str(entry_vpc):>9}   {entries}")
    if state.recent:
        lines.append("")
        lines.append("recent completions")
        for record in reversed(state.recent):
            lines.append(
                f"  {record.get('cid', '?'):>6}  "
                f"{record.get('workload', '?'):<12}  "
                f"{_format_seconds(record.get('total_seconds'))}  "
                f"committed {record.get('committed', '?')}")
    return "\n".join(lines)


def command_top(socket_path, frames=None, out=None, clear=None,
                timeout=DEFAULT_TIMEOUT):
    """Run the dashboard loop; returns a process exit code.

    ``frames`` bounds how many frames to consume (None = until the
    server closes the stream or Ctrl-C).  ``clear`` controls the ANSI
    clear-screen between redraws (default: only when ``out`` is a tty).
    """
    import sys

    out = out if out is not None else sys.stdout
    if clear is None:
        clear = getattr(out, "isatty", lambda: False)()
    state = TopState()
    try:
        subscription = Subscription(
            socket_path, kinds=("snapshot", "lifecycle", "event"),
            timeout=timeout)
    except ServeError as exc:
        print(f"repro top: {exc}", file=out, flush=True)
        return 2
    rendered = False
    try:
        with subscription:
            for frame in subscription.frames(limit=frames):
                if state.update(frame):
                    if clear:
                        out.write("\x1b[2J\x1b[H")
                    print(render_dashboard(state, socket_path),
                          file=out, flush=True)
                    rendered = True
    except KeyboardInterrupt:
        pass
    except ServeError as exc:
        print(f"repro top: {exc}", file=out, flush=True)
        return 2
    if not rendered:
        # bounded runs still produce one dashboard even if the stream
        # ended before a snapshot frame arrived
        print(render_dashboard(state, socket_path), file=out, flush=True)
    return 0
