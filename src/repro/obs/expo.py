"""Prometheus-style text exposition of a metrics registry.

Renders a :class:`~repro.obs.registry.MetricsRegistry` (or its
``to_dict`` payload) in the Prometheus text format, the lingua franca a
scraper, ``curl`` or a human can read off the ``repro client metrics``
verb:

* counters  -> ``<ns>_<name>_total <value>`` (``# TYPE ... counter``);
* gauges    -> ``<ns>_<name> <value>`` (``# TYPE ... gauge``);
* timers    -> ``<ns>_<name>_seconds_total`` + ``<ns>_<name>_spans_total``
  (a timer is two counters in this format);
* histograms -> cumulative ``<ns>_<name>_bucket{le="..."}`` samples with
  the mandatory ``le="+Inf"`` terminal bucket and ``<ns>_<name>_count``
  (the registry's fixed-bucket histograms track counts, not sums, so no
  ``_sum`` sample is emitted — consumers estimate quantiles from the
  buckets via :func:`repro.obs.registry.histogram_quantile`).

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar
(dots and dashes become underscores).  :func:`parse_exposition` is the
matching strict reader used by the smoke scripts and tests to prove the
output actually parses.
"""

import re

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$")


def sanitize_metric_name(name):
    """``name`` mapped onto the Prometheus metric-name grammar."""
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value):
    """A sample value in exposition syntax (integers stay integral)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry, namespace="repro"):
    """The registry as Prometheus text-format lines (one string).

    ``registry`` is a :class:`~repro.obs.registry.MetricsRegistry` or an
    equivalent ``to_dict`` payload.  Samples are grouped per metric
    under ``# TYPE`` headers and sorted by name, so two renders of equal
    registries are byte-identical.
    """
    data = registry if isinstance(registry, dict) else registry.to_dict()
    prefix = f"{namespace}_" if namespace else ""
    lines = []

    def emit(name, kind, samples):
        lines.append(f"# TYPE {name} {kind}")
        for suffix, value in samples:
            lines.append(f"{name}{suffix} {_format_value(value)}")

    for name, value in sorted(data.get("counters", {}).items()):
        emit(f"{prefix}{sanitize_metric_name(name)}_total", "counter",
             [("", value)])
    for name, value in sorted(data.get("gauges", {}).items()):
        emit(f"{prefix}{sanitize_metric_name(name)}", "gauge",
             [("", value)])
    for name, fields in sorted(data.get("timers", {}).items()):
        base = f"{prefix}{sanitize_metric_name(name)}"
        emit(f"{base}_seconds_total", "counter", [("", fields["seconds"])])
        emit(f"{base}_spans_total", "counter", [("", fields["count"])])
    for name, fields in sorted(data.get("histograms", {}).items()):
        base = f"{prefix}{sanitize_metric_name(name)}"
        samples = []
        cumulative = 0
        for bound, count in zip(fields["bounds"], fields["counts"]):
            cumulative += count
            samples.append((f'{{le="{bound}"}}', cumulative))
        samples.append(('{le="+Inf"}', fields["total"]))
        emit(f"{base}_bucket", "histogram", samples)
        emit(f"{base}_count", "counter", [("", fields["total"])])
    return "\n".join(lines) + "\n"


def parse_exposition(text):
    """Parse Prometheus text format back into ``{sample: value}``.

    Strict by design — this is the proof harness for
    :func:`render_prometheus`, so any line that is not a comment, blank,
    or a well-formed ``name[{labels}] value`` sample raises
    ``ValueError`` naming the 1-based line number.  Sample keys keep
    their label part verbatim (``repro_x_bucket{le="5"}``).
    """
    samples = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno}: not a valid exposition sample: "
                f"{line[:60]!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(f"line {lineno}: non-numeric sample value "
                             f"{match.group('value')!r}") from None
        key = match.group("name") + (match.group("labels") or "")
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    return samples
