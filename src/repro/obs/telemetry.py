"""The telemetry facade the VM wires through every layer.

One :class:`Telemetry` object bundles the three observability primitives —
the metrics registry, the bounded event stream, and the hot-fragment
profiler — plus the finalisation step that mirrors end-of-run ``VMStats``
and translation-cache totals into the registry so a run's whole
observable state exports as one JSON-able summary.

``VMConfig.telemetry`` (default off) selects between the real object and
:data:`NULL_TELEMETRY`, whose registry/events/profiler are the no-op
twins: with telemetry off the VM's hot paths see only dead attribute
loads and ``is not None`` checks at fragment and run boundaries, never
per-instruction work — the ≤2% overhead budget the benchmark gate
enforces.

Two summary views exist because the harness treats them differently:

* :meth:`Telemetry.summary` is **deterministic** — counters, gauges,
  histograms, event totals and the hottest fragments are pure functions
  of the run point, so they live in cacheable run summaries and must be
  bit-identical across serial/parallel/cached execution;
* :meth:`Telemetry.host_summary` is **process-local** — wall-clock phase
  timers and decode-cache miss counts depend on the machine and on which
  process ran first, so the harness stores them next to ``elapsed``,
  outside the determinism contract.
"""

from contextlib import contextmanager

from repro.obs.events import (
    DEFAULT_CAPACITY,
    EventStream,
    NULL_EVENTS,
    add_global_tap,
    remove_global_tap,
)
from repro.obs.profile import FragmentProfiler, NULL_PROFILER
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY

#: Bucket bounds for instruction-count-shaped distributions (superblock
#: lengths, fragment body sizes).
SIZE_BUCKETS = (5, 10, 20, 50, 100, 200, 500)
#: Bucket bounds for fragment execution counts.
EXEC_BUCKETS = (1, 10, 100, 1000, 10_000, 100_000)

#: Resilience counters exported under dedicated gauge names; anything
#: not listed lands in the generic ``faults.*`` namespace.
_RESILIENCE_GAUGES = {
    "smc_detected": "smc.detected",
    "smc_invalidations": "smc.invalidations",
    "retranslate_deopts": "smc.retranslate_deopts",
    "stale_captures_discarded": "smc.stale_captures_discarded",
    "protect_invalidations": "mmu.protect_invalidations",
}


class Telemetry:
    """Live telemetry: registry + event stream + fragment profiler."""

    enabled = True

    #: Set by a :class:`~repro.persist.session.PersistSession` when the
    #: VM persists translations.  Warm-start activity depends on what
    #: happens to be on disk, so it exports through ``host_summary``
    #: only — never the deterministic ``summary``.
    persist_stats = None

    def __init__(self, event_capacity=DEFAULT_CAPACITY):
        self.registry = MetricsRegistry()
        self.events = EventStream(event_capacity)
        self.fragments = FragmentProfiler()
        self.decode_misses = 0

    def finalize(self, stats, tcache, interpreter=None):
        """Mirror end-of-run totals into the registry (idempotent).

        Gauges are *set*, and the execution-count histogram is rebuilt,
        so calling this after every ``run()`` stint is safe.
        """
        registry = self.registry
        for name, value in stats.summary().items():
            registry.gauge(f"stats.{name}").set(value)
        registry.gauge("stats.traps_delivered").set(stats.traps_delivered)
        registry.gauge("stats.tcache_flushes").set(stats.tcache_flushes)
        registry.gauge("tcache.fragments_live").set(len(tcache.fragments))
        registry.gauge("tcache.code_bytes").set(tcache.total_code_bytes())
        registry.gauge("tcache.patches_applied").set(tcache.patches_applied)
        registry.gauge("tcache.invalidations").set(tcache.invalidations)
        histogram = registry.histogram("tcache.fragment_executions",
                                       EXEC_BUCKETS)
        histogram.reset()
        for fragment in tcache.fragments:
            histogram.observe(fragment.execution_count)
        # degradation gauges appear only when something fired, keeping
        # fault-free summaries bit-identical to pre-fault-injection runs;
        # the hostile-guest counters get their own smc.*/mmu.* namespaces
        # (docs/observability.md) instead of the generic faults.* one
        for name, value in stats.resilience().items():
            if value:
                registry.gauge(_RESILIENCE_GAUGES.get(
                    name, f"faults.{name}")).set(value)
        if interpreter is not None:
            self.decode_misses = interpreter.decode_misses

    def summary(self, hot_fragments=5):
        """The deterministic JSON-able summary (see the module docstring)."""
        data = self.registry.to_dict()
        return {
            "counters": data["counters"],
            "gauges": data["gauges"],
            "histograms": data["histograms"],
            "events": self.events.summary(),
            "fragments_profiled": len(self.fragments),
            "hot_fragments": [record.to_json()
                              for record in self.fragments.top(hot_fragments)],
        }

    def host_summary(self):
        """Process-local wall-clock measurements (outside determinism)."""
        summary = {
            "timers": self.registry.to_dict()["timers"],
            "decode_misses": self.decode_misses,
        }
        if self.persist_stats is not None:
            summary["persist"] = self.persist_stats.to_dict()
        return summary

    def __repr__(self):
        return (f"Telemetry({self.events.emitted} events, "
                f"{len(self.fragments)} fragments profiled)")


class NullTelemetry:
    """Telemetry disabled: the same surface, every operation a no-op."""

    enabled = False
    registry = NULL_REGISTRY
    events = NULL_EVENTS
    fragments = NULL_PROFILER
    decode_misses = 0

    def finalize(self, stats, tcache, interpreter=None):
        """No-op."""

    def summary(self, hot_fragments=5):
        """An empty summary."""
        return {"counters": {}, "gauges": {}, "histograms": {},
                "events": NULL_EVENTS.summary(), "fragments_profiled": 0,
                "hot_fragments": []}

    def host_summary(self):
        """An empty host summary."""
        return {"timers": {}, "decode_misses": 0}

    def __repr__(self):
        return "NullTelemetry()"


NULL_TELEMETRY = NullTelemetry()


def make_telemetry(config):
    """The telemetry object ``config`` asks for.

    ``VMConfig.telemetry`` truthy selects a fresh :class:`Telemetry`;
    anything else the shared :data:`NULL_TELEMETRY`.  The
    ``REPRO_EVENT_CAPACITY`` environment variable overrides the event
    ring's capacity (chiefly so tests and overflow investigations can
    shrink it without plumbing a knob through every constructor).
    """
    if getattr(config, "telemetry", False):
        import os

        capacity = os.environ.get("REPRO_EVENT_CAPACITY")
        if capacity is not None:
            return Telemetry(event_capacity=int(capacity))
        return Telemetry()
    return NULL_TELEMETRY


@contextmanager
def tapped_events(callback, kinds=None):
    """Subscribe ``callback`` to every event any telemetry-enabled run
    in this process emits, for the duration of the ``with`` block.

    ``kinds`` (an iterable of :class:`~repro.obs.events.EventKind`
    values) filters at the tap, so high-rate kinds never cross the
    subscription boundary.  This is the in-process half of the serve
    streaming layer (:mod:`repro.serve.streaming`): the tap fires on the
    thread running the VM, so consumers that live on an event loop must
    hand off with ``call_soon_threadsafe``.  Pool workers are separate
    processes — their events arrive post-hoc through run summaries, not
    through taps.
    """
    wanted = frozenset(kinds) if kinds is not None else None

    def tap(event):
        if wanted is None or event.kind in wanted:
            callback(event)

    add_global_tap(tap)
    try:
        yield tap
    finally:
        remove_global_tap(tap)


def merge_summary(registry, summary, host=None):
    """Fold one run's telemetry summary (and optional host block) into an
    aggregate registry — how the harness merges parallel workers'
    registries.

    Event per-kind totals become ``events.<kind>`` counters; dropped
    records and profiled-fragment counts merge as counters too, so the
    aggregate view never silently under-reports.
    """
    registry.merge_dict({
        "counters": summary.get("counters", {}),
        "gauges": summary.get("gauges", {}),
        "histograms": summary.get("histograms", {}),
    })
    events = summary.get("events", {})
    for kind, count in events.get("by_kind", {}).items():
        registry.counter(f"events.{kind}").inc(count)
    registry.counter("events.dropped").inc(events.get("dropped", 0))
    registry.counter("fragments.profiled").inc(
        summary.get("fragments_profiled", 0))
    if host:
        registry.merge_dict({"timers": host.get("timers", {})})
        registry.counter("interp.decode_misses").inc(
            host.get("decode_misses", 0))
    return registry
