"""Metrics registry: named counters, gauges, timers and histograms.

The registry is the numeric half of the telemetry subsystem (the event
stream in :mod:`repro.obs.events` is the other).  Four metric kinds cover
everything the DBT wants to report:

* **counters** — monotonically increasing totals (fragments created,
  dispatch runs);
* **gauges** — last-written point-in-time values (live fragment count,
  translation-cache bytes);
* **timers** — accumulated wall-clock seconds plus a span count (translator
  phase times, interpret/execute split);
* **histograms** — fixed-bucket distributions (superblock lengths,
  fragment body sizes).

Every metric serialises to JSON-able primitives (:meth:`MetricsRegistry.
to_dict`) and merges associatively (:meth:`MetricsRegistry.merge_dict`):
counters, timers and histogram buckets add, gauges keep the maximum (the
only order-independent choice without timestamps).  That makes registries
from parallel harness workers — which arrive as plain dicts inside run
summaries — foldable into one aggregate view.

A parallel no-op implementation (:data:`NULL_REGISTRY`) exposes the same
surface with every operation stubbed out; it is what the VM wires up when
``VMConfig.telemetry`` is off, so disabled telemetry costs at most an
attribute load at the call site.
"""

import time
from bisect import bisect_left

#: Default histogram bucket upper bounds (values above the last bound land
#: in the overflow bucket).  Suits instruction-count-like quantities.
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (default 1) to the total."""
        self.value += amount

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-written point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        """Record the current value."""
        self.value = value

    def __repr__(self):
        return f"Gauge({self.name}={self.value})"


class _TimerSpan:
    """Context manager measuring one span for its owning :class:`Timer`."""

    __slots__ = ("_timer", "_started")

    def __init__(self, timer):
        self._timer = timer
        self._started = None

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._timer.add(time.perf_counter() - self._started)
        return False


class Timer:
    """Accumulated wall-clock seconds plus the number of measured spans."""

    __slots__ = ("name", "seconds", "count")

    def __init__(self, name):
        self.name = name
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds, count=1):
        """Credit ``seconds`` of measured time (``count`` spans)."""
        self.seconds += seconds
        self.count += count

    def time(self):
        """A context manager that measures one span into this timer."""
        return _TimerSpan(self)

    def __repr__(self):
        return f"Timer({self.name}={self.seconds:.6f}s/{self.count})"


class Histogram:
    """A fixed-bucket distribution.

    ``bounds`` are ascending inclusive upper edges; one extra overflow
    bucket catches everything above the last bound.  Fixed buckets keep
    observation O(log n) and make merging across registries a plain
    element-wise sum.
    """

    __slots__ = ("name", "bounds", "counts", "total")

    def __init__(self, name, bounds=DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly ascending")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0

    def observe(self, value, count=1):
        """Record ``value`` falling into its bucket ``count`` times."""
        self.counts[bisect_left(self.bounds, value)] += count
        self.total += count

    def quantile(self, q):
        """Estimate the ``q``-quantile (see :func:`histogram_quantile`)."""
        return histogram_quantile(self.bounds, self.counts, q)

    def quantiles(self, qs=(0.5, 0.9, 0.99)):
        """Estimate several quantiles at once; ``{q: estimate}``."""
        return {q: self.quantile(q) for q in qs}

    def reset(self):
        """Zero every bucket (used for rebuild-on-finalize histograms)."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0

    def __repr__(self):
        return f"Histogram({self.name}, n={self.total})"


def histogram_quantile(bounds, counts, q):
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    The estimator is the Prometheus ``histogram_quantile`` rule: find
    the bucket containing the target rank ``q * total`` and interpolate
    linearly inside it, taking the first bucket's lower edge as 0 and
    clamping the overflow bucket to the last finite bound (a fixed
    bucket layout cannot know how far past it the tail reaches).  The
    estimate is therefore **exact at bucket boundaries**: a rank landing
    precisely on a bucket's cumulative count returns that bucket's upper
    bound, which the unit tests pin down.

    Returns ``None`` for an empty histogram — there is no distribution
    to ask about, and 0.0 would be indistinguishable from a real
    all-zero sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    bounds = tuple(bounds)
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        below = cumulative
        cumulative += count
        if cumulative >= rank and count:
            if index >= len(bounds):        # overflow bucket
                return float(bounds[-1]) if bounds else 0.0
            lower = 0.0 if index == 0 else float(bounds[index - 1])
            upper = float(bounds[index])
            return lower + (upper - lower) * ((rank - below) / count)
    return float(bounds[-1]) if bounds else 0.0


def histogram_quantiles(bounds, counts, qs=(0.5, 0.9, 0.99)):
    """Several :func:`histogram_quantile` estimates at once, as
    ``{q: estimate}`` (``None`` entries for an empty histogram)."""
    return {q: histogram_quantile(bounds, counts, q) for q in qs}


class MetricsRegistry:
    """A namespace of metrics, created on first use and mergeable."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.timers = {}
        self.histograms = {}

    # -- creation-on-use ------------------------------------------------------

    def counter(self, name):
        """The counter called ``name`` (created on first use)."""
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        """The gauge called ``name`` (created on first use)."""
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def timer(self, name):
        """The timer called ``name`` (created on first use)."""
        metric = self.timers.get(name)
        if metric is None:
            metric = self.timers[name] = Timer(name)
        return metric

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        """The histogram called ``name`` (created on first use).

        ``bounds`` only applies at creation; asking again with different
        bounds is an error (silent re-bucketing would corrupt merges).
        """
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, bounds)
        elif tuple(bounds) != metric.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{metric.bounds}")
        return metric

    # -- serialisation and merging -------------------------------------------

    def to_dict(self):
        """Every metric as JSON-able primitives."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "timers": {n: {"seconds": t.seconds, "count": t.count}
                       for n, t in sorted(self.timers.items())},
            "histograms": {n: {"bounds": list(h.bounds),
                               "counts": list(h.counts),
                               "total": h.total}
                           for n, h in sorted(self.histograms.items())},
        }

    def merge_dict(self, data):
        """Fold a :meth:`to_dict` payload into this registry.

        Counters, timers and histogram buckets add; gauges keep the
        maximum of the two values.  Histograms must agree on bounds.
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, fields in data.get("timers", {}).items():
            self.timer(name).add(fields["seconds"], fields["count"])
        for name, fields in data.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(fields["bounds"]))
            if list(histogram.bounds) != list(fields["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bounds mismatch on merge")
            for index, count in enumerate(fields["counts"]):
                histogram.counts[index] += count
            histogram.total += fields["total"]
        return self

    def merge(self, other):
        """Fold another registry into this one (see :meth:`merge_dict`)."""
        return self.merge_dict(other.to_dict())

    def __repr__(self):
        return (f"MetricsRegistry({len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, {len(self.timers)} timers, "
                f"{len(self.histograms)} histograms)")


# -- the no-op twin -----------------------------------------------------------

class _NullSpan:
    """A context manager that measures nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


class _NullMetric:
    """One object impersonating every metric kind, all operations no-ops."""

    __slots__ = ()
    name = "<null>"
    value = 0
    seconds = 0.0
    count = 0
    total = 0

    def inc(self, amount=1):
        """No-op."""

    def set(self, value):
        """No-op."""

    def add(self, seconds, count=1):
        """No-op."""

    def observe(self, value, count=1):
        """No-op."""

    def quantile(self, q):
        """Always None (nothing was observed)."""
        return None

    def quantiles(self, qs=(0.5, 0.9, 0.99)):
        """All-None estimates."""
        return {q: None for q in qs}

    def reset(self):
        """No-op."""

    def time(self):
        """A no-op span."""
        return _NULL_SPAN


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The zero-overhead registry used when telemetry is disabled.

    Every accessor returns the shared no-op metric; nothing is ever
    allocated or recorded, and :meth:`to_dict` is empty.
    """

    counters = {}
    gauges = {}
    timers = {}
    histograms = {}

    def counter(self, name):
        """The shared no-op metric."""
        return _NULL_METRIC

    def gauge(self, name):
        """The shared no-op metric."""
        return _NULL_METRIC

    def timer(self, name):
        """The shared no-op metric."""
        return _NULL_METRIC

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        """The shared no-op metric."""
        return _NULL_METRIC

    def to_dict(self):
        """An empty payload."""
        return {"counters": {}, "gauges": {}, "timers": {},
                "histograms": {}}

    def merge_dict(self, data):
        """No-op; returns self."""
        return self

    def merge(self, other):
        """No-op; returns self."""
        return self


NULL_REGISTRY = NullRegistry()
