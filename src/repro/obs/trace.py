"""Hierarchical span tracing with Chrome trace-event export.

Where the metrics registry answers "how much" and the event stream "what
happened", the :class:`Tracer` answers "*when*, nested inside what": the
VM run loop, the translator pipeline phases and the harness wrap their
stages in spans, and the result exports as Chrome trace-event JSON —
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` —
plus a plain-text flame summary for terminals.

The design mirrors :mod:`repro.obs.telemetry`'s no-op twin pattern:
``VMConfig.trace`` (default off) selects between a live :class:`Tracer`
and the shared :data:`NULL_TRACER`, whose every operation is a dead
method call, so the traced code paths cost nothing when tracing is off
(and ``trace`` — like ``telemetry`` — is excluded from the run-point
cache key; the no-op parity tests assert behavioural identity).

Span nesting is positional, exactly as the Chrome trace format defines
it: a complete ("ph": "X") event is a child of any event on the same
``pid``/``tid`` track whose time range contains it.  One tracer owns one
track by default; the harness adds extra tracks (one per parallel
worker) through :meth:`Tracer.add_complete`, which accepts raw
``perf_counter`` timestamps measured in worker processes —
``perf_counter`` reads the system-wide monotonic clock on every platform
we run on, so worker timestamps land on the same timeline.

The buffer is bounded (:data:`DEFAULT_MAX_EVENTS` spans) so tracing a
long run cannot grow memory without limit; overflow is counted in
``dropped`` and surfaced in the export's ``otherData`` block, never
silently.
"""

import json
import time

#: Spans retained per tracer; beyond this, new spans are dropped and
#: counted (a 200k-instruction VM run stays well below this).
DEFAULT_MAX_EVENTS = 200_000


class _Span:
    """Context manager recording one span on its owning :class:`Tracer`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args")

    def __init__(self, tracer, name, cat, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._tracer.begin(self._name, cat=self._cat, **self._args)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer.end()
        return False


class MultiSpan:
    """Enter several context managers as one (e.g. a registry timer span
    plus a tracer span around the same region)."""

    __slots__ = ("_cms",)

    def __init__(self, *cms):
        self._cms = cms

    def __enter__(self):
        for cm in self._cms:
            cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        for cm in reversed(self._cms):
            cm.__exit__(exc_type, exc, tb)
        return False


class Tracer:
    """A hierarchical span recorder exporting Chrome trace events.

    Spans open with :meth:`begin` (or the :meth:`span` context manager)
    and close with :meth:`end`; the open-span stack gives nesting for
    free, and closing records one complete ("ph": "X") trace event.
    Timestamps are microseconds since the tracer's ``epoch`` (a
    ``perf_counter`` reading), as the trace-event format expects.
    """

    enabled = True

    def __init__(self, pid=0, tid=0, max_events=DEFAULT_MAX_EVENTS,
                 epoch=None, process_name="repro", thread_name="main"):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.pid = pid
        self.tid = tid
        self.max_events = max_events
        self.epoch = time.perf_counter() if epoch is None else epoch
        #: finished Chrome trace-event dicts ("X" completes and "i"
        #: instants), in completion order
        self.events = []
        #: spans/instants discarded after the buffer filled
        self.dropped = 0
        self._stack = []        # open spans: [name, cat, start_us, args]
        self._meta = []         # "M" metadata events (track names)
        self._paths = {}        # flame data: "a;b;c" -> [total_us, count]
        self.set_process_name(process_name)
        self.set_thread_name(tid, thread_name)

    def _now_us(self):
        return (time.perf_counter() - self.epoch) * 1e6

    # -- span recording -------------------------------------------------------

    def begin(self, name, cat="vm", **args):
        """Open a span; it becomes the parent of spans opened before
        :meth:`end`."""
        self._stack.append([name, cat, self._now_us(), args])

    def end(self, **args):
        """Close the innermost open span, merging extra ``args`` in."""
        if not self._stack:
            raise RuntimeError("Tracer.end() without a matching begin()")
        name, cat, start_us, span_args = self._stack.pop()
        if args:
            span_args.update(args)
        self._record(name, cat, start_us, self._now_us(), self.tid,
                     span_args)

    def span(self, name, cat="vm", **args):
        """A context manager measuring one span."""
        return _Span(self, name, cat, args)

    def instant(self, name, cat="vm", **args):
        """Record a zero-duration marker at the current time."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({"name": name, "cat": cat, "ph": "i",
                            "ts": self._now_us(), "s": "t",
                            "pid": self.pid, "tid": self.tid, "args": args})

    def add_complete(self, name, start, end, tid=None, cat="harness",
                     args=None):
        """Record a finished span from raw ``perf_counter`` timestamps.

        This is how out-of-process measurements (parallel harness
        workers) join the trace: the worker reports ``perf_counter``
        readings, and ``tid`` places the span on its own track.
        """
        self._record(name, cat, (start - self.epoch) * 1e6,
                     (end - self.epoch) * 1e6,
                     self.tid if tid is None else tid,
                     dict(args) if args else {}, path=name)

    def unwind(self):
        """Close every open span (abnormal exits: traps, budget raises)."""
        while self._stack:
            self.end()

    def _record(self, name, cat, start_us, end_us, tid, args, path=None):
        duration = max(end_us - start_us, 0.0)
        if path is None:
            path = ";".join([frame[0] for frame in self._stack] + [name])
        bucket = self._paths.setdefault(path, [0.0, 0])
        bucket[0] += duration
        bucket[1] += 1
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({"name": name, "cat": cat, "ph": "X",
                            "ts": start_us, "dur": duration,
                            "pid": self.pid, "tid": tid, "args": args})

    # -- track naming ---------------------------------------------------------

    def set_process_name(self, name):
        """Label this tracer's process row in the trace viewer."""
        self._meta.append({"name": "process_name", "ph": "M",
                           "pid": self.pid, "tid": 0,
                           "args": {"name": name}})

    def set_thread_name(self, tid, name):
        """Label one track (``tid``) in the trace viewer."""
        self._meta.append({"name": "thread_name", "ph": "M",
                           "pid": self.pid, "tid": tid,
                           "args": {"name": name}})

    # -- export ---------------------------------------------------------------

    def to_chrome(self):
        """The trace as a Chrome trace-event JSON object.

        Spans still open at export time (a trap unwound past them) are
        flushed as best-effort completes ending now, so the file always
        loads.
        """
        events = list(self._meta) + list(self.events)
        now = self._now_us()
        prefix = []
        for name, cat, start_us, args in self._stack:
            prefix.append(name)
            events.append({"name": name, "cat": cat, "ph": "X",
                           "ts": start_us, "dur": max(now - start_us, 0.0),
                           "pid": self.pid, "tid": self.tid,
                           "args": dict(args, unfinished=True)})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped": self.dropped,
                          "spans": len(self.events)},
        }

    def write(self, path):
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)

    def flame_lines(self, top=20):
        """The flame summary: inclusive time per span path, hottest first."""
        ranked = sorted(self._paths.items(),
                        key=lambda item: item[1][0], reverse=True)
        total_s = sum(bucket[0] for _path, bucket in
                      self._paths.items() if ";" not in _path) / 1e6
        lines = [f"flame summary (top {min(top, len(ranked))} of "
                 f"{len(ranked)} span paths, {total_s:.3f}s at the root):"]
        if not ranked:
            lines.append("  (no spans recorded — was tracing on?)")
            return lines
        for path, (total_us, count) in ranked[:top]:
            depth = path.count(";")
            name = path.rsplit(";", 1)[-1]
            lines.append(f"  {total_us / 1e6:9.4f}s x{count:<7d} "
                         f"{'  ' * depth}{name}")
        return lines

    def __repr__(self):
        return (f"Tracer({len(self.events)} events, "
                f"{len(self._stack)} open, {self.dropped} dropped)")


class _NullSpan:
    """A context manager that records nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: the same surface, every operation a no-op."""

    enabled = False
    pid = 0
    tid = 0
    events = ()
    dropped = 0
    max_events = 0

    def begin(self, name, cat="vm", **args):
        """No-op."""

    def end(self, **args):
        """No-op."""

    def span(self, name, cat="vm", **args):
        """A no-op span."""
        return _NULL_SPAN

    def instant(self, name, cat="vm", **args):
        """No-op."""

    def add_complete(self, name, start, end, tid=None, cat="harness",
                     args=None):
        """No-op."""

    def unwind(self):
        """No-op."""

    def set_process_name(self, name):
        """No-op."""

    def set_thread_name(self, tid, name):
        """No-op."""

    def to_chrome(self):
        """An empty (but loadable) trace document."""
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"dropped": 0, "spans": 0}}

    def write(self, path):
        """No-op: the null tracer never touches the filesystem."""

    def flame_lines(self, top=20):
        """Always empty."""
        return []

    def __repr__(self):
        return "NullTracer()"


NULL_TRACER = NullTracer()


def make_tracer(config):
    """The tracer ``config`` asks for (`VMConfig.trace`), following the
    :func:`repro.obs.telemetry.make_telemetry` pattern."""
    if getattr(config, "trace", False):
        return Tracer()
    return NULL_TRACER


# -- validation (tests, the smoke script, and external tooling) ---------------

def validate_chrome_trace(doc):
    """Schema-check an exported trace document.

    Raises :class:`ValueError` naming the offending event on any
    violation; returns the list of complete ("X") events on success.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace document "
                         "(missing 'traceEvents')")
    completes = []
    for index, event in enumerate(doc["traceEvents"]):
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ValueError(f"trace event {index} missing {field!r}")
        if event["ph"] == "M":
            continue
        if "ts" not in event:
            raise ValueError(f"trace event {index} missing 'ts'")
        if event["ph"] == "X":
            if "dur" not in event:
                raise ValueError(f"trace event {index} ('X') missing 'dur'")
            if event["dur"] < 0:
                raise ValueError(f"trace event {index} has negative dur")
            completes.append(event)
    return completes


def span_contains(parent, child, slop_us=0.5):
    """True when ``child``'s time range nests inside ``parent``'s on the
    same track (how Chrome/Perfetto decide parenthood)."""
    return (parent["pid"] == child["pid"]
            and parent["tid"] == child["tid"]
            and parent["ts"] - slop_us <= child["ts"]
            and child["ts"] + child.get("dur", 0.0)
            <= parent["ts"] + parent["dur"] + slop_us)
