"""A bounded ring of periodic metric snapshots, with delta/rate views.

The registry (:mod:`repro.obs.registry`) accumulates *totals*; a
long-lived process (``repro serve``) also needs to answer "how fast is
this moving **right now**" — requests per second, warm-hit rate over the
last interval, promotion bursts.  :class:`TimeSeriesRing` holds the last
N snapshots of a flat ``{name: number}`` value map, each stamped with a
wall-clock timestamp and a monotonic sequence number, so consumers can
difference any two snapshots into per-interval deltas and divide by the
elapsed time for rates — without the producer ever storing anything but
totals.

The ring is bounded: recording past capacity evicts the oldest snapshot
(counted in :attr:`TimeSeriesRing.evicted`), so a server that snapshots
every second holds a fixed-size recent-history window forever.
"""

from collections import deque

#: Default ring capacity — at the serve loop's 1 s snapshot cadence,
#: five minutes of history.
DEFAULT_RING_CAPACITY = 300


class Snapshot:
    """One point-in-time value map: timestamp, sequence, flat values."""

    __slots__ = ("ts", "seq", "values")

    def __init__(self, ts, seq, values):
        self.ts = ts
        self.seq = seq
        self.values = values

    def to_json(self):
        """The snapshot as a JSON-able dict."""
        return {"ts": self.ts, "seq": self.seq, "values": self.values}

    def __repr__(self):
        return f"Snapshot(seq={self.seq}, ts={self.ts:.3f}, " \
               f"{len(self.values)} values)"


def snapshot_delta(older, newer):
    """Per-name differences ``newer - older`` over the newer snapshot's
    keys (a name absent from the older snapshot counts from zero, so a
    counter created mid-run still deltas correctly)."""
    old = older.values
    return {name: value - old.get(name, 0)
            for name, value in newer.values.items()}


class TimeSeriesRing:
    """A bounded, ordered buffer of :class:`Snapshot` records."""

    def __init__(self, capacity=DEFAULT_RING_CAPACITY):
        if capacity < 2:
            raise ValueError("ring capacity must be >= 2 (deltas need "
                             "two snapshots)")
        self.capacity = capacity
        self._buffer = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, values, ts):
        """Append one snapshot of ``values`` taken at wall-clock ``ts``;
        returns it."""
        snapshot = Snapshot(ts, self.recorded, dict(values))
        self.recorded += 1
        self._buffer.append(snapshot)
        return snapshot

    @property
    def evicted(self):
        """Snapshots pushed out of the ring so far."""
        return self.recorded - len(self._buffer)

    def latest(self):
        """The newest snapshot, or None when empty."""
        return self._buffer[-1] if self._buffer else None

    def delta(self, spans=1):
        """``(deltas, elapsed)`` between the newest snapshot and the one
        ``spans`` recordings back (clamped to the oldest held).

        Returns ``({}, 0.0)`` with fewer than two snapshots — a rate
        needs an interval.
        """
        if len(self._buffer) < 2:
            return {}, 0.0
        spans = max(1, min(spans, len(self._buffer) - 1))
        older = self._buffer[-1 - spans]
        newer = self._buffer[-1]
        return snapshot_delta(older, newer), newer.ts - older.ts

    def rates(self, spans=1):
        """Per-second rates over the same window as :meth:`delta`."""
        deltas, elapsed = self.delta(spans)
        if elapsed <= 0:
            return {}, elapsed
        return {name: value / elapsed for name, value in deltas.items()}, \
            elapsed

    def series(self, name, limit=None):
        """``(ts, value)`` pairs of one metric across the held window
        (snapshots missing the name are skipped), newest last."""
        points = [(snapshot.ts, snapshot.values[name])
                  for snapshot in self._buffer if name in snapshot.values]
        return points[-limit:] if limit else points

    def to_json(self, limit=None):
        """The newest ``limit`` snapshots (all, when None) as JSON-able
        dicts, oldest first."""
        snapshots = list(self._buffer)
        if limit:
            snapshots = snapshots[-limit:]
        return [snapshot.to_json() for snapshot in snapshots]

    def __len__(self):
        return len(self._buffer)

    def __iter__(self):
        return iter(self._buffer)

    def __repr__(self):
        return (f"TimeSeriesRing({len(self._buffer)}/{self.capacity} "
                f"held, {self.recorded} recorded)")


def flatten_registry(data, prefix=""):
    """Flatten a :meth:`MetricsRegistry.to_dict` payload into the flat
    ``{name: number}`` map a :class:`TimeSeriesRing` records.

    Counters and gauges keep their names; timers contribute
    ``<name>.seconds`` and ``<name>.count``; histograms contribute
    ``<name>.total`` (bucket vectors do not difference usefully as
    scalars — stream them whole instead).
    """
    values = {}
    for name, value in data.get("counters", {}).items():
        values[prefix + name] = value
    for name, value in data.get("gauges", {}).items():
        values[prefix + name] = value
    for name, fields in data.get("timers", {}).items():
        values[f"{prefix}{name}.seconds"] = fields["seconds"]
        values[f"{prefix}{name}.count"] = fields["count"]
    for name, fields in data.get("histograms", {}).items():
        values[f"{prefix}{name}.total"] = fields["total"]
    return values
