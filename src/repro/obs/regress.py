"""The benchmark-regression sentinel behind ``repro bench-compare``.

The repo's benchmarks leave JSON records (``BENCH_exec.json``,
``BENCH_harness.json``) whose numeric fields fall into two families:

* **wall-clock-shaped** metrics (``*_seconds``, ``*ratio``,
  ``*speedup``) are only reproducible up to machine jitter, so they are
  compared with a relative tolerance (and, for raw seconds, a small
  absolute slack that keeps sub-hundredth-second noise from tripping a
  relative gate);
* **count-shaped** metrics (everything else — run points, event totals,
  fragment counts) are deterministic by the harness contract and must
  match *exactly*: a drifting count is a correctness bug, not noise.

Wall-clock numbers only mean something relative to the machine that
produced them, so the comparison honours the same machine-metadata guard
the benchmarks themselves use: when the two records disagree on machine
or run context (workloads, budget, reps), the gate is *skipped with a
warning* rather than failed — cross-machine comparisons are flagged,
never gated.

``compare_benchmarks`` is pure (two dicts in, a :class:`Comparison`
out); the CLI layer in :mod:`repro.cli` maps it to exit codes:
0 = no regression (or gate skipped), 1 = regression, 2 = unreadable
input.
"""

import os
import platform

#: Relative tolerance for wall-clock-shaped metrics (5%).
TIME_TOLERANCE = 0.05
#: Absolute slack, in seconds, added on top of the relative tolerance for
#: raw ``*_seconds`` metrics.  Small by design: large enough to absorb
#: scheduler jitter on sub-hundredth-second timings, far too small to
#: swallow a real regression on any gated total.
TIME_SLACK_SECONDS = 0.005

#: Top-level fields that describe *what was run*, not *how it went*.
#: They guard comparability instead of being compared as metrics.
CONTEXT_KEYS = ("benchmark", "experiment", "workloads", "budget", "reps",
                "run_points", "scale")

#: Top-level *blocks* (nested dicts) that likewise carry context, not
#: metrics: the machine-identity block every record embeds, and the
#: fragment-store description ``BENCH_warmstart.json`` records (record
#: counts and store bytes are properties of what was persisted, not of
#: how fast the run went).
CONTEXT_BLOCKS = ("machine", "store")


def machine_metadata():
    """The host identity embedded in benchmark output files.

    Wall-clock records only mean something relative to the machine that
    produced them; gates that compare a fresh run against a recorded
    file first check this block matches, so numbers from different
    hardware or interpreters never gate each other.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def classify(name):
    """Which comparison rule a metric name gets.

    Returns ``"time"`` (lower is better, relative tolerance + absolute
    slack), ``"lower"`` (lower is better, relative tolerance),
    ``"higher"`` (higher is better, relative tolerance) or ``"exact"``.
    Classification looks at the last dotted segment, so nested names
    like ``rows.gzip.naive_seconds`` classify the same as top-level
    ones.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("speedup"):
        return "higher"
    if leaf.endswith("ratio"):
        return "lower"
    if leaf.endswith("seconds") or leaf == "elapsed":
        return "time"
    return "exact"


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_metrics(doc):
    """Flatten a benchmark record into ``{dotted.name: number}``.

    Top-level context fields (:data:`CONTEXT_KEYS`) and context blocks
    (:data:`CONTEXT_BLOCKS` — ``machine``, ``store``) are excluded —
    they guard comparability, they are not metrics.  Lists of
    per-workload row dicts key by the row's ``workload``
    (``rows.gzip.speedup``); other lists key by index.  Non-numeric
    leaves are ignored.
    """
    metrics = {}
    for key, value in doc.items():
        if key in CONTEXT_KEYS or key in CONTEXT_BLOCKS:
            continue
        _flatten_into(metrics, key, value)
    return metrics


def _flatten_into(metrics, prefix, value):
    if _is_number(value):
        metrics[prefix] = value
    elif isinstance(value, dict):
        for key, inner in value.items():
            _flatten_into(metrics, f"{prefix}.{key}", inner)
    elif isinstance(value, list):
        for index, inner in enumerate(value):
            if isinstance(inner, dict) and "workload" in inner:
                label = inner["workload"]
                for key, leaf in inner.items():
                    if key != "workload":
                        _flatten_into(metrics, f"{prefix}.{label}.{key}",
                                      leaf)
            else:
                _flatten_into(metrics, f"{prefix}.{index}", inner)


class MetricDelta:
    """One metric compared across the two records."""

    __slots__ = ("name", "kind", "baseline", "current", "verdict")

    def __init__(self, name, kind, baseline, current, verdict):
        self.name = name
        self.kind = kind
        self.baseline = baseline
        self.current = current
        #: "ok", "improved" or "regressed"
        self.verdict = verdict

    def render(self):
        change = ""
        if self.baseline:
            change = f" ({(self.current / self.baseline - 1.0):+.1%})"
        return (f"{self.name}: {self.baseline:g} -> {self.current:g}"
                f"{change} [{self.kind}] {self.verdict}")

    def __repr__(self):
        return f"MetricDelta({self.render()})"


class Comparison:
    """The result of :func:`compare_benchmarks`."""

    def __init__(self):
        self.deltas = []
        self.warnings = []
        #: None while the gate applies; otherwise why it was skipped
        self.skipped = None

    @property
    def regressions(self):
        return [d for d in self.deltas if d.verdict == "regressed"]

    @property
    def ok(self):
        """True when the gate passes (including when it was skipped)."""
        return self.skipped is not None or not self.regressions

    def render_lines(self):
        lines = []
        if self.skipped is not None:
            lines.append(f"gate skipped: {self.skipped}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        regressed = self.regressions
        interesting = [d for d in self.deltas
                       if d.verdict != "ok" or d.baseline != d.current]
        for delta in sorted(interesting, key=lambda d: d.name):
            lines.append("  " + delta.render())
        if self.skipped is not None:
            lines.append("result: SKIPPED (not comparable)")
        elif regressed:
            lines.append(f"result: REGRESSED "
                         f"({len(regressed)} of {len(self.deltas)} metrics)")
        else:
            lines.append(f"result: OK ({len(self.deltas)} metrics compared)")
        return lines


def _compare_one(name, baseline, current, time_tolerance, slack):
    kind = classify(name)
    if kind == "exact":
        if current != baseline:
            return MetricDelta(name, kind, baseline, current, "regressed")
        return MetricDelta(name, kind, baseline, current, "ok")
    if kind == "higher":
        floor = baseline * (1.0 - time_tolerance)
        verdict = "regressed" if current < floor else (
            "improved" if current > baseline * (1.0 + time_tolerance)
            else "ok")
        return MetricDelta(name, kind, baseline, current, verdict)
    # "lower" and "time": lower is better
    extra = slack if kind == "time" else 0.0
    ceiling = baseline * (1.0 + time_tolerance) + extra
    floor = baseline * (1.0 - time_tolerance) - extra
    verdict = "regressed" if current > ceiling else (
        "improved" if current < floor else "ok")
    return MetricDelta(name, kind, baseline, current, verdict)


def compare_benchmarks(baseline, current, time_tolerance=TIME_TOLERANCE,
                       slack=TIME_SLACK_SECONDS):
    """Compare two benchmark records; returns a :class:`Comparison`.

    ``baseline`` and ``current`` are parsed benchmark JSON documents.
    The gate is skipped (with a warning, never a failure) when the two
    records describe different run contexts or machines.
    """
    result = Comparison()

    for key in CONTEXT_KEYS:
        if baseline.get(key) != current.get(key):
            result.skipped = (
                f"run context differs: {key} "
                f"{baseline.get(key)!r} vs {current.get(key)!r}")
            return result
    base_machine = baseline.get("machine")
    cur_machine = current.get("machine")
    if not base_machine or not cur_machine:
        result.skipped = ("missing machine metadata; wall-clock numbers "
                          "cannot be gated")
        return result
    if base_machine != cur_machine:
        differing = sorted(
            key for key in set(base_machine) | set(cur_machine)
            if base_machine.get(key) != cur_machine.get(key))
        result.skipped = (f"records are from different machines "
                          f"({', '.join(differing)} differ); wall-clock "
                          f"numbers are not comparable across hosts")
        return result

    base_metrics = flatten_metrics(baseline)
    cur_metrics = flatten_metrics(current)
    for name in sorted(base_metrics):
        if name not in cur_metrics:
            result.warnings.append(f"metric {name} missing from current "
                                   f"record")
            continue
        result.deltas.append(_compare_one(
            name, base_metrics[name], cur_metrics[name],
            time_tolerance, slack))
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        result.warnings.append(f"metric {name} new in current record "
                               f"(not gated)")
    return result
