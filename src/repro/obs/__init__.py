"""Telemetry subsystem: metrics registry, event stream, fragment profiling.

``repro.obs`` is the VM's observability layer (see
``docs/observability.md`` for the catalogue and overhead methodology):

* :mod:`repro.obs.registry` — named counters, gauges, wall-clock timers
  and fixed-bucket histograms, with a zero-overhead no-op twin;
* :mod:`repro.obs.events` — a bounded ring buffer of typed records with
  JSONL export;
* :mod:`repro.obs.profile` — per-fragment execution profiling and the
  ``repro profile`` report renderers;
* :mod:`repro.obs.telemetry` — the facade ``VMConfig.telemetry`` selects
  (default: the no-op :data:`NULL_TELEMETRY`);
* :mod:`repro.obs.trace` — hierarchical span tracing with Chrome
  trace-event export (``VMConfig.trace``; default the no-op
  :data:`NULL_TRACER`);
* :mod:`repro.obs.regress` — the benchmark-regression sentinel behind
  ``repro bench-compare``;
* :mod:`repro.obs.timeseries` — a bounded ring of periodic metric
  snapshots with delta/rate views (the serve-mode feed);
* :mod:`repro.obs.expo` — Prometheus-style text exposition of a
  registry (``repro client metrics``).
"""

from repro.obs.events import (
    Event,
    EventKind,
    EventStream,
    add_global_tap,
    parse_jsonl,
    parse_jsonl_lenient,
    remove_global_tap,
)
from repro.obs.expo import parse_exposition, render_prometheus
from repro.obs.profile import (
    FragmentProfiler,
    histogram_quantile_lines,
    hot_fragment_table,
    phase_breakdown_lines,
)
from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    histogram_quantile,
    histogram_quantiles,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    make_telemetry,
    merge_summary,
    tapped_events,
)
from repro.obs.timeseries import Snapshot, TimeSeriesRing, flatten_registry
from repro.obs.trace import (
    NULL_TRACER,
    MultiSpan,
    NullTracer,
    Tracer,
    make_tracer,
    span_contains,
    validate_chrome_trace,
)

__all__ = [
    "Event", "EventKind", "EventStream", "parse_jsonl",
    "parse_jsonl_lenient", "add_global_tap", "remove_global_tap",
    "parse_exposition", "render_prometheus",
    "FragmentProfiler", "histogram_quantile_lines", "hot_fragment_table",
    "phase_breakdown_lines",
    "MetricsRegistry", "NULL_REGISTRY", "histogram_quantile",
    "histogram_quantiles",
    "NULL_TELEMETRY", "NullTelemetry", "Telemetry", "make_telemetry",
    "merge_summary", "tapped_events",
    "Snapshot", "TimeSeriesRing", "flatten_registry",
    "NULL_TRACER", "MultiSpan", "NullTracer", "Tracer", "make_tracer",
    "span_contains", "validate_chrome_trace",
]
