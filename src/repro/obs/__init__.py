"""Telemetry subsystem: metrics registry, event stream, fragment profiling.

``repro.obs`` is the VM's observability layer (see
``docs/observability.md`` for the catalogue and overhead methodology):

* :mod:`repro.obs.registry` — named counters, gauges, wall-clock timers
  and fixed-bucket histograms, with a zero-overhead no-op twin;
* :mod:`repro.obs.events` — a bounded ring buffer of typed records with
  JSONL export;
* :mod:`repro.obs.profile` — per-fragment execution profiling and the
  ``repro profile`` report renderers;
* :mod:`repro.obs.telemetry` — the facade ``VMConfig.telemetry`` selects
  (default: the no-op :data:`NULL_TELEMETRY`).
"""

from repro.obs.events import Event, EventKind, EventStream, parse_jsonl
from repro.obs.profile import (
    FragmentProfiler,
    hot_fragment_table,
    phase_breakdown_lines,
)
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    make_telemetry,
    merge_summary,
)

__all__ = [
    "Event", "EventKind", "EventStream", "parse_jsonl",
    "FragmentProfiler", "hot_fragment_table", "phase_breakdown_lines",
    "MetricsRegistry", "NULL_REGISTRY",
    "NULL_TELEMETRY", "NullTelemetry", "Telemetry", "make_telemetry",
    "merge_summary",
]
