"""Telemetry subsystem: metrics registry, event stream, fragment profiling.

``repro.obs`` is the VM's observability layer (see
``docs/observability.md`` for the catalogue and overhead methodology):

* :mod:`repro.obs.registry` — named counters, gauges, wall-clock timers
  and fixed-bucket histograms, with a zero-overhead no-op twin;
* :mod:`repro.obs.events` — a bounded ring buffer of typed records with
  JSONL export;
* :mod:`repro.obs.profile` — per-fragment execution profiling and the
  ``repro profile`` report renderers;
* :mod:`repro.obs.telemetry` — the facade ``VMConfig.telemetry`` selects
  (default: the no-op :data:`NULL_TELEMETRY`);
* :mod:`repro.obs.trace` — hierarchical span tracing with Chrome
  trace-event export (``VMConfig.trace``; default the no-op
  :data:`NULL_TRACER`);
* :mod:`repro.obs.regress` — the benchmark-regression sentinel behind
  ``repro bench-compare``.
"""

from repro.obs.events import (
    Event,
    EventKind,
    EventStream,
    parse_jsonl,
    parse_jsonl_lenient,
)
from repro.obs.profile import (
    FragmentProfiler,
    hot_fragment_table,
    phase_breakdown_lines,
)
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    make_telemetry,
    merge_summary,
)
from repro.obs.trace import (
    NULL_TRACER,
    MultiSpan,
    NullTracer,
    Tracer,
    make_tracer,
    span_contains,
    validate_chrome_trace,
)

__all__ = [
    "Event", "EventKind", "EventStream", "parse_jsonl",
    "parse_jsonl_lenient",
    "FragmentProfiler", "hot_fragment_table", "phase_breakdown_lines",
    "MetricsRegistry", "NULL_REGISTRY",
    "NULL_TELEMETRY", "NullTelemetry", "Telemetry", "make_telemetry",
    "merge_summary",
    "NULL_TRACER", "MultiSpan", "NullTracer", "Tracer", "make_tracer",
    "span_contains", "validate_chrome_trace",
]
