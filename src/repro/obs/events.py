"""The structured event stream: a bounded ring buffer of typed records.

Where the registry (:mod:`repro.obs.registry`) answers "how much", the
event stream answers "what happened, in order": fragment lifecycle
(created, entered, chained, invalidated), translation-cache flushes, trap
deliveries, superblock captures and dispatch runs, each as a small typed
record with a global sequence number.

The buffer is bounded (default :data:`DEFAULT_CAPACITY` records) so a
long run cannot grow memory without limit: once full, the oldest records
are dropped and counted, while per-kind totals keep counting everything
ever emitted.  Records export to JSON Lines — one JSON object per line —
and :func:`parse_jsonl` round-trips them, which is what external tooling
(and the smoke test) consumes.
"""

import json
from collections import Counter, deque

#: Default ring-buffer capacity, in records.
DEFAULT_CAPACITY = 4096

#: Process-global subscription taps: callables invoked with every
#: :class:`Event` any live :class:`EventStream` emits.  This is the hook
#: the serve-mode streaming layer uses to fan VM events out to socket
#: subscribers while a run is still executing — telemetry objects are
#: created per run deep inside ``execute_point``, so a per-stream
#: callback could never be threaded in from outside.  The emit hot path
#: pays one truthiness check when no tap is installed (and the no-op
#: :class:`NullEventStream` never even reaches it, keeping the
#: telemetry-off overhead gate untouched).  A tap that raises is
#: dropped silently: observability must never take down a VM run.
_GLOBAL_TAPS = []


def add_global_tap(tap):
    """Install ``tap`` (an ``Event -> None`` callable) on every stream."""
    _GLOBAL_TAPS.append(tap)


def remove_global_tap(tap):
    """Remove a previously installed tap (no error if already gone)."""
    try:
        _GLOBAL_TAPS.remove(tap)
    except ValueError:
        pass


class EventKind:
    """Names of the event types the VM emits (plain strings)."""

    FRAGMENT_CREATED = "fragment_created"
    FRAGMENT_ENTERED = "fragment_entered"
    FRAGMENT_CHAINED = "fragment_chained"
    FRAGMENT_INVALIDATED = "fragment_invalidated"
    TCACHE_FLUSH = "tcache_flush"
    TRAP_DELIVERED = "trap_delivered"
    SUPERBLOCK_CAPTURED = "superblock_captured"
    DISPATCH_RUN = "dispatch_run"
    # fault injection and graceful degradation (docs/robustness.md)
    FAULT_INJECTED = "fault_injected"
    TRANSLATION_FAILED = "translation_failed"
    PC_BLACKLISTED = "pc_blacklisted"
    TCACHE_FULL = "tcache_full"
    FRAGMENT_CORRUPTED = "fragment_corrupted"
    # tier-2 jit promotion (docs/performance.md)
    JIT_PROMOTED = "jit_promoted"
    # a guest store hit translated code (docs/robustness.md)
    SMC_DETECTED = "smc_detected"


#: Every kind the VM emits — the strict parser rejects anything else.
KNOWN_KINDS = frozenset(
    value for name, value in vars(EventKind).items()
    if not name.startswith("_"))


class Event:
    """One typed record: a sequence number, a kind, and a payload dict."""

    __slots__ = ("seq", "kind", "data")

    def __init__(self, seq, kind, data):
        self.seq = seq
        self.kind = kind
        self.data = data

    def to_json(self):
        """The record as a JSON-able dict (the JSONL line's object)."""
        return {"seq": self.seq, "kind": self.kind, "data": self.data}

    def __eq__(self, other):
        return isinstance(other, Event) and \
            (self.seq, self.kind, self.data) == \
            (other.seq, other.kind, other.data)

    def __repr__(self):
        return f"Event({self.seq}, {self.kind}, {self.data})"


class EventStream:
    """A bounded, ordered buffer of :class:`Event` records."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("event capacity must be positive")
        self.capacity = capacity
        self._buffer = deque(maxlen=capacity)
        self.emitted = 0
        self.by_kind = Counter()

    def emit(self, kind, **data):
        """Append one record; returns it.

        When the buffer is full the oldest record is silently dropped
        (``dropped`` counts them); per-kind totals are never dropped.
        """
        event = Event(self.emitted, kind, data)
        self.emitted += 1
        self.by_kind[kind] += 1
        self._buffer.append(event)
        if _GLOBAL_TAPS:
            for tap in list(_GLOBAL_TAPS):
                try:
                    tap(event)
                except Exception:
                    remove_global_tap(tap)
        return event

    @property
    def dropped(self):
        """Records evicted from the ring so far."""
        return self.emitted - len(self._buffer)

    def __len__(self):
        return len(self._buffer)

    def __iter__(self):
        return iter(self._buffer)

    def records(self, kind=None):
        """Buffered records in order, optionally filtered by kind."""
        if kind is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.kind == kind]

    def summary(self):
        """Emission totals as a JSON-able dict."""
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "by_kind": dict(sorted(self.by_kind.items())),
        }

    def to_jsonl(self):
        """The buffered records as JSON Lines text."""
        return "".join(json.dumps(event.to_json(), sort_keys=True) + "\n"
                       for event in self._buffer)

    def __repr__(self):
        return (f"EventStream({len(self._buffer)}/{self.capacity} "
                f"buffered, {self.emitted} emitted)")


def _parse_line(line, lineno):
    """One JSONL line -> :class:`Event`; raises ValueError naming the
    1-based line number on any malformation."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"line {lineno}: invalid JSON ({exc.msg})") \
            from None
    if not isinstance(obj, dict):
        raise ValueError(f"line {lineno}: expected a JSON object, "
                         f"got {type(obj).__name__}")
    for field in ("seq", "kind", "data"):
        if field not in obj:
            raise ValueError(f"line {lineno}: missing {field!r} field")
    if not isinstance(obj["seq"], int) or isinstance(obj["seq"], bool):
        raise ValueError(f"line {lineno}: 'seq' must be an integer")
    if obj["kind"] not in KNOWN_KINDS:
        raise ValueError(f"line {lineno}: unknown event kind "
                         f"{obj['kind']!r}")
    if not isinstance(obj["data"], dict):
        raise ValueError(f"line {lineno}: 'data' must be an object")
    return Event(obj["seq"], obj["kind"], obj["data"])


def parse_jsonl(text):
    """Parse JSON Lines text back into a list of :class:`Event` records.

    Strict: any malformed line (invalid JSON, a non-object, missing
    ``seq``/``kind``/``data``, or an unknown kind) raises
    ``ValueError`` naming the 1-based line number.  Use
    :func:`parse_jsonl_lenient` to skip bad lines instead.
    """
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        events.append(_parse_line(line, lineno))
    return events


#: Longest payload excerpt a :class:`SkippedLines` warning quotes.
SKIP_PAYLOAD_LIMIT = 60


class SkippedLines(int):
    """The skip count :func:`parse_jsonl_lenient` returns, carrying the
    diagnosis of the *first* line it skipped.

    Subclassing ``int`` keeps every existing caller working (``if
    skipped:``, arithmetic, formatting) while tooling that wants to say
    *why* lines were skipped reads :attr:`first_lineno` /
    :attr:`first_error` / :attr:`first_payload` or prints
    :meth:`warning` directly.
    """

    first_lineno = None
    first_error = None
    first_payload = None

    def __new__(cls, count, lineno=None, error=None, payload=None):
        """``count`` skipped lines; the rest describes the first one."""
        value = super().__new__(cls, count)
        value.first_lineno = lineno
        value.first_error = error
        if payload is not None and len(payload) > SKIP_PAYLOAD_LIMIT:
            payload = payload[:SKIP_PAYLOAD_LIMIT] + "..."
        value.first_payload = payload
        return value

    def warning(self):
        """A one-line report naming the first skipped line, or ``""``
        when nothing was skipped."""
        if self == 0:
            return ""
        return (f"skipped {int(self)} malformed line(s); first at line "
                f"{self.first_lineno}: {self.first_error} "
                f"(payload {self.first_payload!r})")


def parse_jsonl_lenient(text):
    """Like :func:`parse_jsonl`, but skip malformed lines.

    Returns ``(events, skipped)`` where ``skipped`` is a
    :class:`SkippedLines` count of the lines that failed to parse —
    tooling reading logs of unknown provenance can report
    ``skipped.warning()`` (the 1-based line number, the parse error and
    a truncated payload of the first bad line) instead of dying on it.
    """
    events = []
    skipped = 0
    first = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(_parse_line(line, lineno))
        except ValueError as exc:
            skipped += 1
            if first is None:
                message = str(exc)
                prefix = f"line {lineno}: "
                if message.startswith(prefix):
                    message = message[len(prefix):]
                first = (lineno, message, line)
    if first is None:
        return events, SkippedLines(0)
    return events, SkippedLines(skipped, lineno=first[0], error=first[1],
                                payload=first[2])


class NullEventStream:
    """The no-op event stream wired up when telemetry is disabled."""

    capacity = 0
    emitted = 0
    dropped = 0
    by_kind = {}

    def emit(self, kind, **data):
        """No-op; returns None."""
        return None

    def records(self, kind=None):
        """Always empty."""
        return []

    def summary(self):
        """An all-zero summary."""
        return {"emitted": 0, "dropped": 0, "by_kind": {}}

    def to_jsonl(self):
        """Empty text."""
        return ""

    def __len__(self):
        return 0

    def __iter__(self):
        return iter(())


NULL_EVENTS = NullEventStream()
