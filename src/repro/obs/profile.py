"""Hot-fragment profiling and the profile report renderers.

The :class:`FragmentProfiler` rides along with the fragment executor:
every time control enters a fragment (from the VM or by an intra-cache
transfer) it opens an attribution window, and when control moves on it
charges the executed I-instructions and V-ISA instructions of that window
to the fragment, from the deltas of the ``VMStats`` counters the engines
already maintain — so profiling adds no per-instruction work, only
per-fragment-visit work.

The renderers turn the collected data into the ``repro profile`` report:
a top-N hottest-fragments table with disassembly anchors and a phase-time
breakdown read from the registry's ``phase.``-prefixed timers.
"""

from repro.ildp_isa.disasm import disassemble_iinstr


class FragmentRecord:
    """Accumulated execution profile of one fragment (by fid)."""

    __slots__ = ("fid", "entry_vpc", "entries", "i_instructions",
                 "v_instructions", "exit_reasons")

    def __init__(self, fid, entry_vpc):
        self.fid = fid
        self.entry_vpc = entry_vpc
        #: times control entered this fragment (VM entries + transfers)
        self.entries = 0
        self.i_instructions = 0
        self.v_instructions = 0
        #: executor exit-reason name -> count (transfers excluded)
        self.exit_reasons = {}

    def to_json(self):
        """The record as a JSON-able dict."""
        return {"fid": self.fid, "entry_vpc": self.entry_vpc,
                "entries": self.entries,
                "i_instructions": self.i_instructions,
                "v_instructions": self.v_instructions,
                "exit_reasons": dict(sorted(self.exit_reasons.items()))}

    def __repr__(self):
        return (f"FragmentRecord(f{self.fid}, entries={self.entries}, "
                f"i={self.i_instructions})")


class FragmentProfiler:
    """Attributes executed instructions to fragments at visit boundaries."""

    def __init__(self):
        self.records = {}
        self._open = None      # (record, start_iinstr, start_v)

    def _record(self, fragment):
        record = self.records.get(fragment.fid)
        if record is None:
            record = FragmentRecord(fragment.fid, fragment.entry_vpc)
            self.records[fragment.fid] = record
        return record

    def _close(self, stats):
        record, start_i, start_v = self._open
        record.i_instructions += stats.iinstructions_executed - start_i
        record.v_instructions += stats.source_instructions_executed - start_v
        return record

    def enter(self, fragment, stats):
        """Open an attribution window: control entered ``fragment``."""
        record = self._record(fragment)
        record.entries += 1
        self._open = (record, stats.iinstructions_executed,
                      stats.source_instructions_executed)

    def switch(self, fragment, stats):
        """Close the current window and open one for ``fragment``
        (an intra-cache transfer)."""
        self._close(stats)
        self.enter(fragment, stats)

    def leave(self, reason, stats):
        """Close the current window: the executor returned to the VM."""
        record = self._close(stats)
        record.exit_reasons[reason] = record.exit_reasons.get(reason, 0) + 1
        self._open = None

    def top(self, n=10):
        """The ``n`` hottest records, by entries then I-instructions."""
        ranked = sorted(self.records.values(),
                        key=lambda r: (r.entries, r.i_instructions),
                        reverse=True)
        return ranked[:n]

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return f"FragmentProfiler({len(self.records)} fragments)"


class NullFragmentProfiler:
    """The no-op profiler wired up when telemetry is disabled."""

    records = {}

    def enter(self, fragment, stats):
        """No-op."""

    def switch(self, fragment, stats):
        """No-op."""

    def leave(self, reason, stats):
        """No-op."""

    def top(self, n=10):
        """Always empty."""
        return []

    def __len__(self):
        return 0


NULL_PROFILER = NullFragmentProfiler()


# -- report rendering ---------------------------------------------------------

def _exit_text(record):
    parts = [f"{name}:{count}"
             for name, count in sorted(record.exit_reasons.items())]
    return " ".join(parts) if parts else "-"


def hot_fragment_table(profiler, tcache, top=10):
    """Render the top-N hottest fragments as text lines.

    Each row carries a disassembly anchor: the translation-cache address
    and disassembled first instruction of the fragment body, so a row can
    be cross-referenced with ``repro translate`` / ``repro map`` output.
    Fragments evicted by a cache flush since they ran are marked
    ``(flushed)``.
    """
    records = profiler.top(top)
    lines = [f"hot fragments (top {len(records)} of {len(profiler)} "
             f"profiled, by entries):",
             f"{'fid':>4s} {'V-entry':>10s} {'entries':>8s} "
             f"{'V-insts':>9s} {'I-insts':>9s} {'exits':>22s}  anchor"]
    live = {fragment.fid: fragment for fragment in tcache.fragments}
    for record in records:
        fragment = live.get(record.fid)
        if fragment is not None:
            anchor = (f"{fragment.entry_address():#x}: "
                      f"{disassemble_iinstr(fragment.body[0], fragment.fmt)}")
        else:
            anchor = "(flushed)"
        lines.append(
            f"{record.fid:4d} {record.entry_vpc:#10x} {record.entries:8d} "
            f"{record.v_instructions:9d} {record.i_instructions:9d} "
            f"{_exit_text(record):>22s}  {anchor}")
    return lines


def histogram_quantile_lines(registry, qs=(0.5, 0.9, 0.99)):
    """Render each registry histogram's quantiles as text lines.

    The quantiles come from :meth:`~repro.obs.registry.Histogram.quantile`
    (Prometheus-style linear interpolation within fixed buckets) — the
    same math ``repro top`` applies to the streamed latency histograms.
    """
    lines = ["histogram quantiles "
             f"({'/'.join(f'p{int(q * 100)}' for q in qs)}):"]
    if not registry.histograms:
        lines.append("  (no histograms recorded — was telemetry on?)")
        return lines
    for name, histogram in sorted(registry.histograms.items()):
        if not histogram.total:
            continue
        cells = "  ".join(f"{histogram.quantile(q):10.1f}" for q in qs)
        lines.append(f"  {name:28s} {cells}  (n={histogram.total})")
    return lines


def phase_breakdown_lines(registry, prefix="phase."):
    """Render the registry's ``phase.``-prefixed timers as a breakdown.

    Seconds, share of the summed phase time, and span counts — the
    translator-pipeline and VM-loop timers the instrumented run recorded.
    """
    timers = [timer for name, timer in sorted(registry.timers.items())
              if name.startswith(prefix)]
    total = sum(timer.seconds for timer in timers)
    lines = [f"phase times ({total:.3f}s total):"]
    if not timers:
        lines.append("  (no phases recorded — was telemetry on?)")
        return lines
    for timer in timers:
        share = 100.0 * timer.seconds / total if total else 0.0
        lines.append(f"  {timer.name[len(prefix):]:22s} "
                     f"{timer.seconds:9.4f}s {share:5.1f}%  "
                     f"x{timer.count}")
    return lines
