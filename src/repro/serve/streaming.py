"""The serve-mode subscription hub: typed frames fanned out to sockets.

The ``subscribe`` protocol verb (:mod:`repro.serve.server`) turns a
client connection into a one-way stream of JSON-line **frames**.  The
:class:`SubscriptionHub` is the fan-out point: every frame published is
offered to every live subscriber through a **bounded** per-subscriber
queue — a slow or stuck consumer overflows its own queue and loses
frames (counted per subscriber and hub-wide), but can never exert
backpressure on the batcher or on other subscribers.  That no-stall
property is the whole design: the serving hot path pays one
``put_nowait`` per subscriber per frame, nothing else.

Frame kinds (:class:`FrameKind`):

* ``hello`` — the first frame on every subscription: subscriber id,
  queue depth, the kind filter in force;
* ``snapshot`` — the periodic metrics snapshot: flat values, deltas
  over the previous snapshot, the latency histograms;
* ``event`` — one VM telemetry event (``repro.obs.events``) forwarded
  live through the process-global tap, minus the high-rate kinds unless
  a subscriber asks for them;
* ``lifecycle`` — request lifecycle records (accepted / joined /
  executed / completed / failed / run_started / run_finished /
  point_cached), each carrying the request's correlation id;
* ``log`` — structured server log records.

A frame's wire form is ``{"frame": kind, "seq": n, "ts": t, "data":
{...}}`` — disjoint from request responses (which carry ``"ok"``), so a
client can multiplex both off one line reader.
"""

import asyncio
import itertools

from repro.obs.events import EventKind

#: Per-subscriber queue depth.  Sized so a dashboard redrawing a few
#: times a second never drops at serve's default event volume, while a
#: wedged consumer caps its memory at ~a few hundred small frames.
DEFAULT_QUEUE_DEPTH = 512

#: Event kinds forwarded to subscribers by default: the low-rate
#: lifecycle/degradation kinds.  ``fragment_entered`` and
#: ``dispatch_run`` fire per fragment visit — thousands per run — and
#: are only forwarded to subscribers that name them explicitly.
HIGH_RATE_KINDS = frozenset((EventKind.FRAGMENT_ENTERED,
                             EventKind.DISPATCH_RUN))
DEFAULT_EVENT_KINDS = frozenset((
    EventKind.FRAGMENT_CREATED,
    EventKind.FRAGMENT_CHAINED,
    EventKind.FRAGMENT_INVALIDATED,
    EventKind.TCACHE_FLUSH,
    EventKind.TRAP_DELIVERED,
    EventKind.SUPERBLOCK_CAPTURED,
    EventKind.FAULT_INJECTED,
    EventKind.TRANSLATION_FAILED,
    EventKind.PC_BLACKLISTED,
    EventKind.TCACHE_FULL,
    EventKind.FRAGMENT_CORRUPTED,
    EventKind.JIT_PROMOTED,
))


class FrameKind:
    """Names of the frame types the hub publishes (plain strings)."""

    HELLO = "hello"
    SNAPSHOT = "snapshot"
    EVENT = "event"
    LIFECYCLE = "lifecycle"
    LOG = "log"


#: Every kind the hub publishes — subscribers may filter to a subset.
KNOWN_FRAME_KINDS = frozenset(
    value for name, value in vars(FrameKind).items()
    if not name.startswith("_"))


class Frame:
    """One typed record: kind, hub-wide sequence number, timestamp,
    payload dict."""

    __slots__ = ("kind", "seq", "ts", "data")

    def __init__(self, kind, seq, ts, data):
        self.kind = kind
        self.seq = seq
        self.ts = ts
        self.data = data

    def to_json(self):
        """The frame as a JSON-able dict (the JSONL line's object)."""
        return {"frame": self.kind, "seq": self.seq,
                "ts": round(self.ts, 6), "data": self.data}

    def __repr__(self):
        return f"Frame({self.kind}, seq={self.seq})"


class Subscriber:
    """One live subscription: a bounded queue plus its drop accounting."""

    __slots__ = ("sid", "queue", "kinds", "event_kinds", "sent",
                 "dropped", "closed")

    def __init__(self, sid, depth, kinds=None, event_kinds=None):
        self.sid = sid
        self.queue = asyncio.Queue(maxsize=depth)
        #: frame-kind filter (None = every kind)
        self.kinds = frozenset(kinds) if kinds is not None else None
        #: event-kind filter applied to ``event`` frames
        self.event_kinds = frozenset(event_kinds) \
            if event_kinds is not None else DEFAULT_EVENT_KINDS
        self.sent = 0
        self.dropped = 0
        self.closed = False

    def wants(self, frame):
        """Does this subscriber's filter accept ``frame``?"""
        if self.kinds is not None and frame.kind not in self.kinds:
            return False
        if frame.kind == FrameKind.EVENT and \
                frame.data.get("kind") not in self.event_kinds:
            return False
        return True

    def offer(self, frame):
        """Enqueue without blocking; a full queue drops the frame."""
        try:
            self.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.dropped += 1
            return False
        self.sent += 1
        return True

    def close(self):
        """Wake the consumer with the end-of-stream sentinel (``None``).

        A full queue makes room by discarding its oldest frame — the
        sentinel must always land, or the writer task would wait
        forever.
        """
        self.closed = True
        while True:
            try:
                self.queue.put_nowait(None)
                return
            except asyncio.QueueFull:
                self.queue.get_nowait()

    def stats(self):
        """This subscription's accounting as a JSON-able dict."""
        return {"id": self.sid, "sent": self.sent, "dropped": self.dropped,
                "queued": self.queue.qsize()}

    def __repr__(self):
        return (f"Subscriber({self.sid}, sent={self.sent}, "
                f"dropped={self.dropped})")


class SubscriptionHub:
    """Fan-out of frames to any number of bounded subscribers.

    Single-threaded by contract: every method must be called on the
    server's event-loop thread (producers on other threads hand off via
    ``loop.call_soon_threadsafe``).  Publishing to zero subscribers is
    one length check.
    """

    def __init__(self, queue_depth=DEFAULT_QUEUE_DEPTH):
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.queue_depth = queue_depth
        self._subscribers = {}
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        #: lifetime accounting, surviving unsubscribes
        self.connected_total = 0
        self.published = 0
        self.dropped_total = 0

    def subscribe(self, kinds=None, event_kinds=None):
        """Register a new :class:`Subscriber` (its ``hello`` frame is
        the server's job — the hub only owns the queues)."""
        if kinds is not None:
            unknown = set(kinds) - KNOWN_FRAME_KINDS
            if unknown:
                raise ValueError(f"unknown frame kinds {sorted(unknown)}")
        subscriber = Subscriber(next(self._ids), self.queue_depth,
                                kinds=kinds, event_kinds=event_kinds)
        self._subscribers[subscriber.sid] = subscriber
        self.connected_total += 1
        return subscriber

    def unsubscribe(self, subscriber):
        """Drop a subscriber; its lifetime drops fold into the hub total."""
        if self._subscribers.pop(subscriber.sid, None) is not None:
            self.dropped_total += subscriber.dropped

    def publish(self, kind, data, ts):
        """Build one frame and offer it to every matching subscriber;
        returns the frame (sequence numbers advance even with no
        subscribers, so frame loss is externally detectable)."""
        frame = Frame(kind, next(self._seq), ts, data)
        self.published += 1
        for subscriber in self._subscribers.values():
            if subscriber.wants(frame):
                subscriber.offer(frame)
        return frame

    def event_kind_union(self):
        """Union of every live subscriber's event-kind filter (only
        those whose frame filter accepts ``event`` frames at all) — the
        server's telemetry tap consults this before paying a
        cross-thread hand-off for an event nobody wants."""
        kinds = set()
        for subscriber in self._subscribers.values():
            if subscriber.kinds is None or \
                    FrameKind.EVENT in subscriber.kinds:
                kinds |= subscriber.event_kinds
        return frozenset(kinds)

    def direct(self, subscriber, kind, data, ts):
        """Publish one frame to a *single* subscriber, bypassing its
        filters (how the server delivers the ``hello`` greeting without
        broadcasting it to everyone)."""
        frame = Frame(kind, next(self._seq), ts, data)
        self.published += 1
        subscriber.offer(frame)
        return frame

    def close_all(self):
        """Send every live subscriber the end-of-stream sentinel."""
        for subscriber in list(self._subscribers.values()):
            subscriber.close()

    def __len__(self):
        return len(self._subscribers)

    def stats(self):
        """Hub accounting: live subscriber states plus lifetime totals.

        ``frames_dropped`` counts drops of *every* subscriber ever
        connected — the zero-drop acceptance checks read it directly.
        """
        live = [subscriber.stats()
                for subscriber in self._subscribers.values()]
        return {
            "subscribers": len(self._subscribers),
            "connected_total": self.connected_total,
            "frames_published": self.published,
            "frames_dropped": self.dropped_total +
            sum(entry["dropped"] for entry in live),
            "queue_depth": self.queue_depth,
            "live": live,
        }

    def __repr__(self):
        return (f"SubscriptionHub({len(self._subscribers)} live, "
                f"{self.published} published)")
