"""Long-lived service mode: ``repro serve`` / ``repro client``.

A :class:`~repro.serve.server.FragmentServer` is an asyncio JSON-lines
server on a local unix socket.  It accepts run-point requests, dedups
identical in-flight requests onto one future, batches what arrives
within a short window, and dispatches each batch to one shared
:class:`~repro.harness.parallel.PointRunner` — so every request benefits
from the process-wide result cache, the persistent fragment store
(:mod:`repro.persist`, via the ``REPRO_PERSIST_DIR`` overlay) and the
worker pool.  A ``stats`` endpoint exposes the server's own counters,
the runner report, the merged telemetry aggregates and the accumulated
``persist.*`` totals.  See ``docs/serving.md``.
"""

from repro.serve.client import request, run_many
from repro.serve.server import FragmentServer

__all__ = ["FragmentServer", "request", "run_many"]
