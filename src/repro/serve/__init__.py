"""Long-lived service mode: ``repro serve`` / ``repro client`` /
``repro top``.

A :class:`~repro.serve.server.FragmentServer` is an asyncio JSON-lines
server on a local unix socket.  It accepts run-point requests, dedups
identical in-flight requests onto one future, batches what arrives
within a short window, and dispatches each batch to one shared
:class:`~repro.harness.parallel.PointRunner` — so every request benefits
from the process-wide result cache, the persistent fragment store
(:mod:`repro.persist`, via the ``REPRO_PERSIST_DIR`` overlay) and the
worker pool.  A ``stats`` endpoint exposes the server's own counters,
the runner report, the merged telemetry aggregates, the accumulated
``persist.*`` totals, latency quantiles and streaming accounting; a
``metrics`` endpoint renders the same surface as Prometheus text
exposition; a ``subscribe`` endpoint streams typed JSONL frames
(:mod:`repro.serve.streaming`) to any number of bounded concurrent
subscribers.  See ``docs/serving.md`` and ``docs/observability.md``.
"""

from repro.serve.client import ServeError, Subscription, request, run_many
from repro.serve.server import FragmentServer
from repro.serve.streaming import (
    DEFAULT_EVENT_KINDS,
    DEFAULT_QUEUE_DEPTH,
    Frame,
    FrameKind,
    KNOWN_FRAME_KINDS,
    SubscriptionHub,
)

__all__ = [
    "FragmentServer", "ServeError", "Subscription", "request",
    "run_many", "DEFAULT_EVENT_KINDS", "DEFAULT_QUEUE_DEPTH", "Frame",
    "FrameKind", "KNOWN_FRAME_KINDS", "SubscriptionHub",
]
