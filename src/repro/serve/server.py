"""The ``repro serve`` asyncio server.

Protocol: JSON objects, one per line, over a local unix stream socket.
Each request gets exactly one JSON-line response with an ``ok`` flag.
Operations (full field reference in ``docs/serving.md``):

``{"op": "ping"}``
    liveness check;
``{"op": "run", "workload": ..., "budget": ..., "scale": ...,
"config": {...}}``
    execute one VM run point and return its summary (``config`` holds
    ``VMConfig.to_dict``-style overrides on the default config);
``{"op": "stats"}``
    the server's request counters, the shared runner's report, merged
    telemetry counters, the accumulated ``persist.*`` totals, latency
    quantiles and streaming-hub accounting;
``{"op": "metrics"}``
    the whole metric surface as Prometheus text exposition;
``{"op": "subscribe", "kinds": [...], "events": [...]}``
    acknowledge, then turn the connection into a one-way stream of
    typed JSONL frames (see :mod:`repro.serve.streaming`) until the
    client disconnects or sends another line;
``{"op": "shutdown"}``
    acknowledge, then stop the server.

Scheduling: requests are deduplicated *at submission* — an identical
run point arriving while one is queued or executing joins the same
future (counted as ``dedup_joined``), so duplicates cost one VM run and
one response each.  A single batcher task drains the submission queue,
collecting up to ``max_batch`` points for ``batch_window`` seconds, and
hands each batch to ``PointRunner.run`` on the default executor — the
event loop keeps accepting requests while a batch computes, which is
what lets later duplicates join in-flight work.

Observability: every ``run`` request is assigned a **correlation id**
(``r1``, ``r2``, ...) that threads through the structured logs
(``--log-json``) and the ``lifecycle`` frames from accept through batch
dispatch to reply.  Request latencies land in fixed-bucket histograms
(queue wait / per-point run time / total turnaround), a periodic
snapshot task records the whole flat metric surface into a bounded
:class:`~repro.obs.timeseries.TimeSeriesRing` (and publishes each
snapshot with deltas, so subscribers compute rates), and a process-wide
event tap forwards VM telemetry events to subscribers live.  All of it
hangs off the subscription hub's bounded queues: slow consumers drop
frames, they never stall the batcher.
"""

import asyncio
import contextlib
import itertools
import json
import os
import time
from collections import Counter

from repro.harness.parallel import RunObserver
from repro.harness.runner import DEFAULT_BUDGET, add_run_hook, \
    remove_run_hook
from repro.harness.runpoints import RunPoint
from repro.obs.events import add_global_tap, remove_global_tap
from repro.obs.events import KNOWN_KINDS as KNOWN_EVENT_KINDS
from repro.obs.expo import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import DEFAULT_RING_CAPACITY, TimeSeriesRing, \
    flatten_registry
from repro.serve.streaming import DEFAULT_QUEUE_DEPTH, FrameKind, \
    KNOWN_FRAME_KINDS, SubscriptionHub
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

DEFAULT_BATCH_WINDOW = 0.05
DEFAULT_MAX_BATCH = 16
DEFAULT_SNAPSHOT_INTERVAL = 1.0

#: Latency histogram bucket upper bounds, in seconds.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Hot-fragment entries a ``lifecycle/executed`` frame carries.
EXECUTED_FRAME_HOT_FRAGMENTS = 3


class _StreamObserver(RunObserver):
    """Forwards :class:`PointRunner` lifecycle callbacks (fired on the
    batch executor thread) onto the server's event loop as frames."""

    def __init__(self, server):
        self.server = server

    def on_cache_hit(self, point):
        self.server.publish_threadsafe(
            FrameKind.LIFECYCLE,
            {"phase": "point_cached", "workload": point.workload,
             "label": point.label()})

    def on_point_start(self, point):
        self.server.publish_threadsafe(
            FrameKind.LIFECYCLE,
            {"phase": "point_started", "workload": point.workload,
             "label": point.label()})


class FragmentServer:
    """One long-lived serving session around a shared PointRunner."""

    def __init__(self, runner, socket_path,
                 batch_window=DEFAULT_BATCH_WINDOW,
                 max_batch=DEFAULT_MAX_BATCH, out=None,
                 snapshot_interval=DEFAULT_SNAPSHOT_INTERVAL,
                 queue_depth=DEFAULT_QUEUE_DEPTH,
                 ring_capacity=DEFAULT_RING_CAPACITY,
                 log_json=False):
        if batch_window < 0:
            raise ValueError("batch window must be >= 0")
        if max_batch < 1:
            raise ValueError("max batch must be >= 1")
        if snapshot_interval <= 0:
            raise ValueError("snapshot interval must be > 0")
        self.runner = runner
        self.socket_path = str(socket_path)
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.snapshot_interval = snapshot_interval
        self.out = out
        self.log_json = log_json
        #: request/op counters plus scheduling counters (dedup_joined,
        #: batches, runs_completed, run_failures, bad_requests) and
        #: per-workload ``workload.<name>`` totals
        self.counters = Counter()
        #: PersistStats totals accumulated across every run summary
        self.persist_totals = Counter()
        #: server-side request metrics: latency histograms and gauges
        self.metrics = MetricsRegistry()
        #: the streaming fan-out point (see repro.serve.streaming)
        self.hub = SubscriptionHub(queue_depth)
        #: periodic metric snapshots, for rates over any recent window
        self.ring = TimeSeriesRing(ring_capacity)
        self._cids = itertools.count(1)
        self._inflight = {}     # point identity -> (future, primary cid)
        self._queue = None
        self._stop = None
        self._loop = None
        #: union of live subscribers' event-kind filters — consulted by
        #: the (hot) tap before paying a cross-thread hand-off
        self._tap_kinds = frozenset()

    # -- lifecycle -------------------------------------------------------

    async def serve(self):
        """Accept requests until a ``shutdown`` request arrives."""
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self.runner.observer = _StreamObserver(self)
        tap = self._event_tap
        add_global_tap(tap)
        add_run_hook(self._run_hook)
        batcher = asyncio.ensure_future(self._batcher())
        snapshots = asyncio.ensure_future(self._snapshot_loop())
        server = await asyncio.start_unix_server(self._handle,
                                                 path=self.socket_path)
        self._say(f"serving on {self.socket_path}", event="serving",
                  socket=self.socket_path)
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in (batcher, snapshots):
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            remove_global_tap(tap)
            remove_run_hook(self._run_hook)
            self.runner.observer = None
            self.hub.close_all()
            self._loop = None
            # asyncio removes a pre-existing socket file before binding
            # but leaves ours behind on close; unlink it so a stopped
            # server does not look like a stale one to the next client.
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            self._say(f"served {self.counters['requests']} requests "
                      f"({self.counters['runs_completed']} runs, "
                      f"{self.counters['dedup_joined']} dedup joins, "
                      f"{self.counters['batches']} batches, "
                      f"{self.hub.published} frames to "
                      f"{self.hub.connected_total} subscribers)",
                      event="stopped",
                      requests=self.counters["requests"],
                      frames=self.hub.published)

    def _say(self, message, event="log", **fields):
        if self.log_json:
            self._log(event, msg=message, **fields)
        else:
            print(message, file=self.out, flush=True)

    def _log(self, event, **fields):
        """One structured JSON log line (``--log-json`` mode only)."""
        if not self.log_json:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        print(json.dumps(record, sort_keys=True), file=self.out,
              flush=True)

    # -- streaming taps --------------------------------------------------

    def publish_threadsafe(self, kind, data):
        """Publish one frame from any thread (no-op once the loop is
        gone or nobody subscribed)."""
        loop = self._loop
        if loop is None or not len(self.hub):
            return
        try:
            loop.call_soon_threadsafe(self.hub.publish, kind, data,
                                      time.time())
        except RuntimeError:
            pass        # loop already closed mid-shutdown

    def _event_tap(self, event):
        """The process-global telemetry tap (runs on the VM's thread)."""
        if event.kind in self._tap_kinds:
            self.publish_threadsafe(
                FrameKind.EVENT,
                {"kind": event.kind, "seq": event.seq,
                 "data": dict(event.data)})

    def _run_hook(self, phase, workload, info):
        """The run-lifecycle hook (runs on the VM's thread)."""
        data = {"phase": phase, "workload": workload}
        data.update(info)
        self.publish_threadsafe(FrameKind.LIFECYCLE, data)

    def _retune_tap(self):
        """Recompute the union event-kind filter after (un)subscribes."""
        self._tap_kinds = self.hub.event_kind_union()

    def _lifecycle(self, phase, data):
        """Publish one lifecycle frame from the loop thread."""
        payload = {"phase": phase}
        payload.update(data)
        self.hub.publish(FrameKind.LIFECYCLE, payload, time.time())

    # -- connection handling ---------------------------------------------

    async def _handle(self, reader, writer):
        try:
            pending_line = None
            while True:
                line = pending_line if pending_line is not None \
                    else await reader.readline()
                pending_line = None
                if not line:
                    break
                response, subscriber = await self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                if subscriber is not None:
                    # the connection is now a frame stream; any line the
                    # client sends ends the subscription and is handled
                    # as its next request
                    pending_line = await self._stream(subscriber, reader,
                                                      writer)
                    if not pending_line:
                        break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _stream(self, subscriber, reader, writer):
        """Pump a subscriber's frames down one connection.

        Returns the line that ended the subscription (the client's next
        request), or falsy when the client disconnected / the server is
        closing the stream.
        """
        eof = asyncio.ensure_future(reader.readline())
        next_line = b""
        try:
            while True:
                get = asyncio.ensure_future(subscriber.queue.get())
                done, _pending = await asyncio.wait(
                    {get, eof}, return_when=asyncio.FIRST_COMPLETED)
                if get in done:
                    frame = get.result()
                    if frame is None:       # server-side close
                        break
                    writer.write(
                        json.dumps(frame.to_json()).encode("utf-8") +
                        b"\n")
                    await writer.drain()
                else:
                    get.cancel()
                if eof in done:
                    next_line = eof.result()
                    break
        finally:
            if not eof.done():
                eof.cancel()
            self.hub.unsubscribe(subscriber)
            self._retune_tap()
            self._log("unsubscribed", id=subscriber.sid,
                      sent=subscriber.sent, dropped=subscriber.dropped)
        return next_line

    async def _dispatch(self, line):
        """One request line -> ``(response, subscriber-or-None)``."""
        self.counters["requests"] += 1
        try:
            request = json.loads(line)
        except ValueError:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "malformed JSON request"}, None
        if not isinstance(request, dict):
            self.counters["bad_requests"] += 1
            return {"ok": False,
                    "error": "request must be a JSON object"}, None
        op = request.get("op")
        self.counters[f"op.{op}"] += 1
        if op == "ping":
            return {"ok": True, "op": "ping"}, None
        if op == "stats":
            return self._stats(), None
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "text": self.exposition()}, None
        if op == "subscribe":
            return self._subscribe(request)
        if op == "shutdown":
            # answer first, then stop: the response must reach the
            # client before the loop tears the transport down
            asyncio.get_running_loop().call_later(0.05, self._stop.set)
            return {"ok": True, "op": "shutdown"}, None
        if op == "run":
            return await self._run(request), None
        self.counters["bad_requests"] += 1
        return {"ok": False, "error": f"unknown op {op!r}"}, None

    def _subscribe(self, request):
        """Register a subscriber; the caller switches to streaming."""
        kinds = request.get("kinds")
        event_kinds = request.get("events")
        if event_kinds is not None:
            unknown = set(event_kinds) - KNOWN_EVENT_KINDS
            if unknown:
                self.counters["bad_requests"] += 1
                return {"ok": False, "error": f"unknown event kinds "
                                              f"{sorted(unknown)}"}, None
        try:
            subscriber = self.hub.subscribe(kinds=kinds,
                                            event_kinds=event_kinds)
        except (ValueError, TypeError) as exc:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": str(exc)}, None
        self._retune_tap()
        self.counters["subscriptions"] += 1
        self._log("subscribed", id=subscriber.sid,
                  kinds=sorted(subscriber.kinds) if subscriber.kinds
                  else None)
        self.hub.direct(subscriber, FrameKind.HELLO, {
            "id": subscriber.sid,
            "queue_depth": self.hub.queue_depth,
            "snapshot_interval": self.snapshot_interval,
            "kinds": sorted(subscriber.kinds) if subscriber.kinds
            else sorted(KNOWN_FRAME_KINDS),
            "event_kinds": sorted(subscriber.event_kinds),
        }, time.time())
        return {"ok": True, "op": "subscribe",
                "id": subscriber.sid}, subscriber

    def _stats(self):
        latency = {}
        for name, histogram in sorted(self.metrics.histograms.items()):
            quantiles = histogram.quantiles()
            latency[name] = {
                "count": histogram.total,
                "p50": quantiles[0.5], "p90": quantiles[0.9],
                "p99": quantiles[0.99],
            }
        return {
            "ok": True,
            "op": "stats",
            "requests": dict(self.counters),
            "inflight": len(self._inflight),
            "report": self.runner.report.snapshot(),
            "persist": dict(self.persist_totals),
            "telemetry": self.runner.telemetry.to_dict()["counters"],
            "latency": latency,
            "streaming": self.hub.stats(),
            "snapshots": {"recorded": self.ring.recorded,
                          "held": len(self.ring),
                          "interval": self.snapshot_interval},
        }

    # -- metric snapshots ------------------------------------------------

    def snapshot_values(self):
        """The whole metric surface flattened to ``{name: number}``."""
        values = {}
        for name, value in self.counters.items():
            values[f"serve.{name}"] = value
        for name, value in self.persist_totals.items():
            values[f"persist.{name}"] = value
        for name, value in self.runner.report.snapshot().items():
            values[f"runner.{name}"] = value
        values["serve.inflight"] = len(self._inflight)
        hub = self.hub.stats()
        values["stream.subscribers"] = hub["subscribers"]
        values["stream.frames_published"] = hub["frames_published"]
        values["stream.frames_dropped"] = hub["frames_dropped"]
        values.update(flatten_registry(self.runner.telemetry.to_dict()))
        values.update(flatten_registry(self.metrics.to_dict()))
        return values

    def record_snapshot(self):
        """Record one snapshot into the ring and publish it with deltas
        (so a subscriber computes rates without holding history)."""
        ts = time.time()
        snapshot = self.ring.record(self.snapshot_values(), ts)
        deltas, elapsed = self.ring.delta()
        self.hub.publish(FrameKind.SNAPSHOT, {
            "seq": snapshot.seq,
            "interval": round(elapsed, 6),
            "values": snapshot.values,
            "deltas": deltas,
            "latency": {name: {"bounds": list(histogram.bounds),
                               "counts": list(histogram.counts),
                               "total": histogram.total}
                        for name, histogram
                        in self.metrics.histograms.items()},
        }, ts)
        return snapshot

    async def _snapshot_loop(self):
        while True:
            await asyncio.sleep(self.snapshot_interval)
            self.record_snapshot()

    def exposition(self):
        """Prometheus text exposition of the whole metric surface."""
        registry = MetricsRegistry()
        registry.merge(self.runner.telemetry)
        registry.merge(self.metrics)
        for name, value in self.counters.items():
            registry.counter(f"serve.{name}").inc(value)
        for name, value in self.persist_totals.items():
            registry.counter(f"persist.{name}").inc(value)
        for name, value in self.runner.report.snapshot().items():
            registry.counter(f"runner.{name}").inc(value)
        hub = self.hub.stats()
        registry.gauge("stream.subscribers").set(hub["subscribers"])
        registry.counter("stream.connected").inc(hub["connected_total"])
        registry.counter("stream.frames_published").inc(
            hub["frames_published"])
        registry.counter("stream.frames_dropped").inc(
            hub["frames_dropped"])
        registry.gauge("serve.inflight").set(len(self._inflight))
        return render_prometheus(registry)

    # -- run dispatch ----------------------------------------------------

    def _point_from(self, request):
        workload = request.get("workload")
        if workload not in WORKLOAD_NAMES:
            raise ValueError(f"unknown workload {workload!r}")
        fields = VMConfig().to_dict()
        overrides = request.get("config") or {}
        unknown = set(overrides) - set(fields)
        if unknown:
            raise ValueError(
                f"unknown config fields {sorted(unknown)}")
        fields.update(overrides)
        config = VMConfig.from_dict(fields)
        budget = request.get("budget", DEFAULT_BUDGET)
        if not isinstance(budget, int) or budget < 1:
            raise ValueError("budget must be a positive integer")
        return RunPoint.vm(workload, config=config,
                           scale=request.get("scale"), budget=budget)

    async def _run(self, request):
        loop = asyncio.get_running_loop()
        cid = f"r{next(self._cids)}"
        accepted = loop.time()
        try:
            point = self._point_from(request)
        except (ValueError, TypeError) as exc:
            self.counters["bad_requests"] += 1
            self._lifecycle("failed", {"cid": cid, "error": str(exc)})
            return {"ok": False, "cid": cid, "error": str(exc)}
        self.counters[f"workload.{point.workload}"] += 1
        self._lifecycle("accepted", {"cid": cid,
                                     "workload": point.workload,
                                     "budget": point.budget,
                                     "label": point.label()})
        self._log("request", cid=cid, op="run", workload=point.workload,
                  budget=point.budget)
        try:
            summary = await self._submit(point, cid, accepted)
        except Exception as exc:   # surface run failures as responses
            self.counters["run_failures"] += 1
            error = f"{type(exc).__name__}: {exc}"
            self._lifecycle("failed", {"cid": cid,
                                       "workload": point.workload,
                                       "error": error})
            self._log("run_failed", cid=cid, workload=point.workload,
                      error=error)
            return {"ok": False, "op": "run", "cid": cid, "error": error}
        total = loop.time() - accepted
        self.metrics.histogram("serve.total_seconds",
                               LATENCY_BUCKETS).observe(total)
        self.counters["runs_completed"] += 1
        self._lifecycle("completed", {
            "cid": cid, "workload": point.workload,
            "total_seconds": round(total, 6),
            "committed": summary.get("committed"),
            "halted": summary.get("halted")})
        self._log("run_completed", cid=cid, workload=point.workload,
                  seconds=round(total, 6))
        return {"ok": True, "op": "run", "cid": cid, "summary": summary}

    async def _submit(self, point, cid, accepted):
        """Submission-time dedup: join in-flight identical work."""
        identity = point.identity()
        inflight = self._inflight.get(identity)
        if inflight is not None:
            future, primary = inflight
            self.counters["dedup_joined"] += 1
            self._lifecycle("joined", {"cid": cid, "primary": primary,
                                       "workload": point.workload})
            self._log("dedup_joined", cid=cid, primary=primary)
            return await future
        future = asyncio.get_running_loop().create_future()
        self._inflight[identity] = (future, cid)
        await self._queue.put((point, future, cid, accepted))
        return await future

    async def _batcher(self):
        """The single consumer of the submission queue.

        Being the only task that calls ``runner.run`` serialises batches
        without a lock; batching itself is a wall-clock window, so one
        straggler cannot hold the whole queue hostage past it.
        """
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout))
                except asyncio.TimeoutError:
                    break
            self.counters["batches"] += 1
            dispatched = loop.time()
            queue_wait = self.metrics.histogram("serve.queue_wait_seconds",
                                                LATENCY_BUCKETS)
            for _point, _future, cid, accepted in batch:
                queue_wait.observe(dispatched - accepted)
            self._log("batch", size=len(batch),
                      cids=[cid for _p, _f, cid, _a in batch])
            points = [point for point, _future, _cid, _accepted in batch]
            try:
                summaries = await loop.run_in_executor(
                    None, self.runner.run, points)
            except Exception as exc:
                for point, future, _cid, _accepted in batch:
                    self._inflight.pop(point.identity(), None)
                    if not future.done():
                        future.set_exception(exc)
                continue
            run_seconds = self.metrics.histogram("serve.run_seconds",
                                                 LATENCY_BUCKETS)
            for (point, future, cid, accepted), summary in zip(batch,
                                                               summaries):
                self._inflight.pop(point.identity(), None)
                self._note_persist(summary)
                run_seconds.observe(summary.get("elapsed", 0.0))
                self._lifecycle("executed", self._executed_record(
                    point, summary, cid,
                    queue_wait_seconds=round(dispatched - accepted, 6)))
                if not future.done():
                    future.set_result(summary)

    def _executed_record(self, point, summary, cid, queue_wait_seconds):
        """The ``lifecycle/executed`` frame payload for one run point:
        latencies plus the run highlights a dashboard wants (hot
        fragments, tier-2 promotions, persist activity, faults)."""
        telemetry = summary.get("telemetry") or {}
        counters = telemetry.get("counters", {})
        record = {
            "cid": cid,
            "workload": point.workload,
            "label": point.label(),
            "queue_wait_seconds": queue_wait_seconds,
            "run_seconds": round(summary.get("elapsed", 0.0), 6),
            "committed": summary.get("committed"),
            "jit_promotions": counters.get("jit.promotions", 0),
            "hot_fragments": [
                {"fid": record["fid"], "entry_vpc": record["entry_vpc"],
                 "entries": record["entries"]}
                for record in telemetry.get(
                    "hot_fragments", [])[:EXECUTED_FRAME_HOT_FRAGMENTS]],
        }
        persist = (summary.get("telemetry_host") or {}).get("persist")
        if persist:
            record["persist"] = {name: value
                                 for name, value in persist.items()
                                 if value}
        faults = {name: value
                  for name, value in (summary.get("resilience")
                                      or {}).items() if value}
        if faults:
            record["faults"] = faults
        return record

    def _note_persist(self, summary):
        persist = summary.get("telemetry_host", {}).get("persist")
        if persist:
            for name, value in persist.items():
                self.persist_totals[name] += value

    def __repr__(self):
        return (f"FragmentServer({self.socket_path!r}, "
                f"window={self.batch_window}, "
                f"max_batch={self.max_batch})")
