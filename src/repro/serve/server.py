"""The ``repro serve`` asyncio server.

Protocol: JSON objects, one per line, over a local unix stream socket.
Each request gets exactly one JSON-line response with an ``ok`` flag.
Operations (full field reference in ``docs/serving.md``):

``{"op": "ping"}``
    liveness check;
``{"op": "run", "workload": ..., "budget": ..., "scale": ...,
"config": {...}}``
    execute one VM run point and return its summary (``config`` holds
    ``VMConfig.to_dict``-style overrides on the default config);
``{"op": "stats"}``
    the server's request counters, the shared runner's report, merged
    telemetry counters and the accumulated ``persist.*`` totals;
``{"op": "shutdown"}``
    acknowledge, then stop the server.

Scheduling: requests are deduplicated *at submission* — an identical
run point arriving while one is queued or executing joins the same
future (counted as ``dedup_joined``), so duplicates cost one VM run and
one response each.  A single batcher task drains the submission queue,
collecting up to ``max_batch`` points for ``batch_window`` seconds, and
hands each batch to ``PointRunner.run`` on the default executor — the
event loop keeps accepting requests while a batch computes, which is
what lets later duplicates join in-flight work.
"""

import asyncio
import json
from collections import Counter

from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

DEFAULT_BATCH_WINDOW = 0.05
DEFAULT_MAX_BATCH = 16


class FragmentServer:
    """One long-lived serving session around a shared PointRunner."""

    def __init__(self, runner, socket_path,
                 batch_window=DEFAULT_BATCH_WINDOW,
                 max_batch=DEFAULT_MAX_BATCH, out=None):
        if batch_window < 0:
            raise ValueError("batch window must be >= 0")
        if max_batch < 1:
            raise ValueError("max batch must be >= 1")
        self.runner = runner
        self.socket_path = str(socket_path)
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.out = out
        #: request/op counters plus scheduling counters (dedup_joined,
        #: batches, runs_completed, run_failures, bad_requests)
        self.counters = Counter()
        #: PersistStats totals accumulated across every run summary
        self.persist_totals = Counter()
        self._inflight = {}     # point identity -> asyncio.Future
        self._queue = None
        self._stop = None

    # -- lifecycle -------------------------------------------------------

    async def serve(self):
        """Accept requests until a ``shutdown`` request arrives."""
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        batcher = asyncio.ensure_future(self._batcher())
        server = await asyncio.start_unix_server(self._handle,
                                                 path=self.socket_path)
        self._say(f"serving on {self.socket_path}")
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            batcher.cancel()
            try:
                await batcher
            except asyncio.CancelledError:
                pass
            self._say(f"served {self.counters['requests']} requests "
                      f"({self.counters['runs_completed']} runs, "
                      f"{self.counters['dedup_joined']} dedup joins, "
                      f"{self.counters['batches']} batches)")

    def _say(self, message):
        print(message, file=self.out, flush=True)

    # -- connection handling ---------------------------------------------

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _dispatch(self, line):
        self.counters["requests"] += 1
        try:
            request = json.loads(line)
        except ValueError:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "malformed JSON request"}
        if not isinstance(request, dict):
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        self.counters[f"op.{op}"] += 1
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return self._stats()
        if op == "shutdown":
            # answer first, then stop: the response must reach the
            # client before the loop tears the transport down
            asyncio.get_running_loop().call_later(0.05, self._stop.set)
            return {"ok": True, "op": "shutdown"}
        if op == "run":
            return await self._run(request)
        self.counters["bad_requests"] += 1
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _stats(self):
        return {
            "ok": True,
            "op": "stats",
            "requests": dict(self.counters),
            "inflight": len(self._inflight),
            "report": self.runner.report.snapshot(),
            "persist": dict(self.persist_totals),
            "telemetry": self.runner.telemetry.to_dict()["counters"],
        }

    # -- run dispatch ----------------------------------------------------

    def _point_from(self, request):
        workload = request.get("workload")
        if workload not in WORKLOAD_NAMES:
            raise ValueError(f"unknown workload {workload!r}")
        fields = VMConfig().to_dict()
        overrides = request.get("config") or {}
        unknown = set(overrides) - set(fields)
        if unknown:
            raise ValueError(
                f"unknown config fields {sorted(unknown)}")
        fields.update(overrides)
        config = VMConfig.from_dict(fields)
        budget = request.get("budget", DEFAULT_BUDGET)
        if not isinstance(budget, int) or budget < 1:
            raise ValueError("budget must be a positive integer")
        return RunPoint.vm(workload, config=config,
                           scale=request.get("scale"), budget=budget)

    async def _run(self, request):
        try:
            point = self._point_from(request)
        except (ValueError, TypeError) as exc:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": str(exc)}
        try:
            summary = await self._submit(point)
        except Exception as exc:   # surface run failures as responses
            self.counters["run_failures"] += 1
            return {"ok": False, "op": "run",
                    "error": f"{type(exc).__name__}: {exc}"}
        self.counters["runs_completed"] += 1
        return {"ok": True, "op": "run", "summary": summary}

    async def _submit(self, point):
        """Submission-time dedup: join in-flight identical work."""
        identity = point.identity()
        future = self._inflight.get(identity)
        if future is not None:
            self.counters["dedup_joined"] += 1
            return await future
        future = asyncio.get_running_loop().create_future()
        self._inflight[identity] = future
        await self._queue.put((point, future))
        return await future

    async def _batcher(self):
        """The single consumer of the submission queue.

        Being the only task that calls ``runner.run`` serialises batches
        without a lock; batching itself is a wall-clock window, so one
        straggler cannot hold the whole queue hostage past it.
        """
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout))
                except asyncio.TimeoutError:
                    break
            self.counters["batches"] += 1
            points = [point for point, _future in batch]
            try:
                summaries = await loop.run_in_executor(
                    None, self.runner.run, points)
            except Exception as exc:
                for point, future in batch:
                    self._inflight.pop(point.identity(), None)
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (point, future), summary in zip(batch, summaries):
                self._inflight.pop(point.identity(), None)
                self._note_persist(summary)
                if not future.done():
                    future.set_result(summary)

    def _note_persist(self, summary):
        persist = summary.get("telemetry_host", {}).get("persist")
        if persist:
            for name, value in persist.items():
                self.persist_totals[name] += value

    def __repr__(self):
        return (f"FragmentServer({self.socket_path!r}, "
                f"window={self.batch_window}, "
                f"max_batch={self.max_batch})")
