"""Synchronous client helpers for the ``repro serve`` protocol.

Plain blocking sockets on purpose: the clients (CLI, smoke script,
tests, benchmarks) are short-lived drivers, and a thread per concurrent
request is exactly what is needed to prove the server's in-flight
deduplication — two identical requests must be *on the wire together*
to join one run.
"""

import json
import socket
import threading

DEFAULT_TIMEOUT = 600.0


class ServeError(Exception):
    """The server connection failed or returned a malformed response."""


def request(socket_path, payload, timeout=DEFAULT_TIMEOUT):
    """Send one request object; return the parsed response object."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        try:
            sock.connect(str(socket_path))
            sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            buffer = b""
            while not buffer.endswith(b"\n"):
                chunk = sock.recv(1 << 16)
                if not chunk:
                    raise ServeError(
                        "connection closed before a response arrived")
                buffer += chunk
        except OSError as exc:
            raise ServeError(f"serve request failed: {exc}") from exc
    try:
        return json.loads(buffer)
    except ValueError as exc:
        raise ServeError(f"malformed response: {exc}") from exc


def run_many(socket_path, payloads, timeout=DEFAULT_TIMEOUT):
    """Issue ``payloads`` concurrently (one thread each), results in
    order.  A failed request becomes an ``{"ok": False, ...}`` entry
    instead of raising, so one bad response cannot hide the others."""
    results = [None] * len(payloads)

    def _one(index, payload):
        try:
            results[index] = request(socket_path, payload, timeout=timeout)
        except ServeError as exc:
            results[index] = {"ok": False, "error": str(exc)}

    threads = [threading.Thread(target=_one, args=(index, payload))
               for index, payload in enumerate(payloads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results
