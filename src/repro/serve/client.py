"""Synchronous client helpers for the ``repro serve`` protocol.

Plain blocking sockets on purpose: the clients (CLI, smoke script,
tests, benchmarks) are short-lived drivers, and a thread per concurrent
request is exactly what is needed to prove the server's in-flight
deduplication — two identical requests must be *on the wire together*
to join one run.

Connection failures map to distinct, actionable :class:`ServeError`
messages: a missing socket ("is ``repro serve`` running?"), a stale
socket nothing is listening on, a connect/response timeout.  The CLI
surfaces them verbatim with a non-zero exit.

:class:`Subscription` is the streaming counterpart: it issues one
``subscribe`` request and then iterates the server's JSONL frames
(see :mod:`repro.serve.streaming`) until closed — what ``repro top``
and the stream smoke test are built on.
"""

import json
import socket

DEFAULT_TIMEOUT = 600.0


class ServeError(Exception):
    """The server connection failed or returned a malformed response."""


def _connect(socket_path, timeout):
    """Open a unix-stream connection, translating each failure mode
    into a message that says what to do about it."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(str(socket_path))
    except FileNotFoundError as exc:
        sock.close()
        raise ServeError(
            f"no server socket at {socket_path} — is `repro serve` "
            f"running?") from exc
    except ConnectionRefusedError as exc:
        sock.close()
        raise ServeError(
            f"socket {socket_path} exists but nothing is listening "
            f"(stale socket from a dead server? remove it and restart "
            f"`repro serve`)") from exc
    except socket.timeout as exc:
        sock.close()
        raise ServeError(
            f"connecting to {socket_path} timed out after {timeout}s"
        ) from exc
    except OSError as exc:
        sock.close()
        raise ServeError(f"cannot connect to {socket_path}: {exc}") \
            from exc
    return sock


def _parse_line(line, what="response"):
    """One JSON line -> object, or a :class:`ServeError` naming it."""
    try:
        return json.loads(line)
    except ValueError as exc:
        raise ServeError(f"malformed {what}: {exc}") from exc


def request(socket_path, payload, timeout=DEFAULT_TIMEOUT):
    """Send one request object; return the parsed response object."""
    with _connect(socket_path, timeout) as sock:
        try:
            sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            buffer = b""
            while not buffer.endswith(b"\n"):
                chunk = sock.recv(1 << 16)
                if not chunk:
                    raise ServeError(
                        "connection closed before a response arrived")
                buffer += chunk
        except socket.timeout as exc:
            raise ServeError(
                f"server did not respond within {timeout}s") from exc
        except OSError as exc:
            raise ServeError(f"serve request failed: {exc}") from exc
    return _parse_line(buffer)


def run_many(socket_path, payloads, timeout=DEFAULT_TIMEOUT):
    """Issue ``payloads`` concurrently (one thread each), results in
    order.  A failed request becomes an ``{"ok": False, ...}`` entry
    instead of raising, so one bad response cannot hide the others."""
    import threading

    results = [None] * len(payloads)

    def _one(index, payload):
        try:
            results[index] = request(socket_path, payload, timeout=timeout)
        except ServeError as exc:
            results[index] = {"ok": False, "error": str(exc)}

    threads = [threading.Thread(target=_one, args=(index, payload))
               for index, payload in enumerate(payloads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class Subscription:
    """One live frame stream off a ``subscribe`` request.

    Usable as a context manager::

        with Subscription(path) as sub:
            for frame in sub.frames():
                ...

    The constructor blocks until the subscribe acknowledgement **and**
    the ``hello`` frame arrive (so ``sub.sid`` / ``sub.hello`` are
    always populated); :meth:`frames` then yields each subsequent frame
    dict until the server closes the stream, ``limit`` frames have
    arrived, or :meth:`close` is called.
    """

    def __init__(self, socket_path, kinds=None, events=None,
                 timeout=DEFAULT_TIMEOUT):
        self._sock = _connect(socket_path, timeout)
        self._reader = self._sock.makefile("rb")
        self.closed = False
        payload = {"op": "subscribe"}
        if kinds is not None:
            payload["kinds"] = list(kinds)
        if events is not None:
            payload["events"] = list(events)
        try:
            self._sock.sendall(json.dumps(payload).encode("utf-8") +
                               b"\n")
            ack = _parse_line(self._read_line(), "subscribe ack")
            if not ack.get("ok"):
                raise ServeError(f"subscribe refused: "
                                 f"{ack.get('error', 'unknown error')}")
            #: subscriber id assigned by the server (``hello.data.id``)
            self.sid = ack.get("id")
            #: the greeting frame: queue depth, snapshot cadence, filters
            self.hello = _parse_line(self._read_line(), "hello frame")
        except Exception:
            self.close()
            raise

    def _read_line(self, what="frame"):
        try:
            line = self._reader.readline()
        except socket.timeout as exc:
            raise ServeError(f"no {what} arrived within the timeout") \
                from exc
        except OSError as exc:
            raise ServeError(f"stream read failed: {exc}") from exc
        if not line:
            raise ServeError(f"stream closed before a {what} arrived")
        return line

    def frames(self, limit=None):
        """Yield parsed frame dicts as they arrive (at most ``limit``);
        a server-side close ends the iteration instead of raising."""
        count = 0
        while limit is None or count < limit:
            try:
                line = self._reader.readline()
            except (OSError, ValueError):
                return
            if not line:
                return
            yield _parse_line(line)
            count += 1

    def close(self):
        """Tear the connection down (idempotent); the server notices
        the disconnect and unsubscribes."""
        if self.closed:
            return
        self.closed = True
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    def __repr__(self):
        return f"Subscription(sid={getattr(self, 'sid', None)})"
