"""Sparse byte-addressed memory used for V-ISA program images."""

from repro.memory.image import Memory, Segment, Program

__all__ = ["Memory", "Segment", "Program"]
