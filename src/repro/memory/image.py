"""Sparse paged memory and the loaded-program container.

The memory model is deliberately strict: reads and writes to pages that were
never mapped raise an :class:`~repro.isa.semantics.Trap` with kind
``ACCESS_VIOLATION``, which is exactly what the precise-trap machinery of the
co-designed VM needs to exercise (Section 2.2 of the paper).
"""

from repro.isa.semantics import Trap, TrapKind
from repro.utils.bitops import MASK64

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Segment:
    """A named, contiguous region of the address space."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name, base, size):
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self):
        return self.base + self.size

    def __repr__(self):
        return f"Segment({self.name!r}, base={self.base:#x}, size={self.size:#x})"


class Memory:
    """Sparse paged byte memory with strict access checking."""

    def __init__(self):
        self._pages = {}
        self.segments = []

    def map_segment(self, name, base, size):
        """Map a zero-filled segment; returns the :class:`Segment` record."""
        segment = Segment(name, base, size)
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
        self.segments.append(segment)
        return segment

    def is_mapped(self, address):
        """True when the byte at ``address`` belongs to a mapped page."""
        return (address >> PAGE_SHIFT) in self._pages

    def _page_for(self, address, vpc=None):
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            raise Trap(TrapKind.ACCESS_VIOLATION, vpc=vpc, address=address)
        return page

    # -- raw byte access ---------------------------------------------------

    def write_bytes(self, address, data):
        """Write a byte string, page by page."""
        offset = 0
        while offset < len(data):
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, len(data) - offset)
            page[start:start + chunk] = data[offset:offset + chunk]
            offset += chunk

    def read_bytes(self, address, count):
        """Read ``count`` bytes as a bytes object."""
        out = bytearray()
        offset = 0
        while offset < count:
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, count - offset)
            out += page[start:start + chunk]
            offset += chunk
        return bytes(out)

    # -- sized accesses (little-endian, as on Alpha) -------------------------

    def load(self, address, size, vpc=None):
        """Load an unsigned little-endian value of 1/2/4/8 bytes.

        Naturally-aligned accesses only; misalignment raises an UNALIGNED
        trap exactly as Alpha hardware would.
        """
        if address & (size - 1):
            raise Trap(TrapKind.UNALIGNED, vpc=vpc, address=address)
        page = self._page_for(address, vpc)
        start = address & PAGE_MASK
        if start + size <= PAGE_SIZE:
            return int.from_bytes(page[start:start + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def store(self, address, value, size, vpc=None):
        """Store the low ``size`` bytes of ``value`` little-endian."""
        if address & (size - 1):
            raise Trap(TrapKind.UNALIGNED, vpc=vpc, address=address)
        page = self._page_for(address, vpc)
        value &= (1 << (8 * size)) - 1
        start = address & PAGE_MASK
        if start + size <= PAGE_SIZE:
            page[start:start + size] = value.to_bytes(size, "little")
        else:
            self.write_bytes(address, value.to_bytes(size, "little"))

    def snapshot(self):
        """Deep copy of the memory contents, for co-simulation checks."""
        clone = Memory()
        clone._pages = {num: bytearray(page)
                        for num, page in self._pages.items()}
        clone.segments = list(self.segments)
        return clone


class Program:
    """A loaded V-ISA program: memory image plus metadata from the assembler."""

    def __init__(self, memory, entry, symbols=None, text_base=0,
                 text_size=0, source_name="<anonymous>"):
        self.memory = memory
        self.entry = entry
        self.symbols = dict(symbols or {})
        self.text_base = text_base
        self.text_size = text_size
        self.source_name = source_name

    def text_range(self):
        """Half-open [base, end) byte range of the text segment."""
        return (self.text_base, self.text_base + self.text_size)

    def __repr__(self):
        return (f"Program({self.source_name!r}, entry={self.entry:#x}, "
                f"text={self.text_base:#x}+{self.text_size:#x})")
